package subx

import (
	"testing"
	"testing/quick"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
)

func TestHeterogeneityRules(t *testing.T) {
	iv := IntervalMark{Domain: "chr1", IV: interval.Interval{Lo: 0, Hi: 10}}
	ivOther := IntervalMark{Domain: "chr2", IV: interval.Interval{Lo: 0, Hi: 10}}
	rg := RegionMark{System: "atlas", R: rtree.Rect2D(0, 0, 10, 10)}
	st := NewSetMark("tree1", "duck", "goose")

	// Different kinds never overlap.
	if IfOverlap(iv, rg) || IfOverlap(rg, st) || IfOverlap(st, iv) {
		t.Fatal("marks of different kinds must not overlap")
	}
	// Same kind, different space never overlap.
	if IfOverlap(iv, ivOther) {
		t.Fatal("marks in different domains must not overlap")
	}
	if _, ok := Intersect(iv, rg); ok {
		t.Fatal("cross-kind intersect must be empty")
	}
	if _, ok := Intersect(iv, ivOther); ok {
		t.Fatal("cross-domain intersect must be empty")
	}
	// Nil safety.
	if IfOverlap(nil, iv) || IfOverlap(iv, nil) {
		t.Fatal("nil marks must not overlap")
	}
	if _, ok := Intersect(nil, nil); ok {
		t.Fatal("nil intersect must be empty")
	}
}

func TestIntervalMarks(t *testing.T) {
	a := IntervalMark{Domain: "chr1", IV: interval.Interval{Lo: 0, Hi: 100}}
	b := IntervalMark{Domain: "chr1", IV: interval.Interval{Lo: 50, Hi: 150}}
	c := IntervalMark{Domain: "chr1", IV: interval.Interval{Lo: 100, Hi: 200}}
	if !IfOverlap(a, b) {
		t.Fatal("a and b overlap")
	}
	if IfOverlap(a, c) {
		t.Fatal("touching intervals do not overlap")
	}
	m, ok := Intersect(a, b)
	if !ok {
		t.Fatal("intersect empty")
	}
	im := m.(IntervalMark)
	if im.IV != (interval.Interval{Lo: 50, Hi: 100}) || im.Domain != "chr1" {
		t.Fatalf("intersect = %+v", im)
	}
	if a.Empty() {
		t.Fatal("valid mark reported empty")
	}
	if !(IntervalMark{Domain: "chr1"}).Empty() {
		t.Fatal("zero interval should be empty")
	}
}

func TestRegionMarks(t *testing.T) {
	a := RegionMark{System: "atlas", R: rtree.Rect2D(0, 0, 10, 10)}
	b := RegionMark{System: "atlas", R: rtree.Rect2D(5, 5, 15, 15)}
	c := RegionMark{System: "atlas2", R: rtree.Rect2D(5, 5, 15, 15)}
	if !IfOverlap(a, b) || IfOverlap(a, c) {
		t.Fatal("region overlap wrong")
	}
	m, ok := Intersect(a, b)
	if !ok || m.(RegionMark).R != rtree.Rect2D(5, 5, 10, 10) {
		t.Fatalf("intersect = %+v, %v", m, ok)
	}
	if m.Kind() != "region" || m.Space() != "atlas" {
		t.Fatal("kind/space wrong")
	}
}

func TestSetMarks(t *testing.T) {
	a := NewSetMark("tree1", "duck", "goose", "duck") // dedup
	if len(a.Keys) != 2 || a.Keys[0] != "duck" {
		t.Fatalf("NewSetMark = %+v", a)
	}
	b := NewSetMark("tree1", "goose", "chicken")
	c := NewSetMark("tree1", "human")
	if !IfOverlap(a, b) || IfOverlap(a, c) {
		t.Fatal("set overlap wrong")
	}
	m, ok := Intersect(a, b)
	if !ok {
		t.Fatal("intersect empty")
	}
	sm := m.(SetMark)
	if len(sm.Keys) != 1 || sm.Keys[0] != "goose" {
		t.Fatalf("intersect keys = %v", sm.Keys)
	}
	if !NewSetMark("x").Empty() {
		t.Fatal("empty set mark should be empty")
	}
}

// TestQuickOperatorConsistency: intersect non-empty iff ifOverlap, for all
// three mark kinds, mirroring the per-type property tests.
func TestQuickOperatorConsistency(t *testing.T) {
	ivCheck := func(alo, blo int16, aw, bw uint8) bool {
		a := IntervalMark{Domain: "d", IV: interval.Interval{Lo: int64(alo), Hi: int64(alo) + int64(aw) + 1}}
		b := IntervalMark{Domain: "d", IV: interval.Interval{Lo: int64(blo), Hi: int64(blo) + int64(bw) + 1}}
		_, ok := Intersect(a, b)
		return ok == IfOverlap(a, b) && IfOverlap(a, b) == IfOverlap(b, a)
	}
	if err := quick.Check(ivCheck, nil); err != nil {
		t.Errorf("interval: %v", err)
	}
	setCheck := func(aRaw, bRaw []uint8) bool {
		toKeys := func(raw []uint8) []string {
			var ks []string
			for _, r := range raw {
				ks = append(ks, string(rune('a'+r%16)))
			}
			return ks
		}
		a := NewSetMark("s", toKeys(aRaw)...)
		b := NewSetMark("s", toKeys(bRaw)...)
		m, ok := Intersect(a, b)
		if ok != IfOverlap(a, b) {
			return false
		}
		if ok {
			sm := m.(SetMark)
			// Intersection is a subset of both.
			for _, k := range sm.Keys {
				if !contains(a.Keys, k) || !contains(b.Keys, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(setCheck, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("set: %v", err)
	}
}

func contains(ks []string, k string) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}
