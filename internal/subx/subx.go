// Package subx implements the paper's generic sub-structure algebra.
//
// Section II of the paper defines operations that "apply on all
// substructures (called SUB_X …) in our purview":
//
//	ifOverlap : SUB_X x SUB_X -> {0,1}
//	next      : SUB_X -> SUB_X     (ordered domains only; see core.Store)
//	intersect : SUB_X x SUB_X -> SUB_X  (convex types only)
//
// A Mark is a typed sub-structure: a 1-D interval in a named coordinate
// domain, a 2-D/3-D region in a named coordinate system, or a discrete key
// set (clade leaves, subgraph molecules, relational row keys, alignment
// rows) in a named space. Marks of different types, or of the same type in
// different domains, never overlap — the heterogeneity rule that lets
// Graphitti treat all referents uniformly.
package subx

import (
	"sort"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
)

// Mark is a sub-structure value usable with the SUB_X operators.
type Mark interface {
	// Kind names the mark type ("interval", "region", "set").
	Kind() string
	// Space names the coordinate domain/system/key-space of the mark.
	Space() string
	// Empty reports whether the mark covers nothing.
	Empty() bool
}

// IntervalMark is a 1-D sub-structure in a named domain (chromosome,
// genome segment, alignment column axis, …).
type IntervalMark struct {
	Domain string
	IV     interval.Interval
}

// Kind implements Mark.
func (m IntervalMark) Kind() string { return "interval" }

// Space implements Mark.
func (m IntervalMark) Space() string { return m.Domain }

// Empty implements Mark.
func (m IntervalMark) Empty() bool { return !m.IV.Valid() }

// RegionMark is a 2-D/3-D sub-structure in a named coordinate system.
type RegionMark struct {
	System string
	R      rtree.Rect
}

// Kind implements Mark.
func (m RegionMark) Kind() string { return "region" }

// Space implements Mark.
func (m RegionMark) Space() string { return m.System }

// Empty implements Mark.
func (m RegionMark) Empty() bool { return !m.R.Valid() }

// SetMark is a discrete sub-structure: a set of keys in a named space
// (tree leaves, molecule IDs, record primary keys, alignment row IDs).
type SetMark struct {
	SpaceName string
	Keys      []string // callers should treat as a set; order irrelevant
}

// NewSetMark returns a SetMark with deduplicated, sorted keys.
func NewSetMark(space string, keys ...string) SetMark {
	seen := make(map[string]bool, len(keys))
	var out []string
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return SetMark{SpaceName: space, Keys: out}
}

// Kind implements Mark.
func (m SetMark) Kind() string { return "set" }

// Space implements Mark.
func (m SetMark) Space() string { return m.SpaceName }

// Empty implements Mark.
func (m SetMark) Empty() bool { return len(m.Keys) == 0 }

// IfOverlap implements the paper's ifOverlap operator. Marks of different
// kinds or different spaces never overlap.
func IfOverlap(a, b Mark) bool {
	if a == nil || b == nil || a.Kind() != b.Kind() || a.Space() != b.Space() {
		return false
	}
	switch am := a.(type) {
	case IntervalMark:
		bm := b.(IntervalMark)
		return am.IV.Overlaps(bm.IV)
	case RegionMark:
		bm := b.(RegionMark)
		return am.R.Overlaps(bm.R)
	case SetMark:
		bm := b.(SetMark)
		return intersectKeys(am.Keys, bm.Keys, false) != nil
	default:
		return false
	}
}

// Intersect implements the paper's intersect operator. It returns the
// common sub-structure and whether it is non-empty. Interval and region
// marks are convex; set marks intersect as sets.
func Intersect(a, b Mark) (Mark, bool) {
	if a == nil || b == nil || a.Kind() != b.Kind() || a.Space() != b.Space() {
		return nil, false
	}
	switch am := a.(type) {
	case IntervalMark:
		bm := b.(IntervalMark)
		iv, ok := am.IV.Intersect(bm.IV)
		if !ok {
			return nil, false
		}
		return IntervalMark{Domain: am.Domain, IV: iv}, true
	case RegionMark:
		bm := b.(RegionMark)
		r, ok := am.R.Intersect(bm.R)
		if !ok {
			return nil, false
		}
		return RegionMark{System: am.System, R: r}, true
	case SetMark:
		bm := b.(SetMark)
		keys := intersectKeys(am.Keys, bm.Keys, true)
		if len(keys) == 0 {
			return nil, false
		}
		return SetMark{SpaceName: am.SpaceName, Keys: keys}, true
	default:
		return nil, false
	}
}

// intersectKeys intersects two sorted key slices. When full is false it
// returns early with a single witness (existence check).
func intersectKeys(a, b []string, full bool) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			if !full {
				return out
			}
			i++
			j++
		}
	}
	return out
}
