// Package btree implements an in-memory B-tree ordered map.
//
// The tree is generic over its key and value types; ordering is supplied by
// a comparison function at construction time. It is the ordered container
// underlying the relational store's ordered secondary indexes and several
// bookkeeping structures elsewhere in Graphitti.
//
// The zero value is not usable; construct trees with New. Trees are not
// safe for concurrent mutation; callers that share a tree across goroutines
// must synchronise externally (relstore does so with its table locks).
package btree

import "fmt"

// Cmp compares two keys. It returns a negative number when a < b, zero when
// a == b and a positive number when a > b.
type Cmp[K any] func(a, b K) int

// defaultDegree is the minimum number of children of an internal node
// (except the root). 32 keeps nodes around two cache lines for small keys
// and gives trees of height <= 4 up to ~1e6 entries.
const defaultDegree = 32

// Tree is an ordered map from K to V.
type Tree[K, V any] struct {
	cmp    Cmp[K]
	root   *node[K, V]
	length int
	degree int
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
}

func (n *node[K, V]) leaf() bool { return len(n.children) == 0 }

// New returns an empty tree ordered by cmp.
func New[K, V any](cmp Cmp[K]) *Tree[K, V] {
	return NewWithDegree[K, V](cmp, defaultDegree)
}

// NewWithDegree returns an empty tree with the given minimum degree.
// The degree must be at least 2.
func NewWithDegree[K, V any](cmp Cmp[K], degree int) *Tree[K, V] {
	if cmp == nil {
		panic("btree: nil comparison function")
	}
	if degree < 2 {
		panic(fmt.Sprintf("btree: degree %d < 2", degree))
	}
	return &Tree[K, V]{cmp: cmp, degree: degree}
}

// Len reports the number of entries in the tree.
func (t *Tree[K, V]) Len() int { return t.length }

// maxItems is the largest number of items a node may hold.
func (t *Tree[K, V]) maxItems() int { return 2*t.degree - 1 }

// minItems is the smallest number of items a non-root node may hold.
func (t *Tree[K, V]) minItems() int { return t.degree - 1 }

// search returns the index of the first item in n whose key is >= key, and
// whether that item's key equals key.
func (t *Tree[K, V]) search(n *node[K, V], key K) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cmp(n.items[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && t.cmp(n.items[lo].key, key) == 0 {
		return lo, true
	}
	return lo, false
}

// Get returns the value stored under key, and whether it was present.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		i, ok := t.search(n, key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Has reports whether key is present.
func (t *Tree[K, V]) Has(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Set stores val under key, replacing any existing value. It returns the
// previous value and whether one was replaced.
func (t *Tree[K, V]) Set(key K, val V) (V, bool) {
	var zero V
	if t.root == nil {
		t.root = &node[K, V]{items: []item[K, V]{{key, val}}}
		t.length = 1
		return zero, false
	}
	if len(t.root.items) >= t.maxItems() {
		mid, right := t.split(t.root)
		old := t.root
		t.root = &node[K, V]{
			items:    []item[K, V]{mid},
			children: []*node[K, V]{old, right},
		}
	}
	prev, replaced := t.insertNonFull(t.root, key, val)
	if !replaced {
		t.length++
	}
	return prev, replaced
}

// split divides the full node n around its median item, returning the
// median and the new right sibling. n keeps the items before the median.
func (t *Tree[K, V]) split(n *node[K, V]) (item[K, V], *node[K, V]) {
	mid := len(n.items) / 2
	median := n.items[mid]
	right := &node[K, V]{}
	right.items = append(right.items, n.items[mid+1:]...)
	n.items = n.items[:mid]
	if !n.leaf() {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	return median, right
}

func (t *Tree[K, V]) insertNonFull(n *node[K, V], key K, val V) (V, bool) {
	for {
		i, ok := t.search(n, key)
		if ok {
			prev := n.items[i].val
			n.items[i].val = val
			return prev, true
		}
		if n.leaf() {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key, val}
			var zero V
			return zero, false
		}
		child := n.children[i]
		if len(child.items) >= t.maxItems() {
			median, right := t.split(child)
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = median
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			switch c := t.cmp(key, median.key); {
			case c == 0:
				prev := n.items[i].val
				n.items[i].val = val
				return prev, true
			case c > 0:
				child = n.children[i+1]
			}
		}
		n = child
	}
}

// Delete removes key from the tree. It returns the removed value and
// whether the key was present.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	var zero V
	if t.root == nil {
		return zero, false
	}
	val, ok := t.remove(t.root, key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if len(t.root.items) == 0 && t.root.leaf() {
		t.root = nil
	}
	if ok {
		t.length--
	}
	return val, ok
}

func (t *Tree[K, V]) remove(n *node[K, V], key K) (V, bool) {
	var zero V
	i, found := t.search(n, key)
	if n.leaf() {
		if !found {
			return zero, false
		}
		val := n.items[i].val
		n.items = append(n.items[:i], n.items[i+1:]...)
		return val, true
	}
	if found {
		// Replace with predecessor (max of left subtree), then delete
		// the predecessor from that subtree.
		val := n.items[i].val
		child := t.prepareChild(n, i, key)
		// prepareChild may have rebalanced; re-search.
		j, stillHere := t.search(n, key)
		if !stillHere {
			// The key moved into the merged child; recurse.
			_, _ = t.remove(child, key)
			return val, true
		}
		pred := t.deleteMax(n.children[j])
		n.items[j] = pred
		return val, true
	}
	child := t.prepareChild(n, i, key)
	return t.remove(child, key)
}

// deleteMax removes and returns the maximum item of the subtree rooted at n,
// rebalancing along the way.
func (t *Tree[K, V]) deleteMax(n *node[K, V]) item[K, V] {
	for {
		if n.leaf() {
			it := n.items[len(n.items)-1]
			n.items = n.items[:len(n.items)-1]
			return it
		}
		i := len(n.children) - 1
		if len(n.children[i].items) <= t.minItems() {
			t.fixChild(n, i)
			i = len(n.children) - 1
		}
		n = n.children[i]
	}
}

// prepareChild ensures n.children[i] has more than minItems items before we
// descend into it, borrowing from siblings or merging as needed. It returns
// the child to descend into (which may differ after a merge).
func (t *Tree[K, V]) prepareChild(n *node[K, V], i int, key K) *node[K, V] {
	if len(n.children[i].items) > t.minItems() {
		return n.children[i]
	}
	i = t.fixChild(n, i)
	// After a merge the separating item may have moved; re-locate.
	j, _ := t.search(n, key)
	if j >= len(n.children) {
		j = len(n.children) - 1
	}
	_ = i
	return n.children[j]
}

// fixChild grows n.children[i] by borrowing from a sibling or merging with
// one; it returns the index of the (possibly merged) child.
func (t *Tree[K, V]) fixChild(n *node[K, V], i int) int {
	child := n.children[i]
	if i > 0 && len(n.children[i-1].items) > t.minItems() {
		// Borrow from left sibling through the separator.
		left := n.children[i-1]
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems() {
		// Borrow from right sibling through the separator.
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	// Merge with a sibling.
	if i == len(n.children)-1 {
		i--
	}
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	return i
}

// Min returns the smallest key and its value. ok is false for an empty tree.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for !n.leaf() {
		n = n.children[0]
	}
	it := n.items[0]
	return it.key, it.val, true
}

// Max returns the largest key and its value. ok is false for an empty tree.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	it := n.items[len(n.items)-1]
	return it.key, it.val, true
}

// Ascend visits every entry in ascending key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if !n.leaf() && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// Descend visits every entry in descending key order until fn returns false.
func (t *Tree[K, V]) Descend(fn func(key K, val V) bool) {
	t.descend(t.root, fn)
}

func (t *Tree[K, V]) descend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i := len(n.items) - 1; i >= 0; i-- {
		if !n.leaf() && !t.descend(n.children[i+1], fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return t.descend(n.children[0], fn)
	}
	return true
}

// AscendRange visits entries with lo <= key < hi in ascending order until fn
// returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(key K, val V) bool) {
	t.ascendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := t.search(n, lo)
	for i := start; i < len(n.items); i++ {
		if !n.leaf() && !t.ascendRange(n.children[i], lo, hi, fn) {
			return false
		}
		if t.cmp(n.items[i].key, hi) >= 0 {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascendRange(n.children[len(n.children)-1], lo, hi, fn)
	}
	return true
}

// AscendGreaterOrEqual visits entries with key >= pivot in ascending order
// until fn returns false.
func (t *Tree[K, V]) AscendGreaterOrEqual(pivot K, fn func(key K, val V) bool) {
	t.ascendGE(t.root, pivot, fn)
}

func (t *Tree[K, V]) ascendGE(n *node[K, V], pivot K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := t.search(n, pivot)
	for i := start; i < len(n.items); i++ {
		if !n.leaf() && !t.ascendGE(n.children[i], pivot, fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascendGE(n.children[len(n.children)-1], pivot, fn)
	}
	return true
}

// DescendLessOrEqual visits entries with key <= pivot in descending order
// until fn returns false.
func (t *Tree[K, V]) DescendLessOrEqual(pivot K, fn func(key K, val V) bool) {
	t.descendLE(t.root, pivot, fn)
}

func (t *Tree[K, V]) descendLE(n *node[K, V], pivot K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	i, found := t.search(n, pivot)
	if found {
		if !n.leaf() && !t.descendLE(n.children[i+1], pivot, fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
		i--
	} else {
		i--
	}
	for ; i >= 0; i-- {
		if !n.leaf() && !t.descendLE(n.children[i+1], pivot, fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return t.descendLE(n.children[0], pivot, fn)
	}
	return true
}

// Keys returns all keys in ascending order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.length)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Height returns the height of the tree (0 for empty, 1 for a lone root).
func (t *Tree[K, V]) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// checkInvariants verifies B-tree structural invariants; used by tests.
func (t *Tree[K, V]) checkInvariants() error {
	if t.root == nil {
		if t.length != 0 {
			return fmt.Errorf("btree: empty root but length %d", t.length)
		}
		return nil
	}
	count := 0
	var walk func(n *node[K, V], depth int, leafDepth *int) error
	walk = func(n *node[K, V], depth int, leafDepth *int) error {
		if n != t.root && len(n.items) < t.minItems() {
			return fmt.Errorf("btree: underfull node (%d items)", len(n.items))
		}
		if len(n.items) > t.maxItems() {
			return fmt.Errorf("btree: overfull node (%d items)", len(n.items))
		}
		for i := 1; i < len(n.items); i++ {
			if t.cmp(n.items[i-1].key, n.items[i].key) >= 0 {
				return fmt.Errorf("btree: unordered items in node")
			}
		}
		count += len(n.items)
		if n.leaf() {
			if *leafDepth == -1 {
				*leafDepth = depth
			} else if *leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", *leafDepth, depth)
			}
			return nil
		}
		if len(n.children) != len(n.items)+1 {
			return fmt.Errorf("btree: %d children for %d items", len(n.children), len(n.items))
		}
		for _, c := range n.children {
			if err := walk(c, depth+1, leafDepth); err != nil {
				return err
			}
		}
		return nil
	}
	leafDepth := -1
	if err := walk(t.root, 0, &leafDepth); err != nil {
		return err
	}
	if count != t.length {
		return fmt.Errorf("btree: counted %d items, length %d", count, t.length)
	}
	return nil
}
