package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return a - b }

func newIntTree() *Tree[int, string] { return New[int, string](intCmp) }

func TestEmptyTree(t *testing.T) {
	tr := newIntTree()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree reported a hit")
	}
	if _, ok := tr.Delete(42); ok {
		t.Fatal("Delete on empty tree reported a hit")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported a hit")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported a hit")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetGet(t *testing.T) {
	tr := newIntTree()
	if _, replaced := tr.Set(1, "one"); replaced {
		t.Fatal("first Set reported replacement")
	}
	if prev, replaced := tr.Set(1, "uno"); !replaced || prev != "one" {
		t.Fatalf("second Set = (%q, %v), want (one, true)", prev, replaced)
	}
	got, ok := tr.Get(1)
	if !ok || got != "uno" {
		t.Fatalf("Get(1) = (%q, %v), want (uno, true)", got, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
}

func TestSequentialInsertAscending(t *testing.T) {
	tr := newIntTree()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Set(i, "")
	}
	if tr.Len() != n {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !tr.Has(i) {
			t.Fatalf("missing key %d", i)
		}
	}
}

func TestSequentialInsertDescending(t *testing.T) {
	tr := newIntTree()
	const n = 10_000
	for i := n - 1; i >= 0; i-- {
		tr.Set(i, "")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("Keys() returned %d keys, want %d", len(keys), n)
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Keys() not sorted")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newIntTree()
	const n = 5_000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Set(k, "v")
	}
	for i, k := range perm {
		if _, ok := tr.Delete(k); !ok {
			t.Fatalf("Delete(%d) missed (iteration %d)", k, i)
		}
		if i%611 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after deleting %d keys: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d after deleting everything", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 100; i += 2 {
		tr.Set(i, "")
	}
	for i := 1; i < 100; i += 2 {
		if _, ok := tr.Delete(i); ok {
			t.Fatalf("Delete(%d) hit a key that was never inserted", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len() = %d, want 50", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := newIntTree()
	for _, k := range []int{5, 3, 9, 1, 7} {
		tr.Set(k, "")
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Fatalf("Min() = %d, want 1", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Fatalf("Max() = %d, want 9", k)
	}
}

func TestAscendDescend(t *testing.T) {
	tr := newIntTree()
	const n = 1000
	for _, k := range rand.New(rand.NewSource(2)).Perm(n) {
		tr.Set(k, "")
	}
	var asc []int
	tr.Ascend(func(k int, _ string) bool {
		asc = append(asc, k)
		return true
	})
	if len(asc) != n || !sort.IntsAreSorted(asc) {
		t.Fatalf("Ascend produced %d keys, sorted=%v", len(asc), sort.IntsAreSorted(asc))
	}
	var desc []int
	tr.Descend(func(k int, _ string) bool {
		desc = append(desc, k)
		return true
	})
	if len(desc) != n {
		t.Fatalf("Descend produced %d keys, want %d", len(desc), n)
	}
	for i := range desc {
		if desc[i] != asc[n-1-i] {
			t.Fatalf("Descend[%d] = %d, want %d", i, desc[i], asc[n-1-i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 100; i++ {
		tr.Set(i, "")
	}
	count := 0
	tr.Ascend(func(int, string) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d entries, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 100; i++ {
		tr.Set(i, "")
	}
	tests := []struct {
		lo, hi int
		want   int
	}{
		{0, 100, 100},
		{10, 20, 10},
		{50, 50, 0},
		{95, 200, 5},
		{-10, 5, 5},
		{200, 300, 0},
	}
	for _, tc := range tests {
		var got []int
		tr.AscendRange(tc.lo, tc.hi, func(k int, _ string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != tc.want {
			t.Errorf("AscendRange(%d,%d) returned %d keys, want %d", tc.lo, tc.hi, len(got), tc.want)
		}
		for _, k := range got {
			if k < tc.lo || k >= tc.hi {
				t.Errorf("AscendRange(%d,%d) yielded out-of-range key %d", tc.lo, tc.hi, k)
			}
		}
	}
}

func TestAscendGreaterOrEqual(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 50; i += 2 {
		tr.Set(i, "")
	}
	var got []int
	tr.AscendGreaterOrEqual(11, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) == 0 || got[0] != 12 {
		t.Fatalf("AscendGreaterOrEqual(11) first key = %v, want 12", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("AscendGreaterOrEqual out of order")
		}
	}
}

func TestDescendLessOrEqual(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 50; i += 2 {
		tr.Set(i, "")
	}
	var got []int
	tr.DescendLessOrEqual(11, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) == 0 || got[0] != 10 {
		t.Fatalf("DescendLessOrEqual(11) first key = %v, want 10", got)
	}
	// Pivot present in tree must be included.
	got = got[:0]
	tr.DescendLessOrEqual(10, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) == 0 || got[0] != 10 {
		t.Fatalf("DescendLessOrEqual(10) first key = %v, want 10", got)
	}
}

func TestSmallDegrees(t *testing.T) {
	for _, degree := range []int{2, 3, 4, 7} {
		tr := NewWithDegree[int, int](intCmp, degree)
		const n = 2000
		for _, k := range rand.New(rand.NewSource(3)).Perm(n) {
			tr.Set(k, k*2)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		for _, k := range rand.New(rand.NewSource(4)).Perm(n) {
			if v, ok := tr.Get(k); !ok || v != k*2 {
				t.Fatalf("degree %d: Get(%d) = (%d,%v)", degree, k, v, ok)
			}
		}
		for _, k := range rand.New(rand.NewSource(5)).Perm(n) {
			if _, ok := tr.Delete(k); !ok {
				t.Fatalf("degree %d: Delete(%d) missed", degree, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("degree %d: Len() = %d after full deletion", degree, tr.Len())
		}
	}
}

func TestNewPanics(t *testing.T) {
	assertPanics(t, "nil cmp", func() { New[int, int](nil) })
	assertPanics(t, "degree 1", func() { NewWithDegree[int, int](intCmp, 1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestHeightGrowth(t *testing.T) {
	tr := newIntTree()
	if tr.Height() != 0 {
		t.Fatalf("empty Height() = %d", tr.Height())
	}
	for i := 0; i < 100_000; i++ {
		tr.Set(i, "")
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Fatalf("Height() = %d for 1e5 keys with degree %d", h, defaultDegree)
	}
}

// TestQuickAgainstMap drives a random operation sequence against both the
// tree and a reference map, checking full agreement.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key    int16 // small domain to force collisions
		Del    bool
		Lookup bool
	}
	check := func(ops []op) bool {
		tr := New[int, int](intCmp)
		ref := map[int]int{}
		for i, o := range ops {
			k := int(o.Key % 512)
			switch {
			case o.Lookup:
				gv, gok := tr.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			case o.Del:
				_, gok := tr.Delete(k)
				_, rok := ref[k]
				delete(ref, k)
				if gok != rok {
					return false
				}
			default:
				tr.Set(k, i)
				ref[k] = i
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		keys := tr.Keys()
		if len(keys) != len(ref) {
			return false
		}
		for _, k := range keys {
			if _, ok := ref[k]; !ok {
				return false
			}
		}
		return sort.IntsAreSorted(keys)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeOracle checks AscendRange against a sorted-slice oracle.
func TestQuickRangeOracle(t *testing.T) {
	check := func(keys []int16, lo, hi int16) bool {
		tr := New[int, struct{}](intCmp)
		ref := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), struct{}{})
			ref[int(k)] = true
		}
		var want []int
		for k := range ref {
			if k >= int(lo) && k < int(hi) {
				want = append(want, k)
			}
		}
		sort.Ints(want)
		var got []int
		tr.AscendRange(int(lo), int(hi), func(k int, _ struct{}) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSet(b *testing.B) {
	tr := New[int, int](intCmp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(i, i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New[int, int](intCmp)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		tr.Set(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & (n - 1))
	}
}
