package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	root := NewRoot("http", "")
	tp := root.TraceParent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("malformed traceparent %q", tp)
	}
	// A second root honoring the first's header joins the same trace.
	joined := NewRoot("http", tp)
	if joined.TraceID() != root.TraceID() {
		t.Fatalf("traceparent not honored: %s vs %s", joined.TraceID(), root.TraceID())
	}
	// But gets its own span ID.
	if joined.TraceParent() == tp {
		t.Fatal("child root reused the parent span ID")
	}
}

func TestTraceParentRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-short-id-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c+b7ad6b7169203331-01", // bad separator
	} {
		fresh := NewRoot("http", bad)
		if got := fresh.TraceID(); strings.Contains(bad, got) && len(bad) == 55 {
			t.Errorf("adopted trace ID from invalid traceparent %q", bad)
		}
	}
	// The unknown-version case specifically must not adopt the ID.
	s := NewRoot("http", "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if s.TraceID() == "0af7651916cd43dd8448eb211c80319c" {
		t.Fatal("adopted trace ID from non-version-00 traceparent")
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.Finish()
	sp.SetAttr("k", "v")
	sp.SetShard(3)
	sp.FinishedChild("wal.flush", time.Now(), time.Now())
	if c := sp.StartChild("x"); c != nil {
		t.Fatal("nil span returned a live child")
	}
	if sp.Tree() != nil || sp.TraceParent() != "" || sp.ShardHint() != -1 {
		t.Fatal("nil span leaked state")
	}
	if sp.Breakdown() != "" {
		t.Fatal("nil span breakdown non-empty")
	}
}

func TestTreeShapeAndAttrs(t *testing.T) {
	root := NewRoot("http", "")
	root.SetAttr("route", "POST /api/annotations")
	w := root.StartChild("shard.writer")
	w.SetShard(2)
	c := w.StartChild("commit")
	c.Finish()
	w.FinishedChild("wal.flush", time.Now().Add(-time.Millisecond), time.Now(),
		Attr{Key: "batch", Value: "2#7"})
	w.Finish()
	root.Finish()

	n := root.Tree()
	if n.Name != "http" || n.TraceID == "" || n.Attrs["route"] != "POST /api/annotations" {
		t.Fatalf("bad root node: %+v", n)
	}
	if len(n.Children) != 1 || n.Children[0].Name != "shard.writer" {
		t.Fatalf("bad children: %+v", n.Children)
	}
	wn := n.Children[0]
	if wn.Shard == nil || *wn.Shard != 2 {
		t.Fatalf("shard tag lost: %+v", wn)
	}
	var names []string
	for _, ch := range wn.Children {
		names = append(names, ch.Name)
	}
	if len(names) != 2 || names[0] != "commit" || names[1] != "wal.flush" {
		t.Fatalf("grandchildren = %v", names)
	}
	if wn.Children[1].Attrs["batch"] != "2#7" {
		t.Fatalf("batch attr lost: %+v", wn.Children[1])
	}
	if root.ShardHint() != 2 {
		t.Fatalf("ShardHint = %d, want 2", root.ShardHint())
	}
	kinds := root.Kinds()
	want := map[string]bool{"http": true, "shard.writer": true, "commit": true, "wal.flush": true}
	for _, k := range kinds {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("Kinds missing %v (got %v)", want, kinds)
	}
	// The tree must be JSON-serializable (what /debug/traces emits).
	if _, err := json.Marshal(n); err != nil {
		t.Fatal(err)
	}
	if bd := root.Breakdown(); !strings.Contains(bd, "http=") || !strings.Contains(bd, "shard.writer[2]=") {
		t.Fatalf("breakdown %q", bd)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	sp := NewRoot("http", "")
	ctx := NewContext(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span lost in context")
	}
}

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4})
	for i := 0; i < 10; i++ {
		root := NewRoot("http", "")
		root.SetShard(1)
		root.Finish()
		tr.Record(root, false)
	}
	got := tr.Traces(1)
	if len(got) != 4 {
		t.Fatalf("ring held %d traces, want 4", len(got))
	}
	if len(tr.Traces(-1)) != 0 {
		t.Fatal("shardless ring should be empty")
	}
	if len(tr.Traces(ShardAll)) != 4 {
		t.Fatal("ShardAll mismatch")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(Options{RingSize: 64, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		root := NewRoot("http", "")
		root.Finish()
		tr.Record(root, false)
	}
	if n := len(tr.Traces(-1)); n != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4, want 4", n)
	}
	// forced bypasses sampling.
	root := NewRoot("http", "")
	root.Finish()
	tr.Record(root, true)
	if n := len(tr.Traces(-1)); n != 5 {
		t.Fatalf("forced trace not retained (%d)", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(Options{RingSize: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := NewRoot("http", "")
				c := root.StartChild("commit")
				c.SetShard(g % 3)
				c.Finish()
				root.Finish()
				tr.Record(root, false)
			}
		}(g)
	}
	wg.Wait()
	total := len(tr.Traces(ShardAll))
	if total == 0 || total > 3*8 {
		t.Fatalf("rings hold %d traces, want 1..24", total)
	}
	for _, sp := range tr.Traces(ShardAll) {
		if sp.Tree() == nil {
			t.Fatal("nil tree from ring")
		}
	}
}

func TestTopKHeavyHitters(t *testing.T) {
	tk := NewTopK(3)
	feed := map[string]int{"segment1": 100, "segment2": 60, "segment3": 30, "noise-a": 2, "noise-b": 1}
	for key, n := range feed {
		for i := 0; i < n; i++ {
			tk.Record(key)
		}
	}
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("sketch holds %d entries, want 3", len(top))
	}
	if top[0].Key != "segment1" || top[1].Key != "segment2" {
		t.Fatalf("heavy hitters missing: %+v", top)
	}
	// Space-saving never under-counts: estimate >= true count.
	if top[0].Count < 100 || top[1].Count < 60 {
		t.Fatalf("under-counted: %+v", top)
	}
	if tk.Total() != 193 {
		t.Fatalf("Total = %d, want 193", tk.Total())
	}
	tk.Record("")
	if tk.Total() != 193 {
		t.Fatal("empty key counted")
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(4)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tk.Record(keys[(g+i)%len(keys)])
			}
		}(g)
	}
	wg.Wait()
	if tk.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", tk.Total())
	}
	if got := len(tk.Top()); got != 4 {
		t.Fatalf("sketch holds %d entries, want 4", got)
	}
}
