package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TopK is a space-saving heavy-hitters sketch (Metwally, Agrawal and
// El Abbadi's Stream-Summary) over routing keys: it tracks at most k
// counters, and when a new key arrives with all counters taken it
// evicts the minimum counter and adopts its count as the new key's
// starting point, recording that inherited count as the entry's error
// bound. A key whose true frequency exceeds N/k is guaranteed to be
// present, which is exactly the "which keys dominate this shard" signal
// the rebalancing work needs — with k counters of memory, not one per
// distinct key.
//
// Safe for concurrent use; Record takes a mutex, so keep k small and
// call it once per routed mutation (the surrounding commit does far
// more work than the sketch).
type TopK struct {
	mu    sync.Mutex
	k     int
	m     map[string]*tkEntry
	total atomic.Uint64
}

type tkEntry struct {
	count uint64
	err   uint64
}

// KeyCount is one sketch entry: Count over-estimates the key's true
// frequency by at most Err.
type KeyCount struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// NewTopK returns a sketch tracking at most k keys (k < 1 is treated
// as 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, m: make(map[string]*tkEntry, k)}
}

// Record counts one occurrence of key. Empty keys are ignored (a
// mutation with no routing key, e.g. a delete routed by probe).
func (t *TopK) Record(key string) {
	if t == nil || key == "" {
		return
	}
	t.total.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[key]; ok {
		e.count++
		return
	}
	if len(t.m) < t.k {
		t.m[key] = &tkEntry{count: 1}
		return
	}
	// Evict the minimum counter; the newcomer inherits its count (the
	// space-saving guarantee: no key's true count is ever under-counted).
	var minKey string
	var min *tkEntry
	for k2, e := range t.m {
		if min == nil || e.count < min.count {
			minKey, min = k2, e
		}
	}
	delete(t.m, minKey)
	t.m[key] = &tkEntry{count: min.count + 1, err: min.count}
}

// Top returns the sketch entries sorted by count descending (key
// ascending on ties, so the order is deterministic).
func (t *TopK) Top() []KeyCount {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]KeyCount, 0, len(t.m))
	for k, e := range t.m {
		out = append(out, KeyCount{Key: k, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Total returns the number of recorded observations (distinct or not).
func (t *TopK) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}
