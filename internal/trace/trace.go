// Package trace is Graphitti's dependency-free span tracer: the
// always-on instrumentation that shows where a single request spent its
// time as it crossed the pipeline — HTTP dispatch, the shard router, the
// per-shard writer, the commit critical section, the propagation delta,
// and the WAL group-commit flush.
//
// # Model
//
// A trace is a tree of spans. The HTTP middleware opens the root span
// for every request (honoring an incoming W3C `traceparent` header and
// emitting one on the response), hands it down the call path, and each
// instrumented layer opens a child around its own work. Span kinds are
// a small fixed vocabulary ("http", "router", "shard.writer", "commit",
// "prop.delta", "wal.flush", "query", "search", "delete"); every span
// finish also feeds the graphitti_trace_* metric families, so each kind
// observed in a trace has a matching duration histogram in /metrics.
//
// The API is nil-safe end to end: every method on a nil *Span is a
// no-op, so deep layers (the core writer, the WAL flusher) carry a span
// pointer unconditionally and pay only a nil check when the caller did
// not trace.
//
// # Batch attribution
//
// The WAL's single flusher serves many concurrent committers with one
// write+fdatasync. When it completes a batch it attaches a finished
// "wal.flush" child — stamped with the batch ID — to every rider's
// span, so concurrent commits that waited on the same fsync carry the
// same batch ID and an operator can see group commit working (or not)
// straight from the traces.
//
// # Retention
//
// Finished traces land in a lock-free per-shard ring buffer (Tracer);
// GET /debug/traces serves them as JSON and ?trace=1 returns a request's
// own tree inline. Rings hold the last RingSize traces per shard —
// tracing is always on, the rings are the sampling.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphitti/internal/obs"
)

// Span metric families: every Finish observes its kind's counter and
// duration histogram, traced request or not, which is what keeps the
// trace/metrics invariant ("every span kind has a histogram family
// sample") testable. Documented in docs/METRICS.md.
var (
	mSpans = obs.NewCounterVec("graphitti_trace_spans_total",
		"Spans finished, by span kind.", "kind")
	mSpanSeconds = obs.NewHistogramVec("graphitti_trace_span_duration_seconds",
		"Span duration, by span kind.", nil, "kind")
	mTracesRecorded = obs.NewCounter("graphitti_trace_traces_recorded_total",
		"Finished root spans retained in the /debug/traces ring buffers.")
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// spanSeed XORs a per-process random base into the span-ID counter so
// IDs are unique without a crypto/rand read per span.
var (
	spanSeed = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	spanCtr atomic.Uint64
)

func newSpanID() [8]byte {
	var id [8]byte
	v := spanSeed ^ (spanCtr.Add(1) * 0x9e3779b97f4a7c15)
	binary.LittleEndian.PutUint64(id[:], v)
	if v == 0 {
		id[0] = 1 // all-zero span IDs are invalid in W3C traceparent
	}
	return id
}

func newTraceID() [16]byte {
	var id [16]byte
	if _, err := rand.Read(id[:]); err != nil {
		binary.LittleEndian.PutUint64(id[:8], newSpanIDUint())
		binary.LittleEndian.PutUint64(id[8:], newSpanIDUint())
	}
	if id == ([16]byte{}) {
		id[0] = 1
	}
	return id
}

func newSpanIDUint() uint64 {
	id := newSpanID()
	return binary.LittleEndian.Uint64(id[:])
}

// Span is one timed operation in a trace tree. All methods are safe on a
// nil receiver (no-ops), and safe for concurrent use — the WAL flusher
// attaches children to a rider's span from another goroutine.
type Span struct {
	name    string
	traceID [16]byte
	spanID  [8]byte
	start   time.Time

	mu       sync.Mutex
	end      time.Time
	shard    int // -1 until SetShard
	attrs    []Attr
	children []*Span
}

// NewRoot opens a root span. traceparent, when it is a valid W3C
// `traceparent` header value (00-<32 hex>-<16 hex>-<2 hex>), donates its
// trace ID so the trace joins the caller's distributed trace; anything
// else starts a fresh trace.
func NewRoot(name, traceparent string) *Span {
	s := &Span{name: name, spanID: newSpanID(), start: time.Now(), shard: -1}
	if tid, ok := parseTraceParent(traceparent); ok {
		s.traceID = tid
	} else {
		s.traceID = newTraceID()
	}
	return s
}

// parseTraceParent extracts the trace ID of a version-00 W3C traceparent
// header value.
func parseTraceParent(v string) ([16]byte, bool) {
	var tid [16]byte
	if len(v) != 55 || !strings.HasPrefix(v, "00-") || v[35] != '-' || v[52] != '-' {
		return tid, false
	}
	raw, err := hex.DecodeString(v[3:35])
	if err != nil {
		return tid, false
	}
	if _, err := hex.DecodeString(v[36:52]); err != nil {
		return tid, false
	}
	if _, err := hex.DecodeString(v[53:55]); err != nil {
		return tid, false
	}
	copy(tid[:], raw)
	if tid == ([16]byte{}) {
		return tid, false // all-zero trace ID is invalid
	}
	return tid, true
}

// TraceParent renders the span as an outgoing W3C traceparent header
// value, sampled flag set (tracing is always on).
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return "00-" + hex.EncodeToString(s.traceID[:]) + "-" + hex.EncodeToString(s.spanID[:]) + "-01"
}

// TraceID returns the hex trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hex.EncodeToString(s.traceID[:])
}

// Name returns the span kind ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild opens a child span of the same trace. Returns nil on a nil
// receiver, so call chains cost one nil check when untraced.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, traceID: s.traceID, spanID: newSpanID(),
		start: time.Now(), shard: -1}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// FinishedChild attaches an already-timed child — how the WAL flusher
// stamps its batch onto every rider after the fsync completes. The child
// observes the span metric families exactly as a StartChild/Finish pair
// would.
func (s *Span) FinishedChild(name string, start, end time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{name: name, traceID: s.traceID, spanID: newSpanID(),
		start: start, end: end, shard: -1, attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	mSpans.With(name).Inc()
	mSpanSeconds.With(name).Observe(end.Sub(start).Seconds())
}

// Finish closes the span and observes its kind's metric families.
// Finishing twice keeps the first end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	mSpans.With(s.name).Inc()
	mSpanSeconds.With(s.name).Observe(d.Seconds())
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Attr returns the first value recorded for key ("" when absent or nil).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SetShard tags the span with the shard that did its work.
func (s *Span) SetShard(k int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shard = k
	s.mu.Unlock()
}

// Duration returns the span's duration (0 while open or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// ShardHint returns the highest shard tag anywhere in the tree, or -1
// when no span was shard-tagged — which ring the trace belongs in.
func (s *Span) ShardHint() int {
	if s == nil {
		return -1
	}
	s.mu.Lock()
	hint := s.shard
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		if h := c.ShardHint(); h > hint {
			hint = h
		}
	}
	return hint
}

// Node is the JSON projection of a span tree, what /debug/traces and
// ?trace=1 serve.
type Node struct {
	Name           string            `json:"name"`
	TraceID        string            `json:"traceId,omitempty"`
	SpanID         string            `json:"spanId"`
	Shard          *int              `json:"shard,omitempty"`
	Start          time.Time         `json:"start"`
	DurationMicros int64             `json:"durationMicros"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Children       []*Node           `json:"children,omitempty"`
}

// Tree renders the span and its descendants as Nodes; the receiver gets
// the trace ID. Returns nil on a nil span.
func (s *Span) Tree() *Node {
	n := s.node()
	if n != nil {
		n.TraceID = s.TraceID()
	}
	return n
}

func (s *Span) node() *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &Node{
		Name:   s.name,
		SpanID: hex.EncodeToString(s.spanID[:]),
		Start:  s.start,
	}
	if !s.end.IsZero() {
		n.DurationMicros = s.end.Sub(s.start).Microseconds()
	}
	if s.shard >= 0 {
		k := s.shard
		n.Shard = &k
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			if _, dup := n.Attrs[a.Key]; !dup {
				n.Attrs[a.Key] = a.Value
			}
		}
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.node())
	}
	return n
}

// Kinds returns every span kind present in the tree, deduplicated.
func (s *Span) Kinds() []string {
	seen := map[string]bool{}
	s.kinds(seen)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

func (s *Span) kinds(seen map[string]bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	seen[s.name] = true
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.kinds(seen)
	}
}

// Breakdown renders the tree on one line — "http=1.2ms{commit=0.9ms{…}}"
// — for the slow-request log.
func (s *Span) Breakdown() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.breakdown(&b)
	return b.String()
}

func (s *Span) breakdown(b *strings.Builder) {
	s.mu.Lock()
	name, shard := s.name, s.shard
	var d time.Duration
	if !s.end.IsZero() {
		d = s.end.Sub(s.start)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	b.WriteString(name)
	if shard >= 0 {
		fmt.Fprintf(b, "[%d]", shard)
	}
	fmt.Fprintf(b, "=%s", d.Round(time.Microsecond))
	if len(kids) > 0 {
		b.WriteByte('{')
		for i, c := range kids {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.breakdown(b)
		}
		b.WriteByte('}')
	}
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// NewContext returns ctx carrying sp.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx (nil when untraced — safe
// to call methods on).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ring is a lock-free fixed-size buffer of finished traces: writers
// claim a slot with one atomic add and publish with one atomic pointer
// store; readers snapshot whatever is published.
type ring struct {
	slots []atomic.Pointer[Span]
	n     atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Span], size)}
}

func (r *ring) put(s *Span) {
	i := r.n.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

func (r *ring) snapshot() []*Span {
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// DefaultRingSize is the per-shard trace retention when Options leave it
// zero: enough recent traces to diagnose an incident, small enough to be
// always-on (a span tree is a few hundred bytes).
const DefaultRingSize = 256

// Options tune a Tracer.
type Options struct {
	// RingSize is the per-shard ring capacity (DefaultRingSize when 0).
	RingSize int
	// SampleEvery keeps every Nth finished trace in the rings (1 — every
	// trace — when 0 or 1). ?trace=1 requests are always kept. Span
	// metrics are observed for every request regardless.
	SampleEvery int
}

// Tracer retains finished traces in one lock-free ring per shard
// (shard -1 — requests that never touched a shard-tagged span — has its
// own ring). Safe for concurrent use.
type Tracer struct {
	ringSize    int
	sampleEvery uint64
	seq         atomic.Uint64

	mu    sync.Mutex // guards ring-slice growth only
	rings atomic.Pointer[[]*ring]
}

// NewTracer returns a Tracer with the given retention options.
func NewTracer(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	t := &Tracer{ringSize: o.RingSize, sampleEvery: uint64(o.SampleEvery)}
	empty := []*ring{}
	t.rings.Store(&empty)
	return t
}

// Record retains a finished root span in its shard's ring. forced (the
// ?trace=1 path) bypasses sampling.
func (t *Tracer) Record(root *Span, forced bool) {
	if t == nil || root == nil {
		return
	}
	if !forced && t.sampleEvery > 1 && t.seq.Add(1)%t.sampleEvery != 0 {
		return
	}
	idx := root.ShardHint() + 1 // shard -1 → ring 0
	if idx < 0 {
		idx = 0
	}
	t.ringFor(idx).put(root)
	mTracesRecorded.Inc()
}

// ringFor returns (growing the copy-on-write slice if needed) ring idx.
func (t *Tracer) ringFor(idx int) *ring {
	if rs := *t.rings.Load(); idx < len(rs) {
		return rs[idx]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := *t.rings.Load()
	if idx < len(rs) {
		return rs[idx]
	}
	grown := make([]*ring, idx+1)
	copy(grown, rs)
	for i := len(rs); i <= idx; i++ {
		grown[i] = newRing(t.ringSize)
	}
	t.rings.Store(&grown)
	return grown[idx]
}

// Traces snapshots retained traces. shard filters to one shard's ring
// (-1 for the shardless ring); pass ShardAll for every ring. Traces are
// returned newest-last within a ring; cross-ring order is unspecified.
func (t *Tracer) Traces(shard int) []*Span {
	if t == nil {
		return nil
	}
	rs := *t.rings.Load()
	if shard != ShardAll {
		idx := shard + 1
		if idx < 0 || idx >= len(rs) {
			return nil
		}
		return rs[idx].snapshot()
	}
	var out []*Span
	for _, r := range rs {
		out = append(out, r.snapshot()...)
	}
	return out
}

// ShardAll selects every ring in Tracer.Traces.
const ShardAll = -2
