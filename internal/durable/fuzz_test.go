package durable

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"graphitti/internal/core"
	"graphitti/internal/wal"
	"graphitti/internal/workload"
)

// FuzzOpEnvelope hammers the WAL replay path with arbitrary bytes: a
// corrupt or hand-edited op envelope must produce an error, never a
// panic — Open of a damaged directory has to fail cleanly, not crash
// the server. The seed corpus is every envelope a real scenario run
// logs, so the fuzzer starts from valid records and mutates inward.
func FuzzOpEnvelope(f *testing.F) {
	dir := f.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	ops := workload.RecoveryScenario(workload.RecoveryConfig{Seed: 7, Images: 3, Ops: 60})
	if err := workload.ApplyOps(s, ops); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	if _, err := wal.Scan(filepath.Join(dir, logFile), func(payload []byte) error {
		f.Add(append([]byte(nil), payload...))
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	// Adversarial seeds: envelopes that are valid JSON but name no dump,
	// or whose dumps are structurally hollow.
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	for kind := 0; kind < 16; kind++ {
		f.Add([]byte(`{"seq":1,"kind":` + string(rune('0'+kind%10)) + `}`))
		b, _ := json.Marshal(map[string]any{"seq": 1, "kind": kind, "annotation": map[string]any{}})
		f.Add(b)
		b, _ = json.Marshal(map[string]any{"seq": 1, "kind": kind, "image": map[string]any{}, "row": []any{map[string]any{}}})
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			return // not an envelope; the scanner already rejected it upstream
		}
		// Replay against an empty store and against one with prior state:
		// panics can hide behind lookups that only exist in one of them.
		_ = apply(core.NewStore(), &rec)

		fresh := &Store{}
		fresh.core.Store(core.NewStore())
		_ = fresh.replayRecord(data)
	})
}
