package durable

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"graphitti"
	"graphitti/internal/core"
	"graphitti/internal/faultfs"
	"graphitti/internal/persist"
	"graphitti/internal/workload"
)

// The fault-injection harness is the crash harness's sibling: instead of
// SIGKILLing a child process it breaks the disk underneath a live store
// (via faultfs) at random operation indices, then repairs the disk and
// recovers with Reopen. The invariants it asserts are the durability
// contract plus the degradation state machine:
//
//   - an op acknowledged (nil error) while degraded is a bug;
//   - an op that fails must leave the store degraded, and the error must
//     wrap ErrDegraded;
//   - once the disk is repaired, Reopen succeeds and the recovered state
//     equals an in-memory store fed the same op prefix — no acknowledged
//     mutation lost;
//   - the scenario then resumes against the recovered store and must end
//     in full parity with a never-faulted run.

// openStoreBootOps is how many injectable file operations a fresh-dir
// Open performs (log create, header write, header sync, dir sync); the
// Flaky warm-up must cover them so Open itself succeeds.
const openStoreBootOps = 4

func TestFaultInjectionRecovery(t *testing.T) {
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for seed := int64(1); seed <= 5; seed++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			inj := faultfs.NewFlaky(faultfs.FlakyConfig{
				Seed:      seed,
				SkipOps:   openStoreBootOps + rng.Intn(600),
				FailProb:  0.05 + rng.Float64()*0.3,
				MaxFaults: 1 + rng.Intn(3),
			})
			s, err := Open(t.TempDir(), Options{CompactThreshold: 32 << 10, Inject: inj})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer s.Close()

			// Phase 1: run the scenario over the flaky disk. Results must
			// be a clean prefix of acks followed (if a degrading fault
			// fires) by nothing but ErrDegraded refusals.
			acked := 0
			for _, op := range ops {
				wasDegraded := s.Health().State == StateDegraded
				err := op.Apply(s)
				if err == nil {
					if wasDegraded {
						t.Fatalf("op %d (%s) acknowledged while store degraded", op.Seq, op.Name)
					}
					acked++
					continue
				}
				// The op that trips the fault must surface ErrDegraded and
				// flip the state machine. Later ops may instead fail inside
				// their own setup (a mark on a sequence whose registration
				// was refused) — any error is fine then, an ack is not.
				if !wasDegraded && !errors.Is(err, ErrDegraded) {
					t.Fatalf("op %d (%s) failed without ErrDegraded: %v", op.Seq, op.Name, err)
				}
				if h := s.Health(); h.State != StateDegraded || h.Reason == "" {
					t.Fatalf("op %d failed but health is %+v", op.Seq, h)
				}
			}
			t.Logf("seed %d: acked %d/%d, injected %v", seed, acked, len(ops), inj.Injected())

			// Phase 2: repair the disk and recover.
			inj.Disable()
			degraded := s.Health().State == StateDegraded
			if _, err := s.Reopen(); err != nil {
				t.Fatalf("reopen on repaired disk: %v", err)
			}
			if h := s.Health(); h.State != StateHealthy {
				t.Fatalf("health after reopen: %+v", h)
			}
			st := s.Stats()
			if degraded && st.Reopens != 1 {
				t.Fatalf("reopens = %d after recovery, want 1", st.Reopens)
			}

			// Phase 3: the recovered state is a scenario prefix at least as
			// long as the acked run (a faulted op may have reached the
			// platter before its ack was withheld — holding it is allowed,
			// losing an acked op is not).
			k := int(st.Seq)
			if k < acked {
				t.Fatalf("recovered %d ops but %d were acknowledged — lost acked writes", k, acked)
			}
			if k > len(ops) {
				t.Fatalf("recovered %d ops, scenario only has %d", k, len(ops))
			}
			want := core.NewStore()
			if err := workload.ApplyOps(workload.AsSink(want), ops[:k]); err != nil {
				t.Fatalf("building expected store: %v", err)
			}
			assertStoreParity(t, "after recovery", s.Core(), want)

			// Phase 4: resume the scenario where the disk state left off;
			// the run must end exactly where a fault-free run ends.
			for _, op := range ops[k:] {
				if err := op.Apply(s); err != nil {
					t.Fatalf("resumed op %d (%s): %v", op.Seq, op.Name, err)
				}
			}
			if err := workload.ApplyOps(workload.AsSink(want), ops[k:]); err != nil {
				t.Fatalf("building expected store: %v", err)
			}
			assertStoreParity(t, "after resume", s.Core(), want)

			gotQ, err := graphitti.QueryTP53Images(s.Core(), graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantQ, err := graphitti.QueryTP53Images(want, graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotQ.QualifyingImages, wantQ.QualifyingImages) {
				t.Fatalf("Q1 diverged after recovery: got %v want %v",
					gotQ.QualifyingImages, wantQ.QualifyingImages)
			}
		})
	}
}

// assertStoreParity compares a recovered store against the in-memory
// reference the same op stream built: counters and the full exported
// snapshot.
func assertStoreParity(t *testing.T, when string, got, want *core.Store) {
	t.Helper()
	if g, w := got.Stats(), want.Stats(); g != w {
		t.Fatalf("%s: stats diverged:\n got %+v\nwant %+v", when, g, w)
	}
	gotSnap, err := persist.Export(got)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := persist.Export(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatalf("%s: full store snapshots diverged", when)
	}
}

// TestDegradeOnFsyncError pins the fsyncgate rule end to end: one failed
// fdatasync withholds the ack, degrades the store, and guarantees the
// log file is never touched again until Reopen replaces the writer.
func TestDegradeOnFsyncError(t *testing.T) {
	sc := faultfs.NewScript()
	s, err := Open(t.TempDir(), Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, op := range ops[:20] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("setup op %d: %v", op.Seq, err)
		}
	}

	sc.FailAt(faultfs.OpSync, 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})
	err = ops[20].Apply(s)
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, faultfs.ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted op error chain: %v", err)
	}
	if h := s.Health(); h.State != StateDegraded || h.Reason == "" {
		t.Fatalf("health after fault: %+v", h)
	}

	// Degraded refusals never reach the disk: the op and sync counters
	// must not move (a write+fsync after a failed fsync could ack records
	// over a silently dropped tail).
	writes, syncs := sc.Count(faultfs.OpWrite), sc.Count(faultfs.OpSync)
	if err := ops[21].Apply(s); !errors.Is(err, ErrDegraded) {
		t.Fatalf("op against degraded store: %v", err)
	}
	if sc.Count(faultfs.OpWrite) != writes || sc.Count(faultfs.OpSync) != syncs {
		t.Fatal("degraded store touched the log file")
	}

	// Reads keep working while degraded.
	if s.Core().Stats().Annotations == 0 {
		t.Fatal("reads failed while degraded")
	}

	// The disk is fine again (the script rule fired once); recover.
	if _, err := s.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := s.Stats()
	if st.Health.State != StateHealthy || st.Reopens != 1 {
		t.Fatalf("after reopen: health=%+v reopens=%d", st.Health, st.Reopens)
	}
	// The frame of op 21 hit the file before its fsync failed; with no
	// real crash the bytes survived, so recovery may legally include it —
	// holding an unacked op is allowed, losing an acked one is not.
	k := int(st.Seq)
	if k < 20 {
		t.Fatalf("recovered %d ops, 20 were acked", k)
	}
	want := core.NewStore()
	if err := workload.ApplyOps(workload.AsSink(want), ops[:k]); err != nil {
		t.Fatal(err)
	}
	assertStoreParity(t, "after reopen", s.Core(), want)

	// And the recovered store accepts writes again.
	if err := ops[k].Apply(s); err != nil {
		t.Fatalf("op after recovery: %v", err)
	}
}

// TestTornWriteRecovered breaks an append a few bytes into the frame;
// recovery must truncate the torn tail and resume from the acked prefix.
func TestTornWriteRecovered(t *testing.T) {
	sc := faultfs.NewScript()
	s, err := Open(t.TempDir(), Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, op := range ops[:8] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("setup op %d: %v", op.Seq, err)
		}
	}

	const torn = 5 // a partial frame header: unambiguously torn
	sc.FailAt(faultfs.OpWrite, 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpWrite, syscall.EIO), Short: torn})
	if err := ops[8].Apply(s); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn-write op: %v", err)
	}

	if _, err := s.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := s.Stats()
	if st.TornBytes != torn {
		t.Fatalf("torn bytes = %d, want %d", st.TornBytes, torn)
	}
	if st.Seq != 8 {
		t.Fatalf("recovered seq = %d, want 8 (torn op must not replay)", st.Seq)
	}
	want := core.NewStore()
	if err := workload.ApplyOps(workload.AsSink(want), ops[:8]); err != nil {
		t.Fatal(err)
	}
	assertStoreParity(t, "after torn-write recovery", s.Core(), want)
	if err := ops[8].Apply(s); err != nil {
		t.Fatalf("replaying the torn op after recovery: %v", err)
	}
}

// TestReopenFailsWhileDiskBroken: Reopen on a still-broken disk must
// fail and leave the store degraded; a later Reopen on a repaired disk
// succeeds.
func TestReopenFailsWhileDiskBroken(t *testing.T) {
	sc := faultfs.NewScript()
	s, err := Open(t.TempDir(), Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, op := range ops[:5] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("setup op %d: %v", op.Seq, err)
		}
	}

	sc.FailAt(faultfs.OpSync, 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})
	if err := ops[5].Apply(s); !errors.Is(err, ErrDegraded) {
		t.Fatalf("faulted op: %v", err)
	}

	// The disk is still broken: the next fsync — Reopen's own validation
	// of the reloaded log — fails too.
	sc.FailAt(faultfs.OpSync, 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})
	if _, err := s.Reopen(); err == nil {
		t.Fatal("reopen succeeded on a broken disk")
	} else if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("reopen error: %v", err)
	}
	if h := s.Health(); h.State != StateDegraded {
		t.Fatalf("store not degraded after failed reopen: %+v", h)
	}
	if err := ops[6].Apply(s); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write after failed reopen: %v", err)
	}

	// Repaired (both rules spent): recovery proceeds.
	if _, err := s.Reopen(); err != nil {
		t.Fatalf("reopen on repaired disk: %v", err)
	}
	if h := s.Health(); h.State != StateHealthy {
		t.Fatalf("health after recovery: %+v", h)
	}
	for _, op := range ops[s.Stats().Seq:10] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d after recovery: %v", op.Seq, err)
		}
	}
}

// TestCompactionFaultKeepsPriorCheckpoint breaks each step of a
// compaction in turn; the store must stay healthy and writable (the op
// stream is already durable in the log), and a fresh Open of the
// directory must load the previous checkpoint plus the full log.
func TestCompactionFaultKeepsPriorCheckpoint(t *testing.T) {
	cases := []struct {
		name string
		arm  func(sc *faultfs.Script)
	}{
		{"snapshot-create", func(sc *faultfs.Script) {
			sc.FailPath(faultfs.OpCreate, ".snap", 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpCreate, syscall.ENOSPC)})
		}},
		{"snapshot-rename", func(sc *faultfs.Script) {
			sc.FailPath(faultfs.OpRename, ".snap", 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpRename, syscall.ENOSPC)})
		}},
		{"manifest-sync", func(sc *faultfs.Script) {
			sc.FailPath(faultfs.OpSync, "MANIFEST", 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})
		}},
	}
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sc := faultfs.NewScript()
			s, err := Open(dir, Options{CompactThreshold: -1, Inject: sc})
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[:30] {
				if err := op.Apply(s); err != nil {
					t.Fatalf("op %d: %v", op.Seq, err)
				}
			}
			if err := s.Compact(); err != nil {
				t.Fatalf("baseline compaction: %v", err)
			}
			for _, op := range ops[30:60] {
				if err := op.Apply(s); err != nil {
					t.Fatalf("op %d: %v", op.Seq, err)
				}
			}

			tc.arm(sc)
			if err := s.Compact(); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("compaction under fault: %v", err)
			}
			// A failed checkpoint is not a failed store: the log holds
			// every op, so the store stays healthy and keeps acking.
			if h := s.Health(); h.State != StateHealthy {
				t.Fatalf("compaction fault degraded the store: %+v", h)
			}
			for _, op := range ops[60:70] {
				if err := op.Apply(s); err != nil {
					t.Fatalf("op %d after failed compaction: %v", op.Seq, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			reopened, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after failed compaction: %v", err)
			}
			defer reopened.Close()
			st := reopened.Stats()
			if st.SnapshotSeq != 30 {
				t.Fatalf("surviving checkpoint at seq %d, want 30", st.SnapshotSeq)
			}
			if st.Seq != 70 {
				t.Fatalf("recovered seq %d, want 70", st.Seq)
			}
			want := core.NewStore()
			if err := workload.ApplyOps(workload.AsSink(want), ops[:70]); err != nil {
				t.Fatal(err)
			}
			assertStoreParity(t, "after failed compaction", reopened.Core(), want)
		})
	}
}

// TestStaleSnapshotRemoveFaultIsBestEffort pins the faultfs.OpRemove
// contract (the rawfileop lint rule made stale-snapshot cleanup
// injector-mediated): an injected unlink failure leaves the stale
// checkpoint on disk but must not fail the compaction or degrade the
// store — the file costs disk, not correctness — and a later healthy
// compaction sweeps it.
func TestStaleSnapshotRemoveFaultIsBestEffort(t *testing.T) {
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	dir := t.TempDir()
	sc := faultfs.NewScript()
	s, err := Open(dir, Options{CompactThreshold: -1, Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snaps := func() []string {
		m, err := filepath.Glob(filepath.Join(dir, snapPattern))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, op := range ops[:30] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d: %v", op.Seq, err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("baseline compaction: %v", err)
	}
	for _, op := range ops[30:60] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d: %v", op.Seq, err)
		}
	}

	sc.FailPath(faultfs.OpRemove, ".snap", 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpRemove, syscall.EIO)})
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction with failing stale-snapshot remove: %v", err)
	}
	if h := s.Health(); h.State != StateHealthy {
		t.Fatalf("best-effort remove fault degraded the store: %+v", h)
	}
	if got := len(snaps()); got != 2 {
		t.Fatalf("stale snapshot swept despite injected remove failure: %d snapshot files, want 2 (stale + current)", got)
	}

	// Repaired disk: the next compaction sweeps the stale checkpoint.
	sc.Clear()
	for _, op := range ops[60:90] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d: %v", op.Seq, err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction after repair: %v", err)
	}
	if got := snaps(); len(got) != 1 {
		t.Fatalf("stale snapshots not swept after repair: %v", got)
	}
}

// TestRotationFaultDegradesButRecovers: a fault in compaction step 3
// (log rotation) leaves no live log, so unlike snapshot/manifest faults
// it must degrade — and Reopen must still recover everything, because
// the manifest committed before the rotation started.
func TestRotationFaultDegradesButRecovers(t *testing.T) {
	sc := faultfs.NewScript()
	s, err := Open(t.TempDir(), Options{CompactThreshold: -1, Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, op := range ops[:40] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d: %v", op.Seq, err)
		}
	}

	// The rotation's create is the first OpCreate on the .wal path after
	// arming (snapshot/manifest writes use .snap/.json tmp files).
	sc.FailPath(faultfs.OpCreate, ".wal", 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpCreate, syscall.EIO)})
	if err := s.Compact(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("compaction under rotation fault: %v", err)
	}
	if h := s.Health(); h.State != StateDegraded {
		t.Fatalf("rotation fault must degrade (no live log): %+v", h)
	}
	if err := ops[40].Apply(s); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write after failed rotation: %v", err)
	}

	if _, err := s.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := s.Stats()
	if st.Seq != 40 || st.SnapshotSeq != 40 {
		t.Fatalf("recovered seq=%d snapshotSeq=%d, want 40/40 (manifest committed before rotation)", st.Seq, st.SnapshotSeq)
	}
	want := core.NewStore()
	if err := workload.ApplyOps(workload.AsSink(want), ops[:40]); err != nil {
		t.Fatal(err)
	}
	assertStoreParity(t, "after rotation-fault recovery", s.Core(), want)
	for _, op := range ops[40:50] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d after recovery: %v", op.Seq, err)
		}
	}
}
