package durable

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"graphitti"
	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/workload"
)

// The crash harness runs the deterministic recovery scenario in a child
// process against a real (fsyncing) durable store, SIGKILLs the child
// mid-stream, then replays the data directory in this process and checks
// the recovered store equals an in-memory store fed the same op prefix —
// Stats, full snapshot, and the paper's Q1 TP53 query.

const (
	crashChildEnv     = "GRAPHITTI_CRASH_CHILD"
	crashDirEnv       = "GRAPHITTI_CRASH_DIR"
	crashThresholdEnv = "GRAPHITTI_CRASH_THRESHOLD"
)

// TestDurableCrashChild is the child-process body, not a test in its own
// right: the parent re-executes the test binary with GRAPHITTI_CRASH_CHILD
// set and kills it partway through the op stream.
func TestDurableCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-harness child helper; run via TestCrashRecovery")
	}
	threshold, err := strconv.ParseInt(os.Getenv(crashThresholdEnv), 10, 64)
	if err != nil {
		t.Fatalf("bad threshold: %v", err)
	}
	s, err := Open(os.Getenv(crashDirEnv), Options{CompactThreshold: threshold})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	// Never closed: the parent kills us, or we exit with the log open —
	// either way the next Open must recover.
	for _, op := range workload.RecoveryScenario(workload.DefaultRecovery) {
		if err := op.Apply(s); err != nil {
			t.Fatalf("child op %d (%s): %v", op.Seq, op.Name, err)
		}
		fmt.Printf("acked %d\n", op.Seq)
	}
	fmt.Println("done")
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash gauntlet; CI's durability job runs it explicitly")
	}
	cases := []struct {
		name      string
		killAfter int
		threshold int64
		// wantCompacted requires the pre-crash store to have checkpointed
		// at least once (verified via the recovered manifest).
		wantCompacted bool
	}{
		{name: "early-no-compaction", killAfter: 40, threshold: 64 << 20, wantCompacted: false},
		{name: "after-compaction", killAfter: 330, threshold: 16 << 10, wantCompacted: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			acked := runAndKillChild(t, dir, tc.threshold, tc.killAfter)

			s, err := Open(dir, Options{CompactThreshold: tc.threshold})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer s.Close()
			st := s.Stats()
			t.Logf("child acked %d ops; recovered seq=%d snapshotSeq=%d replayed=%d torn=%d",
				acked, st.Seq, st.SnapshotSeq, st.ReplayedRecords, st.TornBytes)

			ops := workload.RecoveryScenario(workload.DefaultRecovery)
			k := int(st.Seq)
			// Durability contract: every acknowledged op survives; the log
			// may additionally hold ops that were in flight at the kill.
			if k < acked {
				t.Fatalf("recovered only %d ops but child acked %d — lost acknowledged writes", k, acked)
			}
			if k > len(ops) {
				t.Fatalf("recovered %d ops, scenario only has %d", k, len(ops))
			}
			if tc.wantCompacted && st.SnapshotSeq == 0 {
				t.Fatal("expected at least one pre-crash compaction (snapshotSeq is 0)")
			}

			want := core.NewStore()
			if err := workload.ApplyOps(workload.AsSink(want), ops[:k]); err != nil {
				t.Fatalf("building expected store: %v", err)
			}
			got := s.Core()

			if g, w := got.Stats(), want.Stats(); g != w {
				t.Fatalf("stats diverged after replay:\n got %+v\nwant %+v", g, w)
			}
			gotSnap, err := persist.Export(got)
			if err != nil {
				t.Fatal(err)
			}
			wantSnap, err := persist.Export(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSnap, wantSnap) {
				t.Fatal("full store snapshots diverged after replay")
			}

			// Paper query Q1 (TP53) must answer identically.
			gotQ, err := graphitti.QueryTP53Images(got, graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantQ, err := graphitti.QueryTP53Images(want, graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotQ.QualifyingImages, wantQ.QualifyingImages) {
				t.Fatalf("Q1 qualifying images diverged: got %v want %v",
					gotQ.QualifyingImages, wantQ.QualifyingImages)
			}
			if !reflect.DeepEqual(gotQ.RegionCounts, wantQ.RegionCounts) {
				t.Fatalf("Q1 region counts diverged: got %v want %v",
					gotQ.RegionCounts, wantQ.RegionCounts)
			}
			if !reflect.DeepEqual(annIDs(gotQ.Annotations), annIDs(wantQ.Annotations)) {
				t.Fatalf("Q1 answers diverged: got %v want %v",
					annIDs(gotQ.Annotations), annIDs(wantQ.Annotations))
			}

			// Propagation parity: the rules survived (as durable ops /
			// snapshot state) and the replayed derived-annotation table —
			// rebuilt from snapshot recompute plus per-op deltas — matches
			// the in-memory store's fact-for-fact.
			gotRules, wantRules := prop.RulesOf(got), prop.RulesOf(want)
			if !reflect.DeepEqual(gotRules, wantRules) {
				t.Fatalf("rules diverged after replay: got %v want %v", gotRules, wantRules)
			}
			if k > lastRuleSeq(ops) && len(gotRules) == 0 {
				t.Fatal("crash landed after the rule ops but none were recovered")
			}
			if !reflect.DeepEqual(got.DerivedAll(), want.DerivedAll()) {
				t.Fatalf("derived facts diverged after replay: %d vs %d facts",
					len(got.DerivedAll()), len(want.DerivedAll()))
			}
			// Derived-query parity: provenance lookups answer identically.
			for _, ann := range want.Annotations() {
				gp := got.DerivedTargeting(agraph.ContentRoot(ann.ID))
				wp := want.DerivedTargeting(agraph.ContentRoot(ann.ID))
				if !reflect.DeepEqual(gp, wp) {
					t.Fatalf("provenance of annotation %d diverged: got %v want %v", ann.ID, gp, wp)
				}
			}
		})
	}
}

// lastRuleSeq returns the scenario position of the last add-rule op (0
// when the scenario has none).
func lastRuleSeq(ops []workload.RecoveryOp) int {
	last := 0
	for _, op := range ops {
		if strings.HasPrefix(op.Name, "add-rule") {
			last = op.Seq
		}
	}
	return last
}

// runAndKillChild re-executes this test binary as the crash child, reads
// its ack stream, and SIGKILLs it once killAfter ops are acknowledged. By
// then the child has usually raced well past killAfter, so the kill lands
// mid-write. Returns the highest ack the parent observed.
func runAndKillChild(t *testing.T, dir string, threshold int64, killAfter int) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDurableCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashThresholdEnv+"="+strconv.FormatInt(threshold, 10),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked, done := 0, false
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if n, ok := strings.CutPrefix(line, "acked "); ok {
			if v, err := strconv.Atoi(n); err == nil && v > acked {
				acked = v
			}
			if acked >= killAfter && !done {
				done = true
				if err := cmd.Process.Kill(); err != nil {
					t.Fatalf("kill child: %v", err)
				}
			}
		}
	}
	_ = cmd.Wait() // killed: non-zero exit is expected
	if acked < killAfter {
		t.Fatalf("child exited after only %d acks, wanted to kill at %d", acked, killAfter)
	}
	return acked
}

func annIDs(anns []*core.Annotation) []uint64 {
	ids := make([]uint64, len(anns))
	for i, a := range anns {
		ids[i] = a.ID
	}
	return ids
}
