package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/core"
	"graphitti/internal/persist"
	"graphitti/internal/rtree"
	"graphitti/internal/workload"
)

// fastOpts avoids fsync in unit tests (crash safety is exercised by the
// torn-tail and kill tests, which use real sync).
var fastOpts = Options{NoSync: true, CompactThreshold: -1}

func seedStore(t *testing.T, s *Store, anns int) {
	t.Helper()
	if err := s.RegisterOntology(workload.BrainOntology()); err != nil {
		t.Fatal(err)
	}
	cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterCoordinateSystem(cs); err != nil {
		t.Fatal(err)
	}
	im, err := imaging.NewImage("img-0", "atlas", rtree.Rect2D(0, 0, 1000, 1000), imaging.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < anns; i++ {
		x := float64(i)
		m, err := s.MarkImageRegion("img-0", rtree.Rect2D(x, x, x+5, x+5))
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Commit(s.NewAnnotation().
			Creator("tester").Date("2026-07-29").
			Body(fmt.Sprintf("region annotation %d", i)).
			Refer(m).
			OntologyRef("nif", "deep-cerebellar-nuclei"))
		if err != nil {
			t.Fatal(err)
		}
	}
}

func mustEqualStores(t *testing.T, got, want *core.Store) {
	t.Helper()
	if g, w := got.Stats(), want.Stats(); g != w {
		t.Fatalf("stats differ:\n got %+v\nwant %+v", g, w)
	}
	gs, err := persist.Export(got)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := persist.Export(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("snapshots differ:\n got %+v\nwant %+v", gs, ws)
	}
}

func TestReopenReplaysLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 10)
	if err := s.DeleteAnnotation(3); err != nil {
		t.Fatal(err)
	}
	want := s.Core()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayedRecords == 0 || st.TornBytes != 0 {
		t.Fatalf("unexpected recovery stats %+v", st)
	}
	mustEqualStores(t, s2.Core(), want)

	// IDs must continue where the first incarnation stopped, despite the
	// deletion gap.
	m, err := s2.MarkImageRegion("img-0", rtree.Rect2D(900, 900, 905, 905))
	if err != nil {
		t.Fatal(err)
	}
	ann, err := s2.Commit(s2.NewAnnotation().Creator("x").Date("2026-07-29").Body("post-reopen").Refer(m))
	if err != nil {
		t.Fatal(err)
	}
	if ann.ID != 11 {
		t.Fatalf("post-reopen annotation got ID %d, want 11", ann.ID)
	}
}

func TestReopenAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoSync: true, CompactThreshold: 4 << 10}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 40) // enough to cross 4KB several times
	if s.Stats().Compactions == 0 {
		t.Fatalf("no compaction at threshold %d (log %d bytes)",
			opts.CompactThreshold, s.Stats().LogSize)
	}
	want := s.Core()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().SnapshotSeq == 0 {
		t.Fatal("manifest lost the checkpoint seq")
	}
	mustEqualStores(t, s2.Core(), want)
}

// TestStaleLogAfterCompactionCrash simulates a crash between the
// manifest commit and log rotation: the snapshot covers ops that are
// still in the old log. Replay must skip them instead of double-applying.
func TestStaleLogAfterCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 8)
	// Write snapshot+manifest as compaction would, then "crash" without
	// rotating the log.
	snap, err := persist.Export(s.Core())
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Stats().Seq
	if err := writeFileSync(nil, filepath.Join(dir, snapName(seq)), func(f *os.File) error {
		_, err := fmt.Fprint(f, mustJSON(snap))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := writeFileSync(nil, filepath.Join(dir, manifestFile), func(f *os.File) error {
		_, err := fmt.Fprint(f, mustJSON(manifest{SnapshotSeq: seq, Snapshot: snapName(seq)}))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	want := s.Core()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.SkippedRecords == 0 {
		t.Fatalf("expected skipped records for a stale log, got %+v", st)
	}
	if st.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records the snapshot already covers", st.ReplayedRecords)
	}
	mustEqualStores(t, s2.Core(), want)
}

// TestOrphanSnapshotBeforeManifestCrash simulates the other compaction
// crash window: the new checkpoint file was written but the manifest was
// never committed. The orphan must be ignored (and cleaned up) and the
// full log replayed against the previous checkpoint.
func TestOrphanSnapshotBeforeManifestCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 6)
	if err := s.Compact(); err != nil { // a real committed checkpoint at seq C
		t.Fatal(err)
	}
	committed := s.Stats().SnapshotSeq
	seedStore2 := func() { // a few more logged ops past the checkpoint
		m, err := s.MarkImageRegion("img-0", rtree.Rect2D(500, 500, 505, 505))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2026-07-29").Body("past checkpoint").Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	seedStore2()
	// "Crash" mid-compaction: orphan checkpoint file, manifest untouched.
	snap, err := persist.Export(s.Core())
	if err != nil {
		t.Fatal(err)
	}
	orphan := snapName(s.Stats().Seq)
	if err := writeFileSync(nil, filepath.Join(dir, orphan), func(f *os.File) error {
		_, err := fmt.Fprint(f, mustJSON(snap))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	want := s.Core()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.SnapshotSeq != committed {
		t.Fatalf("recovered snapshotSeq %d, want the committed checkpoint %d", st.SnapshotSeq, committed)
	}
	if st.ReplayedRecords == 0 {
		t.Fatal("expected the post-checkpoint ops to replay from the log")
	}
	mustEqualStores(t, s2.Core(), want)
	if _, err := os.Stat(filepath.Join(dir, orphan)); !os.IsNotExist(err) {
		t.Fatalf("orphan checkpoint %s not cleaned up (err=%v)", orphan, err)
	}
}

// TestTornTailTruncated cuts bytes off the log end and verifies open
// recovers the longest valid prefix and can append afterwards.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 6)
	preTornAnns := s.Core().Stats().Annotations
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFile)
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TornBytes == 0 {
		t.Fatalf("expected torn bytes, got %+v", st)
	}
	got := s2.Core().Stats().Annotations
	if got != preTornAnns-1 {
		t.Fatalf("recovered %d annotations, want %d (last record torn)", got, preTornAnns-1)
	}
	// The torn op is gone; the store must accept new writes at its seq.
	m, err := s2.MarkImageRegion("img-0", rtree.Rect2D(1, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Commit(s2.NewAnnotation().Creator("x").Date("2026-07-29").Body("after torn tail").Refer(m)); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreCheckpointsImmediately(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 5)

	// Build a different store to restore from.
	other := core.NewStore()
	if err := other.RegisterOntology(workload.EnzymeOntology()); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.Export(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, s.Core(), other)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the restored state (not the seeded one) must come back.
	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	mustEqualStores(t, s2.Core(), other)
}

func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactThreshold: -1}) // real fsync + group commit
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, s, 0)
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				x := float64(g*100 + i)
				m, err := s.MarkImageRegion("img-0", rtree.Rect2D(x, x, x+1, x+1))
				if err != nil {
					t.Errorf("mark: %v", err)
					return
				}
				_, err = s.Commit(s.NewAnnotation().
					Creator(fmt.Sprintf("w%d", g)).Date("2026-07-29").
					Body(fmt.Sprintf("concurrent %d/%d", g, i)).Refer(m))
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want := s.Core()
	if want.Stats().Annotations != writers*perWriter {
		t.Fatalf("committed %d annotations, want %d", want.Stats().Annotations, writers*perWriter)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	mustEqualStores(t, s2.Core(), want)
}

func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}
