// Package durable wraps core.Store with crash safety: every mutation is
// encoded as one write-ahead-log record and fdatasynced (group-committed
// across concurrent writers) before the call returns, so an acknowledged
// write survives a kill -9.
//
// # On-disk layout
//
// A data directory holds three files:
//
//	graphitti-<seq>.snap  persist snapshot — the checkpoint (absent
//	                      until the first compaction)
//	graphitti.wal         write-ahead log of mutations since the checkpoint
//	MANIFEST.json         {snapshotSeq, snapshot}: which checkpoint file is
//	                      current and the op sequence it covers — its atomic
//	                      rename is the compaction commit point
//
// Each WAL payload is a JSON op envelope carrying its global sequence
// number and one persist dump (the same per-entity codec Export/Load use).
// Open loads the snapshot, replays WAL records with Seq beyond the
// manifest's snapshotSeq, truncates a torn tail instead of failing, and
// resumes appending.
//
// # Compaction
//
// Once the log crosses Options.CompactThreshold bytes, the store writes a
// fresh snapshot + manifest (tmp file, fdatasync, atomic rename) and
// rotates to an empty log. A crash at any point between those steps is
// safe: replay skips records the manifest says the snapshot already
// covers, so a stale log over a new snapshot only costs skipped records.
//
// # Semantics
//
// Mutations apply to the in-memory store first (so invalid operations are
// rejected before they reach the log), then append under the same
// ordering lock, then wait for durability outside it — group commit. A
// WAL I/O error is sticky: the in-memory store may be ahead of the log,
// so every later mutation fails rather than widening the divergence.
//
// # Degradation and recovery
//
// A disk fault moves the store through an explicit state machine:
//
//	healthy ──(log I/O error, unloggable op,
//	           failed log rotation)──▶ degraded ──(Reopen)──▶ healthy
//	   │                                  │
//	   └────────────(Close)───────────────┴──(Close)──▶ closed
//
// Degraded is read-only: reads through Core() keep serving the state
// that existed at the fault, every mutation fails fast with ErrDegraded,
// and no acknowledgement is ever issued for a record whose fdatasync
// failed (the WAL writer poisons itself first — the fsyncgate rule).
// Health reports the state; Reopen recovers by discarding the
// in-memory state (which may be ahead of the log by applied-but-unacked
// ops), re-validating the data directory exactly as Open does, and
// probing the log with a durable append before accepting writes again.
// A compaction that fails before touching the live log (snapshot or
// manifest write) does not degrade: the previous checkpoint, manifest,
// and log remain the loadable truth and the store stays writable.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/faultfs"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
	"graphitti/internal/trace"
	"graphitti/internal/wal"
)

const (
	snapPattern  = "graphitti-*.snap"
	logFile      = "graphitti.wal"
	manifestFile = "MANIFEST.json"
)

// snapName returns the checkpoint file name for an op sequence.
func snapName(seq uint64) string { return fmt.Sprintf("graphitti-%016d.snap", seq) }

// HasStore reports whether dir already holds durable-store state — a
// WAL, manifest, or checkpoint file. Callers laying out a different
// store format over the same path (e.g. a sharded layout) use it to
// refuse rather than silently ignore the existing data.
func HasStore(dir string) bool {
	for _, name := range []string{logFile, manifestFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPattern))
	return len(snaps) > 0
}

// maxRecordSize mirrors the WAL's frame bound; checked before a sequence
// number is consumed so an oversize op cannot leave a seq gap.
const maxRecordSize = wal.MaxRecordSize

// DefaultCompactThreshold is the log size that triggers compaction when
// Options.CompactThreshold is zero.
const DefaultCompactThreshold = 8 << 20

// Options tune a durable store.
type Options struct {
	// CompactThreshold is the WAL size in bytes beyond which a mutation
	// triggers snapshot compaction; 0 means DefaultCompactThreshold, a
	// negative value disables compaction.
	CompactThreshold int64
	// NoSync skips fdatasync on the log — crash safety is lost; for
	// benchmarks contrasting group commit against raw logging only.
	NoSync bool
	// Inject, when non-nil, is consulted before every file operation the
	// store and its WAL perform, and can fail it — the fault-injection
	// hook the robustness harness drives. Nil injects nothing.
	Inject faultfs.Injector
	// Store configures the wrapped core store: the shard label for
	// metrics and the shared ID source of a sharded deployment. The zero
	// value is the unsharded store.
	Store core.StoreOptions
}

// State is the store's position in the degradation state machine.
type State uint8

const (
	// StateHealthy accepts reads and writes.
	StateHealthy State = iota
	// StateDegraded serves reads only; mutations fail with ErrDegraded
	// until Reopen succeeds.
	StateDegraded
	// StateClosed is terminal: Close was called.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalText makes the state render as its name in JSON payloads.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name — the MarshalText inverse, so Stats
// round-trips through JSON (clients of /api/stats decode it).
func (s *State) UnmarshalText(b []byte) error {
	switch string(b) {
	case "healthy":
		*s = StateHealthy
	case "degraded":
		*s = StateDegraded
	case "closed":
		*s = StateClosed
	default:
		return fmt.Errorf("durable: unknown state %q", b)
	}
	return nil
}

// Health reports the state machine's position and, when degraded, the
// fault that got it there.
type Health struct {
	State State `json:"state"`
	// Reason is the first fault observed (empty while healthy).
	Reason string `json:"reason,omitempty"`
}

// ErrDegraded is wrapped into every mutation refused because the store
// is degraded; reads keep working, and Reopen recovers.
var ErrDegraded = errors.New("durable: store degraded, writes refused")

// manifest is the tiny metadata file naming the current checkpoint; its
// atomic rename is the single commit point of a compaction, so a crash
// anywhere around it leaves either the old (snapshot, seq) pair or the
// new one — never a new snapshot with a stale seq.
type manifest struct {
	// SnapshotSeq is the last op sequence the snapshot includes; WAL
	// records at or below it are skipped on replay.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// Snapshot is the checkpoint file name (empty until the first
	// checkpoint).
	Snapshot string `json:"snapshot,omitempty"`
}

// record is the WAL payload: one mutation, tagged with its sequence
// number. Exactly one dump field is set, matched by Kind.
type record struct {
	Seq  uint64      `json:"seq"`
	Kind core.OpKind `json:"kind"`

	Ontology   *persist.OntologyDump   `json:"ontology,omitempty"`
	System     *persist.SystemDump     `json:"system,omitempty"`
	Sequence   *persist.SequenceDump   `json:"sequence,omitempty"`
	Alignment  *persist.AlignmentDump  `json:"alignment,omitempty"`
	Tree       *persist.TreeDump       `json:"tree,omitempty"`
	Graph      *persist.GraphDump      `json:"graph,omitempty"`
	Image      *persist.ImageDump      `json:"image,omitempty"`
	Table      *persist.TableDump      `json:"table,omitempty"` // schema only
	RecTable   string                  `json:"recTable,omitempty"`
	Row        []persist.ValueDump     `json:"row,omitempty"`
	Annotation *persist.AnnotationDump `json:"annotation,omitempty"`
	DeleteID   uint64                  `json:"deleteId,omitempty"`
	Rule       *persist.RuleDump       `json:"rule,omitempty"`
	RuleID     string                  `json:"ruleId,omitempty"`
}

// Stats describes the durability machinery (the wrapped store's own
// Stats() remain available via Core()).
type Stats struct {
	// Seq is the sequence number of the latest applied mutation.
	Seq uint64
	// SnapshotSeq is the op sequence covered by the on-disk checkpoint.
	SnapshotSeq uint64
	// Compactions counts snapshot+rotate cycles since open.
	Compactions uint64
	// ReplayedRecords is how many WAL records open applied.
	ReplayedRecords int
	// SkippedRecords is how many WAL records open skipped because the
	// checkpoint already covered them.
	SkippedRecords int
	// TornBytes is the torn tail truncated at open (0 = clean shutdown).
	TornBytes int64
	// LogSize and CompactThreshold describe the live log.
	LogSize          int64
	CompactThreshold int64
	// CompactFailures counts automatic compactions that failed after a
	// durably committed mutation (the mutation itself succeeded);
	// LastCompactError is the most recent such failure.
	CompactFailures  uint64
	LastCompactError string `json:",omitempty"`
	// Health is the degradation state machine's position.
	Health Health
	// Reopens counts successful recoveries from the degraded state.
	Reopens uint64
	// WAL is the group-commit writer's counters.
	WAL wal.Stats
}

// Store is a crash-safe core.Store. Reads go straight to Core(); every
// mutating method logs before acknowledging. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	// mu orders mutations: apply and log-enqueue happen under it, the
	// durability wait does not (group commit).
	mu     sync.Mutex
	w      *wal.Writer
	closed bool

	// core is swapped wholesale by Restore while readers keep calling
	// Core(), hence the atomic pointer. Mutations still serialize on mu.
	core atomic.Pointer[core.Store]

	// degradeErr latches the degraded state: set on the first fault that
	// leaves memory possibly ahead of the log (a flush error, an
	// unloggable op, a failed rotation). All further mutations are
	// refused with ErrDegraded until Reopen clears it.
	degradeErr error

	seq             uint64
	snapshotSeq     uint64
	compactions     uint64
	compactFailures uint64
	lastCompactErr  string
	reopens         uint64
	replayed        int
	skipped         int
	tornBytes       int64

	// m binds the shard-labelled durability metric children ("0" when
	// unsharded); set at construction from opts.Store.Shard.
	m *durableMetrics
}

// Open loads (or initialises) a durable store in dir, replaying any WAL
// the previous run left behind. The directory is created if missing.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, m: metricsForShard(opts.Store.Shard)}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.m.setHealthGauge(StateHealthy)
	s.m.seq.Set(int64(s.seq))
	return s, nil
}

// load validates and reads the data directory into s (a fresh Store):
// manifest, snapshot, WAL replay, then an appending writer over the
// valid log prefix. Open calls it once; Reopen calls it on a scratch
// Store to re-validate the directory after a fault before swapping the
// result in.
func (s *Store) load() error {
	var man manifest
	if data, err := os.ReadFile(filepath.Join(s.dir, manifestFile)); err == nil {
		if err := json.Unmarshal(data, &man); err != nil {
			return fmt.Errorf("durable: corrupt manifest: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	s.snapshotSeq = man.SnapshotSeq
	s.seq = man.SnapshotSeq

	switch {
	case man.Snapshot != "":
		f, err := os.Open(filepath.Join(s.dir, man.Snapshot))
		if err != nil {
			// The manifest committed to a checkpoint; its absence is data
			// loss, not a fresh directory.
			return fmt.Errorf("durable: manifest names snapshot %s: %w", man.Snapshot, err)
		}
		cs, lerr := persist.ReadWith(f, s.opts.Store)
		f.Close()
		if lerr != nil {
			return fmt.Errorf("durable: load snapshot: %w", lerr)
		}
		s.core.Store(cs)
	case man.SnapshotSeq != 0:
		return fmt.Errorf("durable: manifest claims checkpoint at seq %d but names no snapshot", man.SnapshotSeq)
	default:
		s.core.Store(core.NewStoreWithOptions(s.opts.Store))
	}
	s.removeStaleSnapshots(man.Snapshot)

	logPath := filepath.Join(s.dir, logFile)
	info, err := wal.Scan(logPath, s.replayRecord)
	switch {
	case err == nil:
		s.tornBytes = info.TornBytes
		s.w, err = wal.OpenAt(logPath, info.ValidSize, s.walOptions())
		if err != nil {
			return err
		}
	case errors.Is(err, os.ErrNotExist) || errors.Is(err, wal.ErrBadHeader):
		// No log, or a log whose very header was torn: start a fresh one.
		// Header-torn logs can hold no durable (acknowledged) records.
		s.w, err = wal.Create(logPath, s.walOptions())
		if err != nil {
			return err
		}
	default:
		return err
	}
	return nil
}

// walOptions derives the WAL writer options from the store's own.
func (s *Store) walOptions() wal.Options {
	return wal.Options{NoSync: s.opts.NoSync, Inject: s.opts.Inject, Shard: s.opts.Store.Shard}
}

// replayRecord applies one scanned WAL payload during Open.
func (s *Store) replayRecord(payload []byte) error {
	if len(payload) == 0 {
		return nil // Sync marker
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("durable: undecodable WAL record after seq %d: %w", s.seq, err)
	}
	if rec.Seq <= s.snapshotSeq {
		s.skipped++ // checkpoint already covers it (stale log after compaction crash)
		return nil
	}
	if rec.Seq != s.seq+1 {
		return fmt.Errorf("durable: WAL record seq %d after %d (log out of order)", rec.Seq, s.seq)
	}
	if err := apply(s.Core(), &rec); err != nil {
		return fmt.Errorf("durable: replay op %d (%s): %w", rec.Seq, rec.Kind, err)
	}
	s.seq = rec.Seq
	s.replayed++
	return nil
}

// removeStaleSnapshots best-effort deletes checkpoint files a crashed
// compaction left uncommitted (and the legacy file once a named one
// exists). Failures are ignored: stale files cost disk, not correctness.
func (s *Store) removeStaleSnapshots(current string) {
	if current == "" {
		return
	}
	matches, _ := filepath.Glob(filepath.Join(s.dir, snapPattern))
	for _, m := range matches {
		if filepath.Base(m) == current {
			continue
		}
		// rawfileop contract: even best-effort deletes consult the
		// injector, so the harness sees (and can fail) every file op the
		// durability path performs. An injected failure leaves the stale
		// file behind, exactly like a real unlink error would.
		if faultfs.Check(s.opts.Inject, faultfs.OpRemove, m) != nil {
			continue
		}
		_ = os.Remove(m)
	}
}

// apply replays one op envelope against a store. Envelopes come off
// disk, so a corrupt or hand-edited record must produce an error, never
// a panic: every dump pointer is checked before it is dereferenced.
func apply(cs *core.Store, rec *record) error {
	missing := func(field string) error {
		return fmt.Errorf("op %s missing %s dump", rec.Kind, field)
	}
	switch rec.Kind {
	case core.OpRegisterOntology:
		if rec.Ontology == nil {
			return missing("ontology")
		}
		return persist.ApplyOntology(cs, *rec.Ontology)
	case core.OpRegisterSystem:
		if rec.System == nil {
			return missing("system")
		}
		return persist.ApplySystem(cs, *rec.System)
	case core.OpRegisterSequence:
		if rec.Sequence == nil {
			return missing("sequence")
		}
		return persist.ApplySequence(cs, *rec.Sequence)
	case core.OpRegisterAlignment:
		if rec.Alignment == nil {
			return missing("alignment")
		}
		return persist.ApplyAlignment(cs, *rec.Alignment)
	case core.OpRegisterTree:
		if rec.Tree == nil {
			return missing("tree")
		}
		return persist.ApplyTree(cs, *rec.Tree)
	case core.OpRegisterInteractionGraph:
		if rec.Graph == nil {
			return missing("graph")
		}
		return persist.ApplyGraph(cs, *rec.Graph)
	case core.OpRegisterImage:
		if rec.Image == nil {
			return missing("image")
		}
		return persist.ApplyImage(cs, *rec.Image)
	case core.OpCreateRecordTable:
		if rec.Table == nil {
			return missing("table")
		}
		return persist.ApplyTable(cs, *rec.Table)
	case core.OpInsertRecord:
		return persist.ApplyRecord(cs, rec.RecTable, rec.Row)
	case core.OpCommitAnnotation:
		if rec.Annotation == nil {
			return missing("annotation")
		}
		return persist.ApplyAnnotation(cs, *rec.Annotation)
	case core.OpDeleteAnnotation:
		return cs.DeleteAnnotation(rec.DeleteID)
	case core.OpAddRule:
		if rec.Rule == nil {
			return missing("rule")
		}
		return persist.ApplyRule(cs, *rec.Rule)
	case core.OpDeleteRule:
		return prop.Attach(cs).DeleteRule(rec.RuleID)
	default:
		return fmt.Errorf("unknown op kind %d", rec.Kind)
	}
}

// Core returns the wrapped store for reads and queries. Mutating it
// directly bypasses the log; use the Store's own mutation methods.
func (s *Store) Core() *core.Store { return s.core.Load() }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// logApply runs one mutation: applyFn mutates the core store and fills
// rec's dump field; on success the envelope is sequenced and enqueued
// while still holding the ordering lock, then the caller waits for the
// group-committed fdatasync outside it.
func (s *Store) logApply(rec *record, applyFn func(cs *core.Store) error) error {
	return s.logApplySpan(rec, nil, applyFn)
}

// logApplySpan is logApply with trace attribution: a non-nil sp rides
// the WAL append, so the flusher attaches the shared "wal.flush" span
// (batch ID included) to it before the ack fires.
func (s *Store) logApplySpan(rec *record, sp *trace.Span, applyFn func(cs *core.Store) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return wal.ErrClosed
	}
	// Refuse BEFORE mutating when the store is degraded (a sticky flush
	// error, a failed rotation that left the log closed, or an earlier
	// unloggable op): applying first would leave reader-visible state
	// that vanishes on restart.
	if s.degradeErr != nil {
		err := fmt.Errorf("%w: %v", ErrDegraded, s.degradeErr)
		s.mu.Unlock()
		return err
	}
	if err := s.w.Err(); err != nil {
		// The WAL writer poisoned itself asynchronously (another op's
		// flush failed); latch the degradation here.
		s.degradeLocked(fmt.Errorf("durable: log unavailable: %w", err))
		err = fmt.Errorf("%w: %v", ErrDegraded, s.degradeErr)
		s.mu.Unlock()
		return err
	}
	if err := applyFn(s.Core()); err != nil {
		s.mu.Unlock()
		return err
	}
	// Encode and size-check BEFORE consuming a sequence number: an op that
	// cannot be logged (marshal failure, oversize record) must not leave a
	// gap in the on-disk seq stream — a gap makes replay refuse the whole
	// log. The apply above already happened, though, so memory is now
	// ahead of disk; degrade the store like any other log failure rather
	// than serving state that would silently vanish on restart.
	rec.Seq = s.seq + 1
	payload, err := json.Marshal(rec)
	if err == nil && int64(len(payload)) > maxRecordSize {
		err = fmt.Errorf("op of %d bytes exceeds max record size %d", len(payload), maxRecordSize)
	}
	if err != nil {
		s.degradeLocked(fmt.Errorf("durable: unloggable op %d: %w", rec.Seq, err))
		err = fmt.Errorf("%w: %v", ErrDegraded, s.degradeErr)
		s.mu.Unlock()
		return err
	}
	s.seq++
	ack := s.w.AppendAsyncTraced(payload, sp)
	size := s.w.Size()
	s.mu.Unlock()

	waitStart := time.Now()
	if err := <-ack; err != nil {
		// The record may or may not have reached the platter — the ack is
		// withheld either way (fsyncgate: a failed fdatasync never acks).
		// Memory is possibly ahead of the log now; degrade so no later
		// write widens the divergence. ErrDegraded is wrapped so HTTP maps
		// the failing op itself to 503 + Retry-After like the refusals
		// that follow it.
		s.mu.Lock()
		s.degradeLocked(fmt.Errorf("durable: log op %d: %w", rec.Seq, err))
		s.mu.Unlock()
		return fmt.Errorf("%w: log op %d: %w", ErrDegraded, rec.Seq, err)
	}
	s.m.commitWait.Observe(time.Since(waitStart).Seconds())
	s.m.op(rec.Kind.String()).Inc()
	s.m.seq.Set(int64(rec.Seq))
	// The mutation is durable from here on: a compaction failure is
	// recorded in Stats (and wedges the log for later mutations if the
	// writer died), but must not report this op as failed — callers would
	// retry an already-committed write.
	if s.opts.CompactThreshold > 0 && size >= s.opts.CompactThreshold {
		if err := s.compactIfNeeded(); err != nil {
			s.mu.Lock()
			s.compactFailures++
			s.lastCompactErr = err.Error()
			s.mu.Unlock()
			s.m.compactFailures.Inc()
		}
	}
	return nil
}

// degradeLocked latches the degraded state; the first fault wins.
// Callers hold s.mu.
func (s *Store) degradeLocked(cause error) {
	if s.degradeErr == nil && !s.closed {
		s.degradeErr = cause
		s.m.setHealthGauge(StateDegraded)
	}
}

// Health reports the degradation state machine's position.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthLocked()
}

func (s *Store) healthLocked() Health {
	switch {
	case s.closed:
		return Health{State: StateClosed}
	case s.degradeErr != nil:
		return Health{State: StateDegraded, Reason: s.degradeErr.Error()}
	}
	return Health{State: StateHealthy}
}

// Reopen recovers a degraded store. The in-memory state is discarded —
// it may be ahead of the log by mutations that were applied but never
// acknowledged, and those must not survive — and the data directory is
// re-validated exactly as Open does: manifest, snapshot, WAL replay,
// torn-tail truncation. A durable probe append must then succeed before
// the store accepts writes again; any failure leaves it degraded.
// Returns the reloaded core store — callers holding the previous Core()
// pointer should re-fetch (reads against the old pointer stay safe,
// they just see the pre-recovery view). On a healthy store Reopen is a
// no-op returning the current core.
func (s *Store) Reopen() (*core.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, wal.ErrClosed
	}
	if s.degradeErr == nil {
		return s.Core(), nil
	}
	// Quiesce the old writer first: Close drains its flush loop, so no
	// concurrent flush can interleave with the reload below. Its error is
	// expected — the writer is usually poisoned.
	if s.w != nil {
		_ = s.w.Close()
	}
	fresh := &Store{dir: s.dir, opts: s.opts, m: s.m}
	if err := fresh.load(); err != nil {
		return nil, fmt.Errorf("durable: reopen: %w", err)
	}
	// Probe the log end-to-end (append + fdatasync) before declaring
	// health: a disk that loads but cannot persist stays degraded.
	if err := fresh.w.Sync(); err != nil {
		_ = fresh.w.Close()
		return nil, fmt.Errorf("durable: reopen: log probe: %w", err)
	}
	s.w = fresh.w
	s.core.Store(fresh.Core())
	s.seq = fresh.seq
	s.snapshotSeq = fresh.snapshotSeq
	s.replayed = fresh.replayed
	s.skipped = fresh.skipped
	s.tornBytes = fresh.tornBytes
	s.degradeErr = nil
	s.reopens++
	s.m.setHealthGauge(StateHealthy)
	s.m.reopens.Inc()
	s.m.seq.Set(int64(s.seq))
	return fresh.Core(), nil
}

// compactIfNeeded re-checks the log size under the lock before
// compacting: when many concurrent writers cross the threshold together,
// the first one's compaction empties the log and the rest skip, instead
// of N back-to-back whole-store exports.
func (s *Store) compactIfNeeded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wal.ErrClosed
	}
	if s.w.Size() < s.opts.CompactThreshold {
		return nil
	}
	return s.compactLocked()
}

// RegisterOntology logs and registers a term graph.
func (s *Store) RegisterOntology(o *ontology.Ontology) error {
	d := persist.DumpOntology(o)
	return s.logApply(&record{Kind: core.OpRegisterOntology, Ontology: &d},
		func(cs *core.Store) error { return cs.RegisterOntology(o) })
}

// RegisterCoordinateSystem logs and registers a coordinate system.
func (s *Store) RegisterCoordinateSystem(cs *imaging.CoordinateSystem) error {
	d := persist.DumpSystem(cs)
	return s.logApply(&record{Kind: core.OpRegisterSystem, System: &d},
		func(c *core.Store) error { return c.RegisterCoordinateSystem(cs) })
}

// RegisterSequence logs and registers a sequence. The dump is taken after
// registration: an empty Domain is resolved to the sequence ID there, and
// the log must carry the resolved value.
func (s *Store) RegisterSequence(sq *seq.Sequence) error {
	rec := record{Kind: core.OpRegisterSequence}
	return s.logApply(&rec, func(c *core.Store) error {
		if err := c.RegisterSequence(sq); err != nil {
			return err
		}
		d := persist.DumpSequence(sq)
		rec.Sequence = &d
		return nil
	})
}

// RegisterAlignment logs and registers an alignment.
func (s *Store) RegisterAlignment(a *msa.Alignment) error {
	d := persist.DumpAlignment(a)
	return s.logApply(&record{Kind: core.OpRegisterAlignment, Alignment: &d},
		func(c *core.Store) error { return c.RegisterAlignment(a) })
}

// RegisterTree logs and registers a phylogenetic tree.
func (s *Store) RegisterTree(t *phylo.Tree) error {
	d := persist.DumpTree(t)
	return s.logApply(&record{Kind: core.OpRegisterTree, Tree: &d},
		func(c *core.Store) error { return c.RegisterTree(t) })
}

// RegisterInteractionGraph logs and registers an interaction graph.
func (s *Store) RegisterInteractionGraph(g *interact.Graph) error {
	d := persist.DumpGraph(g)
	return s.logApply(&record{Kind: core.OpRegisterInteractionGraph, Graph: &d},
		func(c *core.Store) error { return c.RegisterInteractionGraph(g) })
}

// RegisterImage logs and registers an image.
func (s *Store) RegisterImage(im *imaging.Image) error {
	d := persist.DumpImage(im)
	return s.logApply(&record{Kind: core.OpRegisterImage, Image: &d},
		func(c *core.Store) error { return c.RegisterImage(im) })
}

// CreateRecordTable logs and creates a user record table.
func (s *Store) CreateRecordTable(schema *relstore.Schema) (*relstore.Table, error) {
	var tbl *relstore.Table
	d := persist.DumpSchema(schema)
	err := s.logApply(&record{Kind: core.OpCreateRecordTable, Table: &d},
		func(c *core.Store) error {
			var err error
			tbl, err = c.CreateRecordTable(schema)
			return err
		})
	return tbl, err
}

// InsertRecord logs and inserts a row into a user record table.
func (s *Store) InsertRecord(table string, row relstore.Row) error {
	return s.logApply(&record{Kind: core.OpInsertRecord, RecTable: table, Row: persist.DumpRow(row)},
		func(c *core.Store) error { return c.InsertRecord(table, row) })
}

// NewAnnotation starts an annotation builder on the wrapped store; pass
// it to Commit.
func (s *Store) NewAnnotation() *core.Builder { return s.Core().NewAnnotation() }

// Mark constructors delegate to the wrapped store (marks are read-only
// until committed).

// MarkSequenceInterval marks a sequence span.
func (s *Store) MarkSequenceInterval(seqID string, local interval.Interval) (*core.Referent, error) {
	return s.Core().MarkSequenceInterval(seqID, local)
}

// MarkDomainInterval marks a span of a coordinate domain.
func (s *Store) MarkDomainInterval(domain string, iv interval.Interval) (*core.Referent, error) {
	return s.Core().MarkDomainInterval(domain, iv)
}

// MarkImageRegion marks a rectangular image region.
func (s *Store) MarkImageRegion(imageID string, local rtree.Rect) (*core.Referent, error) {
	return s.Core().MarkImageRegion(imageID, local)
}

// Commit logs and commits an annotation. The committed annotation — with
// the IDs the in-memory store assigned — is what gets logged, so replay
// reassigns exactly the same IDs.
func (s *Store) Commit(b *core.Builder) (*core.Annotation, error) {
	var ann *core.Annotation
	rec := record{Kind: core.OpCommitAnnotation}
	err := s.logApplySpan(&rec, b.Span(), func(c *core.Store) error {
		var err error
		ann, err = c.Commit(b)
		if err != nil {
			return err
		}
		d, err := persist.DumpAnnotation(c, ann)
		if err != nil {
			return err
		}
		rec.Annotation = &d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ann, nil
}

// DeleteAnnotation logs and deletes an annotation.
func (s *Store) DeleteAnnotation(id uint64) error {
	return s.logApply(&record{Kind: core.OpDeleteAnnotation, DeleteID: id},
		func(c *core.Store) error { return c.DeleteAnnotation(id) })
}

// AddRule logs and registers a propagation rule. The rule is a durable
// op; the derived facts it materializes are not logged — recovery
// re-derives them by replaying the rule among the other mutations.
func (s *Store) AddRule(r prop.Rule) error {
	d := persist.DumpRule(r)
	return s.logApply(&record{Kind: core.OpAddRule, Rule: &d},
		func(c *core.Store) error { return prop.Attach(c).AddRule(r) })
}

// DeleteRule logs and removes a propagation rule (and its derived facts).
func (s *Store) DeleteRule(id string) error {
	return s.logApply(&record{Kind: core.OpDeleteRule, RuleID: id},
		func(c *core.Store) error { return prop.Attach(c).DeleteRule(id) })
}

// Compact checkpoints the current state as a snapshot and rotates to an
// empty log. Called automatically when the log crosses the threshold;
// callers may also force it (e.g. before backup).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wal.ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	return s.checkpointLocked(s.Core(), s.seq)
}

// checkpointLocked durably checkpoints cs as the state at op sequence
// seq: snapshot file, manifest commit, log rotation. It does not touch
// s.core or s.seq — callers swap those only after it succeeds.
//
// Failure semantics: a fault in steps 1–2 (snapshot or manifest write)
// leaves the previous snapshot+manifest+log pair intact and loadable —
// the store stays healthy and writable, the failure is only counted. A
// fault in step 3 (rotation) happens after the new checkpoint committed,
// so no data is at risk, but it leaves the store without a live log:
// that degrades it.
func (s *Store) checkpointLocked(cs *core.Store, seq uint64) error {
	if s.degradeErr != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, s.degradeErr)
	}
	// 1. Checkpoint the given state (for compaction, it covers every
	//    applied op — all enqueued log records — because applies happen
	//    under mu) into a seq-named file. Until the manifest names it, it
	//    is invisible.
	snap, err := persist.Export(cs)
	if err != nil {
		return fmt.Errorf("durable: compact export: %w", err)
	}
	name := snapName(seq)
	if err := writeFileSync(s.opts.Inject, filepath.Join(s.dir, name), func(f *os.File) error {
		return json.NewEncoder(f).Encode(snap)
	}); err != nil {
		return fmt.Errorf("durable: compact snapshot: %w", err)
	}
	// 2. Commit: the manifest rename atomically switches (snapshot, seq)
	//    as one pair. A crash before this keeps the old checkpoint and a
	//    harmless orphan file; a crash after it makes replay skip every
	//    record the new snapshot covers.
	if err := writeFileSync(s.opts.Inject, filepath.Join(s.dir, manifestFile), func(f *os.File) error {
		return json.NewEncoder(f).Encode(manifest{SnapshotSeq: seq, Snapshot: name})
	}); err != nil {
		return fmt.Errorf("durable: compact manifest: %w", err)
	}
	s.snapshotSeq = seq
	// 3. Rotate: close the old log (flushing any still-pending appends —
	//    all of which the snapshot covers) and start an empty one. A crash
	//    before Create leaves the old log in place; replay then skips all
	//    of it via the manifest.
	if err := s.w.Close(); err != nil {
		err = fmt.Errorf("durable: compact close log: %w", err)
		s.degradeLocked(err)
		return err
	}
	w, err := wal.Create(filepath.Join(s.dir, logFile), s.walOptions())
	if err != nil {
		err = fmt.Errorf("durable: compact rotate log: %w", err)
		s.degradeLocked(err)
		return err
	}
	s.w = w
	s.compactions++
	s.m.compactions.Inc()
	s.removeStaleSnapshots(name)
	return nil
}

// Restore replaces the store's entire state with snap and checkpoints it
// immediately (fresh snapshot + empty log). The previous state is gone.
func (s *Store) Restore(snap *persist.Snapshot) (*core.Store, error) {
	cs, err := persist.LoadWith(snap, s.opts.Store)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, wal.ErrClosed
	}
	// Checkpoint the restored state BEFORE swapping it in: if the
	// checkpoint fails, memory still matches disk and the store keeps
	// serving its previous state. The +1 makes the restore itself an op,
	// so stale log records can never replay over the restored state.
	if err := s.checkpointLocked(cs, s.seq+1); err != nil {
		return nil, err
	}
	s.core.Store(cs)
	s.seq++
	return cs, nil
}

// Stats returns durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Seq:              s.seq,
		SnapshotSeq:      s.snapshotSeq,
		Compactions:      s.compactions,
		ReplayedRecords:  s.replayed,
		SkippedRecords:   s.skipped,
		TornBytes:        s.tornBytes,
		CompactThreshold: s.opts.CompactThreshold,
		CompactFailures:  s.compactFailures,
		LastCompactError: s.lastCompactErr,
		Health:           s.healthLocked(),
		Reopens:          s.reopens,
	}
	if !s.closed {
		st.WAL = s.w.Stats()
		st.LogSize = s.w.Size()
	}
	return st
}

// Sync blocks until every acknowledged mutation is on disk (a no-op given
// mutations already wait, but useful as a barrier around direct WAL use).
// It retries when a concurrent compaction rotates the writer out from
// under it — everything the old writer held was flushed by its Close.
func (s *Store) Sync() error {
	var last *wal.Writer
	for {
		s.mu.Lock()
		w := s.w
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return wal.ErrClosed
		}
		if w == last {
			// Not a rotation: this writer itself is dead (e.g. a failed
			// rotation closed it without replacement).
			return wal.ErrClosed
		}
		err := w.Sync()
		if !errors.Is(err, wal.ErrClosed) {
			return err
		}
		last = w
	}
}

// Close flushes and closes the log. The store rejects mutations
// afterwards; reads through Core() keep working.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.m.setHealthGauge(StateClosed)
	return s.w.Close()
}

// writeFileSync writes path atomically: tmp file, fill, fdatasync, rename
// over path, fsync the directory so the rename itself is durable. Each
// step consults the optional fault injector the way the WAL writer does.
func writeFileSync(inj faultfs.Injector, path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	if err := faultfs.Check(inj, faultfs.OpCreate, tmp); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	err = faultfs.Check(inj, faultfs.OpSync, tmp)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	err = faultfs.Check(inj, faultfs.OpRename, path)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultfs.Check(inj, faultfs.OpDirSync, filepath.Dir(path)); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
