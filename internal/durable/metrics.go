package durable

import "graphitti/internal/obs"

// Process-wide durability metrics (see internal/obs for the scope
// model). The health-state and seq gauges are last-writer-wins, which
// matches the one-durable-store-per-process server deployment. All are
// documented in docs/METRICS.md, which a test keeps in sync.
var (
	mOps = obs.NewCounterVec("graphitti_durable_ops_total",
		"Durably acknowledged mutations by op kind.", "kind")
	mCommitWait = obs.NewHistogram("graphitti_durable_commit_wait_seconds",
		"Time a mutation waited for its group-committed fdatasync acknowledgement.", nil)
	mHealthState = obs.NewGauge("graphitti_durable_health_state",
		"Degradation state machine position: 0 healthy, 1 degraded, 2 closed.")
	mReopens = obs.NewCounter("graphitti_durable_reopens_total",
		"Successful recoveries from the degraded state.")
	mCompactions = obs.NewCounter("graphitti_durable_compactions_total",
		"Snapshot+rotate checkpoint cycles.")
	mCompactFailures = obs.NewCounter("graphitti_durable_compaction_failures_total",
		"Automatic compactions that failed after a durably committed mutation.")
	mSeq = obs.NewGauge("graphitti_durable_seq",
		"Sequence number of the latest applied mutation.")
)

// setHealthGauge mirrors a state transition into the health gauge.
func setHealthGauge(st State) { mHealthState.Set(int64(st)) }
