package durable

import "graphitti/internal/obs"

// Durability metric families, labelled by shard (see internal/obs for
// the scope model). The health-state and seq gauges are last-writer-wins
// per shard, which matches the one-durable-store-per-shard server
// deployment; an unsharded store reports as shard "0". All are
// documented in docs/METRICS.md, which a test keeps in sync.
var (
	mOpsVec = obs.NewCounterVec("graphitti_durable_ops_total",
		"Durably acknowledged mutations by op kind.", "kind", "shard")
	mCommitWaitVec = obs.NewHistogramVec("graphitti_durable_commit_wait_seconds",
		"Time a mutation waited for its group-committed fdatasync acknowledgement.", nil, "shard")
	mHealthStateVec = obs.NewGaugeVec("graphitti_durable_health_state",
		"Degradation state machine position: 0 healthy, 1 degraded, 2 closed.", "shard")
	mReopensVec = obs.NewCounterVec("graphitti_durable_reopens_total",
		"Successful recoveries from the degraded state.", "shard")
	mCompactionsVec = obs.NewCounterVec("graphitti_durable_compactions_total",
		"Snapshot+rotate checkpoint cycles.", "shard")
	mCompactFailuresVec = obs.NewCounterVec("graphitti_durable_compaction_failures_total",
		"Automatic compactions that failed after a durably committed mutation.", "shard")
	mSeqVec = obs.NewGaugeVec("graphitti_durable_seq",
		"Sequence number of the latest applied mutation.", "shard")
)

// durableMetrics binds one shard's children of the durability families.
// ops keeps its kind dimension, so the child is resolved per append.
type durableMetrics struct {
	shard           string
	commitWait      *obs.Histogram
	healthState     *obs.Gauge
	reopens         *obs.Counter
	compactions     *obs.Counter
	compactFailures *obs.Counter
	seq             *obs.Gauge
}

func metricsForShard(shard string) *durableMetrics {
	if shard == "" {
		shard = "0"
	}
	return &durableMetrics{
		shard:           shard,
		commitWait:      mCommitWaitVec.With(shard),
		healthState:     mHealthStateVec.With(shard),
		reopens:         mReopensVec.With(shard),
		compactions:     mCompactionsVec.With(shard),
		compactFailures: mCompactFailuresVec.With(shard),
		seq:             mSeqVec.With(shard),
	}
}

func (m *durableMetrics) op(kind string) *obs.Counter { return mOpsVec.With(kind, m.shard) }

// setHealthGauge mirrors a state transition into the health gauge.
func (m *durableMetrics) setHealthGauge(st State) { m.healthState.Set(int64(st)) }
