// Package-level robustness tests: every parser in the system must reject
// malformed input with an error, never a panic. This is the failure
// injection item of DESIGN.md §7, phrased as testing/quick properties over
// random byte strings and mutated valid documents.
package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/ontology"
	"graphitti/internal/query"
	"graphitti/internal/xmldoc"
	"graphitti/internal/xquery"
)

// neverPanics runs fn under recover and reports whether it completed.
func neverPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	fn()
}

func TestParsersNeverPanicOnRandomInput(t *testing.T) {
	check := func(raw []byte) bool {
		s := string(raw)
		ok := true
		neverPanics(t, "xmldoc", func() { _, _ = xmldoc.ParseString(s) })
		neverPanics(t, "xquery", func() { _, _ = xquery.Compile(s) })
		neverPanics(t, "newick", func() { _, _ = phylo.ParseNewick("f", s) })
		neverPanics(t, "obo", func() { _, _ = ontology.ParseOBOString(s) })
		neverPanics(t, "fasta", func() { _, _ = seq.ParseFASTAString(s, seq.DNA) })
		neverPanics(t, "msa", func() { _, _ = msa.ParseFASTAString(s, "m") })
		neverPanics(t, "query", func() { _, _ = query.Parse(s) })
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParsersNeverPanicOnMutatedValidInput corrupts valid documents at
// random positions — closer to real-world malformed files than pure noise.
func TestParsersNeverPanicOnMutatedValidInput(t *testing.T) {
	valid := map[string]struct {
		src   string
		parse func(string)
	}{
		"xmldoc": {
			`<annotation id="1"><meta><dc:creator>g</dc:creator></meta><body>text</body></annotation>`,
			func(s string) { _, _ = xmldoc.ParseString(s) },
		},
		"xquery": {
			`//referent[@kind='interval' and @lo > 10]`,
			func(s string) { _, _ = xquery.Compile(s) },
		},
		"newick": {
			`((goose:0.12,(duck:0.08,chicken:0.09)dc:0.03)wild:0.05,human:0.2)root;`,
			func(s string) { _, _ = phylo.ParseNewick("t", s) },
		},
		"obo": {
			"[Term]\nid: A:1\nname: alpha\n\n[Term]\nid: A:2\nis_a: A:1\n",
			func(s string) { _, _ = ontology.ParseOBOString(s) },
		},
		"fasta": {
			">s1 desc\nACGTACGT\n>s2\nGGCC\n",
			func(s string) { _, _ = seq.ParseFASTAString(s, seq.DNA) },
		},
		"query": {
			`select graph where { ?a isa annotation ; contains "x" . ?r isa referent ; overlaps [1, 9) . ?a annotates ?r . } constrain disjoint(?r, ?r)`,
			func(s string) { _, _ = query.Parse(s) },
		},
	}
	mutate := func(src string, pos int, b byte, drop bool) string {
		if len(src) == 0 {
			return src
		}
		i := pos % len(src)
		if drop {
			return src[:i] + src[i+1:]
		}
		return src[:i] + string(b) + src[i:]
	}
	check := func(pos int, b byte, drop bool, second int) bool {
		if pos < 0 {
			pos = -pos
		}
		if second < 0 {
			second = -second
		}
		for name, tc := range valid {
			s := mutate(tc.src, pos, b, drop)
			s = mutate(s, second, b^0x5a, !drop)
			neverPanics(t, name, func() { tc.parse(s) })
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepNestingDoesNotOverflow guards the recursive parsers against
// stack exhaustion on pathologically nested input.
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	const depth = 10_000
	neverPanics(t, "newick-deep", func() {
		_, _ = phylo.ParseNewick("d", strings.Repeat("(", depth)+"a"+strings.Repeat(")", depth)+";")
	})
	neverPanics(t, "xquery-deep", func() {
		_, _ = xquery.Compile(strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth))
	})
	neverPanics(t, "xml-deep", func() {
		_, _ = xmldoc.ParseString(strings.Repeat("<a>", depth) + strings.Repeat("</a>", depth))
	})
}
