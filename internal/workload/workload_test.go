package workload

import (
	"testing"

	"graphitti/internal/ontology"
)

func TestEnzymeOntology(t *testing.T) {
	o := EnzymeOntology()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	ci, err := o.CI("protease")
	if err != nil {
		t.Fatal(err)
	}
	if len(ci) != 2 {
		t.Fatalf("CI(protease) = %v", ci)
	}
}

func TestBrainOntology(t *testing.T) {
	o := BrainOntology()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	term, ok := o.TermByName("Deep Cerebellar nuclei")
	if !ok || term.ID != "deep-cerebellar-nuclei" {
		t.Fatalf("TermByName = %v, %v", term, ok)
	}
}

func TestLayeredOntology(t *testing.T) {
	o := LayeredOntology("bench", 4, 3, 1)
	// 1 + 3 + 9 + 27 + 81 terms.
	if o.Len() != 121 {
		t.Fatalf("terms = %d", o.Len())
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	ci, err := o.CI("root")
	if err != nil {
		t.Fatal(err)
	}
	if len(ci) != 120 {
		t.Fatalf("CI(root) = %d", len(ci))
	}
	// Determinism: same seed, same graph.
	o2 := LayeredOntology("bench", 4, 3, 1)
	if o2.EdgeCount() != o.EdgeCount() {
		t.Fatal("generator not deterministic")
	}
	_ = ontology.InstanceRelations
}

func TestInfluenzaStudy(t *testing.T) {
	cfg := DefaultInfluenza
	cfg.Annotations = 50
	study, err := Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := study.Store.Stats()
	if st.Sequences != cfg.Segments*cfg.SeqsPerSeg {
		t.Fatalf("sequences = %d", st.Sequences)
	}
	// 50 random + 3 chains * 4 + 4 structural.
	want := 50 + cfg.ProteaseChains*4 + 4
	if st.Annotations != want {
		t.Fatalf("annotations = %d, want %d", st.Annotations, want)
	}
	if st.IntervalTrees == 0 || st.IntervalTrees > cfg.Segments {
		t.Fatalf("interval trees = %d (must be consolidated per segment)", st.IntervalTrees)
	}
	if len(study.ChainSegments) != cfg.ProteaseChains {
		t.Fatalf("chain segments = %v", study.ChainSegments)
	}
	// Planted chains are discoverable by keyword.
	hits := study.Store.SearchKeyword("protease", true)
	if len(hits) < cfg.ProteaseChains*4 {
		t.Fatalf("protease annotations = %d", len(hits))
	}
	// Determinism.
	study2, err := Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if study2.Store.Stats() != st {
		t.Fatal("influenza generator not deterministic")
	}
}

func TestNeuroscienceStudy(t *testing.T) {
	cfg := DefaultNeuro
	study, err := Neuroscience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := study.Store.Stats()
	if st.Images != cfg.Images {
		t.Fatalf("images = %d", st.Images)
	}
	if st.RTrees != 1 {
		t.Fatalf("R-trees = %d (one shared system expected)", st.RTrees)
	}
	if len(study.QualifyingImages) != (cfg.Images+2)/3 {
		t.Fatalf("qualifying images = %d", len(study.QualifyingImages))
	}
	if len(study.TP53Annotations) != cfg.TP53Annotations {
		t.Fatalf("TP53 annotations = %d", len(study.TP53Annotations))
	}
	// The planted TP53 annotations carry the keyword.
	hits := study.Store.SearchKeyword("protein.tp53", true)
	if len(hits) != cfg.TP53Annotations {
		t.Fatalf("keyword hits = %d", len(hits))
	}
	// Each TP53 annotation has a path to every qualifying image.
	for _, annID := range study.TP53Annotations {
		for range study.QualifyingImages {
			// Path existence is exercised in the facade Q1 test; here we
			// just confirm the annotations committed.
			if _, err := study.Store.Annotation(annID); err != nil {
				t.Fatal(err)
			}
		}
	}
}
