package workload

import (
	"reflect"
	"testing"
)

func TestPropagationStudy(t *testing.T) {
	cfg := DefaultPropagation
	cfg.Annotations = 300
	study, err := Propagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := study.Store.Stats()
	if st.Annotations != 300 {
		t.Fatalf("annotations = %d", st.Annotations)
	}
	if st.Derived == 0 {
		t.Fatal("study produced no derived facts")
	}
	// Determinism: same seed, same store, same derived table.
	again, err := Propagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(study.Store.DerivedAll(), again.Store.DerivedAll()) {
		t.Fatal("propagation study is not deterministic")
	}
	// The closure rule fired: at least one fact targets an ontology term.
	sawClosure := false
	for _, f := range study.Store.DerivedAll() {
		if f.Rule == "p-closure" {
			sawClosure = true
			break
		}
	}
	if !sawClosure {
		t.Fatal("closure rule produced no facts")
	}
}
