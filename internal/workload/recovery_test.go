package workload

import (
	"reflect"
	"testing"

	"graphitti/internal/core"
	"graphitti/internal/persist"
)

// TestRecoveryScenarioDeterministic applies the same generated stream to
// two stores and a regenerated stream to a third; all three must be
// byte-identical snapshots — the property the crash harness depends on.
func TestRecoveryScenarioDeterministic(t *testing.T) {
	cfg := RecoveryConfig{Seed: 7, Images: 6, Ops: 150}
	ops := RecoveryScenario(cfg)
	if len(ops) != cfg.Ops {
		t.Fatalf("generated %d ops, want %d", len(ops), cfg.Ops)
	}
	for i, op := range ops {
		if op.Seq != i+1 {
			t.Fatalf("op %d has Seq %d", i, op.Seq)
		}
	}

	stores := make([]*core.Store, 3)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	if err := ApplyOps(AsSink(stores[0]), ops); err != nil {
		t.Fatal(err)
	}
	if err := ApplyOps(AsSink(stores[1]), ops); err != nil {
		t.Fatal(err)
	}
	if err := ApplyOps(AsSink(stores[2]), RecoveryScenario(cfg)); err != nil {
		t.Fatal(err)
	}

	base, err := persist.Export(stores[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		snap, err := persist.Export(stores[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, snap) {
			t.Fatalf("store %d diverged from store 0", i)
		}
	}
}

// TestRecoveryScenarioCoversOpKinds checks the default stream exercises
// every mutation kind the WAL can log.
func TestRecoveryScenarioCoversOpKinds(t *testing.T) {
	ops := RecoveryScenario(DefaultRecovery)
	prefixes := []string{
		"register-ontology", "register-system", "register-image",
		"create-record-table", "add-rule", "commit-region", "commit-tp53",
		"insert-record", "register-sequence", "commit-interval",
		"delete-annotation",
	}
	for _, p := range prefixes {
		found := false
		for _, op := range ops {
			if len(op.Name) >= len(p) && op.Name[:len(p)] == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("scenario has no %q op", p)
		}
	}
	// Prefixes applied to a store must always be valid (no op depends on
	// a later one).
	s := AsSink(core.NewStore())
	for _, op := range ops[:100] {
		if err := op.Apply(s); err != nil {
			t.Fatalf("op %d (%s): %v", op.Seq, op.Name, err)
		}
	}
}
