// Package workload generates the synthetic studies used by Graphitti's
// examples, integration tests and benchmarks.
//
// The paper demonstrates on an Avian-Influenza virology study (DNA and RNA
// sequences, multiple sequence alignments, phylogenetic trees, interaction
// graphs, relational records) and a neuroscience study (brain images
// registered to a shared coordinate system, annotated with NIF-style
// ontology terms). Those datasets are not public; the generators here are
// seeded synthetic equivalents that preserve the structural properties the
// engine exercises — domain sharing, overlap distributions, ontology
// fan-out, annotation density — which is what reproduction of the system's
// behaviour depends on (see DESIGN.md §3).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// letters for random DNA.
const dnaLetters = "ACGT"

func randDNA(rng *rand.Rand, n int) string {
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(dnaLetters[rng.Intn(4)])
	}
	return sb.String()
}

// EnzymeOntology builds a small molecular-function ontology with a
// protease branch; used by the influenza study and the paper's query-tab
// query.
func EnzymeOntology() *ontology.Ontology {
	o := ontology.New("go")
	terms := []struct{ id, name string }{
		{"molecular-function", "molecular function"},
		{"enzyme", "enzyme"},
		{"hydrolase", "hydrolase"},
		{"protease", "protease"},
		{"serine-protease", "serine protease"},
		{"metallo-protease", "metallo protease"},
		{"kinase", "kinase"},
		{"polymerase", "polymerase"},
	}
	for _, t := range terms {
		if _, err := o.AddTerm(t.id, t.name); err != nil {
			panic(err) // static construction
		}
	}
	edges := [][2]string{
		{"enzyme", "molecular-function"},
		{"hydrolase", "enzyme"},
		{"protease", "hydrolase"},
		{"serine-protease", "protease"},
		{"metallo-protease", "protease"},
		{"kinase", "enzyme"},
		{"polymerase", "enzyme"},
	}
	for _, e := range edges {
		if err := o.AddEdge(e[0], e[1], ontology.IsA, ontology.Some); err != nil {
			panic(err)
		}
	}
	return o
}

// BrainOntology builds a small neuro-anatomy ontology containing the
// "Deep Cerebellar nuclei" term of the paper's intro query.
func BrainOntology() *ontology.Ontology {
	o := ontology.New("nif")
	terms := []struct{ id, name string }{
		{"brain", "brain"},
		{"hindbrain", "hindbrain"},
		{"cerebellum", "cerebellum"},
		{"deep-cerebellar-nuclei", "Deep Cerebellar nuclei"},
		{"cortex", "cortex"},
		{"hippocampus", "hippocampus"},
	}
	for _, t := range terms {
		if _, err := o.AddTerm(t.id, t.name); err != nil {
			panic(err)
		}
	}
	edges := [][2]string{
		{"hindbrain", "brain"},
		{"cerebellum", "hindbrain"},
		{"deep-cerebellar-nuclei", "cerebellum"},
		{"cortex", "brain"},
		{"hippocampus", "cortex"},
	}
	for _, e := range edges {
		if err := o.AddEdge(e[0], e[1], ontology.IsA, ontology.Some); err != nil {
			panic(err)
		}
	}
	return o
}

// LayeredOntology generates a random layered is_a DAG for ontology
// operator benchmarks (O2): `depth` layers with `fanout` children each.
func LayeredOntology(name string, depth, fanout int, seed int64) *ontology.Ontology {
	rng := rand.New(rand.NewSource(seed))
	o := ontology.New(name)
	if _, err := o.AddTerm("root", "root"); err != nil {
		panic(err)
	}
	frontier := []string{"root"}
	id := 0
	for d := 0; d < depth; d++ {
		var next []string
		for _, parent := range frontier {
			for i := 0; i < fanout; i++ {
				term := fmt.Sprintf("t%06d", id)
				id++
				if _, err := o.AddTerm(term, term); err != nil {
					panic(err)
				}
				if err := o.AddEdge(term, parent, ontology.IsA, ontology.Some); err != nil {
					panic(err)
				}
				// Occasional second parent keeps it a DAG, not a tree.
				if d > 0 && rng.Intn(8) == 0 {
					other := frontier[rng.Intn(len(frontier))]
					if other != parent {
						_ = o.AddEdge(term, other, ontology.PartOf, ontology.Some)
					}
				}
				next = append(next, term)
			}
		}
		frontier = next
	}
	return o
}

// InfluenzaConfig sizes the virology study.
type InfluenzaConfig struct {
	Seed        int64
	Segments    int // genome segments (shared 1-D domains)
	SeqsPerSeg  int // sequences registered per segment
	SeqLen      int // residues per sequence
	Annotations int // interval annotations spread across segments
	// ProteaseChains plants chains of 4 consecutive disjoint
	// protease-keyword annotations (ground truth for Q2).
	ProteaseChains int
}

// DefaultInfluenza is a laptop-scale configuration.
var DefaultInfluenza = InfluenzaConfig{
	Seed: 42, Segments: 8, SeqsPerSeg: 4, SeqLen: 2000,
	Annotations: 400, ProteaseChains: 3,
}

// InfluenzaStudy is the generated virology workload.
type InfluenzaStudy struct {
	Store *core.Store
	// Segments lists the shared domains.
	Segments []string
	// SequenceIDs lists all registered sequence accessions.
	SequenceIDs []string
	// AlignmentID, TreeID, GraphID name the structured objects.
	AlignmentID, TreeID, GraphID string
	// ChainSegments names the domains where protease chains were planted.
	ChainSegments []string
	// AnnotationIDs lists every committed annotation.
	AnnotationIDs []uint64
}

// Influenza generates the virology study into a fresh store.
func Influenza(cfg InfluenzaConfig) (*InfluenzaStudy, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := core.NewStore()
	study := &InfluenzaStudy{Store: s}

	if err := s.RegisterOntology(EnzymeOntology()); err != nil {
		return nil, err
	}

	// Sequences on shared segment domains.
	for seg := 0; seg < cfg.Segments; seg++ {
		domain := fmt.Sprintf("segment%d", seg+1)
		study.Segments = append(study.Segments, domain)
		for i := 0; i < cfg.SeqsPerSeg; i++ {
			id := fmt.Sprintf("NC_%03d%02d", seg, i)
			sq, err := seq.New(id, seq.DNA, randDNA(rng, cfg.SeqLen))
			if err != nil {
				return nil, err
			}
			sq.Description = fmt.Sprintf("Influenza A virus segment %d isolate %d", seg+1, i)
			sq.Domain = domain
			sq.Offset = int64(i * cfg.SeqLen / 2) // staggered, overlapping
			if err := s.RegisterSequence(sq); err != nil {
				return nil, err
			}
			study.SequenceIDs = append(study.SequenceIDs, id)
		}
	}

	// One alignment over the first segment's sequences.
	rowIDs := study.SequenceIDs[:cfg.SeqsPerSeg]
	rows := make([]string, len(rowIDs))
	width := 60
	for i := range rows {
		var sb strings.Builder
		for c := 0; c < width; c++ {
			if rng.Intn(6) == 0 {
				sb.WriteByte(msa.Gap)
			} else {
				sb.WriteByte(dnaLetters[rng.Intn(4)])
			}
		}
		rows[i] = sb.String()
	}
	aln, err := msa.New("HA-alignment", rowIDs, rows)
	if err != nil {
		return nil, err
	}
	if err := s.RegisterAlignment(aln); err != nil {
		return nil, err
	}
	study.AlignmentID = aln.ID

	// A host phylogeny.
	tree, err := phylo.ParseNewick("H5N1-phylogeny",
		"((goose:0.12,(duck:0.08,chicken:0.09)dc:0.03)wild:0.05,(human1:0.2,human2:0.18)hu:0.07)root;")
	if err != nil {
		return nil, err
	}
	if err := s.RegisterTree(tree); err != nil {
		return nil, err
	}
	study.TreeID = tree.ID

	// The NS1 interactome.
	ig := interact.NewGraph("NS1-interactome")
	mols := []string{"NS1", "PKR", "TRIM25", "CPSF30", "EIF2A", "RIG-I", "MAVS"}
	for _, m := range mols {
		if _, err := ig.AddMolecule(m, m, interact.ProteinMol); err != nil {
			return nil, err
		}
	}
	links := [][3]string{
		{"NS1", "PKR", "inhibits"}, {"NS1", "TRIM25", "binds"},
		{"NS1", "CPSF30", "binds"}, {"PKR", "EIF2A", "phosphorylates"},
		{"RIG-I", "MAVS", "signals"}, {"TRIM25", "RIG-I", "activates"},
	}
	for _, l := range links {
		if err := ig.AddInteraction(l[0], l[1], l[2], 0.5+rng.Float64()/2); err != nil {
			return nil, err
		}
	}
	if err := s.RegisterInteractionGraph(ig); err != nil {
		return nil, err
	}
	study.GraphID = ig.ID

	// Isolate records.
	schema := relstore.MustSchema("isolates", "acc",
		relstore.Column{Name: "acc", Type: relstore.String},
		relstore.Column{Name: "host", Type: relstore.String},
		relstore.Column{Name: "year", Type: relstore.Int64},
		relstore.Column{Name: "country", Type: relstore.String},
	)
	if _, err := s.CreateRecordTable(schema); err != nil {
		return nil, err
	}
	hosts := []string{"goose", "duck", "chicken", "human"}
	countries := []string{"VN", "HK", "ID", "TH", "CN"}
	for i := 0; i < 20; i++ {
		acc := fmt.Sprintf("A/%s/%d/%d", hosts[i%len(hosts)], i, 1996+i%10)
		row := relstore.Row{
			relstore.S(acc), relstore.S(hosts[i%len(hosts)]),
			relstore.I(int64(1996 + i%10)), relstore.S(countries[i%len(countries)]),
		}
		if err := s.InsertRecord("isolates", row); err != nil {
			return nil, err
		}
	}

	creators := []string{"gupta", "condit", "martone", "chen"}
	bodies := []string{
		"conserved motif near the polymerase binding site",
		"putative cleavage region",
		"high mutation density in this window",
		"binding footprint confirmed by pulldown",
		"kinase activity suspected",
	}
	terms := []string{"kinase", "polymerase", "hydrolase", "serine-protease", "metallo-protease"}

	// Random interval annotations.
	for i := 0; i < cfg.Annotations; i++ {
		seg := study.Segments[rng.Intn(len(study.Segments))]
		maxPos := int64(cfg.SeqLen + (cfg.SeqsPerSeg-1)*cfg.SeqLen/2)
		lo := rng.Int63n(maxPos - 100)
		m, err := s.MarkDomainInterval(seg, interval.Interval{Lo: lo, Hi: lo + 20 + rng.Int63n(80)})
		if err != nil {
			return nil, err
		}
		b := s.NewAnnotation().
			Creator(creators[rng.Intn(len(creators))]).
			Date(fmt.Sprintf("2007-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))).
			Title(fmt.Sprintf("observation %d", i)).
			Body(bodies[rng.Intn(len(bodies))]).
			Refer(m)
		if rng.Intn(3) == 0 {
			b.OntologyRef("go", terms[rng.Intn(len(terms))])
		}
		ann, err := s.Commit(b)
		if err != nil {
			return nil, err
		}
		study.AnnotationIDs = append(study.AnnotationIDs, ann.ID)
	}

	// Planted protease chains: 4 consecutive disjoint intervals whose
	// annotations all contain "protease" (Q2 ground truth).
	for c := 0; c < cfg.ProteaseChains; c++ {
		seg := study.Segments[c%len(study.Segments)]
		study.ChainSegments = append(study.ChainSegments, seg)
		base := int64(c * 500)
		for k := 0; k < 4; k++ {
			lo := base + int64(k*60)
			m, err := s.MarkDomainInterval(seg, interval.Interval{Lo: lo, Hi: lo + 50})
			if err != nil {
				return nil, err
			}
			ann, err := s.Commit(s.NewAnnotation().
				Creator("gupta").
				Date("2007-11-02").
				Title(fmt.Sprintf("protease chain %d link %d", c, k)).
				Body("protease cleavage site in this window").
				Refer(m).
				OntologyRef("go", "serine-protease"))
			if err != nil {
				return nil, err
			}
			study.AnnotationIDs = append(study.AnnotationIDs, ann.ID)
		}
	}

	// Structural annotations across the other data types (the Fig. 2
	// workflow touches all six demo types).
	cm, err := s.MarkClade(tree.ID, "duck", "chicken")
	if err != nil {
		return nil, err
	}
	sgm, err := s.MarkSubgraph(ig.ID, "NS1", "PKR", "EIF2A")
	if err != nil {
		return nil, err
	}
	bm, err := s.MarkAlignmentBlock(aln.ID, rowIDs[:2], interval.Interval{Lo: 10, Hi: 30})
	if err != nil {
		return nil, err
	}
	rm, err := s.MarkRecords("isolates", relstore.S("A/goose/0/1996"))
	if err != nil {
		return nil, err
	}
	for i, m := range []*core.Referent{cm, sgm, bm, rm} {
		ann, err := s.Commit(s.NewAnnotation().
			Creator("condit").Date("2007-12-01").
			Title(fmt.Sprintf("structural note %d", i)).
			Body("cross-type annotation produced by the annotation tab workflow").
			Refer(m))
		if err != nil {
			return nil, err
		}
		study.AnnotationIDs = append(study.AnnotationIDs, ann.ID)
	}
	return study, nil
}

// NeuroConfig sizes the neuroscience study.
type NeuroConfig struct {
	Seed   int64
	Images int
	// RegionsPerImage is the mean DCN-annotated regions per image; every
	// third image gets >= 2 regions (ground truth for Q1).
	RegionsPerImage int
	// TP53Annotations is the number of annotations containing the
	// "protein.TP53" keyword, each with a referent path to the qualifying
	// images.
	TP53Annotations int
	// NoiseAnnotations are region annotations without the DCN term.
	NoiseAnnotations int
}

// DefaultNeuro is a laptop-scale configuration.
var DefaultNeuro = NeuroConfig{
	Seed: 7, Images: 12, RegionsPerImage: 2, TP53Annotations: 4, NoiseAnnotations: 60,
}

// NeuroStudy is the generated neuroscience workload.
type NeuroStudy struct {
	Store *core.Store
	// System is the shared coordinate system name.
	System string
	// ImageIDs lists all registered images.
	ImageIDs []string
	// QualifyingImages have at least 2 DCN-annotated regions (Q1 ground
	// truth).
	QualifyingImages []string
	// TP53Annotations are the IDs of the planted TP53 annotations
	// (expected Q1 answers).
	TP53Annotations []uint64
}

// Neuroscience generates the brain-imaging workload into a fresh store.
func Neuroscience(cfg NeuroConfig) (*NeuroStudy, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := core.NewStore()
	study := &NeuroStudy{Store: s, System: "mouse-atlas"}

	if err := s.RegisterOntology(BrainOntology()); err != nil {
		return nil, err
	}
	cs, err := imaging.NewCoordinateSystem(study.System, rtree.Rect2D(0, 0, 10_000, 10_000))
	if err != nil {
		return nil, err
	}
	if err := s.RegisterCoordinateSystem(cs); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Images; i++ {
		reg := imaging.Identity(2)
		reg.Offset = [rtree.MaxDims]float64{float64(rng.Intn(9000)), float64(rng.Intn(9000))}
		im, err := imaging.NewImage(fmt.Sprintf("mouse-brain-%03d", i), study.System,
			rtree.Rect2D(0, 0, 1000, 1000), reg)
		if err != nil {
			return nil, err
		}
		im.Modality = "confocal"
		im.Subject = fmt.Sprintf("mouse-%d", i/3)
		if err := s.RegisterImage(im); err != nil {
			return nil, err
		}
		study.ImageIDs = append(study.ImageIDs, im.ID)
	}

	// DCN-annotated regions: every third image qualifies with >= 2.
	for i, imgID := range study.ImageIDs {
		n := 1
		if i%3 == 0 {
			n = cfg.RegionsPerImage
			if n < 2 {
				n = 2
			}
			study.QualifyingImages = append(study.QualifyingImages, imgID)
		}
		for k := 0; k < n; k++ {
			x, y := float64(rng.Intn(800)), float64(rng.Intn(800))
			m, err := s.MarkImageRegion(imgID, rtree.Rect2D(x, y, x+50+rng.Float64()*100, y+50+rng.Float64()*100))
			if err != nil {
				return nil, err
			}
			_, err = s.Commit(s.NewAnnotation().
				Creator("martone").
				Date("2007-10-12").
				Title(fmt.Sprintf("DCN region %s/%d", imgID, k)).
				Body("expression in the Deep Cerebellar nuclei").
				Refer(m).
				OntologyRef("nif", "deep-cerebellar-nuclei"))
			if err != nil {
				return nil, err
			}
		}
	}

	// Noise annotations on random regions without the DCN term.
	for i := 0; i < cfg.NoiseAnnotations; i++ {
		imgID := study.ImageIDs[rng.Intn(len(study.ImageIDs))]
		x, y := float64(rng.Intn(900)), float64(rng.Intn(900))
		m, err := s.MarkImageRegion(imgID, rtree.Rect2D(x, y, x+30, y+30))
		if err != nil {
			return nil, err
		}
		_, err = s.Commit(s.NewAnnotation().
			Creator("chen").Date("2007-09-01").
			Body("background signal only").
			Refer(m).
			OntologyRef("nif", "cortex"))
		if err != nil {
			return nil, err
		}
	}

	// Planted TP53 annotations: each marks a region on every qualifying
	// image, giving them paths to all of them (Q1 ground truth).
	for i := 0; i < cfg.TP53Annotations; i++ {
		b := s.NewAnnotation().
			Creator("gupta").
			Date("2007-11-20").
			Title(fmt.Sprintf("TP53 finding %d", i)).
			Body("correlated expression of protein.TP53 across cerebellar sections")
		for _, imgID := range study.QualifyingImages {
			x := float64(100 + i*40)
			m, err := s.MarkImageRegion(imgID, rtree.Rect2D(x, x, x+35, x+35))
			if err != nil {
				return nil, err
			}
			b.Refer(m)
		}
		ann, err := s.Commit(b)
		if err != nil {
			return nil, err
		}
		study.TP53Annotations = append(study.TP53Annotations, ann.ID)
	}
	return study, nil
}
