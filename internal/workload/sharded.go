package workload

import (
	"fmt"
	"math/rand"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/prop"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// ShardedScenario generates a deterministic mutation stream like
// RecoveryScenario but spread across several coordinate systems (each
// with its own image set), many sequence domains, and two record tables,
// so every pipeline of a sharded store sees traffic. Two properties make
// the stream byte-equivalent between a sharded and an unsharded store,
// which the differential and sharded crash tests assert:
//
//   - broadcast ops (the ontology and every propagation rule) sit in the
//     setup prefix, before any op a crash harness may cut at, so a kill
//     never lands mid-broadcast;
//   - every annotation's marks stay within one routing domain (one
//     image's system, one sequence's domain, or terms only), the
//     workload class the sharded store serves exactly.
func ShardedScenario(cfg RecoveryConfig, systems int) []RecoveryOp {
	if systems < 1 {
		systems = 1
	}
	if cfg.Images <= 0 {
		cfg.Images = DefaultRecovery.Images
	}
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultRecovery.Ops
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ops []RecoveryOp
	add := func(name string, apply func(Sink) error) {
		ops = append(ops, RecoveryOp{Seq: len(ops) + 1, Name: name, Apply: apply})
	}

	// --- setup: all broadcast ops live here ---
	add("register-ontology nif", func(s Sink) error {
		return s.RegisterOntology(BrainOntology())
	})
	sysIDs := make([]string, systems)
	for j := range sysIDs {
		name := fmt.Sprintf("atlas-%d", j)
		sysIDs[j] = name
		add("register-system "+name, func(s Sink) error {
			cs, err := imaging.NewCoordinateSystem(name, rtree.Rect2D(0, 0, 100_000, 100_000))
			if err != nil {
				return err
			}
			return s.RegisterCoordinateSystem(cs)
		})
	}
	var imageIDs []string
	for i := 0; i < cfg.Images; i++ {
		id := fmt.Sprintf("brain-%03d", i)
		sys := sysIDs[i%systems]
		imageIDs = append(imageIDs, id)
		ox, oy := float64(rng.Intn(90_000)), float64(rng.Intn(90_000))
		add("register-image "+id, func(s Sink) error {
			reg := imaging.Identity(2)
			reg.Offset = [rtree.MaxDims]float64{ox, oy}
			im, err := imaging.NewImage(id, sys, rtree.Rect2D(0, 0, 1000, 1000), reg)
			if err != nil {
				return err
			}
			im.Modality = "confocal"
			return s.RegisterImage(im)
		})
	}
	tables := []string{"findings-a", "findings-b"}
	for _, tb := range tables {
		add("create-record-table "+tb, func(s Sink) error {
			schema, err := relstore.NewSchema(tb, "id",
				relstore.Column{Name: "id", Type: relstore.String},
				relstore.Column{Name: "gene", Type: relstore.String},
				relstore.Column{Name: "score", Type: relstore.Float64},
			)
			if err != nil {
				return err
			}
			_, err = s.CreateRecordTable(schema)
			return err
		})
	}
	for j, sys := range sysIDs {
		add("add-rule overlap-"+sys, func(s Sink) error {
			return s.AddRule(prop.Rule{
				ID: fmt.Sprintf("sh-overlap-%d", j), Edge: prop.EdgeOverlap, Domain: sys,
			})
		})
	}
	add("add-rule nif-closure", func(s Sink) error {
		return s.AddRule(prop.Rule{ID: "sh-closure", Edge: prop.EdgeOntologyClosure, Ontology: "nif"})
	})

	// --- mixed stream up to cfg.Ops; routed ops only ---
	commits := 0
	var live []uint64
	commitRegion := func(imgID string, k int, term, body string) {
		x := float64(rng.Intn(900))
		y := float64(rng.Intn(900))
		w := 20 + rng.Float64()*80
		commits++
		id := uint64(commits)
		live = append(live, id)
		add(fmt.Sprintf("commit-region %s/%d", imgID, k), func(s Sink) error {
			m, err := s.MarkImageRegion(imgID, rtree.Rect2D(x, y, x+w, y+w))
			if err != nil {
				return err
			}
			b := s.NewAnnotation().
				Creator("martone").Date("2007-10-12").
				Title(fmt.Sprintf("region %s/%d", imgID, k)).
				Body(body).
				Refer(m)
			if term != "" {
				b.OntologyRef("nif", term)
			}
			_, err = s.Commit(b)
			return err
		})
	}
	seqCount, recCount, noise := 0, 0, 0
	for len(ops) < cfg.Ops {
		switch p := rng.Intn(100); {
		case p < 20: // DCN region
			img := imageIDs[rng.Intn(len(imageIDs))]
			noise++
			commitRegion(img, 100+noise, "deep-cerebellar-nuclei",
				"expression in the Deep Cerebellar nuclei")
		case p < 32: // two marks on one image: multi-referent, one domain
			img := imageIDs[rng.Intn(len(imageIDs))]
			x1, y1 := float64(rng.Intn(900)), float64(rng.Intn(900))
			x2, y2 := float64(rng.Intn(900)), float64(rng.Intn(900))
			commits++
			id := uint64(commits)
			live = append(live, id)
			n := commits
			add(fmt.Sprintf("commit-pair %s/%d", img, n), func(s Sink) error {
				m1, err := s.MarkImageRegion(img, rtree.Rect2D(x1, y1, x1+40, y1+40))
				if err != nil {
					return err
				}
				m2, err := s.MarkImageRegion(img, rtree.Rect2D(x2, y2, x2+25, y2+25))
				if err != nil {
					return err
				}
				_, err = s.Commit(s.NewAnnotation().
					Creator("gupta").Date("2007-11-20").
					Title(fmt.Sprintf("paired regions %d", n)).
					Body("correlated expression of protein.TP53 across sections").
					Refer(m1).Refer(m2))
				return err
			})
		case p < 44: // noise region without the DCN term
			img := imageIDs[rng.Intn(len(imageIDs))]
			noise++
			commitRegion(img, 200+noise, "cortex", "background signal only")
		case p < 52: // term-only annotation: routed by its ontology
			commits++
			id := uint64(commits)
			live = append(live, id)
			n := commits
			add(fmt.Sprintf("commit-termonly %d", n), func(s Sink) error {
				_, err := s.Commit(s.NewAnnotation().
					Creator("chen").Date("2007-12-05").
					Body(fmt.Sprintf("literature note %d", n)).
					OntologyRef("nif", "cerebellum"))
				return err
			})
		case p < 66: // record insert, alternating tables
			recCount++
			tb := tables[recCount%len(tables)]
			rid := fmt.Sprintf("f-%04d", recCount)
			gene := []string{"TP53", "BRCA1", "EGFR", "MYC"}[rng.Intn(4)]
			score := rng.Float64()
			add("insert-record "+rid, func(s Sink) error {
				return s.InsertRecord(tb, relstore.Row{
					relstore.S(rid), relstore.S(gene), relstore.F(score),
				})
			})
		case p < 82: // new sequence (its own domain) + interval annotation
			seqCount++
			sid := fmt.Sprintf("seq-%03d", seqCount)
			residues := randDNA(rng, 120+rng.Intn(200))
			add("register-sequence "+sid, func(s Sink) error {
				sq, err := seq.New(sid, seq.DNA, residues)
				if err != nil {
					return err
				}
				return s.RegisterSequence(sq)
			})
			lo := int64(rng.Intn(60))
			hi := lo + 10 + int64(rng.Intn(40))
			commits++
			id := uint64(commits)
			live = append(live, id)
			add("commit-interval "+sid, func(s Sink) error {
				m, err := s.MarkSequenceInterval(sid, interval.Interval{Lo: lo, Hi: hi})
				if err != nil {
					return err
				}
				_, err = s.Commit(s.NewAnnotation().
					Creator("chen").Date("2007-09-01").
					Body("conserved motif in " + sid).
					Refer(m))
				return err
			})
		default: // delete an earlier annotation
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			add(fmt.Sprintf("delete-annotation %d", victim), func(s Sink) error {
				return s.DeleteAnnotation(victim)
			})
		}
	}
	return ops
}

// BroadcastPrefixLen returns how many leading ops of a scenario are
// broadcast ops' upper bound: the position after the last broadcast op
// (ontology registrations and rule changes). A sharded crash harness
// must only kill after this point, so a kill never lands between the
// per-shard applications of one broadcast.
func BroadcastPrefixLen(ops []RecoveryOp) int {
	last := 0
	for _, op := range ops {
		switch {
		case hasPrefix(op.Name, "register-ontology"),
			hasPrefix(op.Name, "add-rule"),
			hasPrefix(op.Name, "delete-rule"):
			last = op.Seq
		}
	}
	return last
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
