package workload

import (
	"fmt"
	"math/rand"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/prop"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// Sink is the mutation surface a recovery scenario drives. The durable
// store satisfies it directly; wrap a *core.Store with AsSink. The point:
// the crash-recovery harness applies the same deterministic op stream to
// an in-memory store and to a logged store (possibly killed and replayed
// partway) and compares the results op-for-op.
type Sink interface {
	RegisterOntology(*ontology.Ontology) error
	RegisterCoordinateSystem(*imaging.CoordinateSystem) error
	RegisterSequence(*seq.Sequence) error
	RegisterImage(*imaging.Image) error
	CreateRecordTable(*relstore.Schema) (*relstore.Table, error)
	InsertRecord(table string, row relstore.Row) error
	MarkImageRegion(imageID string, local rtree.Rect) (*core.Referent, error)
	MarkSequenceInterval(seqID string, local interval.Interval) (*core.Referent, error)
	NewAnnotation() *core.Builder
	Commit(*core.Builder) (*core.Annotation, error)
	DeleteAnnotation(uint64) error
	AddRule(prop.Rule) error
}

// coreSink adapts *core.Store to Sink: rule ops go through the store's
// propagation engine (attached on first use), everything else is the
// store's own method.
type coreSink struct{ *core.Store }

func (c coreSink) AddRule(r prop.Rule) error { return prop.Attach(c.Store).AddRule(r) }

// AsSink wraps an in-memory store as a scenario Sink.
func AsSink(s *core.Store) Sink { return coreSink{s} }

// RecoveryOp is one step of a recovery scenario. Apply is a pure function
// of the generation-time randomness: applying the same op list to two
// sinks produces identical stores (including assigned IDs, which are
// sequential in commit order).
type RecoveryOp struct {
	// Seq is the 1-based position in the stream — it equals the durable
	// store's op sequence number after the op is applied.
	Seq int
	// Name describes the op for test failure messages.
	Name string
	// Apply performs the mutation.
	Apply func(Sink) error
}

// RecoveryConfig sizes a recovery scenario.
type RecoveryConfig struct {
	Seed int64
	// Images is the brain-image count; images 0, 3, 6, … become Q1
	// qualifying (>= 2 DCN-term regions).
	Images int
	// Ops is the total number of mutations, setup included.
	Ops int
}

// DefaultRecovery is sized so a scenario exercises every op kind,
// includes TP53 ground truth for the paper's Q1 query, and crosses a
// small compaction threshold several times.
var DefaultRecovery = RecoveryConfig{Seed: 42, Images: 6, Ops: 400}

// RecoveryScenario generates a deterministic mutation stream: ontology,
// coordinate system and image setup, then a shuffled mix of DCN-region
// commits, TP53 commits (keyword "protein.TP53" with marks on every
// qualifying image), noise commits, sequence registrations with interval
// annotations, record-table inserts, and deletions of earlier
// annotations. All randomness is drawn at generation time, so Apply
// closures are replayable against any number of sinks.
func RecoveryScenario(cfg RecoveryConfig) []RecoveryOp {
	if cfg.Images <= 0 {
		cfg.Images = DefaultRecovery.Images
	}
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultRecovery.Ops
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ops []RecoveryOp
	add := func(name string, apply func(Sink) error) {
		ops = append(ops, RecoveryOp{Seq: len(ops) + 1, Name: name, Apply: apply})
	}

	// --- setup ---
	add("register-ontology nif", func(s Sink) error {
		return s.RegisterOntology(BrainOntology())
	})
	add("register-system atlas", func(s Sink) error {
		cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 100_000, 100_000))
		if err != nil {
			return err
		}
		return s.RegisterCoordinateSystem(cs)
	})
	var imageIDs, qualifying []string
	for i := 0; i < cfg.Images; i++ {
		id := fmt.Sprintf("mouse-brain-%03d", i)
		imageIDs = append(imageIDs, id)
		if i%3 == 0 {
			qualifying = append(qualifying, id)
		}
		ox, oy := float64(rng.Intn(90_000)), float64(rng.Intn(90_000))
		add("register-image "+id, func(s Sink) error {
			reg := imaging.Identity(2)
			reg.Offset = [rtree.MaxDims]float64{ox, oy}
			im, err := imaging.NewImage(id, "atlas", rtree.Rect2D(0, 0, 1000, 1000), reg)
			if err != nil {
				return err
			}
			im.Modality = "confocal"
			return s.RegisterImage(im)
		})
	}
	add("create-record-table findings", func(s Sink) error {
		schema, err := relstore.NewSchema("findings", "id",
			relstore.Column{Name: "id", Type: relstore.String},
			relstore.Column{Name: "gene", Type: relstore.String},
			relstore.Column{Name: "score", Type: relstore.Float64},
		)
		if err != nil {
			return err
		}
		_, err = s.CreateRecordTable(schema)
		return err
	})
	// Propagation rules go in before the mixed stream so every commit and
	// delete below exercises the engine's incremental delta path; the
	// crash harness then checks the replayed derived table matches an
	// in-memory one fact-for-fact.
	add("add-rule atlas-overlap", func(s Sink) error {
		return s.AddRule(prop.Rule{ID: "rec-overlap", Edge: prop.EdgeOverlap, Domain: "atlas"})
	})
	add("add-rule nif-closure", func(s Sink) error {
		return s.AddRule(prop.Rule{ID: "rec-closure", Edge: prop.EdgeOntologyClosure, Ontology: "nif"})
	})
	// Ground truth for Q1: two DCN regions on every qualifying image.
	commits := 0 // annotation IDs are 1-based in commit order
	var live []uint64
	commitRegion := func(imgID string, k int, term, body string) {
		x := float64(rng.Intn(900))
		y := float64(rng.Intn(900))
		w := 20 + rng.Float64()*80
		commits++
		id := uint64(commits)
		live = append(live, id)
		add(fmt.Sprintf("commit-region %s/%d", imgID, k), func(s Sink) error {
			m, err := s.MarkImageRegion(imgID, rtree.Rect2D(x, y, x+w, y+w))
			if err != nil {
				return err
			}
			b := s.NewAnnotation().
				Creator("martone").Date("2007-10-12").
				Title(fmt.Sprintf("region %s/%d", imgID, k)).
				Body(body).
				Refer(m)
			if term != "" {
				b.OntologyRef("nif", term)
			}
			_, err = s.Commit(b)
			return err
		})
	}
	for _, imgID := range qualifying {
		for k := 0; k < 2; k++ {
			commitRegion(imgID, k, "deep-cerebellar-nuclei",
				"expression in the Deep Cerebellar nuclei")
		}
	}

	// --- mixed stream up to cfg.Ops ---
	seqCount, recCount, noise := 0, 0, 0
	for len(ops) < cfg.Ops {
		switch p := rng.Intn(100); {
		case p < 22: // DCN region on a random image
			img := imageIDs[rng.Intn(len(imageIDs))]
			noise++
			commitRegion(img, 100+noise, "deep-cerebellar-nuclei",
				"expression in the Deep Cerebellar nuclei")
		case p < 34: // TP53 annotation with marks on every qualifying image
			xs := make([]float64, len(qualifying))
			for i := range xs {
				xs[i] = float64(rng.Intn(900))
			}
			commits++
			id := uint64(commits)
			live = append(live, id)
			n := commits
			add(fmt.Sprintf("commit-tp53 %d", n), func(s Sink) error {
				b := s.NewAnnotation().
					Creator("gupta").Date("2007-11-20").
					Title(fmt.Sprintf("TP53 finding %d", n)).
					Body("correlated expression of protein.TP53 across cerebellar sections")
				for i, imgID := range qualifying {
					m, err := s.MarkImageRegion(imgID, rtree.Rect2D(xs[i], xs[i], xs[i]+35, xs[i]+35))
					if err != nil {
						return err
					}
					b.Refer(m)
				}
				_, err := s.Commit(b)
				return err
			})
		case p < 56: // noise region without the DCN term
			img := imageIDs[rng.Intn(len(imageIDs))]
			noise++
			commitRegion(img, 200+noise, "cortex", "background signal only")
		case p < 70: // record insert
			recCount++
			rid := fmt.Sprintf("f-%04d", recCount)
			gene := []string{"TP53", "BRCA1", "EGFR", "MYC"}[rng.Intn(4)]
			score := rng.Float64()
			add("insert-record "+rid, func(s Sink) error {
				return s.InsertRecord("findings", relstore.Row{
					relstore.S(rid), relstore.S(gene), relstore.F(score),
				})
			})
		case p < 82: // new sequence + interval annotation on it
			seqCount++
			sid := fmt.Sprintf("seq-%03d", seqCount)
			residues := randDNA(rng, 120+rng.Intn(200))
			add("register-sequence "+sid, func(s Sink) error {
				sq, err := seq.New(sid, seq.DNA, residues)
				if err != nil {
					return err
				}
				return s.RegisterSequence(sq)
			})
			lo := int64(rng.Intn(60))
			hi := lo + 10 + int64(rng.Intn(40))
			commits++
			id := uint64(commits)
			live = append(live, id)
			add("commit-interval "+sid, func(s Sink) error {
				m, err := s.MarkSequenceInterval(sid, interval.Interval{Lo: lo, Hi: hi})
				if err != nil {
					return err
				}
				_, err = s.Commit(s.NewAnnotation().
					Creator("chen").Date("2007-09-01").
					Body("conserved motif in " + sid).
					Refer(m))
				return err
			})
		default: // delete an earlier annotation
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			add(fmt.Sprintf("delete-annotation %d", victim), func(s Sink) error {
				return s.DeleteAnnotation(victim)
			})
		}
	}
	return ops
}

// ApplyOps applies ops[from:to] (0-based slice bounds in op order) to a
// sink, failing on the first error.
func ApplyOps(s Sink, ops []RecoveryOp) error {
	for _, op := range ops {
		if err := op.Apply(s); err != nil {
			return fmt.Errorf("workload: op %d (%s): %w", op.Seq, op.Name, err)
		}
	}
	return nil
}
