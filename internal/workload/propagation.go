package workload

import (
	"fmt"
	"math/rand"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/prop"
)

// PropagationConfig sizes the propagation study: a single shared
// coordinate domain densely covered with interval annotations carrying
// ontology term references, under a rule set exercising every
// propagation edge the engine supports.
type PropagationConfig struct {
	Seed int64
	// Sequences tile the shared domain.
	Sequences int
	// SeqLen is residues per sequence; sequences overlap by half.
	SeqLen int
	// Annotations is the committed annotation count.
	Annotations int
	// Span is the width of each annotation's interval mark. Together
	// with Annotations and the domain length it controls the overlap
	// degree — the fan-out of the overlap rule.
	Span int64
	// TermFraction (0..100) is the percentage of annotations carrying an
	// ontology term reference (closure-rule sources).
	TermFraction int
	// SkipRules generates the same store but installs no rules — the
	// control arm for benchmarks isolating the engine's marginal cost.
	SkipRules bool
}

// DefaultPropagation is a laptop-scale configuration with a mean overlap
// degree of a few facts per annotation.
var DefaultPropagation = PropagationConfig{
	Seed: 42, Sequences: 8, SeqLen: 25_000, Annotations: 2_000,
	Span: 40, TermFraction: 30,
}

// PropagationStudy is the generated propagation workload.
type PropagationStudy struct {
	Store  *core.Store
	Engine *prop.Engine
	// Domain is the shared coordinate domain all marks land in.
	Domain string
	// AnnotationIDs lists every committed annotation.
	AnnotationIDs []uint64
	// RuleIDs lists the installed rules.
	RuleIDs []string
}

// Propagation generates the propagation study: one shared domain,
// overlapping interval annotations (a fraction keyword-tagged
// "hotspot", a fraction term-tagged under the enzyme ontology), and
// rules for the overlap, closure and shared-referent edges. The store
// is deterministic in cfg.Seed.
func Propagation(cfg PropagationConfig) (*PropagationStudy, error) {
	// Default only the unset size fields; flags like SkipRules and an
	// explicit Seed/Annotations must survive partial configs.
	if cfg.Sequences <= 0 {
		cfg.Sequences = DefaultPropagation.Sequences
	}
	if cfg.SeqLen <= 0 {
		cfg.SeqLen = DefaultPropagation.SeqLen
	}
	if cfg.Annotations <= 0 {
		cfg.Annotations = DefaultPropagation.Annotations
	}
	if cfg.Span <= 0 {
		cfg.Span = DefaultPropagation.Span
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := core.NewStore()
	study := &PropagationStudy{Store: s, Domain: "chr1"}

	if err := s.RegisterOntology(EnzymeOntology()); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Sequences; i++ {
		id := fmt.Sprintf("NC_P%03d", i)
		sq, err := seq.New(id, seq.DNA, randDNA(rng, cfg.SeqLen))
		if err != nil {
			return nil, err
		}
		sq.Domain = study.Domain
		sq.Offset = int64(i * cfg.SeqLen / 2)
		if err := s.RegisterSequence(sq); err != nil {
			return nil, err
		}
	}
	domainLen := int64(cfg.Sequences+1) * int64(cfg.SeqLen) / 2

	terms := []string{"protease", "serine-protease", "metallo-protease", "kinase", "polymerase"}
	for i := 0; i < cfg.Annotations; i++ {
		lo := rng.Int63n(domainLen - cfg.Span)
		m, err := s.MarkDomainInterval(study.Domain, interval.Interval{Lo: lo, Hi: lo + cfg.Span})
		if err != nil {
			return nil, err
		}
		body := "signal window"
		if rng.Intn(4) == 0 {
			body = "hotspot signal window"
		}
		b := s.NewAnnotation().
			Creator("propgen").Date("2026-01-01").
			Title(fmt.Sprintf("window %d", i)).
			Body(body).Refer(m)
		if rng.Intn(100) < cfg.TermFraction {
			b.OntologyRef("go", terms[rng.Intn(len(terms))])
		}
		ann, err := s.Commit(b)
		if err != nil {
			return nil, err
		}
		study.AnnotationIDs = append(study.AnnotationIDs, ann.ID)
	}

	if cfg.SkipRules {
		return study, nil
	}
	study.Engine = prop.Attach(s)
	rules := []prop.Rule{
		{ID: "p-overlap", Edge: prop.EdgeOverlap, Domain: study.Domain},
		{ID: "p-hotspot", Edge: prop.EdgeOverlap, Keyword: "hotspot", Domain: study.Domain},
		{ID: "p-closure", Edge: prop.EdgeOntologyClosure, Ontology: "go"},
		{ID: "p-shared", Edge: prop.EdgeSharedReferent},
	}
	// One batch: one derived recompute over the study, not one per rule.
	if err := study.Engine.AddRules(rules...); err != nil {
		return nil, err
	}
	for _, r := range rules {
		study.RuleIDs = append(study.RuleIDs, r.ID)
	}
	return study, nil
}
