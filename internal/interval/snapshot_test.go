package interval

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSnapshotImmutable pins a snapshot, keeps mutating the tree, and
// checks the snapshot still answers exactly as it did at capture time —
// the property core.Store relies on to publish lock-free read views.
func TestSnapshotImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Tree[int]
	insertRand := func(id uint64) {
		lo := rng.Int63n(10_000)
		if err := tr.Insert(Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(300)}, id, int(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		insertRand(i)
	}

	snap := tr.Snapshot()
	wantAll := snap.All()
	wantSpan, _ := snap.Span()
	q := Interval{Lo: 2000, Hi: 2600}
	wantOverlap := snap.Overlapping(q)
	wantNext, wantNextOK := snap.Next(Interval{Lo: 0, Hi: 5000})

	// Churn: deletions, insertions, enough to force many rotations.
	for i := uint64(0); i < 400; i++ {
		tr.Delete(i)
	}
	for i := uint64(1000); i < 1800; i++ {
		insertRand(i)
	}

	if got := snap.All(); !reflect.DeepEqual(got, wantAll) {
		t.Fatalf("snapshot All changed after mutation: %d vs %d entries", len(got), len(wantAll))
	}
	if got, _ := snap.Span(); got != wantSpan {
		t.Fatalf("snapshot Span changed: %v vs %v", got, wantSpan)
	}
	if got := snap.Overlapping(q); !reflect.DeepEqual(got, wantOverlap) {
		t.Fatalf("snapshot Overlapping changed")
	}
	if got, ok := snap.Next(Interval{Lo: 0, Hi: 5000}); ok != wantNextOK || got != wantNext {
		t.Fatalf("snapshot Next changed")
	}
	if snap.Len() != len(wantAll) {
		t.Fatalf("snapshot Len %d != %d", snap.Len(), len(wantAll))
	}

	// The live tree, meanwhile, reflects the churn.
	if tr.Len() != 500-400+800 {
		t.Fatalf("live tree Len = %d", tr.Len())
	}
	// And a fresh snapshot agrees with the live tree.
	if got := tr.Snapshot().All(); !reflect.DeepEqual(got, tr.All()) {
		t.Fatal("fresh snapshot disagrees with live tree")
	}
}
