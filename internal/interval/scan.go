package interval

import (
	"fmt"
	"sort"
)

// Scan is a naive, unindexed collection of intervals that answers the same
// queries as Tree by linear search. It is the baseline for the A2 ablation
// (interval tree vs. scan) and the oracle for the tree's property tests.
type Scan[V any] struct {
	entries []Entry[V]
	ids     map[uint64]int
}

// Len reports the number of entries.
func (s *Scan[V]) Len() int { return len(s.entries) }

// Insert adds an entry, enforcing the same contract as Tree.Insert.
func (s *Scan[V]) Insert(iv Interval, id uint64, val V) error {
	if !iv.Valid() {
		return fmt.Errorf("%w: %v", ErrInvalid, iv)
	}
	if s.ids == nil {
		s.ids = make(map[uint64]int)
	}
	if _, dup := s.ids[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	s.ids[id] = len(s.entries)
	s.entries = append(s.entries, Entry[V]{Interval: iv, ID: id, Value: val})
	return nil
}

// Delete removes the entry with the given ID, reporting whether it existed.
func (s *Scan[V]) Delete(id uint64) bool {
	i, ok := s.ids[id]
	if !ok {
		return false
	}
	last := len(s.entries) - 1
	s.entries[i] = s.entries[last]
	s.ids[s.entries[i].ID] = i
	s.entries = s.entries[:last]
	delete(s.ids, id)
	return true
}

// Stab returns all entries containing p in (Lo, Hi, ID) order.
func (s *Scan[V]) Stab(p int64) []Entry[V] {
	return s.Overlapping(Interval{p, p + 1})
}

// Overlapping returns all entries overlapping q in (Lo, Hi, ID) order.
func (s *Scan[V]) Overlapping(q Interval) []Entry[V] {
	if !q.Valid() {
		return nil
	}
	var out []Entry[V]
	for _, e := range s.entries {
		if e.Overlaps(q) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// CountOverlapping returns the number of entries overlapping q.
func (s *Scan[V]) CountOverlapping(q Interval) int {
	if !q.Valid() {
		return 0
	}
	n := 0
	for _, e := range s.entries {
		if e.Overlaps(q) {
			n++
		}
	}
	return n
}

// Next returns the first entry after iv in (Lo, Hi, ID) order, mirroring
// Tree.Next.
func (s *Scan[V]) Next(iv Interval) (Entry[V], bool) {
	var best Entry[V]
	found := false
	for _, e := range s.entries {
		if e.Lo < iv.Hi {
			continue
		}
		if !found || less(e, best) {
			best, found = e, true
		}
	}
	return best, found
}
