package interval

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalValidity(t *testing.T) {
	tests := []struct {
		iv    Interval
		valid bool
	}{
		{Interval{0, 1}, true},
		{Interval{-5, 5}, true},
		{Interval{3, 3}, false},
		{Interval{4, 2}, false},
	}
	for _, tc := range tests {
		if got := tc.iv.Valid(); got != tc.valid {
			t.Errorf("%v.Valid() = %v, want %v", tc.iv, got, tc.valid)
		}
	}
}

func TestOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 10}, Interval{5, 15}, true},
		{Interval{0, 10}, Interval{10, 20}, false}, // half-open: touching does not overlap
		{Interval{0, 10}, Interval{9, 10}, true},
		{Interval{5, 6}, Interval{0, 100}, true},
		{Interval{0, 1}, Interval{2, 3}, false},
		{Interval{-10, -5}, Interval{-7, 0}, true},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("Overlaps not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{Interval{0, 10}, Interval{5, 15}, Interval{5, 10}, true},
		{Interval{0, 10}, Interval{10, 20}, Interval{}, false},
		{Interval{0, 100}, Interval{40, 60}, Interval{40, 60}, true},
		{Interval{0, 5}, Interval{0, 5}, Interval{0, 5}, true},
	}
	for _, tc := range tests {
		got, ok := tc.a.Intersect(tc.b)
		if ok != tc.wantOK || got != tc.want {
			t.Errorf("%v.Intersect(%v) = (%v,%v), want (%v,%v)", tc.a, tc.b, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestUnionPrecedesContains(t *testing.T) {
	a, b := Interval{0, 5}, Interval{10, 20}
	if got := a.Union(b); got != (Interval{0, 20}) {
		t.Errorf("Union = %v", got)
	}
	if !a.Precedes(b) || b.Precedes(a) {
		t.Error("Precedes wrong")
	}
	if !a.Contains(0) || a.Contains(5) || !a.Contains(4) {
		t.Error("Contains wrong at boundaries")
	}
	if a.Len() != 5 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestTreeInsertErrors(t *testing.T) {
	var tr Tree[string]
	if err := tr.Insert(Interval{5, 5}, 1, "x"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty interval: err = %v, want ErrInvalid", err)
	}
	if err := tr.Insert(Interval{0, 10}, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Interval{20, 30}, 1, "y"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate id: err = %v, want ErrDuplicateID", err)
	}
}

func TestTreeStab(t *testing.T) {
	var tr Tree[string]
	mustInsert(t, &tr, Interval{0, 10}, 1)
	mustInsert(t, &tr, Interval{5, 15}, 2)
	mustInsert(t, &tr, Interval{20, 30}, 3)
	tests := []struct {
		p    int64
		want []uint64
	}{
		{0, []uint64{1}},
		{5, []uint64{1, 2}},
		{9, []uint64{1, 2}},
		{10, []uint64{2}},
		{15, nil},
		{25, []uint64{3}},
		{30, nil},
		{-1, nil},
	}
	for _, tc := range tests {
		got := ids(tr.Stab(tc.p))
		if !equalIDs(got, tc.want) {
			t.Errorf("Stab(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestTreeNext(t *testing.T) {
	var tr Tree[string]
	mustInsert(t, &tr, Interval{0, 10}, 1)
	mustInsert(t, &tr, Interval{10, 20}, 2)
	mustInsert(t, &tr, Interval{15, 25}, 3)
	mustInsert(t, &tr, Interval{40, 50}, 4)

	e, ok := tr.Next(Interval{0, 10})
	if !ok || e.ID != 2 {
		t.Fatalf("Next([0,10)) = (%v,%v), want entry 2", e, ok)
	}
	e, ok = tr.Next(Interval{10, 12})
	if !ok || e.ID != 3 {
		t.Fatalf("Next([10,12)) = (%v,%v), want entry 3", e, ok)
	}
	e, ok = tr.Next(Interval{20, 30})
	if !ok || e.ID != 4 {
		t.Fatalf("Next([20,30)) = (%v,%v), want entry 4", e, ok)
	}
	if _, ok = tr.Next(Interval{45, 60}); ok {
		t.Fatal("Next past the last entry should report !ok")
	}
}

func TestTreeDelete(t *testing.T) {
	var tr Tree[int]
	const n = 2000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		lo := int64(rng.Intn(100_000))
		mustInsertVal(t, &tr, Interval{lo, lo + int64(1+rng.Intn(500))}, uint64(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for _, i := range rng.Perm(n) {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if got := tr.Overlapping(Interval{0, 200_000}); len(got) != 0 {
		t.Fatalf("%d entries remain after deleting all", len(got))
	}
	if tr.Delete(0) {
		t.Fatal("Delete on empty tree reported a hit")
	}
}

func TestTreeSpan(t *testing.T) {
	var tr Tree[struct{}]
	if _, ok := tr.Span(); ok {
		t.Fatal("Span of empty tree reported ok")
	}
	mustInsert2(t, &tr, Interval{10, 20}, 1)
	mustInsert2(t, &tr, Interval{-5, 3}, 2)
	mustInsert2(t, &tr, Interval{100, 400}, 3)
	span, ok := tr.Span()
	if !ok || span != (Interval{-5, 400}) {
		t.Fatalf("Span = (%v,%v), want ([-5,400), true)", span, ok)
	}
}

func TestTreeBalanced(t *testing.T) {
	var tr Tree[struct{}]
	for i := 0; i < 1<<14; i++ {
		mustInsert2(t, &tr, Interval{int64(i), int64(i + 1)}, uint64(i))
	}
	// A perfectly balanced tree of 2^14 nodes has height 14; AVL allows
	// ~1.44 * log2(n).
	if h := tr.Height(); h > 21 {
		t.Fatalf("Height = %d for 16384 sequential inserts; tree is unbalanced", h)
	}
}

func TestVisitOverlappingEarlyStop(t *testing.T) {
	var tr Tree[struct{}]
	for i := 0; i < 100; i++ {
		mustInsert2(t, &tr, Interval{0, 1000}, uint64(i))
	}
	count := 0
	tr.VisitOverlapping(Interval{5, 6}, func(Entry[struct{}]) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("visited %d entries, want 7", count)
	}
}

func TestScanMatchesTreeSmall(t *testing.T) {
	var tr Tree[int]
	var sc Scan[int]
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		lo := int64(rng.Intn(1000))
		iv := Interval{lo, lo + int64(1+rng.Intn(60))}
		mustInsertVal(t, &tr, iv, uint64(i), i)
		if err := sc.Insert(iv, uint64(i), i); err != nil {
			t.Fatal(err)
		}
	}
	for q := int64(-10); q < 1100; q += 13 {
		qiv := Interval{q, q + 37}
		a, b := ids(tr.Overlapping(qiv)), ids(sc.Overlapping(qiv))
		if !equalIDs(a, b) {
			t.Fatalf("Overlapping(%v): tree %v, scan %v", qiv, a, b)
		}
		ta, oka := tr.Next(qiv)
		sa, okb := sc.Next(qiv)
		if oka != okb || (oka && ta.ID != sa.ID) {
			t.Fatalf("Next(%v): tree (%v,%v), scan (%v,%v)", qiv, ta, oka, sa, okb)
		}
	}
}

// TestQuickTreeVsScan drives random insert/delete/query sequences against
// the tree and the naive oracle.
func TestQuickTreeVsScan(t *testing.T) {
	type op struct {
		Lo   int16
		Len  uint8
		Del  bool
		Seed uint8
	}
	check := func(ops []op) bool {
		var tr Tree[int]
		var sc Scan[int]
		nextID := uint64(0)
		live := []uint64{}
		for _, o := range ops {
			if o.Del && len(live) > 0 {
				id := live[int(o.Seed)%len(live)]
				live = append(live[:indexOf(live, id)], live[indexOf(live, id)+1:]...)
				if tr.Delete(id) != sc.Delete(id) {
					return false
				}
				continue
			}
			iv := Interval{int64(o.Lo), int64(o.Lo) + int64(o.Len) + 1}
			id := nextID
			nextID++
			live = append(live, id)
			if err := tr.Insert(iv, id, 0); err != nil {
				return false
			}
			if err := sc.Insert(iv, id, 0); err != nil {
				return false
			}
		}
		for q := int64(-300); q <= 300; q += 37 {
			qiv := Interval{q, q + 50}
			if !equalIDs(ids(tr.Overlapping(qiv)), ids(sc.Overlapping(qiv))) {
				return false
			}
			if tr.CountOverlapping(qiv) != sc.CountOverlapping(qiv) {
				return false
			}
			te, tok := tr.Next(qiv)
			se, sok := sc.Next(qiv)
			if tok != sok || (tok && te.ID != se.ID) {
				return false
			}
		}
		return tr.Len() == sc.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntersectAlgebra checks algebraic identities of the SUB_X
// intersect operator.
func TestQuickIntersectAlgebra(t *testing.T) {
	mk := func(lo int16, ln uint8) Interval {
		return Interval{int64(lo), int64(lo) + int64(ln) + 1}
	}
	commutative := func(alo int16, aln uint8, blo int16, bln uint8) bool {
		a, b := mk(alo, aln), mk(blo, bln)
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		return okx == oky && x == y
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("intersect not commutative: %v", err)
	}
	idempotent := func(alo int16, aln uint8) bool {
		a := mk(alo, aln)
		x, ok := a.Intersect(a)
		return ok && x == a
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("intersect not idempotent: %v", err)
	}
	consistent := func(alo int16, aln uint8, blo int16, bln uint8) bool {
		a, b := mk(alo, aln), mk(blo, bln)
		_, ok := a.Intersect(b)
		return ok == a.Overlaps(b)
	}
	if err := quick.Check(consistent, nil); err != nil {
		t.Errorf("intersect/ifOverlap inconsistent: %v", err)
	}
	shrinking := func(alo int16, aln uint8, blo int16, bln uint8) bool {
		a, b := mk(alo, aln), mk(blo, bln)
		x, ok := a.Intersect(b)
		if !ok {
			return true
		}
		return x.Len() <= a.Len() && x.Len() <= b.Len() && x.Lo >= a.Lo && x.Hi <= a.Hi
	}
	if err := quick.Check(shrinking, nil); err != nil {
		t.Errorf("intersect does not shrink: %v", err)
	}
}

func indexOf(s []uint64, v uint64) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func ids[V any](es []Entry[V]) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]uint64(nil), a...), append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func mustInsert(t *testing.T, tr *Tree[string], iv Interval, id uint64) {
	t.Helper()
	if err := tr.Insert(iv, id, ""); err != nil {
		t.Fatal(err)
	}
}

func mustInsertVal(t *testing.T, tr *Tree[int], iv Interval, id uint64, v int) {
	t.Helper()
	if err := tr.Insert(iv, id, v); err != nil {
		t.Fatal(err)
	}
}

func mustInsert2(t *testing.T, tr *Tree[struct{}], iv Interval, id uint64) {
	t.Helper()
	if err := tr.Insert(iv, id, struct{}{}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeOverlapping(b *testing.B) {
	var tr Tree[int]
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		lo := int64(rng.Intn(10_000_000))
		if err := tr.Insert(Interval{lo, lo + int64(1+rng.Intn(1000))}, uint64(i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(i*7919) % 10_000_000
		tr.CountOverlapping(Interval{q, q + 500})
	}
}
