// Package interval implements the 1-D sub-structure index used by
// Graphitti for sequence data.
//
// The paper stores "the annotated substructures of the primary data … in a
// collection of interval trees for 1D data (e.g. sequences)", keeping the
// number of trees small by maintaining a single tree per chromosome (or
// other shared coordinate domain) rather than one per annotated sequence.
// This package provides that tree, together with the SUB_X operators the
// paper defines on 1-D sub-structures: ifOverlap, next, and intersect.
//
// Intervals are half-open [Lo, Hi) over int64 coordinates, which matches
// common genomic coordinate conventions (0-based, end exclusive).
package interval

import (
	"errors"
	"fmt"
)

// ErrInvalid is returned when an interval with Hi <= Lo is supplied.
var ErrInvalid = errors.New("interval: Hi must be greater than Lo")

// ErrDuplicateID is returned when inserting an entry whose ID is already
// present in the tree.
var ErrDuplicateID = errors.New("interval: duplicate entry ID")

// Interval is a half-open 1-D range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Hi > iv.Lo }

// Len returns the length of the interval.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Contains reports whether the point p lies inside the interval.
func (iv Interval) Contains(p int64) bool { return p >= iv.Lo && p < iv.Hi }

// Overlaps implements the paper's ifOverlap operator for 1-D
// sub-structures: it reports whether the two intervals share at least one
// point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Intersect implements the paper's intersect operator for convex 1-D
// sub-structures. It returns the common sub-interval and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo, hi := max64(iv.Lo, other.Lo), min64(iv.Hi, other.Hi)
	if hi <= lo {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Union returns the convex hull of the two intervals (the smallest interval
// containing both).
func (iv Interval) Union(other Interval) Interval {
	return Interval{min64(iv.Lo, other.Lo), max64(iv.Hi, other.Hi)}
}

// Precedes reports whether iv ends at or before the start of other
// (strictly disjoint, iv first).
func (iv Interval) Precedes(other Interval) bool { return iv.Hi <= other.Lo }

// String renders the interval as "[lo,hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Entry is an interval stored in a Tree together with the identity of the
// mark it represents (a referent ID in Graphitti) and an arbitrary payload.
type Entry[V any] struct {
	Interval
	ID    uint64
	Value V
}

// Tree is an augmented balanced (AVL) interval tree. Entries are ordered by
// (Lo, Hi, ID); every node carries the maximum Hi of its subtree, which
// lets overlap searches prune entire subtrees.
//
// Mutations are path-copying: Insert and Delete allocate fresh nodes along
// the search path and never modify nodes reachable from an earlier root, so
// a Snapshot taken before a mutation remains a consistent, immutable view
// of the tree at that instant. This is the mechanism core.Store uses to
// publish lock-free read views of the per-domain sub-structure indexes.
//
// The zero value is an empty tree ready for use. Tree is not safe for
// concurrent mutation; Snapshots are safe for concurrent reads.
type Tree[V any] struct {
	root *node[V]
	ids  map[uint64]Interval
}

type node[V any] struct {
	entry       Entry[V]
	left, right *node[V]
	height      int8
	maxHi       int64
}

// clone returns a fresh copy of n that mutation may modify freely.
func (n *node[V]) clone() *node[V] {
	c := *n
	return &c
}

// Snapshot is an immutable point-in-time view of a Tree. The zero value is
// an empty snapshot. Snapshots share structure with the tree they were
// taken from; later mutations of the tree never alter a snapshot.
type Snapshot[V any] struct {
	root *node[V]
	size int
}

// Snapshot returns an immutable view of the tree's current contents in
// O(1): path-copying mutation guarantees no node reachable from the
// current root is ever modified in place.
func (t *Tree[V]) Snapshot() Snapshot[V] {
	return Snapshot[V]{root: t.root, size: len(t.ids)}
}

// Len reports the number of entries.
func (t *Tree[V]) Len() int { return len(t.ids) }

// Len reports the number of entries in the snapshot.
func (s Snapshot[V]) Len() int { return s.size }

// Insert adds an entry. The interval must be valid and the ID must not be
// present already.
func (t *Tree[V]) Insert(iv Interval, id uint64, val V) error {
	if !iv.Valid() {
		return fmt.Errorf("%w: %v", ErrInvalid, iv)
	}
	if t.ids == nil {
		t.ids = make(map[uint64]Interval)
	}
	if _, dup := t.ids[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	t.ids[id] = iv
	t.root = insert(t.root, Entry[V]{Interval: iv, ID: id, Value: val})
	return nil
}

// Delete removes the entry with the given ID, reporting whether it existed.
func (t *Tree[V]) Delete(id uint64) bool {
	iv, ok := t.ids[id]
	if !ok {
		return false
	}
	delete(t.ids, id)
	t.root = remove(t.root, iv, id)
	return true
}

// Get returns the interval stored under id.
func (t *Tree[V]) Get(id uint64) (Interval, bool) {
	iv, ok := t.ids[id]
	return iv, ok
}

// Stab returns all entries whose interval contains the point p, in
// (Lo, Hi, ID) order.
func (t *Tree[V]) Stab(p int64) []Entry[V] {
	return t.Snapshot().Stab(p)
}

// Stab returns all entries whose interval contains the point p, in
// (Lo, Hi, ID) order.
func (s Snapshot[V]) Stab(p int64) []Entry[V] {
	return s.Overlapping(Interval{p, p + 1})
}

// Overlapping returns all entries overlapping the query interval, in
// (Lo, Hi, ID) order.
func (t *Tree[V]) Overlapping(q Interval) []Entry[V] {
	return t.Snapshot().Overlapping(q)
}

// Overlapping returns all entries overlapping the query interval, in
// (Lo, Hi, ID) order.
func (s Snapshot[V]) Overlapping(q Interval) []Entry[V] {
	var out []Entry[V]
	s.VisitOverlapping(q, func(e Entry[V]) bool {
		out = append(out, e)
		return true
	})
	return out
}

// VisitOverlapping calls fn for each entry overlapping q in (Lo, Hi, ID)
// order until fn returns false.
func (t *Tree[V]) VisitOverlapping(q Interval, fn func(Entry[V]) bool) {
	t.Snapshot().VisitOverlapping(q, fn)
}

// VisitOverlapping calls fn for each entry overlapping q in (Lo, Hi, ID)
// order until fn returns false.
func (s Snapshot[V]) VisitOverlapping(q Interval, fn func(Entry[V]) bool) {
	if !q.Valid() {
		return
	}
	visitOverlap(s.root, q, fn)
}

func visitOverlap[V any](n *node[V], q Interval, fn func(Entry[V]) bool) bool {
	if n == nil || n.maxHi <= q.Lo {
		return true // nothing in this subtree can reach q
	}
	if !visitOverlap(n.left, q, fn) {
		return false
	}
	if n.entry.Lo < q.Hi {
		if n.entry.Overlaps(q) && !fn(n.entry) {
			return false
		}
		return visitOverlap(n.right, q, fn)
	}
	// Every entry in the right subtree starts at or after n.entry.Lo >=
	// q.Hi, so none can overlap.
	return true
}

// CountOverlapping returns the number of entries overlapping q.
func (t *Tree[V]) CountOverlapping(q Interval) int {
	return t.Snapshot().CountOverlapping(q)
}

// CountOverlapping returns the number of entries overlapping q.
func (s Snapshot[V]) CountOverlapping(q Interval) int {
	n := 0
	s.VisitOverlapping(q, func(Entry[V]) bool {
		n++
		return true
	})
	return n
}

// Next implements the paper's next operator: it returns the first entry
// encountered after iv in the domain ordering, i.e. the entry with the
// smallest (Lo, Hi, ID) such that Lo >= iv.Hi. ok is false when no entry
// follows iv.
func (t *Tree[V]) Next(iv Interval) (Entry[V], bool) {
	return t.Snapshot().Next(iv)
}

// Next returns the first entry after iv in the domain ordering (see
// Tree.Next).
func (s Snapshot[V]) Next(iv Interval) (Entry[V], bool) {
	var best *node[V]
	n := s.root
	for n != nil {
		if n.entry.Lo >= iv.Hi {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return Entry[V]{}, false
	}
	return best.entry, true
}

// All returns every entry in (Lo, Hi, ID) order.
func (t *Tree[V]) All() []Entry[V] {
	return t.Snapshot().All()
}

// All returns every entry in (Lo, Hi, ID) order.
func (s Snapshot[V]) All() []Entry[V] {
	out := make([]Entry[V], 0, s.size)
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.entry)
		walk(n.right)
	}
	walk(s.root)
	return out
}

// Span returns the convex hull of all stored intervals; ok is false when
// the tree is empty.
func (t *Tree[V]) Span() (Interval, bool) {
	return t.Snapshot().Span()
}

// Span returns the convex hull of all stored intervals; ok is false when
// the snapshot is empty.
func (s Snapshot[V]) Span() (Interval, bool) {
	if s.root == nil {
		return Interval{}, false
	}
	n := s.root
	for n.left != nil {
		n = n.left
	}
	return Interval{n.entry.Lo, s.root.maxHi}, true
}

// Height returns the height of the tree; used in tests and diagnostics.
func (t *Tree[V]) Height() int { return int(height(t.root)) }

// --- AVL machinery ---

func height[V any](n *node[V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func less[V any](a, b Entry[V]) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.ID < b.ID
}

func update[V any](n *node[V]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.maxHi = n.entry.Hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
}

func balanceFactor[V any](n *node[V]) int8 { return height(n.left) - height(n.right) }

// The rotation helpers receive caller-owned (freshly copied) nodes but
// defensively clone whatever they relink, so no node reachable from a
// published snapshot root is ever modified.

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left.clone()
	n.left = l.right
	l.right = n
	update(n)
	update(l)
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right.clone()
	n.right = r.left
	r.left = n
	update(n)
	update(r)
	return r
}

// rebalance expects a caller-owned node.
func rebalance[V any](n *node[V]) *node[V] {
	update(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left.clone())
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right.clone())
		}
		return rotateLeft(n)
	}
	return n
}

// insert adds e below n, copying every node on the search path (and any
// node touched by a rotation) so earlier roots stay intact.
func insert[V any](n *node[V], e Entry[V]) *node[V] {
	if n == nil {
		return &node[V]{entry: e, height: 1, maxHi: e.Hi}
	}
	c := n.clone()
	if less(e, c.entry) {
		c.left = insert(c.left, e)
	} else {
		c.right = insert(c.right, e)
	}
	return rebalance(c)
}

// remove deletes (iv, id) below n, path-copying like insert.
func remove[V any](n *node[V], iv Interval, id uint64) *node[V] {
	if n == nil {
		return nil
	}
	probe := Entry[V]{Interval: iv, ID: id}
	c := n.clone()
	switch {
	case less(probe, c.entry):
		c.left = remove(c.left, iv, id)
	case less(c.entry, probe):
		c.right = remove(c.right, iv, id)
	default:
		// Found the node to delete.
		if c.left == nil {
			return c.right
		}
		if c.right == nil {
			return c.left
		}
		// Replace with in-order successor.
		succ := c.right
		for succ.left != nil {
			succ = succ.left
		}
		c.entry = succ.entry
		c.right = remove(c.right, succ.entry.Interval, succ.entry.ID)
	}
	return rebalance(c)
}
