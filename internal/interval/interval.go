// Package interval implements the 1-D sub-structure index used by
// Graphitti for sequence data.
//
// The paper stores "the annotated substructures of the primary data … in a
// collection of interval trees for 1D data (e.g. sequences)", keeping the
// number of trees small by maintaining a single tree per chromosome (or
// other shared coordinate domain) rather than one per annotated sequence.
// This package provides that tree, together with the SUB_X operators the
// paper defines on 1-D sub-structures: ifOverlap, next, and intersect.
//
// Intervals are half-open [Lo, Hi) over int64 coordinates, which matches
// common genomic coordinate conventions (0-based, end exclusive).
package interval

import (
	"errors"
	"fmt"
)

// ErrInvalid is returned when an interval with Hi <= Lo is supplied.
var ErrInvalid = errors.New("interval: Hi must be greater than Lo")

// ErrDuplicateID is returned when inserting an entry whose ID is already
// present in the tree.
var ErrDuplicateID = errors.New("interval: duplicate entry ID")

// Interval is a half-open 1-D range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Hi > iv.Lo }

// Len returns the length of the interval.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Contains reports whether the point p lies inside the interval.
func (iv Interval) Contains(p int64) bool { return p >= iv.Lo && p < iv.Hi }

// Overlaps implements the paper's ifOverlap operator for 1-D
// sub-structures: it reports whether the two intervals share at least one
// point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Intersect implements the paper's intersect operator for convex 1-D
// sub-structures. It returns the common sub-interval and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo, hi := max64(iv.Lo, other.Lo), min64(iv.Hi, other.Hi)
	if hi <= lo {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Union returns the convex hull of the two intervals (the smallest interval
// containing both).
func (iv Interval) Union(other Interval) Interval {
	return Interval{min64(iv.Lo, other.Lo), max64(iv.Hi, other.Hi)}
}

// Precedes reports whether iv ends at or before the start of other
// (strictly disjoint, iv first).
func (iv Interval) Precedes(other Interval) bool { return iv.Hi <= other.Lo }

// String renders the interval as "[lo,hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Entry is an interval stored in a Tree together with the identity of the
// mark it represents (a referent ID in Graphitti) and an arbitrary payload.
type Entry[V any] struct {
	Interval
	ID    uint64
	Value V
}

// Tree is an augmented balanced (AVL) interval tree. Entries are ordered by
// (Lo, Hi, ID); every node carries the maximum Hi of its subtree, which
// lets overlap searches prune entire subtrees.
//
// The zero value is an empty tree ready for use. Tree is not safe for
// concurrent mutation.
type Tree[V any] struct {
	root *node[V]
	ids  map[uint64]Interval
}

type node[V any] struct {
	entry       Entry[V]
	left, right *node[V]
	height      int8
	maxHi       int64
}

// Len reports the number of entries.
func (t *Tree[V]) Len() int { return len(t.ids) }

// Insert adds an entry. The interval must be valid and the ID must not be
// present already.
func (t *Tree[V]) Insert(iv Interval, id uint64, val V) error {
	if !iv.Valid() {
		return fmt.Errorf("%w: %v", ErrInvalid, iv)
	}
	if t.ids == nil {
		t.ids = make(map[uint64]Interval)
	}
	if _, dup := t.ids[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	t.ids[id] = iv
	t.root = insert(t.root, Entry[V]{Interval: iv, ID: id, Value: val})
	return nil
}

// Delete removes the entry with the given ID, reporting whether it existed.
func (t *Tree[V]) Delete(id uint64) bool {
	iv, ok := t.ids[id]
	if !ok {
		return false
	}
	delete(t.ids, id)
	t.root = remove(t.root, iv, id)
	return true
}

// Get returns the interval stored under id.
func (t *Tree[V]) Get(id uint64) (Interval, bool) {
	iv, ok := t.ids[id]
	return iv, ok
}

// Stab returns all entries whose interval contains the point p, in
// (Lo, Hi, ID) order.
func (t *Tree[V]) Stab(p int64) []Entry[V] {
	return t.Overlapping(Interval{p, p + 1})
}

// Overlapping returns all entries overlapping the query interval, in
// (Lo, Hi, ID) order.
func (t *Tree[V]) Overlapping(q Interval) []Entry[V] {
	var out []Entry[V]
	t.VisitOverlapping(q, func(e Entry[V]) bool {
		out = append(out, e)
		return true
	})
	return out
}

// VisitOverlapping calls fn for each entry overlapping q in (Lo, Hi, ID)
// order until fn returns false.
func (t *Tree[V]) VisitOverlapping(q Interval, fn func(Entry[V]) bool) {
	if !q.Valid() {
		return
	}
	visitOverlap(t.root, q, fn)
}

func visitOverlap[V any](n *node[V], q Interval, fn func(Entry[V]) bool) bool {
	if n == nil || n.maxHi <= q.Lo {
		return true // nothing in this subtree can reach q
	}
	if !visitOverlap(n.left, q, fn) {
		return false
	}
	if n.entry.Lo < q.Hi {
		if n.entry.Overlaps(q) && !fn(n.entry) {
			return false
		}
		return visitOverlap(n.right, q, fn)
	}
	// Every entry in the right subtree starts at or after n.entry.Lo >=
	// q.Hi, so none can overlap.
	return true
}

// CountOverlapping returns the number of entries overlapping q.
func (t *Tree[V]) CountOverlapping(q Interval) int {
	n := 0
	t.VisitOverlapping(q, func(Entry[V]) bool {
		n++
		return true
	})
	return n
}

// Next implements the paper's next operator: it returns the first entry
// encountered after iv in the domain ordering, i.e. the entry with the
// smallest (Lo, Hi, ID) such that Lo >= iv.Hi. ok is false when no entry
// follows iv.
func (t *Tree[V]) Next(iv Interval) (Entry[V], bool) {
	var best *node[V]
	n := t.root
	for n != nil {
		if n.entry.Lo >= iv.Hi {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return Entry[V]{}, false
	}
	return best.entry, true
}

// All returns every entry in (Lo, Hi, ID) order.
func (t *Tree[V]) All() []Entry[V] {
	out := make([]Entry[V], 0, t.Len())
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.entry)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// Span returns the convex hull of all stored intervals; ok is false when
// the tree is empty.
func (t *Tree[V]) Span() (Interval, bool) {
	if t.root == nil {
		return Interval{}, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return Interval{n.entry.Lo, t.root.maxHi}, true
}

// Height returns the height of the tree; used in tests and diagnostics.
func (t *Tree[V]) Height() int { return int(height(t.root)) }

// --- AVL machinery ---

func height[V any](n *node[V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func less[V any](a, b Entry[V]) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.ID < b.ID
}

func update[V any](n *node[V]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.maxHi = n.entry.Hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
}

func balanceFactor[V any](n *node[V]) int8 { return height(n.left) - height(n.right) }

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left
	n.left = l.right
	l.right = n
	update(n)
	update(l)
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right
	n.right = r.left
	r.left = n
	update(n)
	update(r)
	return r
}

func rebalance[V any](n *node[V]) *node[V] {
	update(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert[V any](n *node[V], e Entry[V]) *node[V] {
	if n == nil {
		nn := &node[V]{entry: e, height: 1, maxHi: e.Hi}
		return nn
	}
	if less(e, n.entry) {
		n.left = insert(n.left, e)
	} else {
		n.right = insert(n.right, e)
	}
	return rebalance(n)
}

func remove[V any](n *node[V], iv Interval, id uint64) *node[V] {
	if n == nil {
		return nil
	}
	probe := Entry[V]{Interval: iv, ID: id}
	switch {
	case less(probe, n.entry):
		n.left = remove(n.left, iv, id)
	case less(n.entry, probe):
		n.right = remove(n.right, iv, id)
	default:
		// Found the node to delete.
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.entry = succ.entry
		n.right = remove(n.right, succ.entry.Interval, succ.entry.ID)
	}
	return rebalance(n)
}
