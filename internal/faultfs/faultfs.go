// Package faultfs injects disk faults into the durable storage stack.
//
// The WAL writer and the durable store's checkpoint path consult an
// optional Injector before every file operation they perform — write,
// fdatasync, file create, rename, truncate, directory sync, remove. A nil
// injector costs one pointer comparison; a non-nil one can fail any
// chosen operation with EIO, ENOSPC, a torn (short) write, or any other
// error, deterministically (Script: the Nth occurrence of an op) or
// randomly under a fixed seed (Flaky). Production code never sets an
// injector; the fault-injection harness in internal/durable drives
// everything through it.
//
// The injected error stands in for the real syscall failing: the callee
// must react exactly as it would to a genuine EIO — poison the WAL
// writer, refuse the compaction, degrade the store — which is what the
// harness asserts.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"syscall"
)

// Op identifies one fault-injectable file operation.
type Op uint8

const (
	// OpWrite is a data write to an open file (WAL frames, the file
	// header). A Fault with Short > 0 tears it: a prefix reaches the
	// file before the error.
	OpWrite Op = iota
	// OpSync is fdatasync/fsync of an open file — the durability point.
	OpSync
	// OpCreate is opening a file for writing (WAL creation, snapshot and
	// manifest tmp files).
	OpCreate
	// OpRename is the atomic rename that commits a snapshot or manifest.
	OpRename
	// OpTruncate is truncating the WAL's torn tail at open.
	OpTruncate
	// OpDirSync is fsyncing a directory to persist creates/renames.
	OpDirSync
	// OpRemove is deleting a file (stale-snapshot cleanup after a
	// compaction commits). The callers are best-effort — an injected
	// failure must leave the file in place, never degrade the store.
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	case OpDirSync:
		return "dirsync"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrInjected marks every error produced by this package; errors.Is
// distinguishes an injected fault from a real disk failure in tests.
var ErrInjected = errors.New("injected fault")

// Errno builds an injected error carrying a syscall errno; errors.Is
// matches both ErrInjected and the errno (so code mapping ENOSPC
// specially sees the injected one too).
func Errno(op Op, errno syscall.Errno) error {
	return fmt.Errorf("faultfs: %s: %w: %w", op, ErrInjected, errno)
}

// Fault is what an injector returns to fail one operation.
type Fault struct {
	// Err is returned in place of performing the operation.
	Err error
	// Short applies to OpWrite only: this many leading bytes are
	// actually written before Err is returned — a torn write, as a
	// partial block flush before power-lossy media errors out.
	Short int
}

// Injector decides, immediately before each file operation, whether to
// fail it. Implementations must be safe for concurrent use: the WAL
// flusher goroutine and a compacting writer touch disk concurrently.
// Returning nil performs the real operation.
type Injector interface {
	Decide(op Op, path string) *Fault
}

// Check consults an optional injector and returns the injected error,
// if any. It is the nil-safe form callers without torn-write handling
// use.
func Check(inj Injector, op Op, path string) error {
	if inj == nil {
		return nil
	}
	if f := inj.Decide(op, path); f != nil {
		return f.Err
	}
	return nil
}

// scriptRule is one scheduled fault: the Nth matching operation
// observed after the rule was added fails.
type scriptRule struct {
	op   Op
	sub  string // substring of the path; empty matches every path
	n    int    // 1-based occurrence
	seen int
	f    Fault
	used bool
}

// Script injects faults at exact operation counts: FailAt(op, n, f)
// fails the nth occurrence of op observed after the call (counting only
// ops that match), so a test can run a store past its setup phase, arm
// a fault, and know precisely which syscall dies. Zero value is a
// pass-through injector that merely counts.
type Script struct {
	mu     sync.Mutex
	counts map[Op]int
	rules  []*scriptRule
}

// NewScript returns an empty (pass-through) script.
func NewScript() *Script { return &Script{} }

// FailAt schedules the nth occurrence (1-based) of op from now on to
// fail with f. Returns the script for chaining.
func (s *Script) FailAt(op Op, n int, f Fault) *Script {
	return s.FailPath(op, "", n, f)
}

// FailPath is FailAt restricted to operations whose path contains sub.
func (s *Script) FailPath(op Op, sub string, n int, f Fault) *Script {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, &scriptRule{op: op, sub: sub, n: n, f: f})
	return s
}

// Clear drops every scheduled fault — the disk is repaired. Counters
// keep running.
func (s *Script) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = nil
}

// Count reports how many operations of a kind have been observed.
func (s *Script) Count(op Op) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[op]
}

// Decide implements Injector.
func (s *Script) Decide(op Op, path string) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = make(map[Op]int)
	}
	s.counts[op]++
	for _, r := range s.rules {
		if r.used || r.op != op {
			continue
		}
		if r.sub != "" && !strings.Contains(path, r.sub) {
			continue
		}
		r.seen++
		if r.seen == r.n {
			r.used = true
			f := r.f
			return &f
		}
	}
	return nil
}

// FlakyConfig sizes a Flaky injector.
type FlakyConfig struct {
	// Seed fixes the randomness: same seed, same faults at the same
	// operation indices.
	Seed int64
	// SkipOps passes through this many eligible operations before any
	// fault can fire (lets a store open cleanly).
	SkipOps int
	// FailProb is the per-operation fault probability once SkipOps is
	// exhausted.
	FailProb float64
	// MaxFaults bounds the total faults injected (0 = 1).
	MaxFaults int
	// Kinds restricts which operations are eligible; empty = all.
	Kinds []Op
}

// Flaky injects randomized faults under a fixed seed: after a warm-up,
// each eligible operation fails with the configured probability until
// the fault budget is spent, choosing EIO, ENOSPC, or (for writes) a
// torn write at random. Disable turns it into a pass-through — the
// repaired-disk phase of a recovery test.
type Flaky struct {
	mu       sync.Mutex
	rng      *rand.Rand
	skip     int
	prob     float64
	budget   int
	kinds    map[Op]bool
	disabled bool
	injected []string
}

// NewFlaky builds a seeded randomized injector.
func NewFlaky(cfg FlakyConfig) *Flaky {
	f := &Flaky{
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		skip:   cfg.SkipOps,
		prob:   cfg.FailProb,
		budget: cfg.MaxFaults,
	}
	if f.budget <= 0 {
		f.budget = 1
	}
	if len(cfg.Kinds) > 0 {
		f.kinds = make(map[Op]bool, len(cfg.Kinds))
		for _, k := range cfg.Kinds {
			f.kinds[k] = true
		}
	}
	return f
}

// Disable stops all further injection (the disk is repaired).
func (f *Flaky) Disable() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disabled = true
}

// Injected lists the faults fired so far, for test logging.
func (f *Flaky) Injected() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.injected...)
}

// Decide implements Injector.
func (f *Flaky) Decide(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disabled || f.budget == 0 {
		return nil
	}
	if f.kinds != nil && !f.kinds[op] {
		return nil
	}
	if f.skip > 0 {
		f.skip--
		return nil
	}
	if f.rng.Float64() >= f.prob {
		return nil
	}
	f.budget--
	flt := &Fault{}
	switch f.rng.Intn(3) {
	case 0:
		flt.Err = Errno(op, syscall.EIO)
	case 1:
		flt.Err = Errno(op, syscall.ENOSPC)
	default:
		flt.Err = Errno(op, syscall.EIO)
		if op == OpWrite {
			flt.Short = f.rng.Intn(64) // tear the frame a few bytes in
		}
	}
	f.injected = append(f.injected, fmt.Sprintf("%s %s short=%d (%v)", op, path, flt.Short, flt.Err))
	return flt
}
