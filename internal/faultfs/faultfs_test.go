package faultfs

import (
	"errors"
	"sync"
	"syscall"
	"testing"
)

func TestScriptFailsExactOccurrence(t *testing.T) {
	s := NewScript().FailAt(OpSync, 3, Fault{Err: Errno(OpSync, syscall.EIO)})
	for i := 1; i <= 5; i++ {
		f := s.Decide(OpSync, "x.wal")
		if (i == 3) != (f != nil) {
			t.Fatalf("occurrence %d: fault=%v", i, f)
		}
		if i == 3 {
			if !errors.Is(f.Err, ErrInjected) || !errors.Is(f.Err, syscall.EIO) {
				t.Fatalf("fault error chain broken: %v", f.Err)
			}
		}
	}
	// The rule fired once; it never fires again.
	if f := s.Decide(OpSync, "x.wal"); f != nil {
		t.Fatalf("rule fired twice: %v", f)
	}
	if got := s.Count(OpSync); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestScriptCountsFromArming(t *testing.T) {
	s := NewScript()
	// Ops before arming don't count toward the rule.
	s.Decide(OpRename, "a.snap")
	s.Decide(OpRename, "b.snap")
	s.FailPath(OpRename, ".snap", 1, Fault{Err: Errno(OpRename, syscall.ENOSPC)})
	if f := s.Decide(OpRename, "MANIFEST.json"); f != nil {
		t.Fatalf("non-matching path faulted: %v", f)
	}
	if f := s.Decide(OpRename, "c.snap"); f == nil {
		t.Fatal("first matching rename after arming should fault")
	}
}

func TestScriptClearRepairs(t *testing.T) {
	s := NewScript().FailAt(OpWrite, 1, Fault{Err: Errno(OpWrite, syscall.EIO)})
	s.Clear()
	if f := s.Decide(OpWrite, "x"); f != nil {
		t.Fatalf("cleared script still faults: %v", f)
	}
}

func TestFlakyDeterministicAndBounded(t *testing.T) {
	run := func() []string {
		f := NewFlaky(FlakyConfig{Seed: 7, SkipOps: 10, FailProb: 0.2, MaxFaults: 2})
		for i := 0; i < 500; i++ {
			f.Decide(OpWrite, "log")
			f.Decide(OpSync, "log")
		}
		return f.Injected()
	}
	a, b := run(), run()
	if len(a) != 2 {
		t.Fatalf("budget not honored: %d faults (%v)", len(a), a)
	}
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

func TestFlakyDisable(t *testing.T) {
	f := NewFlaky(FlakyConfig{Seed: 1, FailProb: 1, MaxFaults: 100})
	if f.Decide(OpSync, "x") == nil {
		t.Fatal("p=1 injector did not fault")
	}
	f.Disable()
	for i := 0; i < 50; i++ {
		if f.Decide(OpSync, "x") != nil {
			t.Fatal("disabled injector faulted")
		}
	}
}

func TestFlakyKindsFilter(t *testing.T) {
	f := NewFlaky(FlakyConfig{Seed: 1, FailProb: 1, MaxFaults: 100, Kinds: []Op{OpRename}})
	for i := 0; i < 20; i++ {
		if f.Decide(OpSync, "x") != nil {
			t.Fatal("ineligible op faulted")
		}
	}
	if f.Decide(OpRename, "x") == nil {
		t.Fatal("eligible op did not fault")
	}
}

func TestCheckNilInjector(t *testing.T) {
	if err := Check(nil, OpSync, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestScriptConcurrentUse(t *testing.T) {
	s := NewScript().FailAt(OpWrite, 100, Fault{Err: Errno(OpWrite, syscall.EIO)})
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if s.Decide(OpWrite, "x") != nil {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 1 {
		t.Fatalf("rule fired %d times across goroutines, want exactly 1", total)
	}
}
