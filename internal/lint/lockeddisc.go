package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockeddisc: the *Locked suffix is the repo's lock-discipline contract — a
// fooLocked method documents "caller holds the receiver's mutex". Two ways
// to break it, both flagged:
//
//  1. a *Locked method acquiring the receiver's own mutex (self-deadlock
//     with sync.Mutex, silent double-latch with RWMutex);
//  2. calling x.fooLocked from a function that neither has the Locked
//     suffix itself nor acquires any mutex rooted at x in the same body
//     (flow-insensitive: a same-function x.mu.Lock()/RLock() anywhere
//     satisfies the check — ordering is the reviewer's job, presence is
//     the machine's).
var analyzerLockedDisc = &Analyzer{
	Name:    "lockeddisc",
	Doc:     "*Locked methods must be called under the receiver's mutex and must not acquire it themselves",
	Default: true,
	Run:     runLockedDisc,
}

// rootIdent unwinds a selector chain (s.a.b.c) to its base identifier, or
// nil when the chain is rooted in a call or index expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockRoot returns the base identifier of a sync.Mutex/RWMutex
// Lock/RLock acquisition call, or nil if call is not one.
func (p *Package) lockRoot(call *ast.CallExpr) *ast.Ident {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootIdent(sel.X)
}

func runLockedDisc(p *Package) []Finding {
	var out []Finding
	p.eachFuncDecl(func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		selfLocked := strings.HasSuffix(fd.Name.Name, "Locked")
		recvName := ""
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			recvName = fd.Recv.List[0].Names[0].Name
		}

		lockRoots := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if root := p.lockRoot(call); root != nil {
					lockRoots[root.Name] = true
					if selfLocked && recvName != "" && root.Name == recvName {
						out = append(out, p.finding(call.Pos(), "lockeddisc",
							"%s must run with %s's mutex already held, not acquire it", fd.Name.Name, recvName))
					}
				}
			}
			return true
		})

		if selfLocked {
			return // a Locked helper may freely call its Locked siblings
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			root := rootIdent(sel.X)
			if root == nil || lockRoots[root.Name] {
				return true
			}
			out = append(out, p.finding(call.Pos(), "lockeddisc",
				"%s.%s called without a same-function %s.<mutex>.Lock()/RLock(); hold the lock or rename the callee",
				root.Name, sel.Sel.Name, root.Name))
			return true
		})
	})
	return out
}
