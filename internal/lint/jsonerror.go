package lint

import (
	"go/ast"
	"go/constant"
)

// jsonerror: inside package httpapi, every HTTP error must flow through
// jsonError so the JSON envelope (and with it the request ID) can never be
// dropped again. PR 7 found 27 handler sites writing errors without the
// request ID; this rule makes that class of regression impossible.
//
// Flagged, anywhere but inside jsonError itself:
//   - any call to net/http.Error (plain-text body, no envelope);
//   - any WriteHeader call whose argument is a constant >= 400.
//
// WriteHeader with a dynamic status stays legal: the response-writer
// wrappers (statusWriter, traceBuffer) forward an already-decided code,
// and jsonError's own WriteHeader takes a variable.
var analyzerJSONError = &Analyzer{
	Name:    "jsonerror",
	Doc:     "HTTP errors in package httpapi must go through jsonError so the envelope carries the request ID",
	Default: true,
	Run:     runJSONError,
}

func runJSONError(p *Package) []Finding {
	if !p.pkgNamed("httpapi") {
		return nil
	}
	var out []Finding
	p.eachFuncDecl(func(fd *ast.FuncDecl) {
		if fd.Name.Name == "jsonError" || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.calleeFromPkg(call, "http", "Error") {
				out = append(out, p.finding(call.Pos(), "jsonerror",
					"http.Error writes a plain-text body without the request ID; use jsonError"))
				return true
			}
			if fn := p.calleeFunc(call); fn != nil && fn.Name() == "WriteHeader" && len(call.Args) == 1 {
				if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 {
						out = append(out, p.finding(call.Pos(), "jsonerror",
							"WriteHeader(%d) bypasses the JSON error envelope; use jsonError", code))
					}
				}
			}
			return true
		})
	})
	return out
}
