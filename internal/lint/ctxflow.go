package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflow: once a function has accepted a context.Context it must keep it
// flowing. Two ways the chain silently breaks, both flagged:
//
//  1. calling context.Background() or context.TODO() inside a function
//     that already has a ctx parameter — the fresh root context detaches
//     everything downstream from the caller's deadline and cancellation
//     (the -query-timeout 408/499 path stops working for that branch);
//  2. calling x.Foo(...) when an x.FooCtx(ctx, ...) sibling exists (same
//     receiver type or same package) — the non-ctx variant is the
//     compatibility wrapper that roots a fresh context internally, so
//     calling it from ctx-aware code is an accidental detach.
//
// Functions without a ctx parameter are exempt: they are the boundary
// wrappers that legitimately mint the root context.
var analyzerCtxFlow = &Analyzer{
	Name:    "ctxflow",
	Doc:     "ctx-receiving functions must not detach: no context.Background()/TODO(), no non-ctx variant when a ...Ctx sibling exists",
	Default: true,
	Run:     runCtxFlow,
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxSibling reports whether fn has a name+"Ctx" sibling whose first
// parameter is a context.Context — on the receiver's type for methods, in
// the defining package's scope for plain functions.
func ctxSibling(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	name := fn.Name() + "Ctx"
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sibSig := sib.Type().(*types.Signature)
	return sibSig.Params().Len() > 0 && isContextType(sibSig.Params().At(0).Type())
}

func runCtxFlow(p *Package) []Finding {
	var out []Finding
	p.eachFuncDecl(func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		def, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok || !hasCtxParam(def.Type().(*types.Signature)) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.calleeFromPkg(call, "context", "Background") || p.calleeFromPkg(call, "context", "TODO") {
				fn := p.calleeFunc(call)
				out = append(out, p.finding(call.Pos(), "ctxflow",
					"context.%s() inside a ctx-receiving function detaches from the caller's deadline and cancellation; pass ctx through", fn.Name()))
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || strings.HasSuffix(fn.Name(), "Ctx") || hasCtxParam(fn.Type().(*types.Signature)) {
				return true
			}
			if ctxSibling(fn) {
				out = append(out, p.finding(call.Pos(), "ctxflow",
					"%s has a %sCtx sibling; ctx-receiving code must call the Ctx variant", fn.Name(), fn.Name()))
			}
			return true
		})
	})
	return out
}
