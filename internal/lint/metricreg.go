package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// metricreg: obs.New* constructors register a family in the process-global
// registry and panic on a name collision. That is safe exactly once, at
// package init — the per-package metrics.go `var (...)` blocks. A
// constructor reached from a function body re-registers on every call and
// panics the process the second time, so any obs.New* call outside a
// package-level var declaration is flagged.
//
// The obs package itself is exempt: it constructs families internally
// (tests, expositions) without going through the public registry path.
var analyzerMetricReg = &Analyzer{
	Name:    "metricreg",
	Doc:     "obs.New* metric constructors may appear only in package-level var declarations (runtime re-registration panics)",
	Default: true,
	Run:     runMetricReg,
}

func isObsConstructor(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "New")
}

func runMetricReg(p *Package) []Finding {
	if p.pkgNamed("obs") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			// Package-level var blocks are the sanctioned registration
			// site; everything else (function bodies, init functions,
			// const/type decls) is scanned for stray constructors.
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				continue
			}
			ast.Inspect(d, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isObsConstructor(p, call) {
					fn := p.calleeFunc(call)
					out = append(out, p.finding(call.Pos(), "metricreg",
						"obs.%s outside a package-level var declaration re-registers at runtime and panics on name collision", fn.Name()))
				}
				return true
			})
		}
	}
	return out
}
