package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one fully type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory holding the sources
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns with the go command and type-checks every matched
// non-test package with full type information. dir is the module root the
// patterns are resolved in ("" for the current directory).
//
// The loader shells out once to `go list -deps -export -json`, which
// compiles (or reuses from the build cache) export data for every
// dependency; the matched packages themselves are then parsed from source
// and checked with go/types against that export data. This keeps the
// driver on the standard library alone — no golang.org/x/tools — while
// still giving analyzers types.Info as complete as the compiler's.
//
// Test files are not analyzed: the invariants guard production paths, and
// fixtures that must violate them live in testdata fixture modules.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// calleeFunc resolves a call expression to the function or method object it
// invokes, or nil for calls through function values, conversions and
// built-ins.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleeFromPkg reports whether call invokes a function named name declared
// in a package with the given name (e.g. "os", "obs", "faultfs"). Package
// identity is matched by name, not import path, so fixture stubs under
// testdata exercise the rules exactly like the real packages.
func (p *Package) calleeFromPkg(call *ast.CallExpr, pkgName, name string) bool {
	fn := p.calleeFunc(call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}
