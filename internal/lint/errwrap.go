package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errwrap: a sentinel error formatted into fmt.Errorf with %v/%s/%q is
// flattened to text — errors.Is can no longer match it, which is exactly
// how degraded-store refusals (ErrDegraded), injected faults (ErrInjected)
// and per-shard errors (shard.Error) are detected by callers and tests.
// Formatting a sentinel requires %w.
//
// "Sentinel" means: a package-level error variable whose name starts with
// Err, or any value of a named type that implements error (for example
// shard.Error). Plain local `err` variables of interface type error are
// not flagged — wrapping policy for those is a judgement call; losing a
// named sentinel never is.
var analyzerErrWrap = &Analyzer{
	Name:    "errwrap",
	Doc:     "fmt.Errorf must wrap sentinel errors with %w, not flatten them with %v/%s",
	Default: true,
	Run:     runErrWrap,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// formatVerbs returns the ordered verb letters of a format string, one per
// consumed argument ('*' width/precision stars count as arguments too, as
// verb 0). Formats using explicit argument indexes (%[1]v) return ok=false
// and are skipped rather than mis-mapped.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0.", rune(format[i])) {
			i++
		}
		for i < len(format) && (format[i] == '*' || format[i] >= '0' && format[i] <= '9' || format[i] == '.') {
			if format[i] == '*' {
				verbs = append(verbs, 0)
			}
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
		case '[':
			return nil, false
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// sentinelDesc reports whether expr denotes a sentinel error and returns a
// human-readable description of it.
func (p *Package) sentinelDesc(expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	}
	if id != nil {
		if v, ok := p.Info.Uses[id].(*types.Var); ok &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() &&
			strings.HasPrefix(v.Name(), "Err") &&
			types.Implements(v.Type(), errorIface) {
			return v.Name(), true
		}
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if types.Implements(tv.Type, errorIface) || types.Implements(types.NewPointer(named), errorIface) {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
	}
	return "", false
}

func runErrWrap(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.calleeFromPkg(call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			verbs, ok := formatVerbs(constant.StringVal(tv.Value))
			if !ok {
				return true
			}
			for i, verb := range verbs {
				if 1+i >= len(call.Args) {
					break
				}
				if verb != 'v' && verb != 's' && verb != 'q' {
					continue
				}
				if desc, ok := p.sentinelDesc(call.Args[1+i]); ok {
					out = append(out, p.finding(call.Args[1+i].Pos(), "errwrap",
						"sentinel %s formatted with %%%c is no longer errors.Is-matchable; wrap it with %%w", desc, verb))
				}
			}
			return true
		})
	}
	return out
}
