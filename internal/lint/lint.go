// Package lint is graphitti's repo-invariant analyzer suite.
//
// The store's anomaly-freedom and durability guarantees rest on code
// conventions that reviewers used to enforce by memory: error envelopes
// always carry the request ID, metric families register exactly once at
// package init, sentinel errors stay errors.Is-matchable, *Locked methods
// run under the caller's lock, every file operation on the durability path
// is faultfs-mediated, and context plumbing never silently detaches. Each
// analyzer in this package encodes one of those invariants as a mechanical
// check over the fully type-checked module, so a violation fails CI instead
// of waiting for the next incident.
//
// The driver is dependency-free: packages are loaded with `go list
// -deps -export -json` and type-checked with the standard library's
// go/parser + go/types against compiler export data, matching the module's
// zero-dependency stance. See cmd/graphitti-lint for the CLI and
// docs/LINTING.md for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Rule, f.Message)
}

// Analyzer is one registered invariant check. Run receives a fully
// type-checked package and returns its findings; the driver handles
// enable/disable selection, //lint:ignore suppression, sorting and
// output formatting.
type Analyzer struct {
	// Name is the rule identifier used in output ([name]), in
	// -enable/-disable lists and in //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the rule guards.
	Doc string
	// Default reports whether the rule runs when no -enable list is given.
	Default bool
	// Run analyzes one package.
	Run func(p *Package) []Finding
}

// Analyzers returns the full rule table in stable order. Every analyzer
// must have a failing and a clean fixture under testdata/mod/ — the
// meta-test in lint_test.go enforces that against this registry.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerJSONError,
		analyzerMetricReg,
		analyzerErrWrap,
		analyzerLockedDisc,
		analyzerRawFileOp,
		analyzerCtxFlow,
	}
}

// Selection resolves -enable / -disable comma lists against the registry.
// enable, when non-empty, is an exclusive allowlist; disable always
// subtracts. Unknown rule names are an error so a typo cannot silently
// turn a gate off.
func Selection(enable, disable string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	split := func(s string) ([]string, error) {
		var out []string
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if _, ok := byName[part]; !ok {
				return nil, fmt.Errorf("lint: unknown rule %q", part)
			}
			out = append(out, part)
		}
		return out, nil
	}
	on := make(map[string]bool)
	if enable != "" {
		names, err := split(enable)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			on[n] = true
		}
	} else {
		for _, a := range Analyzers() {
			on[a.Name] = a.Default
		}
	}
	names, err := split(disable)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		on[n] = false
	}
	var sel []*Analyzer
	for _, a := range Analyzers() {
		if on[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// ignoreRe matches the suppression directive:
//
//	//lint:ignore rule[,rule...] reason
//
// The directive suppresses matching findings on its own line and on the
// line immediately below, so it works both trailing a statement and on a
// line of its own above one. The reason is mandatory — a directive without
// one is itself reported, so suppressions stay auditable.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

type ignoreDirective struct {
	pos    token.Position
	rules  map[string]bool
	reason string
}

func collectIgnores(p *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := ignoreDirective{
					pos:    p.Fset.Position(c.Pos()),
					rules:  make(map[string]bool),
					reason: strings.TrimSpace(m[2]),
				}
				for _, r := range strings.Split(m[1], ",") {
					if r = strings.TrimSpace(r); r != "" {
						d.rules[r] = true
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunAll runs the selected analyzers over every package and returns the
// surviving findings in deterministic (file, line, column, rule) order.
// //lint:ignore directives are applied here; malformed directives (no
// reason, or a rule name the registry does not know) become findings of
// the synthetic rule "directive".
func RunAll(pkgs []*Package, sel []*Analyzer) []Finding {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var all []Finding
	for _, p := range pkgs {
		ignores := collectIgnores(p)
		for _, d := range ignores {
			if d.reason == "" {
				all = append(all, findingAt(d.pos, "directive",
					"//lint:ignore needs a reason: //lint:ignore rule reason"))
			}
			for r := range d.rules {
				if !known[r] {
					all = append(all, findingAt(d.pos, "directive",
						fmt.Sprintf("//lint:ignore names unknown rule %q", r)))
				}
			}
		}
		suppressed := func(f Finding) bool {
			for _, d := range ignores {
				if d.pos.Filename != f.File || !d.rules[f.Rule] {
					continue
				}
				if f.Line == d.pos.Line || f.Line == d.pos.Line+1 {
					return true
				}
			}
			return false
		}
		for _, a := range sel {
			for _, f := range a.Run(p) {
				if !suppressed(f) {
					all = append(all, f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Rule < b.Rule
	})
	return all
}

func findingAt(pos token.Position, rule, msg string) Finding {
	return Finding{Pos: pos, File: pos.Filename, Line: pos.Line, Column: pos.Column, Rule: rule, Message: msg}
}

func (p *Package) finding(pos token.Pos, rule, format string, args ...any) Finding {
	return findingAt(p.Fset.Position(pos), rule, fmt.Sprintf(format, args...))
}

// pkgNamed reports whether the package's name matches any of names.
// Applicability is keyed on the package name (httpapi, wal, durable, obs)
// rather than the import path so the testdata fixture modules exercise the
// same code paths as the real tree.
func (p *Package) pkgNamed(names ...string) bool {
	for _, n := range names {
		if p.Pkg.Name() == n {
			return true
		}
	}
	return false
}

// eachFuncDecl walks every function declaration in the package.
func (p *Package) eachFuncDecl(fn func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}
