package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"graphitti/internal/lint"
)

// loadFixtures type-checks the fixture module under testdata/mod. The
// fixtures are real packages behind their own go.mod (invisible to the
// outer module's build), so the driver runs exactly the code path
// cmd/graphitti-lint runs in CI.
func loadFixtures(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(filepath.Join("testdata", "mod"), "./...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module loaded zero packages")
	}
	return pkgs
}

func allAnalyzers(t *testing.T) []*lint.Analyzer {
	t.Helper()
	sel, err := lint.Selection("", "")
	if err != nil {
		t.Fatalf("default selection: %v", err)
	}
	return sel
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wants extracts the golden `// want "regexp"` comments of a package,
// keyed by file:line.
func wants(t *testing.T, p *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

// TestFixturesGolden runs every default analyzer over every fixture
// package: findings in bad/ packages must match the want comments exactly
// (none unexpected, none missing), and clean/ packages plus the stub
// packages must produce nothing at all.
func TestFixturesGolden(t *testing.T) {
	sel := allAnalyzers(t)
	for _, p := range loadFixtures(t) {
		rel := strings.TrimPrefix(p.Path, "fixtures")
		if strings.HasPrefix(rel, "/ignore/") {
			continue // exercised by TestIgnoreDirectives
		}
		findings := lint.RunAll([]*lint.Package{p}, sel)
		if !strings.HasPrefix(rel, "/bad/") {
			for _, f := range findings {
				t.Errorf("clean fixture %s produced a finding: %s", p.Path, f)
			}
			continue
		}
		expected := wants(t, p)
		if len(expected) == 0 {
			t.Errorf("bad fixture %s has no want comments", p.Path)
		}
		matched := make(map[*regexp.Regexp]bool)
		for _, f := range findings {
			key := fmt.Sprintf("%s:%d", f.File, f.Line)
			hit := false
			for _, re := range expected[key] {
				if re.MatchString(f.String()) {
					matched[re] = true
					hit = true
				}
			}
			if !hit {
				t.Errorf("%s: unexpected finding: %s", p.Path, f)
			}
		}
		for key, res := range expected {
			for _, re := range res {
				if !matched[re] {
					t.Errorf("%s: no finding at %s matching %q", p.Path, key, re)
				}
			}
		}
	}
}

// TestEveryAnalyzerHasFixtures is the registry meta-test: each analyzer
// must ship a failing and a clean fixture package named after it, and the
// failing one must actually trip that rule — so a future analyzer cannot
// land untested, and a regression that silences a rule entirely fails
// here rather than passing vacuously.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	pkgs := loadFixtures(t)
	sel := allAnalyzers(t)
	byPath := make(map[string]*lint.Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, a := range lint.Analyzers() {
		for _, kind := range []string{"bad", "clean"} {
			dir := filepath.Join("testdata", "mod", kind, a.Name)
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				t.Errorf("analyzer %s: missing %s fixture directory %s", a.Name, kind, dir)
			}
		}
		bad, ok := byPath["fixtures/bad/"+a.Name]
		if !ok {
			t.Errorf("analyzer %s: fixture package fixtures/bad/%s did not load", a.Name, a.Name)
			continue
		}
		tripped := false
		for _, f := range lint.RunAll([]*lint.Package{bad}, sel) {
			if f.Rule == a.Name {
				tripped = true
				break
			}
		}
		if !tripped {
			t.Errorf("analyzer %s: its bad fixture produces no %s finding", a.Name, a.Name)
		}
	}
}

// TestDisableSuppressesExactlyOneRule checks the -disable contract for
// every rule: the disabled rule's findings disappear and every other
// rule's findings are byte-identical.
func TestDisableSuppressesExactlyOneRule(t *testing.T) {
	var badPkgs []*lint.Package
	for _, p := range loadFixtures(t) {
		if strings.HasPrefix(p.Path, "fixtures/bad/") {
			badPkgs = append(badPkgs, p)
		}
	}
	full := lint.RunAll(badPkgs, allAnalyzers(t))
	for _, a := range lint.Analyzers() {
		sel, err := lint.Selection("", a.Name)
		if err != nil {
			t.Fatalf("disable %s: %v", a.Name, err)
		}
		got := lint.RunAll(badPkgs, sel)
		var want []string
		for _, f := range full {
			if f.Rule != a.Name {
				want = append(want, f.String())
			}
		}
		if len(want) == len(full) {
			t.Errorf("disable %s: rule had no findings to suppress", a.Name)
		}
		if len(got) != len(want) {
			t.Errorf("disable %s: got %d findings, want %d", a.Name, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i].String() != want[i] {
				t.Errorf("disable %s: finding %d = %s, want %s", a.Name, i, got[i], want[i])
			}
		}
	}
}

// TestSelection pins the -enable/-disable resolution rules: unknown names
// are hard errors, -enable is an exclusive allowlist.
func TestSelection(t *testing.T) {
	if _, err := lint.Selection("", "nosuchrule"); err == nil {
		t.Error("disabling an unknown rule must error, not silently no-op")
	}
	if _, err := lint.Selection("nosuchrule", ""); err == nil {
		t.Error("enabling an unknown rule must error")
	}
	sel, err := lint.Selection("jsonerror,errwrap", "")
	if err != nil {
		t.Fatalf("enable list: %v", err)
	}
	if len(sel) != 2 || sel[0].Name != "jsonerror" || sel[1].Name != "errwrap" {
		names := make([]string, len(sel))
		for i, a := range sel {
			names[i] = a.Name
		}
		t.Errorf("enable list selected %v, want [jsonerror errwrap]", names)
	}
	all, err := lint.Selection("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(lint.Analyzers()) {
		t.Errorf("default selection has %d rules, registry has %d (a rule defaulted off?)", len(all), len(lint.Analyzers()))
	}
}

// TestIgnoreDirectives pins the suppression contract: a well-formed
// //lint:ignore (trailing or on the line above) silences exactly its rule
// on that line, while a directive with no reason or an unknown rule name
// is itself reported and suppresses nothing it does not name.
func TestIgnoreDirectives(t *testing.T) {
	sel := allAnalyzers(t)
	var suppressed, malformed *lint.Package
	for _, p := range loadFixtures(t) {
		switch p.Path {
		case "fixtures/ignore/suppressed":
			suppressed = p
		case "fixtures/ignore/malformed":
			malformed = p
		}
	}
	if suppressed == nil || malformed == nil {
		t.Fatal("ignore fixtures did not load")
	}
	for _, f := range lint.RunAll([]*lint.Package{suppressed}, sel) {
		t.Errorf("suppressed fixture still reports: %s", f)
	}
	got := lint.RunAll([]*lint.Package{malformed}, sel)
	var directive, ctxflow int
	for _, f := range got {
		switch f.Rule {
		case "directive":
			directive++
		case "ctxflow":
			ctxflow++
		default:
			t.Errorf("malformed fixture: unexpected rule %s: %s", f.Rule, f)
		}
	}
	if directive != 2 {
		t.Errorf("malformed fixture: %d directive findings, want 2 (missing reason + unknown rule)", directive)
	}
	if ctxflow != 1 {
		t.Errorf("malformed fixture: %d ctxflow findings, want 1 (unknown rule must not suppress)", ctxflow)
	}
}
