package lint

import (
	"go/ast"
	"go/types"
)

// rawfileop: in the wal and durable packages every file operation on the
// durability path must be mediated by the faultfs injector — that is what
// lets the fault-injection harness prove the ack contract ("committed
// means fsynced") under EIO, ENOSPC and torn writes. A raw os call that
// skips the injector silently removes that operation from fault coverage:
// the harness goes green while the failure path it was guarding goes
// untested.
//
// Flagged: direct calls to the mutating os functions (Create, OpenFile,
// Rename, Remove, RemoveAll, Truncate, WriteFile) and to the mutating
// (*os.File) methods (Write, WriteAt, WriteString, ReadFrom, Sync,
// Truncate), unless the enclosing function is itself a faultfs hook shim —
// recognized, flow-insensitively, by it also calling faultfs.Check or
// Injector.Decide. Read-only operations (os.Open, os.ReadFile, os.Stat,
// Read) are not durability-relevant and stay unrestricted.
var analyzerRawFileOp = &Analyzer{
	Name:    "rawfileop",
	Doc:     "wal/durable file operations must go through faultfs shims so fault injection keeps full coverage",
	Default: true,
	Run:     runRawFileOp,
}

var rawOsFuncs = map[string]bool{
	"Create":    true,
	"OpenFile":  true,
	"Rename":    true,
	"Remove":    true,
	"RemoveAll": true,
	"Truncate":  true,
	"WriteFile": true,
}

var rawFileMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"ReadFrom":    true,
	"Sync":        true,
	"Truncate":    true,
}

// rawFileOp describes a forbidden call, or returns "" if call is benign.
func (p *Package) rawFileOp(call *ast.CallExpr) string {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		if rawOsFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "File" && rawFileMethods[fn.Name()] {
		return "(*os.File)." + fn.Name()
	}
	return ""
}

// isFaultfsShim reports whether the function consults the fault injector
// anywhere in its body, which marks it as one of the sanctioned hook shims.
func (p *Package) isFaultfsShim(fd *ast.FuncDecl) bool {
	shim := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if p.calleeFromPkg(call, "faultfs", "Check") || p.calleeFromPkg(call, "faultfs", "Decide") {
				shim = true
				return false
			}
		}
		return !shim
	})
	return shim
}

func runRawFileOp(p *Package) []Finding {
	if !p.pkgNamed("wal", "durable") {
		return nil
	}
	var out []Finding
	p.eachFuncDecl(func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		var ops []*ast.CallExpr
		var descs []string
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if desc := p.rawFileOp(call); desc != "" {
					ops = append(ops, call)
					descs = append(descs, desc)
				}
			}
			return true
		})
		if len(ops) == 0 || p.isFaultfsShim(fd) {
			return
		}
		for i, call := range ops {
			out = append(out, p.finding(call.Pos(), "rawfileop",
				"raw %s outside a faultfs shim removes this op from fault-injection coverage; consult faultfs.Check first or use an injected helper", descs[i]))
		}
	})
	return out
}
