// Failing fixture for the jsonerror rule: HTTP errors written outside
// jsonError, in a package named httpapi.
package httpapi

import "net/http"

func jsonError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.WriteHeader(status) // dynamic status inside jsonError itself: legal
	_, _ = w.Write([]byte(msg))
}

func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusBadRequest)  // want "http.Error writes a plain-text body"
	w.WriteHeader(http.StatusInternalServerError) // want "WriteHeader.500. bypasses the JSON error envelope"
	w.WriteHeader(404)                            // want "WriteHeader.404. bypasses the JSON error envelope"
}

func okHandler(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent) // 2xx constants stay legal
}

var _ = badHandler
var _ = okHandler
