// Failing fixture for the errwrap rule: sentinels flattened with %v/%s
// are no longer errors.Is-matchable.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrDegraded mirrors the durable store's refusal sentinel.
var ErrDegraded = errors.New("store degraded")

// ShardError mirrors shard.Error: a named type implementing error.
type ShardError struct{ Shard int }

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d", e.Shard) }

func refuse() error {
	return fmt.Errorf("write refused: %v", ErrDegraded) // want "sentinel ErrDegraded formatted with %v"
}

func quote() error {
	return fmt.Errorf("write refused: %q", ErrDegraded) // want "sentinel ErrDegraded formatted with %q"
}

func tag(e *ShardError) error {
	return fmt.Errorf("routing failed: %s", e) // want "sentinel errwrap.ShardError formatted with %s"
}

func plainLocalErrStaysLegal(err error, n int) error {
	return fmt.Errorf("after %d ops: %v", n, err) // plain error variables are a judgement call, not flagged
}

var (
	_ = refuse
	_ = quote
	_ = tag
	_ = plainLocalErrStaysLegal
)
