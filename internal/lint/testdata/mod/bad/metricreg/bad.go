// Failing fixture for the metricreg rule: obs.New* constructors reached
// from function bodies re-register the family at runtime and panic on the
// name collision.
package metricreg

import "fixtures/obs"

var mGood = obs.NewCounter("fixture_good_total", "package-level var: legal")

func register() *obs.Counter {
	return obs.NewCounter("fixture_bad_total", "per-call registration") // want "obs.NewCounter outside a package-level var declaration"
}

func init() {
	g := obs.NewGauge("fixture_bad_gauge", "init is a function body too") // want "obs.NewGauge outside a package-level var declaration"
	g.Set(1)
}

func use() {
	mGood.Inc()
	register().Inc()
}

var _ = use
