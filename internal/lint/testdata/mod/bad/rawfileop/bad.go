// Failing fixture for the rawfileop rule: a package named wal touching
// the filesystem without consulting the fault injector.
package wal

import "os"

func createHeader(path string) error {
	f, err := os.Create(path) // want "raw os.Create outside a faultfs shim"
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("GRAPHWAL")); err != nil { // want "raw ..os.File..Write outside a faultfs shim"
		return err
	}
	if err := f.Sync(); err != nil { // want "raw ..os.File..Sync outside a faultfs shim"
		return err
	}
	return os.Rename(path, path+".hdr") // want "raw os.Rename outside a faultfs shim"
}

var _ = createHeader
