// Failing fixture for the ctxflow rule: ctx-receiving code detaching from
// its caller's deadline.
package ctxflow

import "context"

// Runner mirrors query.Processor: Execute is the boundary wrapper,
// ExecuteCtx the real entry point.
type Runner struct{}

// Execute has no ctx parameter, so minting the root context here is the
// legal boundary pattern.
func (r *Runner) Execute(q string) int {
	return r.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is the cancellation-aware sibling.
func (r *Runner) ExecuteCtx(ctx context.Context, q string) int {
	return len(q)
}

func handle(ctx context.Context, r *Runner, q string) int {
	fresh := context.Background() // want "context.Background.. inside a ctx-receiving function"
	_ = fresh
	todo, cancel := context.WithTimeout(context.TODO(), 0) // want "context.TODO.. inside a ctx-receiving function"
	defer cancel()
	_ = todo
	return r.Execute(q) // want "Execute has a ExecuteCtx sibling"
}

var _ = handle
