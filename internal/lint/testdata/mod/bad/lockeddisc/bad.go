// Failing fixture for the lockeddisc rule: both halves of the *Locked
// contract broken.
package lockeddisc

import "sync"

// Box is a mutex-guarded counter in the repo's writer idiom.
type Box struct {
	mu sync.Mutex
	n  int
}

func (b *Box) bumpLocked() {
	b.mu.Lock() // want "bumpLocked must run with b's mutex already held"
	b.n++
	b.mu.Unlock()
}

// Bump calls a Locked sibling without acquiring the mutex anywhere in its
// body.
func (b *Box) Bump() {
	b.incrLocked() // want "b.incrLocked called without a same-function"
}

func (b *Box) incrLocked() { b.n++ }

var _ = (*Box).Bump
var _ = (*Box).bumpLocked
