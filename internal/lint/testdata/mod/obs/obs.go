// Package obs is a stub standing in for graphitti's internal/obs: the
// metricreg rule matches constructor calls by package name ("obs") and
// function prefix ("New"), so this minimal shape exercises exactly the
// same code path as the real registry.
package obs

// Counter is a stub metric family.
type Counter struct{}

// Inc is the using-a-metric call sites keep after registration.
func (c *Counter) Inc() {}

// Gauge is a stub metric family.
type Gauge struct{}

// Set is the using-a-metric call sites keep after registration.
func (g *Gauge) Set(v float64) {}

// NewCounter registers a counter family (panics on name collision in the
// real package — which is why calls must be package-level vars).
func NewCounter(name, help string) *Counter { return &Counter{} }

// NewGauge registers a gauge family.
func NewGauge(name, help string) *Gauge { return &Gauge{} }
