// Package faultfs is a stub standing in for graphitti's internal/faultfs:
// the rawfileop rule recognizes shim functions by their calls to
// faultfs.Check / Injector.Decide, matched by package name.
package faultfs

// Op identifies one fault-injectable file operation.
type Op uint8

// The operation kinds the stub's callers use.
const (
	OpWrite Op = iota
	OpSync
	OpCreate
	OpRemove
)

// Fault is what an injector returns to fail one operation.
type Fault struct{ Err error }

// Injector decides, immediately before each file operation, whether to
// fail it.
type Injector interface {
	Decide(op Op, path string) *Fault
}

// Check consults an optional injector and returns the injected error.
func Check(inj Injector, op Op, path string) error {
	if inj == nil {
		return nil
	}
	if f := inj.Decide(op, path); f != nil {
		return f.Err
	}
	return nil
}
