// Fixture for malformed //lint:ignore directives: a missing reason and an
// unknown rule name are themselves findings (rule "directive"), and an
// unknown rule suppresses nothing.
package malformed

import "context"

func detach(ctx context.Context) context.Context {
	//lint:ignore ctxflow
	return context.Background()
}

func todo(ctx context.Context) context.Context {
	//lint:ignore nosuchrule the rule name is a typo, so the finding below survives
	return context.TODO()
}

var (
	_ = detach
	_ = todo
)
