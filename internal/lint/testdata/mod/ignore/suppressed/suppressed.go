// Fixture for the //lint:ignore directive: each violation below is
// suppressed — trailing the line and standing on the line above — so the
// driver must report nothing for this package.
package httpapi

import (
	"context"
	"net/http"
)

func jsonError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(msg))
}

func legacy(w http.ResponseWriter, r *http.Request) {
	//lint:ignore jsonerror fixture: suppression on the line above
	http.Error(w, "legacy path", http.StatusTeapot)
	w.WriteHeader(http.StatusBadGateway) //lint:ignore jsonerror fixture: trailing suppression
}

func detach(ctx context.Context) context.Context {
	//lint:ignore ctxflow fixture: deliberate detach
	return context.Background()
}

var (
	_ = legacy
	_ = detach
)
