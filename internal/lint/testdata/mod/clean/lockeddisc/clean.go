// Clean fixture for the lockeddisc rule: locks acquired by the exported
// entry points, *Locked helpers composing freely under them.
package lockeddisc

import "sync"

// Box is a mutex-guarded counter in the repo's writer idiom.
type Box struct {
	mu sync.RWMutex
	n  int
}

// Bump holds the lock and delegates to the Locked helper.
func (b *Box) Bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.incrLocked()
}

// Peek holds the read side; RLock satisfies the discipline too.
func (b *Box) Peek() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.readLocked()
}

func (b *Box) incrLocked() { b.n++ }

// doubleLocked shows a Locked helper calling a Locked sibling: the caller
// already holds the lock for both.
func (b *Box) doubleLocked() {
	b.incrLocked()
	b.incrLocked()
}

func (b *Box) readLocked() int { return b.n }

var _ = (*Box).doubleLocked
