// Clean fixture for the metricreg rule: the lazy-registration pattern —
// one package-level var block, call sites only touch the families.
package metricreg

import "fixtures/obs"

var (
	mOps  = obs.NewCounter("fixture_ops_total", "operations")
	mSize = obs.NewGauge("fixture_size_bytes", "current size")
)

func observe(n int) {
	mOps.Inc()
	mSize.Set(float64(n))
}

var _ = observe
