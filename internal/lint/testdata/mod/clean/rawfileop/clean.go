// Clean fixture for the rawfileop rule: a package named durable whose
// file operations all live in faultfs shims, plus unrestricted read-only
// access.
package durable

import (
	"os"

	"fixtures/faultfs"
)

// writeFileSync is a hook shim: it consults the injector, so its raw
// operations are exactly the ones fault injection covers.
func writeFileSync(inj faultfs.Injector, path string, data []byte) error {
	if err := faultfs.Check(inj, faultfs.OpCreate, path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := faultfs.Check(inj, faultfs.OpSync, path); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSnapshot only reads; read-only operations are not
// durability-relevant and stay unrestricted.
func loadSnapshot(path string) ([]byte, error) {
	return os.ReadFile(path)
}

var (
	_ = writeFileSync
	_ = loadSnapshot
)
