// Clean fixture for the ctxflow rule: the context flows end to end; only
// functions without a ctx parameter mint root contexts.
package ctxflow

import (
	"context"
	"time"
)

// Runner mirrors query.Processor: Execute is the boundary wrapper,
// ExecuteCtx the real entry point.
type Runner struct{}

// Execute has no ctx parameter, so minting the root context here is the
// legal boundary pattern.
func (r *Runner) Execute(q string) int {
	return r.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is the cancellation-aware sibling.
func (r *Runner) ExecuteCtx(ctx context.Context, q string) int {
	return len(q)
}

func handle(ctx context.Context, r *Runner, q string) int {
	return r.ExecuteCtx(ctx, q)
}

func boundary(r *Runner, q string) int {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return r.ExecuteCtx(ctx, q)
}

var (
	_ = handle
	_ = boundary
)
