// Clean fixture for the jsonerror rule: every error path flows through
// jsonError, status wrappers forward dynamic codes.
package httpapi

import "net/http"

func jsonError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":"` + msg + `"}`))
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code) // dynamic forwarding: legal
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

var _ = goodHandler
