// Clean fixture for the errwrap rule: sentinels wrapped with %w keep
// their errors.Is identity; non-error values format freely.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrDegraded mirrors the durable store's refusal sentinel.
var ErrDegraded = errors.New("store degraded")

// ShardError mirrors shard.Error: a named type implementing error.
type ShardError struct{ Shard int }

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d", e.Shard) }

func refuse(seq uint64) error {
	return fmt.Errorf("op %d: %w", seq, ErrDegraded)
}

func tag(e *ShardError) error {
	return fmt.Errorf("routing failed: %w", e)
}

var (
	_ = refuse
	_ = tag
)
