package phylo

import (
	"errors"
	"testing"
	"testing/quick"
)

const h5n1 = "((goose:0.12,(duck:0.08,chicken:0.09)dc:0.03)wild:0.05,(human1:0.2,human2:0.18)hu:0.07)root;"

func tree(t *testing.T) *Tree {
	t.Helper()
	tr, err := ParseNewick("h5n1", h5n1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseNewick(t *testing.T) {
	tr := tree(t)
	if tr.Root.Name != "root" {
		t.Fatalf("root name = %q", tr.Root.Name)
	}
	if got := tr.NumLeaves(); got != 5 {
		t.Fatalf("leaves = %d", got)
	}
	leaves := tr.Root.Leaves()
	want := []string{"chicken", "duck", "goose", "human1", "human2"}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("leaves = %v", leaves)
		}
	}
	dc, ok := tr.Find("dc")
	if !ok || dc.IsLeaf() || dc.Length != 0.03 {
		t.Fatalf("dc = %+v, %v", dc, ok)
	}
	if dc.Parent() == nil || dc.Parent().Name != "wild" {
		t.Fatal("parent links wrong")
	}
	if tr.Root.Parent() != nil {
		t.Fatal("root must have nil parent")
	}
	if tr.Root.Size() != 9 {
		t.Fatalf("size = %d", tr.Root.Size())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"(",
		"(a,b;",
		"(a,)",
		"(a,b):x;",
		"(a,b))c;",
		"(a,b)c;junk",
	}
	for i, src := range cases {
		if _, err := ParseNewick("x", src); !errors.Is(err, ErrParse) {
			t.Errorf("case %d (%q): err = %v", i, src, err)
		}
	}
	// Valid minimal inputs.
	for _, src := range []string{"a;", "(a,b);", "(a:1,b:2)r:0.5;", "a"} {
		if _, err := ParseNewick("x", src); err != nil {
			t.Errorf("%q rejected: %v", src, err)
		}
	}
}

func TestNewickRoundTrip(t *testing.T) {
	tr := tree(t)
	out := tr.Newick()
	tr2, err := ParseNewick("again", out)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, out)
	}
	if tr2.Newick() != out {
		t.Fatalf("round trip unstable:\n%s\n%s", out, tr2.Newick())
	}
	a, b := tr.Root.Leaves(), tr2.Root.Leaves()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("leaf sets differ after round trip")
		}
	}
}

func TestLCA(t *testing.T) {
	tr := tree(t)
	tests := []struct {
		names []string
		want  string
	}{
		{[]string{"duck", "chicken"}, "dc"},
		{[]string{"goose", "duck"}, "wild"},
		{[]string{"goose", "human1"}, "root"},
		{[]string{"duck", "chicken", "goose"}, "wild"},
		{[]string{"human1", "human2"}, "hu"},
		{[]string{"duck"}, "duck"},
	}
	for _, tc := range tests {
		n, err := tr.LCA(tc.names...)
		if err != nil {
			t.Fatalf("LCA(%v): %v", tc.names, err)
		}
		if n.Name != tc.want {
			t.Errorf("LCA(%v) = %q, want %q", tc.names, n.Name, tc.want)
		}
	}
	if _, err := tr.LCA("duck", "ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("ghost: err = %v", err)
	}
	if _, err := tr.LCA(); !errors.Is(err, ErrNoNode) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestClade(t *testing.T) {
	tr := tree(t)
	c, err := tr.Clade("duck", "chicken")
	if err != nil {
		t.Fatal(err)
	}
	if c.Root.Name != "dc" {
		t.Fatalf("clade root = %q", c.Root.Name)
	}
	if c.CladeID() != "chicken|duck" {
		t.Fatalf("CladeID = %q", c.CladeID())
	}
	// Clade spanned by leaves in different subtrees includes extras.
	c, _ = tr.Clade("goose", "chicken")
	if c.Root.Name != "wild" || len(c.Leaves) != 3 {
		t.Fatalf("clade = %+v", c)
	}
}

func TestDepthAndPathLength(t *testing.T) {
	tr := tree(t)
	d, err := tr.Depth("duck")
	if err != nil || d != 3 {
		t.Fatalf("Depth(duck) = %d, %v", d, err)
	}
	d, _ = tr.Depth("root")
	if d != 0 {
		t.Fatalf("Depth(root) = %d", d)
	}
	// duck -> dc (0.08) -> wild (0.03); chicken -> dc (0.09).
	pl, err := tr.PathLength("duck", "chicken")
	if err != nil || !close(pl, 0.17) {
		t.Fatalf("PathLength(duck,chicken) = %v, %v", pl, err)
	}
	pl, _ = tr.PathLength("duck", "goose")
	if !close(pl, 0.08+0.03+0.12) {
		t.Fatalf("PathLength(duck,goose) = %v", pl)
	}
	pl, _ = tr.PathLength("duck", "duck")
	if pl != 0 {
		t.Fatalf("self path length = %v", pl)
	}
	if _, err := tr.PathLength("duck", "ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("ghost: err = %v", err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestWalkEarlyStop(t *testing.T) {
	tr := tree(t)
	count := 0
	tr.Root.Walk(func(*Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d, want 3", count)
	}
}

// TestQuickRoundTripGeneratedTrees builds random binary trees, serialises
// and reparses them, and checks leaf-set identity.
func TestQuickRoundTripGeneratedTrees(t *testing.T) {
	var build func(prefix string, depth int, shape []byte) *Node
	build = func(prefix string, depth int, shape []byte) *Node {
		if depth == 0 || len(shape) == 0 || shape[0]%3 == 0 {
			return &Node{Name: "L" + prefix, Length: float64(len(prefix)%5) / 10}
		}
		left := build(prefix+"0", depth-1, shape[1:])
		right := build(prefix+"1", depth-1, shape[1:])
		return &Node{Name: "", Length: 0.1, Children: []*Node{left, right}}
	}
	check := func(shape []byte, depthRaw uint8) bool {
		depth := int(depthRaw%4) + 1
		root := build("r", depth, shape)
		setParents(root, nil)
		tr := &Tree{ID: "gen", Root: root}
		out := tr.Newick()
		tr2, err := ParseNewick("gen2", out)
		if err != nil {
			return false
		}
		a, b := tr.Root.Leaves(), tr2.Root.Leaves()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// LCA of all leaves is the root.
		if len(a) >= 2 {
			lca, err := tr2.LCA(a...)
			if err != nil || lca != tr2.Root {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
