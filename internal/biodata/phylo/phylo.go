// Package phylo models phylogenetic trees, one of the data types in the
// paper's Avian-Influenza demonstration study ("phylogenetic trees").
//
// Trees parse from and serialise to Newick format. Annotation marks on a
// tree are clades, identified canonically by their sorted leaf-name set so
// that a clade mark survives re-serialisation.
package phylo

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors reported by tree operations.
var (
	ErrParse  = errors.New("phylo: bad newick")
	ErrNoNode = errors.New("phylo: no such node")
	ErrNoLCA  = errors.New("phylo: nodes have no common ancestor")
)

// Node is a node of a phylogenetic tree.
type Node struct {
	// Name is the taxon label (often empty for internal nodes).
	Name string
	// Length is the branch length to the parent (0 when absent).
	Length float64
	// Children are the node's subtrees (empty for leaves).
	Children []*Node

	parent *Node
}

// Tree is a rooted phylogenetic tree.
type Tree struct {
	// ID names the tree (e.g. "H5N1-HA-tree").
	ID   string
	Root *Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Parent returns the node's parent (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Walk visits the subtree rooted at n in pre-order until fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Leaves returns the leaf names of the subtree at n, sorted.
func (n *Node) Leaves() []string {
	var out []string
	n.Walk(func(x *Node) bool {
		if x.IsLeaf() {
			out = append(out, x.Name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Size returns the number of nodes in the subtree at n.
func (n *Node) Size() int {
	count := 0
	n.Walk(func(*Node) bool {
		count++
		return true
	})
	return count
}

// NumLeaves returns the number of leaves in the tree.
func (t *Tree) NumLeaves() int { return len(t.Root.Leaves()) }

// Find returns the first node with the given name in pre-order.
func (t *Tree) Find(name string) (*Node, bool) {
	var found *Node
	t.Root.Walk(func(n *Node) bool {
		if n.Name == name {
			found = n
			return false
		}
		return true
	})
	return found, found != nil
}

// LCA returns the lowest common ancestor of the named leaves/nodes.
func (t *Tree) LCA(names ...string) (*Node, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no names", ErrNoNode)
	}
	var cur *Node
	for i, name := range names {
		n, ok := t.Find(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoNode, name)
		}
		if i == 0 {
			cur = n
			continue
		}
		cur = lca2(cur, n)
		if cur == nil {
			return nil, ErrNoLCA
		}
	}
	return cur, nil
}

func lca2(a, b *Node) *Node {
	depth := func(n *Node) int {
		d := 0
		for n.parent != nil {
			n = n.parent
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.parent
		da--
	}
	for db > da {
		b = b.parent
		db--
	}
	for a != b {
		a, b = a.parent, b.parent
		if a == nil || b == nil {
			return nil
		}
	}
	return a
}

// Clade is an annotation mark on a tree: the subtree rooted at the LCA of
// its leaf set. CladeID is the canonical identity (sorted leaf names).
type Clade struct {
	TreeID string
	Root   *Node
	Leaves []string // sorted
}

// CladeID returns the canonical identity string of the clade.
func (c *Clade) CladeID() string { return strings.Join(c.Leaves, "|") }

// Clade returns the clade mark spanned by the named leaves: the full
// subtree under their LCA (which may include additional leaves).
func (t *Tree) Clade(leafNames ...string) (*Clade, error) {
	root, err := t.LCA(leafNames...)
	if err != nil {
		return nil, err
	}
	return &Clade{TreeID: t.ID, Root: root, Leaves: root.Leaves()}, nil
}

// Depth returns the number of edges from the root to the named node.
func (t *Tree) Depth(name string) (int, error) {
	n, ok := t.Find(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoNode, name)
	}
	d := 0
	for n.parent != nil {
		n = n.parent
		d++
	}
	return d, nil
}

// PathLength returns the sum of branch lengths between two named nodes.
func (t *Tree) PathLength(a, b string) (float64, error) {
	na, ok := t.Find(a)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoNode, a)
	}
	nb, ok := t.Find(b)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoNode, b)
	}
	anc := lca2(na, nb)
	if anc == nil {
		return 0, ErrNoLCA
	}
	sum := 0.0
	for n := na; n != anc; n = n.parent {
		sum += n.Length
	}
	for n := nb; n != anc; n = n.parent {
		sum += n.Length
	}
	return sum, nil
}

// ParseNewick parses a Newick tree, e.g. "((A:0.1,B:0.2)AB:0.05,C):0;".
func ParseNewick(id, src string) (*Tree, error) {
	p := &newickParser{src: src}
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: trailing input at %d", ErrParse, p.pos)
	}
	setParents(root, nil)
	return &Tree{ID: id, Root: root}, nil
}

func setParents(n *Node, parent *Node) {
	n.parent = parent
	for _, c := range n.Children {
		setParents(c, n)
	}
}

type newickParser struct {
	src string
	pos int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *newickParser) parseNode() (*Node, error) {
	p.skipSpace()
	n := &Node{}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("%w: unterminated group", ErrParse)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("%w: expected ',' or ')' at %d", ErrParse, p.pos)
		}
	}
	// Optional label.
	n.Name = p.parseLabel()
	// Optional branch length.
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.' ||
			p.src[p.pos] == '-' || p.src[p.pos] == '+' || p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad branch length at %d", ErrParse, start)
		}
		n.Length = f
	}
	if n.Name == "" && len(n.Children) == 0 {
		return nil, fmt.Errorf("%w: empty node at %d", ErrParse, p.pos)
	}
	return n, nil
}

func (p *newickParser) parseLabel() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ',' || c == ')' || c == '(' || c == ':' || c == ';' ||
			c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Newick serialises the tree to Newick format (with branch lengths when
// non-zero).
func (t *Tree) Newick() string {
	var sb strings.Builder
	writeNewick(&sb, t.Root)
	sb.WriteByte(';')
	return sb.String()
}

func writeNewick(sb *strings.Builder, n *Node) {
	if len(n.Children) > 0 {
		sb.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeNewick(sb, c)
		}
		sb.WriteByte(')')
	}
	sb.WriteString(n.Name)
	if n.Length != 0 {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(n.Length, 'g', -1, 64))
	}
}
