// Package msa models multiple sequence alignments, one of the data types
// registered in the paper's Avian-Influenza demonstration study
// ("multiple sequence alignment structures").
//
// An alignment is a rectangular matrix of residues and gaps. Annotation
// marks on alignments are blocks: a subset of rows crossed with a column
// interval. The package provides the column-to-residue coordinate maps
// needed to normalise block marks onto the underlying sequences.
package msa

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"graphitti/internal/interval"
)

// Gap is the gap character in aligned rows.
const Gap = '-'

// Errors reported by alignment operations.
var (
	ErrShape    = errors.New("msa: rows have differing lengths")
	ErrNoRow    = errors.New("msa: no such row")
	ErrRange    = errors.New("msa: column range out of bounds")
	ErrEmpty    = errors.New("msa: alignment has no rows")
	ErrBadBlock = errors.New("msa: invalid block")
)

// Alignment is a multiple sequence alignment.
type Alignment struct {
	// ID names the alignment (e.g. "HA-align-2007").
	ID string
	// RowIDs holds the sequence accessions, aligned with Rows.
	RowIDs []string
	// Rows holds the aligned residue strings (equal lengths, '-' gaps).
	Rows []string

	rowIndex map[string]int
}

// New validates shape and returns an alignment.
func New(id string, rowIDs []string, rows []string) (*Alignment, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	if len(rowIDs) != len(rows) {
		return nil, fmt.Errorf("%w: %d ids for %d rows", ErrShape, len(rowIDs), len(rows))
	}
	width := len(rows[0])
	idx := make(map[string]int, len(rows))
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("%w: row %d has %d columns, row 0 has %d", ErrShape, i, len(r), width)
		}
		if _, dup := idx[rowIDs[i]]; dup {
			return nil, fmt.Errorf("msa: duplicate row id %q", rowIDs[i])
		}
		idx[rowIDs[i]] = i
	}
	return &Alignment{ID: id, RowIDs: append([]string(nil), rowIDs...),
		Rows: append([]string(nil), rows...), rowIndex: idx}, nil
}

// NumRows returns the number of sequences.
func (a *Alignment) NumRows() int { return len(a.Rows) }

// NumCols returns the alignment width.
func (a *Alignment) NumCols() int {
	if len(a.Rows) == 0 {
		return 0
	}
	return len(a.Rows[0])
}

// Row returns the aligned row for a sequence ID.
func (a *Alignment) Row(id string) (string, error) {
	i, ok := a.rowIndex[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoRow, id)
	}
	return a.Rows[i], nil
}

// ColToResidue maps an alignment column to the 0-based ungapped residue
// index in the named row. ok is false when the row has a gap at that
// column.
func (a *Alignment) ColToResidue(id string, col int) (int, bool, error) {
	i, ok := a.rowIndex[id]
	if !ok {
		return 0, false, fmt.Errorf("%w: %q", ErrNoRow, id)
	}
	if col < 0 || col >= a.NumCols() {
		return 0, false, fmt.Errorf("%w: column %d", ErrRange, col)
	}
	row := a.Rows[i]
	res := 0
	for c := 0; c < col; c++ {
		if row[c] != Gap {
			res++
		}
	}
	if row[col] == Gap {
		return res, false, nil
	}
	return res, true, nil
}

// ResidueToCol maps a 0-based ungapped residue index in the named row to
// its alignment column.
func (a *Alignment) ResidueToCol(id string, residue int) (int, error) {
	i, ok := a.rowIndex[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoRow, id)
	}
	row := a.Rows[i]
	res := 0
	for c := 0; c < len(row); c++ {
		if row[c] != Gap {
			if res == residue {
				return c, nil
			}
			res++
		}
	}
	return 0, fmt.Errorf("%w: residue %d beyond row %q (%d residues)", ErrRange, residue, id, res)
}

// ColumnsToResidueInterval projects an alignment column interval onto the
// named row as an ungapped residue interval. ok is false when the row is
// all gaps within the columns.
func (a *Alignment) ColumnsToResidueInterval(id string, cols interval.Interval) (interval.Interval, bool, error) {
	i, ok := a.rowIndex[id]
	if !ok {
		return interval.Interval{}, false, fmt.Errorf("%w: %q", ErrNoRow, id)
	}
	if !cols.Valid() || cols.Lo < 0 || cols.Hi > int64(a.NumCols()) {
		return interval.Interval{}, false, fmt.Errorf("%w: %v", ErrRange, cols)
	}
	row := a.Rows[i]
	res := 0
	first, last := -1, -1
	for c := 0; c < int(cols.Hi); c++ {
		if row[c] == Gap {
			continue
		}
		if c >= int(cols.Lo) {
			if first == -1 {
				first = res
			}
			last = res
		}
		res++
	}
	if first == -1 {
		return interval.Interval{}, false, nil
	}
	return interval.Interval{Lo: int64(first), Hi: int64(last) + 1}, true, nil
}

// Block is an annotation mark on an alignment: a set of rows crossed with a
// column interval.
type Block struct {
	RowIDs []string
	Cols   interval.Interval
}

// Block validates and returns a block mark over the alignment.
func (a *Alignment) Block(rowIDs []string, cols interval.Interval) (*Block, error) {
	if len(rowIDs) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrBadBlock)
	}
	if !cols.Valid() || cols.Lo < 0 || cols.Hi > int64(a.NumCols()) {
		return nil, fmt.Errorf("%w: columns %v", ErrBadBlock, cols)
	}
	for _, id := range rowIDs {
		if _, ok := a.rowIndex[id]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoRow, id)
		}
	}
	return &Block{RowIDs: append([]string(nil), rowIDs...), Cols: cols}, nil
}

// Conservation returns, for each column in cols, the fraction of non-gap
// residues matching the column's majority residue.
func (a *Alignment) Conservation(cols interval.Interval) ([]float64, error) {
	if !cols.Valid() || cols.Lo < 0 || cols.Hi > int64(a.NumCols()) {
		return nil, fmt.Errorf("%w: %v", ErrRange, cols)
	}
	out := make([]float64, 0, cols.Len())
	for c := cols.Lo; c < cols.Hi; c++ {
		counts := map[byte]int{}
		total := 0
		for _, row := range a.Rows {
			b := row[c]
			if b == Gap {
				continue
			}
			counts[b]++
			total++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if total == 0 {
			out = append(out, 0)
		} else {
			out = append(out, float64(best)/float64(total))
		}
	}
	return out, nil
}

// ParseFASTA reads an alignment from aligned-FASTA text (all records the
// same length, '-' for gaps).
func ParseFASTA(r io.Reader, id string) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var ids []string
	var rows []string
	var body strings.Builder
	cur := ""
	flush := func() {
		if cur != "" {
			ids = append(ids, cur)
			rows = append(rows, strings.ToUpper(body.String()))
			body.Reset()
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			fields := strings.Fields(line[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("msa: empty header at line %d", lineNo)
			}
			cur = fields[0]
			continue
		}
		if cur == "" {
			return nil, fmt.Errorf("msa: sequence data before header at line %d", lineNo)
		}
		body.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("msa: read: %w", err)
	}
	flush()
	return New(id, ids, rows)
}

// ParseFASTAString parses aligned FASTA from a string.
func ParseFASTAString(s, id string) (*Alignment, error) {
	return ParseFASTA(strings.NewReader(s), id)
}
