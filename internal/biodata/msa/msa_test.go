package msa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"graphitti/internal/interval"
)

// aln is a 4x10 alignment used throughout:
//
//	s1: AC-GTACG-T   (8 residues)
//	s2: ACAGTACGAT   (10 residues)
//	s3: -C-GTAC--T   (6 residues)
//	s4: ACAGT-CGAT   (9 residues)
func aln(t *testing.T) *Alignment {
	t.Helper()
	a, err := New("test-aln",
		[]string{"s1", "s2", "s3", "s4"},
		[]string{
			"AC-GTACG-T",
			"ACAGTACGAT",
			"-C-GTAC--T",
			"ACAGT-CGAT",
		})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := New("x", []string{"a"}, []string{"AC", "GT"}); !errors.Is(err, ErrShape) {
		t.Fatalf("id/row mismatch: err = %v", err)
	}
	if _, err := New("x", []string{"a", "b"}, []string{"AC", "GTT"}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged: err = %v", err)
	}
	if _, err := New("x", []string{"a", "a"}, []string{"AC", "GT"}); err == nil {
		t.Fatal("duplicate row ids accepted")
	}
}

func TestShape(t *testing.T) {
	a := aln(t)
	if a.NumRows() != 4 || a.NumCols() != 10 {
		t.Fatalf("shape = %dx%d", a.NumRows(), a.NumCols())
	}
	row, err := a.Row("s3")
	if err != nil || row != "-C-GTAC--T" {
		t.Fatalf("Row(s3) = %q, %v", row, err)
	}
	if _, err := a.Row("ghost"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("ghost row: err = %v", err)
	}
}

func TestColToResidue(t *testing.T) {
	a := aln(t)
	tests := []struct {
		row   string
		col   int
		res   int
		exact bool
	}{
		{"s1", 0, 0, true},
		{"s1", 1, 1, true},
		{"s1", 2, 2, false}, // gap
		{"s1", 3, 2, true},
		{"s1", 9, 7, true},
		{"s3", 0, 0, false}, // leading gap
		{"s3", 1, 0, true},
		{"s2", 9, 9, true},
	}
	for _, tc := range tests {
		res, exact, err := a.ColToResidue(tc.row, tc.col)
		if err != nil {
			t.Fatalf("ColToResidue(%s,%d): %v", tc.row, tc.col, err)
		}
		if res != tc.res || exact != tc.exact {
			t.Errorf("ColToResidue(%s,%d) = (%d,%v), want (%d,%v)",
				tc.row, tc.col, res, exact, tc.res, tc.exact)
		}
	}
	if _, _, err := a.ColToResidue("ghost", 0); !errors.Is(err, ErrNoRow) {
		t.Fatalf("ghost: err = %v", err)
	}
	if _, _, err := a.ColToResidue("s1", 10); !errors.Is(err, ErrRange) {
		t.Fatalf("col 10: err = %v", err)
	}
}

func TestResidueToCol(t *testing.T) {
	a := aln(t)
	tests := []struct {
		row string
		res int
		col int
	}{
		{"s1", 0, 0},
		{"s1", 2, 3}, // skips the gap at column 2
		{"s1", 7, 9},
		{"s3", 0, 1},
		{"s3", 5, 9},
	}
	for _, tc := range tests {
		col, err := a.ResidueToCol(tc.row, tc.res)
		if err != nil || col != tc.col {
			t.Errorf("ResidueToCol(%s,%d) = (%d,%v), want %d", tc.row, tc.res, col, err, tc.col)
		}
	}
	if _, err := a.ResidueToCol("s3", 6); !errors.Is(err, ErrRange) {
		t.Fatalf("beyond row: err = %v", err)
	}
}

func TestColumnsToResidueInterval(t *testing.T) {
	a := aln(t)
	// Columns [2,5) on s1: col2 gap, col3 residue 2, col4 residue 3.
	iv, ok, err := a.ColumnsToResidueInterval("s1", interval.Interval{Lo: 2, Hi: 5})
	if err != nil || !ok || iv != (interval.Interval{Lo: 2, Hi: 4}) {
		t.Fatalf("s1 [2,5) = (%v,%v,%v)", iv, ok, err)
	}
	// All-gap window on s3: columns [7,9) are both gaps.
	_, ok, err = a.ColumnsToResidueInterval("s3", interval.Interval{Lo: 7, Hi: 9})
	if err != nil || ok {
		t.Fatalf("all-gap window should report !ok, got (%v,%v)", ok, err)
	}
	if _, _, err = a.ColumnsToResidueInterval("s1", interval.Interval{Lo: 5, Hi: 20}); !errors.Is(err, ErrRange) {
		t.Fatalf("out of range: err = %v", err)
	}
}

func TestBlock(t *testing.T) {
	a := aln(t)
	b, err := a.Block([]string{"s1", "s2"}, interval.Interval{Lo: 3, Hi: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.RowIDs) != 2 || b.Cols.Len() != 5 {
		t.Fatalf("block = %+v", b)
	}
	if _, err := a.Block(nil, interval.Interval{Lo: 0, Hi: 1}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("no rows: err = %v", err)
	}
	if _, err := a.Block([]string{"s1"}, interval.Interval{Lo: 0, Hi: 11}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad cols: err = %v", err)
	}
	if _, err := a.Block([]string{"ghost"}, interval.Interval{Lo: 0, Hi: 1}); !errors.Is(err, ErrNoRow) {
		t.Fatalf("ghost row: err = %v", err)
	}
}

func TestConservation(t *testing.T) {
	a := aln(t)
	// Column 0: A,A,-,A -> 3/3 conserved. Column 5: A,A,A,- -> 3/3.
	cons, err := a.Conservation(interval.Interval{Lo: 0, Hi: 1})
	if err != nil || len(cons) != 1 || cons[0] != 1.0 {
		t.Fatalf("conservation col0 = %v, %v", cons, err)
	}
	// Column 2: -,A,-,A -> majority A of 2 residues -> 1.0.
	cons, _ = a.Conservation(interval.Interval{Lo: 2, Hi: 3})
	if cons[0] != 1.0 {
		t.Fatalf("conservation col2 = %v", cons)
	}
	if _, err := a.Conservation(interval.Interval{Lo: -1, Hi: 2}); !errors.Is(err, ErrRange) {
		t.Fatalf("bad range: err = %v", err)
	}
}

func TestParseFASTA(t *testing.T) {
	src := ">s1 first\nAC-GT\nACG--\n>s2\nACAGT\nACGTT\n"
	a, err := ParseFASTAString(src, "aln1")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 2 || a.NumCols() != 10 {
		t.Fatalf("shape = %dx%d", a.NumRows(), a.NumCols())
	}
	row, _ := a.Row("s1")
	if row != "AC-GTACG--" {
		t.Fatalf("row s1 = %q", row)
	}
	// Ragged alignments fail.
	if _, err := ParseFASTAString(">a\nACGT\n>b\nAC\n", "x"); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged: err = %v", err)
	}
	if _, err := ParseFASTAString("", "x"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: err = %v", err)
	}
	// Regression (found by the parser fuzz test): a bare ">" header and
	// data before any header must error, not panic.
	if _, err := ParseFASTAString(">\nACGT\n", "x"); err == nil || !strings.Contains(err.Error(), "empty header") {
		t.Fatalf("bare header: err = %v", err)
	}
	if _, err := ParseFASTAString("ACGT\n>a\nACGT\n", "x"); err == nil || !strings.Contains(err.Error(), "before header") {
		t.Fatalf("data before header: err = %v", err)
	}
}

// TestQuickCoordinateRoundTrip: ResidueToCol followed by ColToResidue is
// the identity for every residue of random gapped rows.
func TestQuickCoordinateRoundTrip(t *testing.T) {
	check := func(pattern []bool) bool {
		if len(pattern) == 0 {
			return true
		}
		var sb strings.Builder
		nRes := 0
		for _, isRes := range pattern {
			if isRes {
				sb.WriteByte('A')
				nRes++
			} else {
				sb.WriteByte(Gap)
			}
		}
		if nRes == 0 {
			sb.WriteByte('A') // ensure at least one residue
			nRes = 1
		}
		row := sb.String()
		a, err := New("q", []string{"r"}, []string{row})
		if err != nil {
			return false
		}
		for res := 0; res < nRes; res++ {
			col, err := a.ResidueToCol("r", res)
			if err != nil {
				return false
			}
			back, exact, err := a.ColToResidue("r", col)
			if err != nil || !exact || back != res {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
