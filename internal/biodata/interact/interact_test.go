package interact

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// ns1Graph builds a small NS1-centred interactome:
//
//	NS1 - PKR (inhibits), NS1 - TRIM25 (binds), NS1 - CPSF30 (binds)
//	PKR - EIF2A (phosphorylates)
//	isolated: RIG-I - MAVS (signals)
func ns1Graph(t testing.TB) *Graph {
	g := NewGraph("NS1-interactome")
	mols := []struct {
		id  string
		typ MoleculeType
	}{
		{"NS1", ProteinMol}, {"PKR", ProteinMol}, {"TRIM25", ProteinMol},
		{"CPSF30", ProteinMol}, {"EIF2A", ProteinMol},
		{"RIG-I", ProteinMol}, {"MAVS", ProteinMol},
	}
	for _, m := range mols {
		if _, err := g.AddMolecule(m.id, m.id, m.typ); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct{ a, b, kind string }{
		{"NS1", "PKR", "inhibits"},
		{"NS1", "TRIM25", "binds"},
		{"NS1", "CPSF30", "binds"},
		{"PKR", "EIF2A", "phosphorylates"},
		{"RIG-I", "MAVS", "signals"},
	}
	for _, e := range edges {
		if err := g.AddInteraction(e.a, e.b, e.kind, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddMolecule(t *testing.T) {
	g := NewGraph("x")
	if _, err := g.AddMolecule("", "x", ProteinMol); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := g.AddMolecule("a", "A", GeneMol); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddMolecule("a", "A2", GeneMol); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: err = %v", err)
	}
	m, ok := g.Molecule("a")
	if !ok || m.Type != GeneMol {
		t.Fatalf("Molecule = %+v, %v", m, ok)
	}
}

func TestAddInteractionErrors(t *testing.T) {
	g := NewGraph("x")
	_, _ = g.AddMolecule("a", "A", ProteinMol)
	if err := g.AddInteraction("a", "a", "binds", 1); !errors.Is(err, ErrSelfEdge) {
		t.Fatalf("self edge: err = %v", err)
	}
	if err := g.AddInteraction("a", "ghost", "binds", 1); !errors.Is(err, ErrNoMolecule) {
		t.Fatalf("ghost: err = %v", err)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := ns1Graph(t)
	nbs, err := g.Neighbors("NS1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CPSF30", "PKR", "TRIM25"}
	if len(nbs) != 3 {
		t.Fatalf("neighbors = %v", nbs)
	}
	for i := range want {
		if nbs[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nbs, want)
		}
	}
	if g.Degree("NS1") != 3 || g.Degree("EIF2A") != 1 {
		t.Fatal("degree wrong")
	}
	if _, err := g.Neighbors("ghost"); !errors.Is(err, ErrNoMolecule) {
		t.Fatalf("ghost: err = %v", err)
	}
	if g.NumMolecules() != 7 || g.NumInteractions() != 5 {
		t.Fatalf("counts = %d/%d", g.NumMolecules(), g.NumInteractions())
	}
}

func TestInteractionsEmittedOnce(t *testing.T) {
	g := ns1Graph(t)
	es := g.Interactions()
	if len(es) != 5 {
		t.Fatalf("interactions = %d", len(es))
	}
	for _, e := range es {
		if e.A >= e.B {
			t.Fatalf("edge not normalised: %+v", e)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := ns1Graph(t)
	sg, err := g.InducedSubgraph("NS1", "PKR", "EIF2A")
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Molecules) != 3 || len(sg.Edges) != 2 {
		t.Fatalf("subgraph = %+v", sg)
	}
	if sg.MarkID() != "EIF2A|NS1|PKR" {
		t.Fatalf("MarkID = %q", sg.MarkID())
	}
	// Edges must stay inside the set: NS1-TRIM25 excluded.
	for _, e := range sg.Edges {
		if e.A == "TRIM25" || e.B == "TRIM25" {
			t.Fatal("edge outside subset")
		}
	}
	if _, err := g.InducedSubgraph(); !errors.Is(err, ErrEmptySubset) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := g.InducedSubgraph("ghost"); !errors.Is(err, ErrNoMolecule) {
		t.Fatalf("ghost: err = %v", err)
	}
}

func TestNeighborhood(t *testing.T) {
	g := ns1Graph(t)
	sg, err := g.Neighborhood("NS1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Molecules) != 4 {
		t.Fatalf("1-hop = %v", sg.Molecules)
	}
	sg, _ = g.Neighborhood("NS1", 2)
	if len(sg.Molecules) != 5 { // adds EIF2A
		t.Fatalf("2-hop = %v", sg.Molecules)
	}
	sg, _ = g.Neighborhood("NS1", 0)
	if len(sg.Molecules) != 1 {
		t.Fatalf("0-hop = %v", sg.Molecules)
	}
}

func TestComponents(t *testing.T) {
	g := ns1Graph(t)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 5 || len(comps[1]) != 2 {
		t.Fatalf("component sizes = %d, %d", len(comps[0]), len(comps[1]))
	}
	if comps[1][0] != "MAVS" || comps[1][1] != "RIG-I" {
		t.Fatalf("second component = %v", comps[1])
	}
}

// TestQuickInducedSubgraphInvariants: induced edges always join molecules
// inside the subset, and the full-set induction returns every edge.
func TestQuickInducedSubgraphInvariants(t *testing.T) {
	check := func(n uint8, edges []uint16, pick []bool) bool {
		nodes := int(n%12) + 2
		g := NewGraph("q")
		for i := 0; i < nodes; i++ {
			if _, err := g.AddMolecule(fmt.Sprintf("m%02d", i), "", ProteinMol); err != nil {
				return false
			}
		}
		for _, e := range edges {
			a := int(e) % nodes
			b := int(e>>4) % nodes
			if a != b {
				_ = g.AddInteraction(fmt.Sprintf("m%02d", a), fmt.Sprintf("m%02d", b), "binds", 0.5)
			}
		}
		var subset []string
		for i := 0; i < nodes; i++ {
			if i < len(pick) && pick[i] {
				subset = append(subset, fmt.Sprintf("m%02d", i))
			}
		}
		if len(subset) == 0 {
			subset = []string{"m00"}
		}
		sg, err := g.InducedSubgraph(subset...)
		if err != nil {
			return false
		}
		inSet := map[string]bool{}
		for _, m := range sg.Molecules {
			inSet[m] = true
		}
		for _, e := range sg.Edges {
			if !inSet[e.A] || !inSet[e.B] {
				return false
			}
		}
		full, err := g.InducedSubgraph(g.Molecules()...)
		if err != nil {
			return false
		}
		return len(full.Edges) == g.NumInteractions()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
