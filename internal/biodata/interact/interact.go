// Package interact models molecular interaction graphs, one of the data
// types in the paper's Avian-Influenza demonstration study ("interaction
// graphs").
//
// Nodes are molecules (proteins, genes, compounds); edges are typed
// interactions. Annotation marks on an interaction graph are subgraphs:
// a molecule set together with the interactions it induces.
package interact

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// MoleculeType classifies a node.
type MoleculeType uint8

// Molecule types.
const (
	ProteinMol MoleculeType = iota
	GeneMol
	CompoundMol
)

func (t MoleculeType) String() string {
	switch t {
	case ProteinMol:
		return "protein"
	case GeneMol:
		return "gene"
	case CompoundMol:
		return "compound"
	default:
		return fmt.Sprintf("moltype(%d)", uint8(t))
	}
}

// Errors reported by interaction-graph operations.
var (
	ErrNoMolecule  = errors.New("interact: no such molecule")
	ErrDuplicate   = errors.New("interact: duplicate molecule")
	ErrSelfEdge    = errors.New("interact: self interaction")
	ErrEmptySubset = errors.New("interact: empty molecule subset")
)

// Molecule is a node of the interaction graph.
type Molecule struct {
	ID   string
	Name string
	Type MoleculeType
}

// Interaction is an edge: Kind is the interaction type (e.g. "binds",
// "phosphorylates"), Score an optional confidence.
type Interaction struct {
	A, B  string // molecule IDs; undirected, stored with A < B
	Kind  string
	Score float64
}

// Graph is a molecular interaction graph.
type Graph struct {
	// ID names the graph (e.g. "NS1-interactome").
	ID        string
	molecules map[string]*Molecule
	adj       map[string][]Interaction
	edgeCount int
}

// NewGraph returns an empty interaction graph.
func NewGraph(id string) *Graph {
	return &Graph{
		ID:        id,
		molecules: make(map[string]*Molecule),
		adj:       make(map[string][]Interaction),
	}
}

// AddMolecule adds a node.
func (g *Graph) AddMolecule(id, name string, typ MoleculeType) (*Molecule, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty id", ErrNoMolecule)
	}
	if _, dup := g.molecules[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	m := &Molecule{ID: id, Name: name, Type: typ}
	g.molecules[id] = m
	return m, nil
}

// Molecule returns the node with the given ID.
func (g *Graph) Molecule(id string) (*Molecule, bool) {
	m, ok := g.molecules[id]
	return m, ok
}

// Molecules returns all molecule IDs, sorted.
func (g *Graph) Molecules() []string {
	out := make([]string, 0, len(g.molecules))
	for id := range g.molecules {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NumMolecules returns the number of nodes.
func (g *Graph) NumMolecules() int { return len(g.molecules) }

// NumInteractions returns the number of edges.
func (g *Graph) NumInteractions() int { return g.edgeCount }

// AddInteraction adds an undirected typed edge between two molecules.
func (g *Graph) AddInteraction(a, b, kind string, score float64) error {
	if a == b {
		return fmt.Errorf("%w: %s", ErrSelfEdge, a)
	}
	if _, ok := g.molecules[a]; !ok {
		return fmt.Errorf("%w: %s", ErrNoMolecule, a)
	}
	if _, ok := g.molecules[b]; !ok {
		return fmt.Errorf("%w: %s", ErrNoMolecule, b)
	}
	if a > b {
		a, b = b, a
	}
	e := Interaction{A: a, B: b, Kind: kind, Score: score}
	g.adj[a] = append(g.adj[a], e)
	g.adj[b] = append(g.adj[b], e)
	g.edgeCount++
	return nil
}

// Neighbors returns the distinct molecules interacting with id, sorted.
func (g *Graph) Neighbors(id string) ([]string, error) {
	if _, ok := g.molecules[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMolecule, id)
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range g.adj[id] {
		peer := e.A
		if peer == id {
			peer = e.B
		}
		if !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Degree returns the number of interactions incident to id.
func (g *Graph) Degree(id string) int { return len(g.adj[id]) }

// Interactions returns all edges, sorted by (A, B, Kind).
func (g *Graph) Interactions() []Interaction {
	var out []Interaction
	for id, es := range g.adj {
		for _, e := range es {
			if e.A == id { // emit each undirected edge once
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Subgraph is an annotation mark on an interaction graph: a molecule set
// plus the induced interactions.
type Subgraph struct {
	GraphID   string
	Molecules []string // sorted
	Edges     []Interaction
}

// MarkID returns the canonical identity of the subgraph mark.
func (s *Subgraph) MarkID() string { return strings.Join(s.Molecules, "|") }

// InducedSubgraph returns the subgraph induced by the given molecule IDs.
func (g *Graph) InducedSubgraph(ids ...string) (*Subgraph, error) {
	if len(ids) == 0 {
		return nil, ErrEmptySubset
	}
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := g.molecules[id]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoMolecule, id)
		}
		set[id] = true
	}
	sg := &Subgraph{GraphID: g.ID}
	for id := range set {
		sg.Molecules = append(sg.Molecules, id)
	}
	sort.Strings(sg.Molecules)
	for _, id := range sg.Molecules {
		for _, e := range g.adj[id] {
			if e.A == id && set[e.B] {
				sg.Edges = append(sg.Edges, e)
			}
		}
	}
	sort.Slice(sg.Edges, func(i, j int) bool {
		if sg.Edges[i].A != sg.Edges[j].A {
			return sg.Edges[i].A < sg.Edges[j].A
		}
		return sg.Edges[i].B < sg.Edges[j].B
	})
	return sg, nil
}

// Neighborhood returns the subgraph induced by id and everything within
// the given number of hops.
func (g *Graph) Neighborhood(id string, hops int) (*Subgraph, error) {
	if _, ok := g.molecules[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMolecule, id)
	}
	seen := map[string]bool{id: true}
	frontier := []string{id}
	for h := 0; h < hops; h++ {
		var next []string
		for _, cur := range frontier {
			nbs, _ := g.Neighbors(cur)
			for _, nb := range nbs {
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	ids := make([]string, 0, len(seen))
	for m := range seen {
		ids = append(ids, m)
	}
	return g.InducedSubgraph(ids...)
}

// Components returns the connected components as sorted slices of molecule
// IDs, largest first (ties by first element).
func (g *Graph) Components() [][]string {
	seen := map[string]bool{}
	var comps [][]string
	for _, start := range g.Molecules() {
		if seen[start] {
			continue
		}
		var comp []string
		queue := []string{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			nbs, _ := g.Neighbors(cur)
			for _, nb := range nbs {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}
