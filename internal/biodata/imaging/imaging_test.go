package imaging

import (
	"errors"
	"testing"
	"testing/quick"

	"graphitti/internal/rtree"
)

func TestNewCoordinateSystem(t *testing.T) {
	cs, err := NewCoordinateSystem("waxholm", rtree.Rect3D(0, 0, 0, 1000, 800, 600))
	if err != nil || cs.Dims != 3 {
		t.Fatalf("cs = %+v, %v", cs, err)
	}
	if _, err := NewCoordinateSystem("bad", rtree.Rect{Dims: 2}); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
}

func TestNewImageValidation(t *testing.T) {
	local := rtree.Rect2D(0, 0, 512, 512)
	if _, err := NewImage("i", "sys", local, Identity(2)); err != nil {
		t.Fatal(err)
	}
	bad := Identity(2)
	bad.Scale[0] = 0
	if _, err := NewImage("i", "sys", local, bad); !errors.Is(err, ErrBadScale) {
		t.Fatalf("zero scale: err = %v", err)
	}
	if _, err := NewImage("i", "sys", rtree.Rect{Dims: 2}, Identity(2)); !errors.Is(err, ErrDims) {
		t.Fatalf("degenerate local: err = %v", err)
	}
}

func TestToFromSystem(t *testing.T) {
	// 512x512 image mapped at 0.5 units/pixel, offset (100, 200).
	reg := Registration{
		Scale:  [rtree.MaxDims]float64{0.5, 0.5},
		Offset: [rtree.MaxDims]float64{100, 200},
	}
	im, err := NewImage("img1", "atlas", rtree.Rect2D(0, 0, 512, 512), reg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := im.ToSystem(rtree.Rect2D(0, 0, 512, 512))
	if err != nil {
		t.Fatal(err)
	}
	if sys != rtree.Rect2D(100, 200, 356, 456) {
		t.Fatalf("ToSystem = %v", sys)
	}
	if im.Footprint() != sys {
		t.Fatal("Footprint disagrees with ToSystem of full extent")
	}
	back, ok := im.FromSystem(sys)
	if !ok || back != rtree.Rect2D(0, 0, 512, 512) {
		t.Fatalf("FromSystem = %v, %v", back, ok)
	}
	// Out-of-bounds local region.
	if _, err := im.ToSystem(rtree.Rect2D(500, 500, 600, 600)); !errors.Is(err, ErrBounds) {
		t.Fatalf("out of bounds: err = %v", err)
	}
	// Dim mismatch.
	if _, err := im.ToSystem(rtree.Rect3D(0, 0, 0, 1, 1, 1)); !errors.Is(err, ErrDims) {
		t.Fatalf("dims: err = %v", err)
	}
	// System rect missing the image.
	if _, ok := im.FromSystem(rtree.Rect2D(0, 0, 50, 50)); ok {
		t.Fatal("disjoint system rect mapped")
	}
	// Clipping.
	clip, ok := im.FromSystem(rtree.Rect2D(90, 190, 110, 210))
	if !ok || clip != rtree.Rect2D(0, 0, 20, 20) {
		t.Fatalf("clip = %v, %v", clip, ok)
	}
}

func TestRegions(t *testing.T) {
	regA := Registration{
		Scale:  [rtree.MaxDims]float64{1, 1},
		Offset: [rtree.MaxDims]float64{0, 0},
	}
	regB := Registration{
		Scale:  [rtree.MaxDims]float64{1, 1},
		Offset: [rtree.MaxDims]float64{50, 0},
	}
	imA, _ := NewImage("A", "atlas", rtree.Rect2D(0, 0, 100, 100), regA)
	imB, _ := NewImage("B", "atlas", rtree.Rect2D(0, 0, 100, 100), regB)
	imC, _ := NewImage("C", "other-atlas", rtree.Rect2D(0, 0, 100, 100), regA)

	// A's region [40,60) x overlaps B's [0,20)+50 = [50,70).
	ra, err := imA.Region(rtree.Rect2D(40, 0, 60, 10))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := imB.Region(rtree.Rect2D(0, 0, 20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Overlaps(rb) {
		t.Fatal("registered regions should overlap in system space")
	}
	x, ok := ra.Intersect(rb)
	if !ok || x != rtree.Rect2D(50, 0, 60, 10) {
		t.Fatalf("Intersect = %v, %v", x, ok)
	}
	// Different systems never overlap.
	rc, _ := imC.Region(rtree.Rect2D(40, 0, 60, 10))
	if ra.Overlaps(rc) {
		t.Fatal("regions in different systems must not overlap")
	}
	if _, ok := ra.Intersect(rc); ok {
		t.Fatal("cross-system intersect must be empty")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for d := 0; d < 3; d++ {
		if id.Scale[d] != 1 || id.Offset[d] != 0 {
			t.Fatalf("Identity wrong at axis %d", d)
		}
	}
}

// TestQuickRegistrationRoundTrip: ToSystem then FromSystem returns the
// original local rect for in-bounds regions.
func TestQuickRegistrationRoundTrip(t *testing.T) {
	check := func(sx, sy uint8, ox, oy int8, x0, y0, w, h uint8) bool {
		reg := Registration{
			Scale:  [rtree.MaxDims]float64{float64(sx%8) + 1, float64(sy%8) + 1},
			Offset: [rtree.MaxDims]float64{float64(ox), float64(oy)},
		}
		im, err := NewImage("q", "s", rtree.Rect2D(0, 0, 300, 300), reg)
		if err != nil {
			return false
		}
		lx := float64(x0 % 200)
		ly := float64(y0 % 200)
		local := rtree.Rect2D(lx, ly, lx+float64(w%50)+1, ly+float64(h%50)+1)
		sys, err := im.ToSystem(local)
		if err != nil {
			return false
		}
		back, ok := im.FromSystem(sys)
		if !ok {
			return false
		}
		const eps = 1e-9
		for d := 0; d < 2; d++ {
			if diff(back.Min[d], local.Min[d]) > eps || diff(back.Max[d], local.Max[d]) > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
