// Package imaging models the image data types of the paper's neuroscience
// demonstration study: brain images registered to shared coordinate
// systems, with annotated rectangular regions.
//
// The paper keeps spatial index count small by registration: "regions [of]
// all brain images of the same resolution are referenced with respect to
// the same brain coordinate system, and placed in a single R-tree". An
// Image therefore carries an affine registration (scale + translation per
// axis) into its CoordinateSystem, and region marks normalise through it
// before insertion into the per-system R-tree.
package imaging

import (
	"errors"
	"fmt"

	"graphitti/internal/rtree"
)

// Errors reported by imaging operations.
var (
	ErrDims     = errors.New("imaging: dimensionality mismatch")
	ErrBounds   = errors.New("imaging: region outside image bounds")
	ErrBadScale = errors.New("imaging: registration scale must be positive")
)

// CoordinateSystem is a shared spatial reference (e.g. a standard brain
// atlas space at a given resolution).
type CoordinateSystem struct {
	// Name identifies the system (e.g. "waxholm-25um").
	Name string
	// Dims is 2 or 3.
	Dims int
	// Bounds is the valid extent of the system.
	Bounds rtree.Rect
}

// NewCoordinateSystem validates and returns a coordinate system.
func NewCoordinateSystem(name string, bounds rtree.Rect) (*CoordinateSystem, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("%w: bounds %v", ErrDims, bounds)
	}
	return &CoordinateSystem{Name: name, Dims: bounds.Dims, Bounds: bounds}, nil
}

// Registration maps image-local coordinates into a coordinate system with
// a per-axis scale and offset: system = local*Scale + Offset.
type Registration struct {
	Scale  [rtree.MaxDims]float64
	Offset [rtree.MaxDims]float64
}

// Identity returns the identity registration for the given dimensionality.
func Identity(dims int) Registration {
	var r Registration
	for d := 0; d < dims; d++ {
		r.Scale[d] = 1
	}
	return r
}

// Image is a registered image: metadata plus its mapping into a shared
// coordinate system. Pixel payloads live in the relational store as native
// blobs; the imaging model only needs geometry.
type Image struct {
	// ID is the image accession (e.g. "mouse-brain-0042").
	ID string
	// System names the coordinate system the image registers into.
	System string
	// Local is the image extent in its own pixel/voxel coordinates.
	Local rtree.Rect
	// Reg maps local coordinates into the system.
	Reg Registration
	// Modality and Subject are free metadata (e.g. "confocal", "mouse-17").
	Modality string
	Subject  string
}

// NewImage validates the registration and returns an image.
func NewImage(id, system string, local rtree.Rect, reg Registration) (*Image, error) {
	if !local.Valid() {
		return nil, fmt.Errorf("%w: local extent %v", ErrDims, local)
	}
	for d := 0; d < local.Dims; d++ {
		if reg.Scale[d] <= 0 {
			return nil, fmt.Errorf("%w: axis %d scale %g", ErrBadScale, d, reg.Scale[d])
		}
	}
	return &Image{ID: id, System: system, Local: local, Reg: reg}, nil
}

// ToSystem maps a rectangle in image-local coordinates into the shared
// coordinate system.
func (im *Image) ToSystem(local rtree.Rect) (rtree.Rect, error) {
	if local.Dims != im.Local.Dims {
		return rtree.Rect{}, fmt.Errorf("%w: region dims %d, image dims %d",
			ErrDims, local.Dims, im.Local.Dims)
	}
	if !im.Local.Contains(local) {
		return rtree.Rect{}, fmt.Errorf("%w: %v outside %v", ErrBounds, local, im.Local)
	}
	out := rtree.Rect{Dims: local.Dims}
	for d := 0; d < local.Dims; d++ {
		out.Min[d] = local.Min[d]*im.Reg.Scale[d] + im.Reg.Offset[d]
		out.Max[d] = local.Max[d]*im.Reg.Scale[d] + im.Reg.Offset[d]
	}
	return out, nil
}

// FromSystem maps a system rectangle back into image-local coordinates,
// clipping to the image extent; ok is false when the rectangle misses the
// image.
func (im *Image) FromSystem(sys rtree.Rect) (rtree.Rect, bool) {
	if sys.Dims != im.Local.Dims {
		return rtree.Rect{}, false
	}
	local := rtree.Rect{Dims: sys.Dims}
	for d := 0; d < sys.Dims; d++ {
		local.Min[d] = (sys.Min[d] - im.Reg.Offset[d]) / im.Reg.Scale[d]
		local.Max[d] = (sys.Max[d] - im.Reg.Offset[d]) / im.Reg.Scale[d]
	}
	return local.Intersect(im.Local)
}

// Footprint returns the image's extent in system coordinates.
func (im *Image) Footprint() rtree.Rect {
	out, _ := im.ToSystem(im.Local)
	return out
}

// Region is an annotated rectangular region of an image, stored in both
// local and system coordinates.
type Region struct {
	ImageID string
	System  string
	Local   rtree.Rect
	Sys     rtree.Rect
}

// Region normalises a local rectangle into the shared system, producing a
// region mark ready for R-tree insertion.
func (im *Image) Region(local rtree.Rect) (*Region, error) {
	sys, err := im.ToSystem(local)
	if err != nil {
		return nil, err
	}
	return &Region{ImageID: im.ID, System: im.System, Local: local, Sys: sys}, nil
}

// Overlaps reports whether two regions overlap in system space (regions in
// different systems never overlap — the paper's per-system trees make
// cross-system comparison meaningless).
func (r *Region) Overlaps(o *Region) bool {
	if r.System != o.System {
		return false
	}
	return r.Sys.Overlaps(o.Sys)
}

// Intersect returns the system-space intersection of two regions.
func (r *Region) Intersect(o *Region) (rtree.Rect, bool) {
	if r.System != o.System {
		return rtree.Rect{}, false
	}
	return r.Sys.Intersect(o.Sys)
}
