// Package seq models the 1-D sequence data types annotated in Graphitti's
// demo studies: DNA, RNA and protein sequences.
//
// The paper's Avian-Influenza study registers "DNA sequences, RNA
// sequences" (among others) and stores their metadata in type-specific
// relations; annotated sub-intervals live in per-chromosome interval trees
// ("a single interval tree is created per chromosome instead of per
// annotated DNA sequence"). Sequences here therefore carry the coordinate
// domain (chromosome/segment) they are addressed in, plus their offset
// within it, so marks can be normalised into the shared domain.
package seq

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"graphitti/internal/interval"
)

// Kind is the molecular alphabet of a sequence.
type Kind uint8

// Sequence kinds.
const (
	DNA Kind = iota
	RNA
	Protein
)

func (k Kind) String() string {
	switch k {
	case DNA:
		return "dna"
	case RNA:
		return "rna"
	case Protein:
		return "protein"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Errors reported by sequence operations.
var (
	ErrAlphabet = errors.New("seq: residue outside alphabet")
	ErrRange    = errors.New("seq: interval outside sequence")
	ErrKind     = errors.New("seq: operation not defined for this kind")
	ErrFormat   = errors.New("seq: bad FASTA")
)

var alphabets = map[Kind]string{
	DNA:     "ACGTN",
	RNA:     "ACGUN",
	Protein: "ACDEFGHIKLMNPQRSTVWYX*",
}

// Sequence is a biological sequence registered with Graphitti.
type Sequence struct {
	// ID is the accession (e.g. "NC_007362").
	ID string
	// Description is the free-text FASTA description.
	Description string
	Kind        Kind
	// Residues holds the upper-case residue letters.
	Residues string
	// Domain names the shared coordinate domain (chromosome, genome
	// segment, or protein family axis) this sequence is addressed in.
	Domain string
	// Offset is the 0-based position of residue 0 within Domain.
	Offset int64
}

// New validates residues against the alphabet for kind and returns a
// sequence. Lower-case input is accepted and upper-cased.
func New(id string, kind Kind, residues string) (*Sequence, error) {
	up := strings.ToUpper(residues)
	alpha := alphabets[kind]
	for i := 0; i < len(up); i++ {
		if !strings.ContainsRune(alpha, rune(up[i])) {
			return nil, fmt.Errorf("%w: %q at %d in %s", ErrAlphabet, up[i], i, id)
		}
	}
	return &Sequence{ID: id, Kind: kind, Residues: up}, nil
}

// Len returns the number of residues.
func (s *Sequence) Len() int64 { return int64(len(s.Residues)) }

// Span returns the sequence's extent in its coordinate domain.
func (s *Sequence) Span() interval.Interval {
	return interval.Interval{Lo: s.Offset, Hi: s.Offset + s.Len()}
}

// Subsequence returns the residues of the local interval [iv.Lo, iv.Hi)
// (0-based, relative to the sequence start).
func (s *Sequence) Subsequence(iv interval.Interval) (string, error) {
	if !iv.Valid() || iv.Lo < 0 || iv.Hi > s.Len() {
		return "", fmt.Errorf("%w: %v in %s (len %d)", ErrRange, iv, s.ID, s.Len())
	}
	return s.Residues[iv.Lo:iv.Hi], nil
}

// ToDomain maps a local interval into the shared coordinate domain.
func (s *Sequence) ToDomain(iv interval.Interval) (interval.Interval, error) {
	if !iv.Valid() || iv.Lo < 0 || iv.Hi > s.Len() {
		return interval.Interval{}, fmt.Errorf("%w: %v in %s", ErrRange, iv, s.ID)
	}
	return interval.Interval{Lo: s.Offset + iv.Lo, Hi: s.Offset + iv.Hi}, nil
}

// FromDomain maps a domain interval back into local coordinates, clipping
// to the sequence extent; ok is false when the interval misses the
// sequence entirely.
func (s *Sequence) FromDomain(iv interval.Interval) (interval.Interval, bool) {
	clipped, ok := iv.Intersect(s.Span())
	if !ok {
		return interval.Interval{}, false
	}
	return interval.Interval{Lo: clipped.Lo - s.Offset, Hi: clipped.Hi - s.Offset}, true
}

// GC returns the G+C fraction of a DNA/RNA sequence.
func (s *Sequence) GC() (float64, error) {
	if s.Kind == Protein {
		return 0, fmt.Errorf("%w: GC of protein %s", ErrKind, s.ID)
	}
	if s.Len() == 0 {
		return 0, nil
	}
	n := 0
	for i := 0; i < len(s.Residues); i++ {
		if s.Residues[i] == 'G' || s.Residues[i] == 'C' {
			n++
		}
	}
	return float64(n) / float64(s.Len()), nil
}

var dnaComplement = map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
var rnaComplement = map[byte]byte{'A': 'U', 'U': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}

// ReverseComplement returns the reverse complement of a DNA or RNA
// sequence.
func (s *Sequence) ReverseComplement() (*Sequence, error) {
	var table map[byte]byte
	switch s.Kind {
	case DNA:
		table = dnaComplement
	case RNA:
		table = rnaComplement
	default:
		return nil, fmt.Errorf("%w: reverse complement of protein %s", ErrKind, s.ID)
	}
	out := make([]byte, len(s.Residues))
	for i := 0; i < len(s.Residues); i++ {
		out[len(out)-1-i] = table[s.Residues[i]]
	}
	rc := *s
	rc.ID = s.ID + ".rc"
	rc.Residues = string(out)
	return &rc, nil
}

// Transcribe converts a DNA sequence to RNA (T -> U).
func (s *Sequence) Transcribe() (*Sequence, error) {
	if s.Kind != DNA {
		return nil, fmt.Errorf("%w: transcribe %s", ErrKind, s.Kind)
	}
	out := *s
	out.ID = s.ID + ".rna"
	out.Kind = RNA
	out.Residues = strings.ReplaceAll(s.Residues, "T", "U")
	return &out, nil
}

// ParseFASTA reads sequences of the given kind from FASTA text.
func ParseFASTA(r io.Reader, kind Kind) ([]*Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var out []*Sequence
	var id, desc string
	var body strings.Builder
	flush := func() error {
		if id == "" {
			return nil
		}
		s, err := New(id, kind, body.String())
		if err != nil {
			return err
		}
		s.Description = desc
		out = append(out, s)
		body.Reset()
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("%w: empty header at line %d", ErrFormat, lineNo)
			}
			parts := strings.SplitN(header, " ", 2)
			id = parts[0]
			desc = ""
			if len(parts) == 2 {
				desc = parts[1]
			}
			continue
		}
		if id == "" {
			return nil, fmt.Errorf("%w: sequence data before header at line %d", ErrFormat, lineNo)
		}
		body.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: fasta read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no sequences", ErrFormat)
	}
	return out, nil
}

// ParseFASTAString parses FASTA text from a string.
func ParseFASTAString(s string, kind Kind) ([]*Sequence, error) {
	return ParseFASTA(strings.NewReader(s), kind)
}

// WriteFASTA writes sequences in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, seqs ...*Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for i := 0; i < len(s.Residues); i += 70 {
			end := i + 70
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			bw.WriteString(s.Residues[i:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
