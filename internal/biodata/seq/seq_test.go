package seq

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"graphitti/internal/interval"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("a", DNA, "acgtn"); err != nil {
		t.Fatalf("lower-case DNA rejected: %v", err)
	}
	if _, err := New("a", DNA, "ACGU"); !errors.Is(err, ErrAlphabet) {
		t.Fatalf("U in DNA: err = %v", err)
	}
	if _, err := New("a", RNA, "ACGU"); err != nil {
		t.Fatalf("RNA rejected: %v", err)
	}
	if _, err := New("a", RNA, "ACGT"); !errors.Is(err, ErrAlphabet) {
		t.Fatalf("T in RNA: err = %v", err)
	}
	if _, err := New("p", Protein, "MKVLAW*"); err != nil {
		t.Fatalf("protein rejected: %v", err)
	}
	if _, err := New("p", Protein, "MKB"); !errors.Is(err, ErrAlphabet) {
		t.Fatalf("B in protein: err = %v", err)
	}
	if _, err := New("e", DNA, ""); err != nil {
		t.Fatalf("empty sequence should be allowed: %v", err)
	}
}

func TestSubsequenceAndSpan(t *testing.T) {
	s, _ := New("x", DNA, "ACGTACGT")
	s.Domain = "chr1"
	s.Offset = 100

	sub, err := s.Subsequence(interval.Interval{Lo: 2, Hi: 6})
	if err != nil || sub != "GTAC" {
		t.Fatalf("Subsequence = %q, %v", sub, err)
	}
	if _, err := s.Subsequence(interval.Interval{Lo: 4, Hi: 9}); !errors.Is(err, ErrRange) {
		t.Fatalf("out of range: err = %v", err)
	}
	if _, err := s.Subsequence(interval.Interval{Lo: 5, Hi: 5}); !errors.Is(err, ErrRange) {
		t.Fatalf("empty interval: err = %v", err)
	}
	if got := s.Span(); got != (interval.Interval{Lo: 100, Hi: 108}) {
		t.Fatalf("Span = %v", got)
	}
}

func TestDomainMapping(t *testing.T) {
	s, _ := New("x", DNA, "ACGTACGT")
	s.Domain = "chr1"
	s.Offset = 1000

	dom, err := s.ToDomain(interval.Interval{Lo: 2, Hi: 5})
	if err != nil || dom != (interval.Interval{Lo: 1002, Hi: 1005}) {
		t.Fatalf("ToDomain = %v, %v", dom, err)
	}
	back, ok := s.FromDomain(dom)
	if !ok || back != (interval.Interval{Lo: 2, Hi: 5}) {
		t.Fatalf("FromDomain = %v, %v", back, ok)
	}
	// Clipping.
	clip, ok := s.FromDomain(interval.Interval{Lo: 990, Hi: 1003})
	if !ok || clip != (interval.Interval{Lo: 0, Hi: 3}) {
		t.Fatalf("clipped FromDomain = %v, %v", clip, ok)
	}
	if _, ok := s.FromDomain(interval.Interval{Lo: 0, Hi: 10}); ok {
		t.Fatal("disjoint interval mapped")
	}
	if _, err := s.ToDomain(interval.Interval{Lo: -1, Hi: 2}); !errors.Is(err, ErrRange) {
		t.Fatalf("negative: err = %v", err)
	}
}

func TestGC(t *testing.T) {
	s, _ := New("x", DNA, "GGCC")
	gc, err := s.GC()
	if err != nil || gc != 1.0 {
		t.Fatalf("GC = %v, %v", gc, err)
	}
	s2, _ := New("y", DNA, "ATGC")
	gc, _ = s2.GC()
	if gc != 0.5 {
		t.Fatalf("GC = %v", gc)
	}
	p, _ := New("p", Protein, "MKV")
	if _, err := p.GC(); !errors.Is(err, ErrKind) {
		t.Fatalf("GC of protein: err = %v", err)
	}
	empty, _ := New("e", DNA, "")
	if gc, err := empty.GC(); err != nil || gc != 0 {
		t.Fatalf("GC of empty = %v, %v", gc, err)
	}
}

func TestReverseComplement(t *testing.T) {
	s, _ := New("x", DNA, "AACGT")
	rc, err := s.ReverseComplement()
	if err != nil || rc.Residues != "ACGTT" {
		t.Fatalf("RC = %v, %v", rc, err)
	}
	// Involution.
	rc2, _ := rc.ReverseComplement()
	if rc2.Residues != s.Residues {
		t.Fatal("double reverse complement must be identity")
	}
	r, _ := New("r", RNA, "AACGU")
	rrc, err := r.ReverseComplement()
	if err != nil || rrc.Residues != "ACGUU" {
		t.Fatalf("RNA RC = %v, %v", rrc, err)
	}
	p, _ := New("p", Protein, "MKV")
	if _, err := p.ReverseComplement(); !errors.Is(err, ErrKind) {
		t.Fatalf("protein RC: err = %v", err)
	}
}

func TestTranscribe(t *testing.T) {
	s, _ := New("x", DNA, "ATGCTT")
	r, err := s.Transcribe()
	if err != nil || r.Residues != "AUGCUU" || r.Kind != RNA {
		t.Fatalf("Transcribe = %v, %v", r, err)
	}
	if _, err := r.Transcribe(); !errors.Is(err, ErrKind) {
		t.Fatalf("transcribe RNA: err = %v", err)
	}
}

const fastaSample = `>NC_007362 Influenza A segment 1
ACGTACGTAC
GTACGT
>NC_007363 Influenza A segment 2
TTTTGGGG
`

func TestParseFASTA(t *testing.T) {
	seqs, err := ParseFASTAString(fastaSample, DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("parsed %d sequences", len(seqs))
	}
	if seqs[0].ID != "NC_007362" || seqs[0].Description != "Influenza A segment 1" {
		t.Fatalf("header = %q / %q", seqs[0].ID, seqs[0].Description)
	}
	if seqs[0].Residues != "ACGTACGTACGTACGT" {
		t.Fatalf("residues = %q (continuation lines must concatenate)", seqs[0].Residues)
	}
	if seqs[1].Len() != 8 {
		t.Fatalf("second len = %d", seqs[1].Len())
	}
}

func TestParseFASTAErrors(t *testing.T) {
	cases := []string{
		"",
		"ACGT\n",
		">\nACGT\n",
		">ok\nACGU\n", // U in DNA
	}
	for i, src := range cases {
		if _, err := ParseFASTAString(src, DNA); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	seqs, err := ParseFASTAString(fastaSample, DNA)
	if err != nil {
		t.Fatal(err)
	}
	// Add one long sequence to exercise wrapping.
	long, _ := New("LONG", DNA, strings.Repeat("ACGT", 100))
	long.Description = "400 residues"
	seqs = append(seqs, long)

	var sb strings.Builder
	if err := WriteFASTA(&sb, seqs...); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFASTAString(sb.String(), DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("round trip count = %d", len(back))
	}
	for i := range seqs {
		if back[i].ID != seqs[i].ID || back[i].Residues != seqs[i].Residues ||
			back[i].Description != seqs[i].Description {
			t.Fatalf("sequence %d changed in round trip", i)
		}
	}
	// Wrapped lines must not exceed 70 chars.
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 71 {
			t.Fatalf("line too long: %d chars", len(line))
		}
	}
}

// TestQuickDomainRoundTrip: ToDomain then FromDomain is the identity for
// in-range intervals.
func TestQuickDomainRoundTrip(t *testing.T) {
	check := func(offRaw uint16, lo, width uint8, seqLen uint8) bool {
		n := int(seqLen%100) + 10
		s, err := New("q", DNA, strings.Repeat("A", n))
		if err != nil {
			return false
		}
		s.Offset = int64(offRaw)
		l := int64(lo) % int64(n)
		w := int64(width)%int64(n-int(l)) + 1
		iv := interval.Interval{Lo: l, Hi: l + w}
		dom, err := s.ToDomain(iv)
		if err != nil {
			return false
		}
		back, ok := s.FromDomain(dom)
		return ok && back == iv
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReverseComplementInvolution over random DNA.
func TestQuickReverseComplementInvolution(t *testing.T) {
	letters := "ACGTN"
	check := func(raw []byte) bool {
		var sb strings.Builder
		for _, b := range raw {
			sb.WriteByte(letters[int(b)%len(letters)])
		}
		s, err := New("q", DNA, sb.String())
		if err != nil {
			return false
		}
		rc, err := s.ReverseComplement()
		if err != nil {
			return false
		}
		rc2, err := rc.ReverseComplement()
		if err != nil {
			return false
		}
		return rc2.Residues == s.Residues && len(rc.Residues) == len(s.Residues)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
