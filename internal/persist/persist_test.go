package persist

import (
	"bytes"
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/workload"
	"graphitti/internal/xmldoc"
)

func influenzaStore(t *testing.T) *core.Store {
	t.Helper()
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 60
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study.Store
}

func neuroStore(t *testing.T) *core.Store {
	t.Helper()
	study, err := workload.Neuroscience(workload.DefaultNeuro)
	if err != nil {
		t.Fatal(err)
	}
	return study.Store
}

// assertStoresEquivalent compares the observable state of two stores.
func assertStoresEquivalent(t *testing.T, a, b *core.Store) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats differ:\n a=%+v\n b=%+v", sa, sb)
	}
	idsA, idsB := a.AnnotationIDs(), b.AnnotationIDs()
	if len(idsA) != len(idsB) {
		t.Fatalf("annotation counts differ: %d vs %d", len(idsA), len(idsB))
	}
	for i := range idsA {
		annA, err := a.Annotation(idsA[i])
		if err != nil {
			t.Fatal(err)
		}
		annB, err := b.Annotation(idsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !xmldoc.Equal(annA.Content, annB.Content) {
			t.Fatalf("annotation %d content differs:\n%s\nvs\n%s",
				idsA[i], annA.Content.String(), annB.Content.String())
		}
	}
}

func TestRoundTripInfluenza(t *testing.T) {
	orig := influenzaStore(t)
	var buf bytes.Buffer
	if err := Write(orig, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEquivalent(t, orig, restored)

	// Queries behave identically on the restored store.
	a := orig.SearchKeyword("protease", true)
	b := restored.SearchKeyword("protease", true)
	if len(a) != len(b) {
		t.Fatalf("keyword results differ: %d vs %d", len(a), len(b))
	}
	ra := orig.ReferentsAt("segment1", 25)
	rb := restored.ReferentsAt("segment1", 25)
	if len(ra) != len(rb) {
		t.Fatalf("stab results differ: %d vs %d", len(ra), len(rb))
	}
}

func TestRoundTripNeuro(t *testing.T) {
	orig := neuroStore(t)
	var buf bytes.Buffer
	if err := Write(orig, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEquivalent(t, orig, restored)
	// The R-tree rebuilt: same region query results.
	imgs := orig.Images()
	if len(imgs) == 0 {
		t.Fatal("no images")
	}
}

func TestRoundTripDoubleStable(t *testing.T) {
	orig := influenzaStore(t)
	var b1 bytes.Buffer
	if err := Write(orig, &b1); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := Write(restored, &b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshot not stable under export/load/export")
	}
}

func TestSharedReferentsSurviveReplay(t *testing.T) {
	s := core.NewStore()
	d, err := graphittiDNA("NC_1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(d); err != nil {
		t.Fatal(err)
	}
	m1, _ := s.MarkSequenceInterval("NC_1", span(10, 50))
	m2, _ := s.MarkSequenceInterval("NC_1", span(10, 50))
	a1, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	if err != nil {
		t.Fatal(err)
	}
	if a1.ReferentIDs[0] != a2.ReferentIDs[0] {
		t.Fatal("setup: marks not shared")
	}
	var buf bytes.Buffer
	if err := Write(s, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := restored.AnnotationIDs()
	r1, _ := restored.Annotation(ids[0])
	r2, _ := restored.Annotation(ids[1])
	if r1.ReferentIDs[0] != r2.ReferentIDs[0] {
		t.Fatal("shared referent split during replay")
	}
	if restored.Stats().Referents != 1 {
		t.Fatalf("referents = %d after replay", restored.Stats().Referents)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Load(&Snapshot{Version: 99}); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Annotation referencing an unknown ontology term fails cleanly.
	snap := &Snapshot{
		Version: Version,
		Annotations: []AnnotationDump{{
			DC:    map[string][]string{"creator": {"x"}, "date": {"2008-01-01"}},
			Terms: []TermRefDump{{Ontology: "ghost", Term: "t"}},
		}},
	}
	if _, err := Load(snap); err == nil {
		t.Fatal("dangling term reference accepted")
	}
	// Bad value tag.
	snap2 := &Snapshot{
		Version: Version,
		RecordTables: []TableDump{{
			Name: "t", Key: "k",
			Columns: []ColumnDump{{Name: "k", Type: 2}},
			Rows:    [][]ValueDump{{{T: "wat"}}},
		}},
	}
	if _, err := Load(snap2); err == nil {
		t.Fatal("unknown value tag accepted")
	}
}

func graphittiDNA(id string) (*seq.Sequence, error) {
	return seq.New(id, seq.DNA, strings.Repeat("ACGT", 50))
}

func span(lo, hi int64) interval.Interval { return interval.Interval{Lo: lo, Hi: hi} }
