package persist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/prop"
)

// TestRuleRoundTrip checks rules survive a snapshot save/load and that
// the loaded store re-derives the same facts without them ever being
// serialized.
func TestRuleRoundTrip(t *testing.T) {
	s := core.NewStore()
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 100))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	commit := func(lo, hi int64) {
		m, err := s.MarkDomainInterval("chr1", interval.Interval{Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(s.NewAnnotation().Creator("t").Date("2026-01-01").Body("x").Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	commit(10, 50)
	commit(40, 90)
	rule := prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: "chr1"}
	if err := prop.Attach(s).AddRule(rule); err != nil {
		t.Fatal(err)
	}
	if s.View().DerivedCount() != 2 {
		t.Fatalf("derived count = %d, want 2", s.View().DerivedCount())
	}

	var buf bytes.Buffer
	if err := Write(s, &buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("overlap ref")) {
		t.Fatal("snapshot serialized derived facts; they must be recomputed on load")
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := prop.RulesOf(loaded); len(got) != 1 || !reflect.DeepEqual(got[0], rule) {
		t.Fatalf("loaded rules = %v, want [%+v]", got, rule)
	}
	if !reflect.DeepEqual(loaded.DerivedAll(), s.DerivedAll()) {
		t.Fatalf("re-derived facts diverged:\n got %v\nwant %v", loaded.DerivedAll(), s.DerivedAll())
	}
}
