// Package persist serialises a Graphitti store to a portable JSON snapshot
// and rebuilds stores from snapshots.
//
// The snapshot is a logical export — registered ontologies, coordinate
// systems, data objects, record tables and annotations — not a byte-level
// image. Load replays the snapshot through the normal registration and
// commit pipeline, so every index (interval trees, R-trees, keyword index,
// a-graph) is rebuilt consistently and all invariants re-checked.
// Annotation and referent IDs are reassigned densely in commit order;
// identical marks re-deduplicate into shared referents exactly as they did
// originally.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/dublincore"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// Version identifies the snapshot format.
const Version = 1

// Snapshot is the portable representation of a store.
type Snapshot struct {
	Version      int              `json:"version"`
	Ontologies   []OntologyDump   `json:"ontologies,omitempty"`
	Systems      []SystemDump     `json:"systems,omitempty"`
	Sequences    []SequenceDump   `json:"sequences,omitempty"`
	Alignments   []AlignmentDump  `json:"alignments,omitempty"`
	Trees        []TreeDump       `json:"trees,omitempty"`
	Graphs       []GraphDump      `json:"graphs,omitempty"`
	Images       []ImageDump      `json:"images,omitempty"`
	RecordTables []TableDump      `json:"recordTables,omitempty"`
	Annotations  []AnnotationDump `json:"annotations,omitempty"`
}

// OntologyDump serialises a term graph.
type OntologyDump struct {
	Name  string     `json:"name"`
	Terms []TermDump `json:"terms"`
	Edges []EdgeDump `json:"edges,omitempty"`
}

// TermDump serialises one ontology term.
type TermDump struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Def      string   `json:"def,omitempty"`
	Synonyms []string `json:"synonyms,omitempty"`
}

// EdgeDump serialises one quantified relationship.
type EdgeDump struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Rel   string `json:"rel"`
	Quant uint8  `json:"quant,omitempty"`
}

// SystemDump serialises a coordinate system.
type SystemDump struct {
	Name   string        `json:"name"`
	Bounds [2][3]float64 `json:"bounds"`
	Dims   int           `json:"dims"`
}

// SequenceDump serialises a sequence.
type SequenceDump struct {
	ID          string `json:"id"`
	Kind        uint8  `json:"kind"`
	Description string `json:"description,omitempty"`
	Domain      string `json:"domain"`
	Offset      int64  `json:"offset"`
	Residues    string `json:"residues"`
}

// AlignmentDump serialises an alignment.
type AlignmentDump struct {
	ID     string   `json:"id"`
	RowIDs []string `json:"rowIds"`
	Rows   []string `json:"rows"`
}

// TreeDump serialises a phylogenetic tree.
type TreeDump struct {
	ID     string `json:"id"`
	Newick string `json:"newick"`
}

// GraphDump serialises an interaction graph.
type GraphDump struct {
	ID           string            `json:"id"`
	Molecules    []MoleculeDump    `json:"molecules"`
	Interactions []InteractionDump `json:"interactions,omitempty"`
}

// MoleculeDump serialises an interaction-graph node.
type MoleculeDump struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Type uint8  `json:"type"`
}

// InteractionDump serialises one interaction.
type InteractionDump struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Kind  string  `json:"kind"`
	Score float64 `json:"score,omitempty"`
}

// ImageDump serialises a registered image.
type ImageDump struct {
	ID       string        `json:"id"`
	System   string        `json:"system"`
	Modality string        `json:"modality,omitempty"`
	Subject  string        `json:"subject,omitempty"`
	Dims     int           `json:"dims"`
	Local    [2][3]float64 `json:"local"`
	Scale    [3]float64    `json:"scale"`
	Offset   [3]float64    `json:"offset"`
}

// TableDump serialises a user record table.
type TableDump struct {
	Name    string        `json:"name"`
	Key     string        `json:"key"`
	Columns []ColumnDump  `json:"columns"`
	Rows    [][]ValueDump `json:"rows,omitempty"`
}

// ColumnDump serialises a column definition.
type ColumnDump struct {
	Name    string `json:"name"`
	Type    uint8  `json:"type"`
	NotNull bool   `json:"notNull,omitempty"`
}

// ValueDump serialises one typed cell. T is one of "null", "i", "f", "s",
// "b", "bytes".
type ValueDump struct {
	T     string  `json:"t"`
	I     int64   `json:"i,omitempty"`
	F     float64 `json:"f,omitempty"`
	S     string  `json:"s,omitempty"`
	B     bool    `json:"b,omitempty"`
	Bytes []byte  `json:"bytes,omitempty"`
}

// AnnotationDump serialises an annotation for replay.
type AnnotationDump struct {
	DC        map[string][]string `json:"dc"`
	Body      string              `json:"body,omitempty"`
	Tags      []TagDump           `json:"tags,omitempty"`
	Referents []ReferentDump      `json:"referents,omitempty"`
	Terms     []TermRefDump       `json:"terms,omitempty"`
}

// TagDump is one user-defined tag.
type TagDump struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// TermRefDump references an ontology term.
type TermRefDump struct {
	Ontology string `json:"ontology"`
	Term     string `json:"term"`
}

// ReferentDump serialises a mark.
type ReferentDump struct {
	Kind       uint8         `json:"kind"`
	ObjectType string        `json:"objectType"`
	ObjectID   string        `json:"objectId"`
	Domain     string        `json:"domain"`
	Lo         int64         `json:"lo,omitempty"`
	Hi         int64         `json:"hi,omitempty"`
	Rect       [2][3]float64 `json:"rect,omitempty"`
	RectDims   int           `json:"rectDims,omitempty"`
	Keys       []string      `json:"keys,omitempty"`
}

// Export captures the store as a snapshot.
func Export(s *core.Store) (*Snapshot, error) {
	snap := &Snapshot{Version: Version}

	for _, name := range s.Ontologies() {
		o, err := s.Ontology(name)
		if err != nil {
			return nil, err
		}
		snap.Ontologies = append(snap.Ontologies, dumpOntology(o))
	}
	for _, name := range s.CoordinateSystems() {
		cs, err := s.CoordinateSystem(name)
		if err != nil {
			return nil, err
		}
		snap.Systems = append(snap.Systems, SystemDump{
			Name: cs.Name, Dims: cs.Dims,
			Bounds: [2][3]float64{cs.Bounds.Min, cs.Bounds.Max},
		})
	}
	for _, id := range s.SequenceIDs() {
		sq, _, err := s.Sequence(id)
		if err != nil {
			return nil, err
		}
		snap.Sequences = append(snap.Sequences, SequenceDump{
			ID: sq.ID, Kind: uint8(sq.Kind), Description: sq.Description,
			Domain: sq.Domain, Offset: sq.Offset, Residues: sq.Residues,
		})
	}
	for _, id := range s.AlignmentIDs() {
		a, err := s.Alignment(id)
		if err != nil {
			return nil, err
		}
		snap.Alignments = append(snap.Alignments, AlignmentDump{
			ID: a.ID, RowIDs: a.RowIDs, Rows: a.Rows,
		})
	}
	for _, id := range s.TreeIDs() {
		t, err := s.Tree(id)
		if err != nil {
			return nil, err
		}
		snap.Trees = append(snap.Trees, TreeDump{ID: t.ID, Newick: t.Newick()})
	}
	for _, id := range s.InteractionGraphIDs() {
		g, err := s.InteractionGraph(id)
		if err != nil {
			return nil, err
		}
		snap.Graphs = append(snap.Graphs, dumpGraph(g))
	}
	for _, id := range s.Images() {
		im, err := s.Image(id)
		if err != nil {
			return nil, err
		}
		snap.Images = append(snap.Images, ImageDump{
			ID: im.ID, System: im.System, Modality: im.Modality,
			Subject: im.Subject, Dims: im.Local.Dims,
			Local: [2][3]float64{im.Local.Min, im.Local.Max},
			Scale: im.Reg.Scale, Offset: im.Reg.Offset,
		})
	}
	for _, name := range s.RecordTables() {
		td, err := dumpTable(s, name)
		if err != nil {
			return nil, err
		}
		snap.RecordTables = append(snap.RecordTables, td)
	}
	for _, annID := range s.AnnotationIDs() {
		ann, err := s.Annotation(annID)
		if err != nil {
			return nil, err
		}
		ad, err := dumpAnnotation(s, ann)
		if err != nil {
			return nil, err
		}
		snap.Annotations = append(snap.Annotations, ad)
	}
	return snap, nil
}

// Write exports the store as JSON to w.
func Write(s *core.Store, w io.Writer) error {
	snap, err := Export(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

func dumpOntology(o *ontology.Ontology) OntologyDump {
	d := OntologyDump{Name: o.Name()}
	for _, id := range o.Terms() {
		t, _ := o.Term(id)
		d.Terms = append(d.Terms, TermDump{
			ID: t.ID, Name: t.Name, Def: t.Def, Synonyms: t.Synonyms,
		})
		for _, e := range o.Parents(id) {
			d.Edges = append(d.Edges, EdgeDump{
				From: e.From, To: e.To, Rel: e.Rel, Quant: uint8(e.Quant),
			})
		}
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].From != d.Edges[j].From {
			return d.Edges[i].From < d.Edges[j].From
		}
		return d.Edges[i].To < d.Edges[j].To
	})
	return d
}

func dumpGraph(g *interact.Graph) GraphDump {
	d := GraphDump{ID: g.ID}
	for _, id := range g.Molecules() {
		m, _ := g.Molecule(id)
		d.Molecules = append(d.Molecules, MoleculeDump{
			ID: m.ID, Name: m.Name, Type: uint8(m.Type),
		})
	}
	for _, e := range g.Interactions() {
		d.Interactions = append(d.Interactions, InteractionDump{
			A: e.A, B: e.B, Kind: e.Kind, Score: e.Score,
		})
	}
	return d
}

func dumpTable(s *core.Store, name string) (TableDump, error) {
	tbl, err := s.Rel().Table(name)
	if err != nil {
		return TableDump{}, err
	}
	schema := tbl.Schema()
	td := TableDump{Name: schema.Name, Key: schema.Key}
	for _, c := range schema.Columns {
		td.Columns = append(td.Columns, ColumnDump{
			Name: c.Name, Type: uint8(c.Type), NotNull: c.NotNull,
		})
	}
	var rows []relstore.Row
	tbl.Scan(func(r relstore.Row) bool {
		rows = append(rows, r.Clone())
		return true
	})
	ki, err := schema.ColumnIndex(schema.Key)
	if err != nil {
		return TableDump{}, err
	}
	sort.Slice(rows, func(i, j int) bool {
		if c, ok := rows[i][ki].Compare(rows[j][ki]); ok {
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		vr := make([]ValueDump, len(r))
		for i, v := range r {
			vr[i] = dumpValue(v)
		}
		td.Rows = append(td.Rows, vr)
	}
	return td, nil
}

func dumpValue(v relstore.Value) ValueDump {
	if v.IsNull() {
		return ValueDump{T: "null"}
	}
	switch v.Type() {
	case relstore.Int64:
		return ValueDump{T: "i", I: v.Int()}
	case relstore.Float64:
		return ValueDump{T: "f", F: v.Float()}
	case relstore.String:
		return ValueDump{T: "s", S: v.Str()}
	case relstore.Bool:
		return ValueDump{T: "b", B: v.BoolVal()}
	default:
		return ValueDump{T: "bytes", Bytes: v.BytesVal()}
	}
}

func restoreValue(d ValueDump) (relstore.Value, error) {
	switch d.T {
	case "null":
		return relstore.Null, nil
	case "i":
		return relstore.I(d.I), nil
	case "f":
		return relstore.F(d.F), nil
	case "s":
		return relstore.S(d.S), nil
	case "b":
		return relstore.B(d.B), nil
	case "bytes":
		return relstore.Blob(d.Bytes), nil
	default:
		return relstore.Value{}, fmt.Errorf("persist: unknown value tag %q", d.T)
	}
}

func dumpAnnotation(s *core.Store, ann *core.Annotation) (AnnotationDump, error) {
	d := AnnotationDump{DC: map[string][]string{}}
	for _, e := range ann.DC.Elements() {
		d.DC[string(e)] = ann.DC.Get(e)
	}
	// Body and user tags live in the content document.
	if body := ann.Content.Root.FirstChildElement("body"); body != nil {
		d.Body = body.Text()
	}
	if tags := ann.Content.Root.FirstChildElement("tags"); tags != nil {
		for _, el := range tags.ChildElements("") {
			d.Tags = append(d.Tags, TagDump{Name: el.Name, Value: el.Text()})
		}
	}
	for _, refID := range ann.ReferentIDs {
		ref, err := s.Referent(refID)
		if err != nil {
			return d, err
		}
		rd := ReferentDump{
			Kind:       uint8(ref.Kind),
			ObjectType: string(ref.ObjectType),
			ObjectID:   ref.ObjectID,
			Domain:     ref.Domain,
			Lo:         ref.Interval.Lo,
			Hi:         ref.Interval.Hi,
			Keys:       ref.Keys,
		}
		if ref.Kind == core.RegionReferent {
			rd.Rect = [2][3]float64{ref.Region.Min, ref.Region.Max}
			rd.RectDims = ref.Region.Dims
		}
		d.Referents = append(d.Referents, rd)
	}
	for _, tr := range ann.Terms {
		d.Terms = append(d.Terms, TermRefDump{Ontology: tr.Ontology, Term: tr.TermID})
	}
	return d, nil
}

// Load rebuilds a store from a snapshot by replaying registrations and
// commits through the normal pipeline.
func Load(snap *Snapshot) (*core.Store, error) {
	if snap.Version != Version {
		return nil, fmt.Errorf("persist: snapshot version %d, want %d", snap.Version, Version)
	}
	s := core.NewStore()
	for _, od := range snap.Ontologies {
		o := ontology.New(od.Name)
		for _, td := range od.Terms {
			t, err := o.AddTerm(td.ID, td.Name)
			if err != nil {
				return nil, fmt.Errorf("persist: ontology %s: %w", od.Name, err)
			}
			t.Def = td.Def
			t.Synonyms = td.Synonyms
		}
		for _, ed := range od.Edges {
			if err := o.AddEdge(ed.From, ed.To, ed.Rel, ontology.Quantifier(ed.Quant)); err != nil {
				return nil, fmt.Errorf("persist: ontology %s: %w", od.Name, err)
			}
		}
		if err := s.RegisterOntology(o); err != nil {
			return nil, err
		}
	}
	for _, sd := range snap.Systems {
		cs, err := imaging.NewCoordinateSystem(sd.Name, rtree.Rect{
			Min: sd.Bounds[0], Max: sd.Bounds[1], Dims: sd.Dims,
		})
		if err != nil {
			return nil, fmt.Errorf("persist: system %s: %w", sd.Name, err)
		}
		if err := s.RegisterCoordinateSystem(cs); err != nil {
			return nil, err
		}
	}
	for _, qd := range snap.Sequences {
		sq, err := seq.New(qd.ID, seq.Kind(qd.Kind), qd.Residues)
		if err != nil {
			return nil, fmt.Errorf("persist: sequence %s: %w", qd.ID, err)
		}
		sq.Description = qd.Description
		sq.Domain = qd.Domain
		sq.Offset = qd.Offset
		if err := s.RegisterSequence(sq); err != nil {
			return nil, err
		}
	}
	for _, ad := range snap.Alignments {
		a, err := msa.New(ad.ID, ad.RowIDs, ad.Rows)
		if err != nil {
			return nil, fmt.Errorf("persist: alignment %s: %w", ad.ID, err)
		}
		if err := s.RegisterAlignment(a); err != nil {
			return nil, err
		}
	}
	for _, td := range snap.Trees {
		t, err := phylo.ParseNewick(td.ID, td.Newick)
		if err != nil {
			return nil, fmt.Errorf("persist: tree %s: %w", td.ID, err)
		}
		if err := s.RegisterTree(t); err != nil {
			return nil, err
		}
	}
	for _, gd := range snap.Graphs {
		g := interact.NewGraph(gd.ID)
		for _, md := range gd.Molecules {
			if _, err := g.AddMolecule(md.ID, md.Name, interact.MoleculeType(md.Type)); err != nil {
				return nil, fmt.Errorf("persist: graph %s: %w", gd.ID, err)
			}
		}
		for _, ed := range gd.Interactions {
			if err := g.AddInteraction(ed.A, ed.B, ed.Kind, ed.Score); err != nil {
				return nil, fmt.Errorf("persist: graph %s: %w", gd.ID, err)
			}
		}
		if err := s.RegisterInteractionGraph(g); err != nil {
			return nil, err
		}
	}
	for _, id := range snap.Images {
		reg := imaging.Registration{Scale: id.Scale, Offset: id.Offset}
		im, err := imaging.NewImage(id.ID, id.System, rtree.Rect{
			Min: id.Local[0], Max: id.Local[1], Dims: id.Dims,
		}, reg)
		if err != nil {
			return nil, fmt.Errorf("persist: image %s: %w", id.ID, err)
		}
		im.Modality = id.Modality
		im.Subject = id.Subject
		if err := s.RegisterImage(im); err != nil {
			return nil, err
		}
	}
	for _, td := range snap.RecordTables {
		cols := make([]relstore.Column, len(td.Columns))
		for i, cd := range td.Columns {
			cols[i] = relstore.Column{Name: cd.Name, Type: relstore.Type(cd.Type), NotNull: cd.NotNull}
		}
		schema, err := relstore.NewSchema(td.Name, td.Key, cols...)
		if err != nil {
			return nil, fmt.Errorf("persist: table %s: %w", td.Name, err)
		}
		if _, err := s.CreateRecordTable(schema); err != nil {
			return nil, err
		}
		for _, rd := range td.Rows {
			row := make(relstore.Row, len(rd))
			for i, vd := range rd {
				v, err := restoreValue(vd)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			if err := s.InsertRecord(td.Name, row); err != nil {
				return nil, fmt.Errorf("persist: table %s: %w", td.Name, err)
			}
		}
	}
	for i, ad := range snap.Annotations {
		b := s.NewAnnotation()
		elems := make([]string, 0, len(ad.DC))
		for e := range ad.DC {
			elems = append(elems, e)
		}
		sort.Strings(elems)
		for _, e := range elems {
			b.DCElement(dublincore.Element(e), ad.DC[e]...)
		}
		if ad.Body != "" {
			b.Body(ad.Body)
		}
		for _, tg := range ad.Tags {
			b.Tag(tg.Name, tg.Value)
		}
		for _, rd := range ad.Referents {
			ref := &core.Referent{
				Kind:       core.ReferentKind(rd.Kind),
				ObjectType: core.ObjectType(rd.ObjectType),
				ObjectID:   rd.ObjectID,
				Domain:     rd.Domain,
				Interval:   interval.Interval{Lo: rd.Lo, Hi: rd.Hi},
				Keys:       rd.Keys,
			}
			if ref.Kind == core.RegionReferent {
				ref.Region = rtree.Rect{Min: rd.Rect[0], Max: rd.Rect[1], Dims: rd.RectDims}
			}
			b.Refer(ref)
		}
		for _, tr := range ad.Terms {
			b.OntologyRef(tr.Ontology, tr.Term)
		}
		if _, err := s.Commit(b); err != nil {
			return nil, fmt.Errorf("persist: annotation %d: %w", i, err)
		}
	}
	return s, nil
}

// Read loads a snapshot from JSON and rebuilds the store.
func Read(r io.Reader) (*core.Store, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	return Load(&snap)
}
