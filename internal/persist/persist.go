// Package persist serialises a Graphitti store to a portable JSON snapshot
// and rebuilds stores from snapshots.
//
// The snapshot is a logical export — registered ontologies, coordinate
// systems, data objects, record tables and annotations — not a byte-level
// image. Load replays the snapshot through the normal registration and
// commit pipeline, so every index (interval trees, R-trees, keyword index,
// a-graph) is rebuilt consistently and all invariants re-checked.
//
// Since format version 2, snapshots preserve annotation and referent IDs
// and the store's ID counters, so a loaded store is ID-for-ID identical to
// the exported one — the property the durable layer (internal/durable)
// relies on when it uses snapshots as write-ahead-log checkpoints.
// Version-1 snapshots (no IDs) still load; their IDs are reassigned
// densely in commit order as before.
//
// The per-entity Dump*/Apply* pairs in this package are the single codec
// for store mutations: Export/Load compose them over whole stores, and the
// WAL in internal/durable encodes one Dump per logged operation and
// replays it with the matching Apply.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/dublincore"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/prop"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// Version identifies the snapshot format. Version 2 added ID preservation
// (annotation/referent IDs and the store counters).
const Version = 2

// Snapshot is the portable representation of a store.
type Snapshot struct {
	Version      int              `json:"version"`
	Ontologies   []OntologyDump   `json:"ontologies,omitempty"`
	Systems      []SystemDump     `json:"systems,omitempty"`
	Sequences    []SequenceDump   `json:"sequences,omitempty"`
	Alignments   []AlignmentDump  `json:"alignments,omitempty"`
	Trees        []TreeDump       `json:"trees,omitempty"`
	Graphs       []GraphDump      `json:"graphs,omitempty"`
	Images       []ImageDump      `json:"images,omitempty"`
	RecordTables []TableDump      `json:"recordTables,omitempty"`
	Annotations  []AnnotationDump `json:"annotations,omitempty"`
	// Rules are the propagation rules (internal/prop). Derived facts are
	// never persisted: loading re-adds the rules, which re-derives them.
	Rules []RuleDump `json:"rules,omitempty"`
	// NextAnn/NextRef are the store's ID counters at export time (v2).
	// They can run ahead of the highest live ID when annotations or
	// referents were deleted.
	NextAnn uint64 `json:"nextAnn,omitempty"`
	NextRef uint64 `json:"nextRef,omitempty"`
}

// OntologyDump serialises a term graph.
type OntologyDump struct {
	Name  string     `json:"name"`
	Terms []TermDump `json:"terms"`
	Edges []EdgeDump `json:"edges,omitempty"`
}

// TermDump serialises one ontology term.
type TermDump struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Def      string   `json:"def,omitempty"`
	Synonyms []string `json:"synonyms,omitempty"`
}

// EdgeDump serialises one quantified relationship.
type EdgeDump struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Rel   string `json:"rel"`
	Quant uint8  `json:"quant,omitempty"`
}

// SystemDump serialises a coordinate system.
type SystemDump struct {
	Name   string        `json:"name"`
	Bounds [2][3]float64 `json:"bounds"`
	Dims   int           `json:"dims"`
}

// SequenceDump serialises a sequence.
type SequenceDump struct {
	ID          string `json:"id"`
	Kind        uint8  `json:"kind"`
	Description string `json:"description,omitempty"`
	Domain      string `json:"domain"`
	Offset      int64  `json:"offset"`
	Residues    string `json:"residues"`
}

// AlignmentDump serialises an alignment.
type AlignmentDump struct {
	ID     string   `json:"id"`
	RowIDs []string `json:"rowIds"`
	Rows   []string `json:"rows"`
}

// TreeDump serialises a phylogenetic tree.
type TreeDump struct {
	ID     string `json:"id"`
	Newick string `json:"newick"`
}

// GraphDump serialises an interaction graph.
type GraphDump struct {
	ID           string            `json:"id"`
	Molecules    []MoleculeDump    `json:"molecules"`
	Interactions []InteractionDump `json:"interactions,omitempty"`
}

// MoleculeDump serialises an interaction-graph node.
type MoleculeDump struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Type uint8  `json:"type"`
}

// InteractionDump serialises one interaction.
type InteractionDump struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Kind  string  `json:"kind"`
	Score float64 `json:"score,omitempty"`
}

// ImageDump serialises a registered image.
type ImageDump struct {
	ID       string        `json:"id"`
	System   string        `json:"system"`
	Modality string        `json:"modality,omitempty"`
	Subject  string        `json:"subject,omitempty"`
	Dims     int           `json:"dims"`
	Local    [2][3]float64 `json:"local"`
	Scale    [3]float64    `json:"scale"`
	Offset   [3]float64    `json:"offset"`
}

// TableDump serialises a user record table.
type TableDump struct {
	Name    string        `json:"name"`
	Key     string        `json:"key"`
	Columns []ColumnDump  `json:"columns"`
	Rows    [][]ValueDump `json:"rows,omitempty"`
}

// ColumnDump serialises a column definition.
type ColumnDump struct {
	Name    string `json:"name"`
	Type    uint8  `json:"type"`
	NotNull bool   `json:"notNull,omitempty"`
}

// ValueDump serialises one typed cell. T is one of "null", "i", "f", "s",
// "b", "bytes".
type ValueDump struct {
	T     string  `json:"t"`
	I     int64   `json:"i,omitempty"`
	F     float64 `json:"f,omitempty"`
	S     string  `json:"s,omitempty"`
	B     bool    `json:"b,omitempty"`
	Bytes []byte  `json:"bytes,omitempty"`
}

// AnnotationDump serialises an annotation for replay. ID is present since
// format v2; zero means "assign the next free ID" (v1 snapshots).
type AnnotationDump struct {
	ID        uint64              `json:"id,omitempty"`
	DC        map[string][]string `json:"dc"`
	Body      string              `json:"body,omitempty"`
	Tags      []TagDump           `json:"tags,omitempty"`
	Referents []ReferentDump      `json:"referents,omitempty"`
	Terms     []TermRefDump       `json:"terms,omitempty"`
}

// RuleDump serialises a propagation rule.
type RuleDump struct {
	ID        string   `json:"id"`
	Keyword   string   `json:"keyword,omitempty"`
	Ontology  string   `json:"ontology,omitempty"`
	Term      string   `json:"term,omitempty"`
	Domain    string   `json:"domain,omitempty"`
	Kind      string   `json:"kind,omitempty"`
	Edge      string   `json:"edge"`
	Relations []string `json:"relations,omitempty"`
}

// TagDump is one user-defined tag.
type TagDump struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// TermRefDump references an ontology term.
type TermRefDump struct {
	Ontology string `json:"ontology"`
	Term     string `json:"term"`
}

// ReferentDump serialises a mark. ID is present since format v2; shared
// referents repeat the same ID in every annotation that holds them.
type ReferentDump struct {
	ID         uint64        `json:"id,omitempty"`
	Kind       uint8         `json:"kind"`
	ObjectType string        `json:"objectType"`
	ObjectID   string        `json:"objectId"`
	Domain     string        `json:"domain"`
	Lo         int64         `json:"lo,omitempty"`
	Hi         int64         `json:"hi,omitempty"`
	Rect       [2][3]float64 `json:"rect,omitempty"`
	RectDims   int           `json:"rectDims,omitempty"`
	Keys       []string      `json:"keys,omitempty"`
}

// Export captures the store as a snapshot. It takes no store-wide lock;
// concurrent mutations may land between sections, so a live export is a
// consistent-enough backup, not a point-in-time one.
func Export(s *core.Store) (*Snapshot, error) {
	snap := &Snapshot{Version: Version}

	for _, name := range s.Ontologies() {
		o, err := s.Ontology(name)
		if err != nil {
			return nil, err
		}
		snap.Ontologies = append(snap.Ontologies, DumpOntology(o))
	}
	for _, name := range s.CoordinateSystems() {
		cs, err := s.CoordinateSystem(name)
		if err != nil {
			return nil, err
		}
		snap.Systems = append(snap.Systems, DumpSystem(cs))
	}
	for _, id := range s.SequenceIDs() {
		sq, _, err := s.Sequence(id)
		if err != nil {
			return nil, err
		}
		snap.Sequences = append(snap.Sequences, DumpSequence(sq))
	}
	for _, id := range s.AlignmentIDs() {
		a, err := s.Alignment(id)
		if err != nil {
			return nil, err
		}
		snap.Alignments = append(snap.Alignments, DumpAlignment(a))
	}
	for _, id := range s.TreeIDs() {
		t, err := s.Tree(id)
		if err != nil {
			return nil, err
		}
		snap.Trees = append(snap.Trees, DumpTree(t))
	}
	for _, id := range s.InteractionGraphIDs() {
		g, err := s.InteractionGraph(id)
		if err != nil {
			return nil, err
		}
		snap.Graphs = append(snap.Graphs, DumpGraph(g))
	}
	for _, id := range s.Images() {
		im, err := s.Image(id)
		if err != nil {
			return nil, err
		}
		snap.Images = append(snap.Images, DumpImage(im))
	}
	for _, name := range s.RecordTables() {
		td, err := dumpTable(s, name)
		if err != nil {
			return nil, err
		}
		snap.RecordTables = append(snap.RecordTables, td)
	}
	for _, annID := range s.AnnotationIDs() {
		ann, err := s.Annotation(annID)
		if err != nil {
			return nil, err
		}
		ad, err := DumpAnnotation(s, ann)
		if err != nil {
			return nil, err
		}
		snap.Annotations = append(snap.Annotations, ad)
	}
	for _, r := range prop.RulesOf(s) {
		snap.Rules = append(snap.Rules, DumpRule(r))
	}
	// Counters are captured last: running AHEAD of the dumped annotations
	// (a commit landed mid-export) only wastes IDs on load, while counters
	// BEHIND a dumped annotation would make the snapshot unloadable
	// (RestoreIDCounters refuses to move counters backwards).
	snap.NextAnn, snap.NextRef = s.IDCounters()
	return snap, nil
}

// Write exports the store as JSON to w.
func Write(s *core.Store, w io.Writer) error {
	snap, err := Export(s)
	if err != nil {
		return err
	}
	return WriteSnapshot(snap, w)
}

// WriteSnapshot serializes an already-exported snapshot in the same
// format Write produces — the sharded store merges per-shard exports and
// emits the result through this.
func WriteSnapshot(snap *Snapshot, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// DumpOntology serialises a term graph.
func DumpOntology(o *ontology.Ontology) OntologyDump {
	d := OntologyDump{Name: o.Name()}
	for _, id := range o.Terms() {
		t, _ := o.Term(id)
		d.Terms = append(d.Terms, TermDump{
			ID: t.ID, Name: t.Name, Def: t.Def, Synonyms: t.Synonyms,
		})
		for _, e := range o.Parents(id) {
			d.Edges = append(d.Edges, EdgeDump{
				From: e.From, To: e.To, Rel: e.Rel, Quant: uint8(e.Quant),
			})
		}
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].From != d.Edges[j].From {
			return d.Edges[i].From < d.Edges[j].From
		}
		return d.Edges[i].To < d.Edges[j].To
	})
	return d
}

// DumpSystem serialises a coordinate system.
func DumpSystem(cs *imaging.CoordinateSystem) SystemDump {
	return SystemDump{
		Name: cs.Name, Dims: cs.Dims,
		Bounds: [2][3]float64{cs.Bounds.Min, cs.Bounds.Max},
	}
}

// DumpSequence serialises a sequence.
func DumpSequence(sq *seq.Sequence) SequenceDump {
	return SequenceDump{
		ID: sq.ID, Kind: uint8(sq.Kind), Description: sq.Description,
		Domain: sq.Domain, Offset: sq.Offset, Residues: sq.Residues,
	}
}

// DumpAlignment serialises an alignment.
func DumpAlignment(a *msa.Alignment) AlignmentDump {
	return AlignmentDump{ID: a.ID, RowIDs: a.RowIDs, Rows: a.Rows}
}

// DumpTree serialises a phylogenetic tree.
func DumpTree(t *phylo.Tree) TreeDump {
	return TreeDump{ID: t.ID, Newick: t.Newick()}
}

// DumpGraph serialises an interaction graph.
func DumpGraph(g *interact.Graph) GraphDump {
	d := GraphDump{ID: g.ID}
	for _, id := range g.Molecules() {
		m, _ := g.Molecule(id)
		d.Molecules = append(d.Molecules, MoleculeDump{
			ID: m.ID, Name: m.Name, Type: uint8(m.Type),
		})
	}
	for _, e := range g.Interactions() {
		d.Interactions = append(d.Interactions, InteractionDump{
			A: e.A, B: e.B, Kind: e.Kind, Score: e.Score,
		})
	}
	return d
}

// DumpImage serialises a registered image.
func DumpImage(im *imaging.Image) ImageDump {
	return ImageDump{
		ID: im.ID, System: im.System, Modality: im.Modality,
		Subject: im.Subject, Dims: im.Local.Dims,
		Local: [2][3]float64{im.Local.Min, im.Local.Max},
		Scale: im.Reg.Scale, Offset: im.Reg.Offset,
	}
}

// DumpSchema serialises a record-table schema (no rows).
func DumpSchema(schema *relstore.Schema) TableDump {
	td := TableDump{Name: schema.Name, Key: schema.Key}
	for _, c := range schema.Columns {
		td.Columns = append(td.Columns, ColumnDump{
			Name: c.Name, Type: uint8(c.Type), NotNull: c.NotNull,
		})
	}
	return td
}

// DumpRow serialises one record row.
func DumpRow(r relstore.Row) []ValueDump {
	vr := make([]ValueDump, len(r))
	for i, v := range r {
		vr[i] = dumpValue(v)
	}
	return vr
}

func dumpTable(s *core.Store, name string) (TableDump, error) {
	tbl, err := s.Rel().Table(name)
	if err != nil {
		return TableDump{}, err
	}
	schema := tbl.Schema()
	td := DumpSchema(schema)
	var rows []relstore.Row
	tbl.Scan(func(r relstore.Row) bool {
		rows = append(rows, r.Clone())
		return true
	})
	ki, err := schema.ColumnIndex(schema.Key)
	if err != nil {
		return TableDump{}, err
	}
	sort.Slice(rows, func(i, j int) bool {
		if c, ok := rows[i][ki].Compare(rows[j][ki]); ok {
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		td.Rows = append(td.Rows, DumpRow(r))
	}
	return td, nil
}

func dumpValue(v relstore.Value) ValueDump {
	if v.IsNull() {
		return ValueDump{T: "null"}
	}
	switch v.Type() {
	case relstore.Int64:
		return ValueDump{T: "i", I: v.Int()}
	case relstore.Float64:
		return ValueDump{T: "f", F: v.Float()}
	case relstore.String:
		return ValueDump{T: "s", S: v.Str()}
	case relstore.Bool:
		return ValueDump{T: "b", B: v.BoolVal()}
	default:
		return ValueDump{T: "bytes", Bytes: v.BytesVal()}
	}
}

// RestoreValue rebuilds a typed cell from its dump.
func RestoreValue(d ValueDump) (relstore.Value, error) {
	switch d.T {
	case "null":
		return relstore.Null, nil
	case "i":
		return relstore.I(d.I), nil
	case "f":
		return relstore.F(d.F), nil
	case "s":
		return relstore.S(d.S), nil
	case "b":
		return relstore.B(d.B), nil
	case "bytes":
		return relstore.Blob(d.Bytes), nil
	default:
		return relstore.Value{}, fmt.Errorf("persist: unknown value tag %q", d.T)
	}
}

// DumpAnnotation serialises an annotation, including its ID and the IDs of
// its referents (format v2).
func DumpAnnotation(s *core.Store, ann *core.Annotation) (AnnotationDump, error) {
	d := AnnotationDump{ID: ann.ID, DC: map[string][]string{}}
	for _, e := range ann.DC.Elements() {
		d.DC[string(e)] = ann.DC.Get(e)
	}
	// Body and user tags live in the content document.
	if body := ann.Content.Root.FirstChildElement("body"); body != nil {
		d.Body = body.Text()
	}
	if tags := ann.Content.Root.FirstChildElement("tags"); tags != nil {
		for _, el := range tags.ChildElements("") {
			d.Tags = append(d.Tags, TagDump{Name: el.Name, Value: el.Text()})
		}
	}
	for _, refID := range ann.ReferentIDs {
		ref, err := s.Referent(refID)
		if err != nil {
			return d, err
		}
		rd := ReferentDump{
			ID:         ref.ID,
			Kind:       uint8(ref.Kind),
			ObjectType: string(ref.ObjectType),
			ObjectID:   ref.ObjectID,
			Domain:     ref.Domain,
			Lo:         ref.Interval.Lo,
			Hi:         ref.Interval.Hi,
			Keys:       ref.Keys,
		}
		if ref.Kind == core.RegionReferent {
			rd.Rect = [2][3]float64{ref.Region.Min, ref.Region.Max}
			rd.RectDims = ref.Region.Dims
		}
		d.Referents = append(d.Referents, rd)
	}
	for _, tr := range ann.Terms {
		d.Terms = append(d.Terms, TermRefDump{Ontology: tr.Ontology, Term: tr.TermID})
	}
	return d, nil
}

// DumpRule serialises a propagation rule.
func DumpRule(r prop.Rule) RuleDump {
	return RuleDump{
		ID: r.ID, Keyword: r.Keyword, Ontology: r.Ontology, Term: r.Term,
		Domain: r.Domain, Kind: r.Kind, Edge: string(r.Edge), Relations: r.Relations,
	}
}

// RestoreRule rebuilds a propagation rule from its dump.
func RestoreRule(d RuleDump) prop.Rule {
	return prop.Rule{
		ID: d.ID, Keyword: d.Keyword, Ontology: d.Ontology, Term: d.Term,
		Domain: d.Domain, Kind: d.Kind, Edge: prop.EdgeKind(d.Edge), Relations: d.Relations,
	}
}

// ApplyRule registers a dumped propagation rule, attaching an engine to
// the store if it has none, and rebuilds the derived table.
func ApplyRule(s *core.Store, d RuleDump) error {
	if err := prop.Attach(s).AddRule(RestoreRule(d)); err != nil {
		return fmt.Errorf("persist: rule %s: %w", d.ID, err)
	}
	return nil
}

// ApplyOntology rebuilds and registers a dumped ontology.
func ApplyOntology(s *core.Store, od OntologyDump) error {
	o := ontology.New(od.Name)
	for _, td := range od.Terms {
		t, err := o.AddTerm(td.ID, td.Name)
		if err != nil {
			return fmt.Errorf("persist: ontology %s: %w", od.Name, err)
		}
		t.Def = td.Def
		t.Synonyms = td.Synonyms
	}
	for _, ed := range od.Edges {
		if err := o.AddEdge(ed.From, ed.To, ed.Rel, ontology.Quantifier(ed.Quant)); err != nil {
			return fmt.Errorf("persist: ontology %s: %w", od.Name, err)
		}
	}
	return s.RegisterOntology(o)
}

// ApplySystem rebuilds and registers a dumped coordinate system.
func ApplySystem(s *core.Store, sd SystemDump) error {
	cs, err := imaging.NewCoordinateSystem(sd.Name, rtree.Rect{
		Min: sd.Bounds[0], Max: sd.Bounds[1], Dims: sd.Dims,
	})
	if err != nil {
		return fmt.Errorf("persist: system %s: %w", sd.Name, err)
	}
	return s.RegisterCoordinateSystem(cs)
}

// ApplySequence rebuilds and registers a dumped sequence.
func ApplySequence(s *core.Store, qd SequenceDump) error {
	sq, err := seq.New(qd.ID, seq.Kind(qd.Kind), qd.Residues)
	if err != nil {
		return fmt.Errorf("persist: sequence %s: %w", qd.ID, err)
	}
	sq.Description = qd.Description
	sq.Domain = qd.Domain
	sq.Offset = qd.Offset
	return s.RegisterSequence(sq)
}

// ApplyAlignment rebuilds and registers a dumped alignment.
func ApplyAlignment(s *core.Store, ad AlignmentDump) error {
	a, err := msa.New(ad.ID, ad.RowIDs, ad.Rows)
	if err != nil {
		return fmt.Errorf("persist: alignment %s: %w", ad.ID, err)
	}
	return s.RegisterAlignment(a)
}

// ApplyTree rebuilds and registers a dumped phylogenetic tree.
func ApplyTree(s *core.Store, td TreeDump) error {
	t, err := phylo.ParseNewick(td.ID, td.Newick)
	if err != nil {
		return fmt.Errorf("persist: tree %s: %w", td.ID, err)
	}
	return s.RegisterTree(t)
}

// ApplyGraph rebuilds and registers a dumped interaction graph.
func ApplyGraph(s *core.Store, gd GraphDump) error {
	g := interact.NewGraph(gd.ID)
	for _, md := range gd.Molecules {
		if _, err := g.AddMolecule(md.ID, md.Name, interact.MoleculeType(md.Type)); err != nil {
			return fmt.Errorf("persist: graph %s: %w", gd.ID, err)
		}
	}
	for _, ed := range gd.Interactions {
		if err := g.AddInteraction(ed.A, ed.B, ed.Kind, ed.Score); err != nil {
			return fmt.Errorf("persist: graph %s: %w", gd.ID, err)
		}
	}
	return s.RegisterInteractionGraph(g)
}

// ApplyImage rebuilds and registers a dumped image.
func ApplyImage(s *core.Store, id ImageDump) error {
	reg := imaging.Registration{Scale: id.Scale, Offset: id.Offset}
	im, err := imaging.NewImage(id.ID, id.System, rtree.Rect{
		Min: id.Local[0], Max: id.Local[1], Dims: id.Dims,
	}, reg)
	if err != nil {
		return fmt.Errorf("persist: image %s: %w", id.ID, err)
	}
	im.Modality = id.Modality
	im.Subject = id.Subject
	return s.RegisterImage(im)
}

// ApplyTable creates a dumped record table and inserts its rows.
func ApplyTable(s *core.Store, td TableDump) error {
	cols := make([]relstore.Column, len(td.Columns))
	for i, cd := range td.Columns {
		cols[i] = relstore.Column{Name: cd.Name, Type: relstore.Type(cd.Type), NotNull: cd.NotNull}
	}
	schema, err := relstore.NewSchema(td.Name, td.Key, cols...)
	if err != nil {
		return fmt.Errorf("persist: table %s: %w", td.Name, err)
	}
	if _, err := s.CreateRecordTable(schema); err != nil {
		return err
	}
	for _, rd := range td.Rows {
		if err := ApplyRecord(s, td.Name, rd); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRecord inserts one dumped row into a record table.
func ApplyRecord(s *core.Store, table string, rd []ValueDump) error {
	row := make(relstore.Row, len(rd))
	for i, vd := range rd {
		v, err := RestoreValue(vd)
		if err != nil {
			return err
		}
		row[i] = v
	}
	if err := s.InsertRecord(table, row); err != nil {
		return fmt.Errorf("persist: table %s: %w", table, err)
	}
	return nil
}

// ApplyAnnotation rebuilds and commits a dumped annotation. When the dump
// carries IDs (v2), the annotation and its referents are committed with
// exactly those IDs; otherwise the store assigns the next free ones.
func ApplyAnnotation(s *core.Store, ad AnnotationDump) error {
	b := s.NewAnnotation()
	elems := make([]string, 0, len(ad.DC))
	for e := range ad.DC {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	for _, e := range elems {
		b.DCElement(dublincore.Element(e), ad.DC[e]...)
	}
	if ad.Body != "" {
		b.Body(ad.Body)
	}
	for _, tg := range ad.Tags {
		b.Tag(tg.Name, tg.Value)
	}
	refIDs := make([]uint64, 0, len(ad.Referents))
	for _, rd := range ad.Referents {
		ref := &core.Referent{
			Kind:       core.ReferentKind(rd.Kind),
			ObjectType: core.ObjectType(rd.ObjectType),
			ObjectID:   rd.ObjectID,
			Domain:     rd.Domain,
			Interval:   interval.Interval{Lo: rd.Lo, Hi: rd.Hi},
			Keys:       rd.Keys,
		}
		if ref.Kind == core.RegionReferent {
			ref.Region = rtree.Rect{Min: rd.Rect[0], Max: rd.Rect[1], Dims: rd.RectDims}
		}
		b.Refer(ref)
		refIDs = append(refIDs, rd.ID)
	}
	for _, tr := range ad.Terms {
		b.OntologyRef(tr.Ontology, tr.Term)
	}
	var err error
	if ad.ID != 0 {
		_, err = s.CommitWithIDs(b, ad.ID, refIDs)
	} else {
		_, err = s.Commit(b)
	}
	return err
}

// Load rebuilds a store from a snapshot by replaying registrations and
// commits through the normal pipeline.
func Load(snap *Snapshot) (*core.Store, error) {
	return LoadWith(snap, core.StoreOptions{})
}

// LoadWith is Load into a store built with opts — how one shard of a
// sharded deployment rebuilds with its shard label and shared ID source.
func LoadWith(snap *Snapshot, opts core.StoreOptions) (*core.Store, error) {
	if snap.Version < 1 || snap.Version > Version {
		return nil, fmt.Errorf("persist: snapshot version %d, want 1..%d", snap.Version, Version)
	}
	s := core.NewStoreWithOptions(opts)
	for _, od := range snap.Ontologies {
		if err := ApplyOntology(s, od); err != nil {
			return nil, err
		}
	}
	for _, sd := range snap.Systems {
		if err := ApplySystem(s, sd); err != nil {
			return nil, err
		}
	}
	for _, qd := range snap.Sequences {
		if err := ApplySequence(s, qd); err != nil {
			return nil, err
		}
	}
	for _, ad := range snap.Alignments {
		if err := ApplyAlignment(s, ad); err != nil {
			return nil, err
		}
	}
	for _, td := range snap.Trees {
		if err := ApplyTree(s, td); err != nil {
			return nil, err
		}
	}
	for _, gd := range snap.Graphs {
		if err := ApplyGraph(s, gd); err != nil {
			return nil, err
		}
	}
	for _, id := range snap.Images {
		if err := ApplyImage(s, id); err != nil {
			return nil, err
		}
	}
	for _, td := range snap.RecordTables {
		if err := ApplyTable(s, td); err != nil {
			return nil, err
		}
	}
	for i, ad := range snap.Annotations {
		if err := ApplyAnnotation(s, ad); err != nil {
			return nil, fmt.Errorf("persist: annotation %d: %w", i, err)
		}
	}
	// Rules last, installed as one batch: the derived table is rebuilt
	// once over the full store, instead of every replayed commit paying
	// the delta path or every rule paying its own recompute.
	if len(snap.Rules) > 0 {
		rules := make([]prop.Rule, len(snap.Rules))
		for i, rd := range snap.Rules {
			rules[i] = RestoreRule(rd)
		}
		if err := prop.Attach(s).AddRules(rules...); err != nil {
			return nil, fmt.Errorf("persist: rules: %w", err)
		}
	}
	if snap.NextAnn != 0 || snap.NextRef != 0 {
		if err := s.RestoreIDCounters(snap.NextAnn, snap.NextRef); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Decode parses a snapshot from JSON without loading it into a store.
func Decode(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	return &snap, nil
}

// Read loads a snapshot from JSON and rebuilds the store.
func Read(r io.Reader) (*core.Store, error) {
	return ReadWith(r, core.StoreOptions{})
}

// ReadWith is Read into a store built with opts.
func ReadWith(r io.Reader, opts core.StoreOptions) (*core.Store, error) {
	snap, err := Decode(r)
	if err != nil {
		return nil, err
	}
	return LoadWith(snap, opts)
}
