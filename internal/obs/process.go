// Process-level gauges: sampled from the Go runtime at scrape time via
// a registry collector, so a bare scrape of a just-started server is
// already useful (uptime, goroutines, parallelism, build identity)
// before any store traffic produces the graphitti_* families.
package obs

import (
	"runtime"
	"time"
)

var (
	processStart = time.Now()

	mUptime = NewGauge("process_uptime_seconds",
		"Seconds since the process started.")
	mGoroutines = NewGauge("go_goroutines",
		"Number of live goroutines.")
	mGomaxprocs = NewGauge("go_gomaxprocs",
		"Value of GOMAXPROCS: the scheduler's parallelism limit.")
	mBuildInfo = NewGaugeVec("graphitti_build_info",
		"Build identity; always 1, labeled with the Go toolchain version.",
		"go_version")
)

func init() {
	mBuildInfo.With(runtime.Version()).Set(1)
	Default.RegisterCollector(func() {
		mUptime.Set(int64(time.Since(processStart).Seconds()))
		mGoroutines.Set(int64(runtime.NumGoroutine()))
		mGomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	})
}
