package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 15.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	cum, total := h.bucketCumulative()
	if want := []uint64{2, 3, 4}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	// p50: rank 2.5 falls in the first bucket (cum 2 at le=1 < 2.5 ≤ 3 at
	// le=2): lo=1, interpolate (2.5-2)/1 into [1,2] = 1.5.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	// p99: rank 4.95 is past the last finite bound — clamps to 4.
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4 (clamped)", got)
	}
}

func TestVecChildrenAndArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_reqs_total", "reqs", "route", "method")
	v.With("/api/stats", "GET").Inc()
	v.With("/api/stats", "GET").Inc()
	v.With("/api/query", "POST").Inc()
	if got := v.With("/api/stats", "GET").Value(); got != 2 {
		t.Fatalf("child = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	v.With("onlyone")
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Gauge("test_dup_total", "y")
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Gauge("aa_depth", "a")
	r.Counter("mm_total", "m")
	got := r.Names()
	want := []string{"aa_depth", "mm_total", "zz_total"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	h := r.Histogram("test_conc_seconds", "h", []float64{0.5, 1})
	v := r.CounterVec("test_conc_labeled_total", "cv", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%2) + 0.25)
				v.With([]string{"a", "b", "c"}[n%3]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	var labeled uint64
	for _, k := range []string{"a", "b", "c"} {
		labeled += v.With(k).Value()
	}
	if labeled != 8000 {
		t.Fatalf("labeled sum = %d, want 8000", labeled)
	}
}

// goldenRegistry builds a registry with one of each shape: unlabeled
// counter/gauge/histogram plus labeled families, including a label value
// that needs escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("g_commits_total", "Total commits.").Add(42)
	r.Gauge("g_epoch", "Current view epoch.").Set(17)
	h := r.Histogram("g_commit_seconds", "Commit latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	v := r.CounterVec("g_requests_total", `Requests by route — help with "quotes" and \backslash.`, "route", "status")
	v.With("/api/query", "200").Add(9)
	v.With(`/weird"path\n`, "500").Inc()
	hv := r.HistogramVec("g_route_seconds", "Latency by route.", []float64{0.01, 0.1}, "route")
	hv.With("/api/stats").Observe(0.02)
	return r
}

const goldenText = `# HELP g_commit_seconds Commit latency.
# TYPE g_commit_seconds histogram
g_commit_seconds_bucket{le="0.001"} 1
g_commit_seconds_bucket{le="0.01"} 1
g_commit_seconds_bucket{le="0.1"} 2
g_commit_seconds_bucket{le="+Inf"} 3
g_commit_seconds_sum 3.0505
g_commit_seconds_count 3
# HELP g_commits_total Total commits.
# TYPE g_commits_total counter
g_commits_total 42
# HELP g_epoch Current view epoch.
# TYPE g_epoch gauge
g_epoch 17
# HELP g_requests_total Requests by route — help with "quotes" and \\backslash.
# TYPE g_requests_total counter
g_requests_total{route="/api/query",status="200"} 9
g_requests_total{route="/weird\"path\\n",status="500"} 1
# HELP g_route_seconds Latency by route.
# TYPE g_route_seconds histogram
g_route_seconds_bucket{route="/api/stats",le="0.01"} 0
g_route_seconds_bucket{route="/api/stats",le="0.1"} 1
g_route_seconds_bucket{route="/api/stats",le="+Inf"} 1
g_route_seconds_sum{route="/api/stats"} 0.02
g_route_seconds_count{route="/api/stats"} 1
`

// TestPrometheusGolden pins the exact text rendering, then feeds it back
// through the strict parser — the golden/parse round-trip the CI scrape
// step relies on.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenText {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenText)
	}
	exp, err := ValidateExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if got, want := len(exp.Families), 5; got != want {
		t.Fatalf("parsed %d families, want %d", got, want)
	}
	if exp.Families["g_commit_seconds"] != "histogram" {
		t.Fatalf("g_commit_seconds type = %q", exp.Families["g_commit_seconds"])
	}
	// 6 histogram lines + 1 + 1 + 2 + 5 = 15 samples.
	if got, want := exp.Samples, 15; got != want {
		t.Fatalf("parsed %d samples, want %d", got, want)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad name", "9bad_name 1\n"},
		{"bad value", "ok_metric notafloat\n"},
		{"unterminated labels", "ok_metric{a=\"b\" 1\n"},
		{"unquoted label", "ok_metric{a=b} 1\n"},
		{"duplicate sample", "m 1\nm 2\n"},
		{"second TYPE", "# TYPE m counter\n# TYPE m gauge\nm 1\n"},
		{"TYPE after samples", "m 1\n# TYPE m counter\n"},
		{"unknown type", "# TYPE m flub\nm 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"missing newline", "m 1"},
	}
	for _, c := range cases {
		if _, err := ValidateExposition(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if out["g_commits_total"] != float64(42) {
		t.Fatalf("g_commits_total = %v, want 42", out["g_commits_total"])
	}
	hist, ok := out["g_commit_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(3) {
		t.Fatalf("g_commit_seconds = %v", out["g_commit_seconds"])
	}
	labeled, ok := out["g_requests_total"].(map[string]any)
	if !ok {
		t.Fatalf("g_requests_total = %v", out["g_requests_total"])
	}
	if labeled[`route=/api/query,status=200`] != float64(9) {
		t.Fatalf("labeled child = %v", labeled)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "name,labels,value\n") {
		t.Fatalf("missing header:\n%s", got)
	}
	for _, want := range []string{
		"g_commits_total,,42\n",
		"g_epoch,,17\n",
		"g_commit_seconds_count,,3\n",
		"g_commit_seconds_p50,,",
		"g_commit_seconds_p99,,",
		"g_requests_total,route=/api/query;status=200,9\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("CSV missing %q:\n%s", want, got)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}

func BenchmarkVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_total", "b", "route", "method", "status")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("/api/query", "POST", "200").Inc()
		}
	})
}
