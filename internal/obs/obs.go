// Package obs is Graphitti's dependency-free metrics layer: a registry
// of atomic counters, gauges and fixed-bucket histograms, with
// Prometheus text-format exposition (see expo.go), an expvar-style JSON
// dump, and a flat-CSV dump for bench comparisons.
//
// # Model
//
// A metric family has a unique name, a help string, a kind, and zero or
// more label names. Unlabeled families are a single instrument; labeled
// families ("vecs") lazily materialize one instrument ("child") per
// distinct label-value tuple. Construction registers the family;
// constructing two families with the same name panics, which keeps names
// process-unique — the property docs/METRICS.md is tested against.
//
// Instruments are designed for hot paths: Counter.Inc and Gauge.Set are
// one atomic instruction, Histogram.Observe is a short linear bucket
// scan plus two atomic updates, and Vec.With is a read-locked map lookup
// (callers on known-hot label sets should hold the returned child).
//
// # Process scope
//
// Like Prometheus client libraries, the Default registry is
// process-global: every store, WAL writer and query processor in the
// process feeds the same families. Counters and histograms are
// cumulative so concurrent instances simply sum; gauges (WAL size, view
// epoch, health state) are last-writer-wins and meaningful in the
// one-store-per-process deployment graphitti-server runs.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the metric kinds the registry exposes.
type Kind uint8

// The metric kinds, matching the Prometheus TYPE names.
const (
	// KindCounter is a monotonically increasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DefBuckets are the default latency buckets, in seconds: 5µs to 2.5s,
// covering everything from an in-memory commit (~tens of µs) to a slow
// fsync or a full-store query.
var DefBuckets = []float64{
	5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// CountBuckets are power-of-two size buckets (1 to 512) for counted
// quantities such as records per flush batch.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Counter is a monotonically increasing counter. The zero value is
// usable but unregistered; use NewCounter (or a CounterVec) to get a
// registered one.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time (Prometheus le semantics); Observe is lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			h.count.Add(1)
			h.sum.add(v)
			return
		}
	}
	h.inf.Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it, the standard histogram_quantile
// estimate. Observations beyond the last finite bound clamp to that
// bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCumulative returns the cumulative count at each finite bound,
// plus the total (the +Inf bucket). Used by the exposition writers.
func (h *Histogram) bucketCumulative() ([]uint64, uint64) {
	out := make([]uint64, len(h.bounds))
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out, cum + h.inf.Load()
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// family is one registered metric name: its metadata plus either a
// single unlabeled instrument or a map of labeled children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	// single is the unlabeled instrument (nil for vecs).
	single any

	// mu guards children for vec families.
	mu       sync.RWMutex
	children map[string]any
	keys     []string // sorted child keys, maintained on insert
}

// child returns (creating if needed) the instrument for one label-value
// tuple.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var nc any
	switch f.kind {
	case KindCounter:
		nc = &Counter{}
	case KindGauge:
		nc = &Gauge{}
	case KindHistogram:
		nc = newHistogram(f.bounds)
	}
	f.children[key] = nc
	i := sort.SearchStrings(f.keys, key)
	f.keys = append(f.keys, "")
	copy(f.keys[i+1:], f.keys[i:])
	f.keys[i] = key
	return nc
}

// labelKey joins label values with a separator that cannot appear in a
// sanitized value.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func splitLabelKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The number of values must match the family's label names.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// Reset drops every child of the family. For collector-maintained vecs
// whose label sets churn (top-K routing keys): Reset then re-fill at
// scrape time keeps the exposed series exactly the current set, instead
// of accumulating every label value ever seen.
func (v *GaugeVec) Reset() {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	clear(v.f.children)
	v.f.keys = v.f.keys[:0]
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds metric families and renders them (expo.go). The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted

	cmu        sync.Mutex
	collectors []func()
}

// Default is the process-global registry every instrumented package
// registers into and the /metrics endpoint serves.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var validNameChars = func() [128]bool {
	var ok [128]bool
	for c := 'a'; c <= 'z'; c++ {
		ok[c] = true
	}
	for c := 'A'; c <= 'Z'; c++ {
		ok[c] = true
	}
	for c := '0'; c <= '9'; c++ {
		ok[c] = true
	}
	ok['_'] = true
	ok[':'] = true
	return ok
}()

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 128 || !validNameChars[c] || (i == 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// register adds a family or panics on a duplicate or invalid name —
// metric registration is init-time program structure, not runtime input.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.families[f.name] = f
	i := sort.SearchStrings(r.names, f.name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = f.name
}

// RegisterCollector adds a hook run at the start of every exposition
// (WritePrometheus, WriteJSON, WriteCSV), for values that are cheaper to
// compute at scrape time than to keep current — process gauges sampled
// from the runtime, top-K sketches synced into a gauge vec. Collectors
// run serially in registration order; they must not block.
func (r *Registry) RegisterCollector(fn func()) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// collect runs the registered collectors. The lock is held across the
// runs so concurrent scrapes don't interleave a Reset-and-refill
// collector with another's reads.
func (r *Registry) collect() {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	for _, fn := range r.collectors {
		fn()
	}
}

// Names returns the registered family names, sorted. This is the surface
// the docs/METRICS.md parity test diffs against.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// sorted returns the families in name order.
func (r *Registry) sorted() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.families[name])
	}
	return out
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: KindCounter, single: c})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: KindGauge, single: g})
	return g
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: KindHistogram, bounds: h.bounds, single: h})
	return h
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: KindCounter, labels: labels, children: map[string]any{}}
	r.register(f)
	return &CounterVec{f}
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: KindGauge, labels: labels, children: map[string]any{}}
	r.register(f)
	return &GaugeVec{f}
}

// HistogramVec registers and returns a labeled histogram family with the
// given bucket upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	f := &family{name: name, help: help, kind: KindHistogram, labels: labels,
		bounds: bs, children: map[string]any{}}
	r.register(f)
	return &HistogramVec{f}
}

// NewCounter registers an unlabeled counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers an unlabeled gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers an unlabeled histogram in the Default registry
// (nil buckets means DefBuckets).
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// NewCounterVec registers a labeled counter family in the Default
// registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.CounterVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family in the Default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labels...)
}

// NewHistogramVec registers a labeled histogram family in the Default
// registry (nil buckets means DefBuckets).
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.HistogramVec(name, help, buckets, labels...)
}
