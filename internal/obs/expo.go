// Exposition: the registry rendered as Prometheus text format (the
// /metrics endpoint), expvar-style JSON (/debug/vars), and flat CSV
// (bench artifacts), plus a text-format validator used by the golden
// tests and the CI scrape check.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatValue renders a sample value the way Prometheus clients do:
// shortest float representation, integers without a decimal point.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the text-format rules.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...} from parallel name/value slices; extra
// appends pre-rendered pairs (the histogram le label). Empty when there
// are no pairs.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	for i, e := range extra {
		if i > 0 || len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format 0.0.4,
// families in name order, children in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)
	for _, f := range r.sorted() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.eachChild(func(values []string, inst any) {
			switch m := inst.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelString(f.labels, values), formatValue(float64(m.Value())))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelString(f.labels, values), formatValue(float64(m.Value())))
			case *Histogram:
				cum, total := m.bucketCumulative()
				for i, b := range m.bounds {
					le := `le="` + formatValue(b) + `"`
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, values, le), cum[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, `le="+Inf"`), total)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelString(f.labels, values), formatValue(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelString(f.labels, values), total)
			}
		})
	}
	return bw.Flush()
}

// eachChild visits the family's instruments in deterministic order: the
// single unlabeled instrument, or the labeled children sorted by label
// values. Vec children can be added concurrently; the visit sees a
// snapshot of the key list.
func (f *family) eachChild(visit func(values []string, inst any)) {
	if f.single != nil {
		visit(nil, f.single)
		return
	}
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	for i, k := range keys {
		visit(splitLabelKey(k), children[i])
	}
}

// WriteJSON renders the registry as one JSON object in expvar style:
// scalar metrics map name to value; labeled families map name to an
// object keyed by "k=v,..."; histograms render {count, sum, p50, p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	firstFam := true
	for _, f := range r.sorted() {
		if !firstFam {
			bw.WriteString(",")
		}
		firstFam = false
		fmt.Fprintf(bw, "\n  %s: ", strconv.Quote(f.name))
		if f.single != nil {
			writeJSONInst(bw, f.single)
			continue
		}
		bw.WriteString("{")
		firstChild := true
		f.eachChild(func(values []string, inst any) {
			if !firstChild {
				bw.WriteString(", ")
			}
			firstChild = false
			pairs := make([]string, len(values))
			for i, v := range values {
				pairs[i] = f.labels[i] + "=" + v
			}
			fmt.Fprintf(bw, "%s: ", strconv.Quote(strings.Join(pairs, ",")))
			writeJSONInst(bw, inst)
		})
		bw.WriteString("}")
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// jsonFloat renders a float as JSON (no NaN/Inf literals in JSON: null).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeJSONInst(w io.Writer, inst any) {
	switch m := inst.(type) {
	case *Counter:
		fmt.Fprintf(w, "%d", m.Value())
	case *Gauge:
		fmt.Fprintf(w, "%d", m.Value())
	case *Histogram:
		fmt.Fprintf(w, `{"count": %d, "sum": %s, "p50": %s, "p99": %s}`,
			m.Count(), jsonFloat(m.Sum()), jsonFloat(m.Quantile(0.5)), jsonFloat(m.Quantile(0.99)))
	}
}

// WriteCSV renders the registry as flat CSV rows `name,labels,value`
// (header included): one row per counter/gauge child; histograms expand
// to _count, _sum, _p50 and _p99 rows. The flat shape diffs cleanly
// across runs — the bench harness's -metrics-dump format.
func (r *Registry) WriteCSV(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)
	bw.WriteString("name,labels,value\n")
	row := func(name string, values, labels []string, v string) {
		pairs := make([]string, len(values))
		for i, val := range values {
			pairs[i] = labels[i] + "=" + val
		}
		label := strings.Join(pairs, ";")
		if strings.ContainsAny(label, ",\"\n") {
			label = `"` + strings.ReplaceAll(label, `"`, `""`) + `"`
		}
		fmt.Fprintf(bw, "%s,%s,%s\n", name, label, v)
	}
	for _, f := range r.sorted() {
		f.eachChild(func(values []string, inst any) {
			switch m := inst.(type) {
			case *Counter:
				row(f.name, values, f.labels, strconv.FormatUint(m.Value(), 10))
			case *Gauge:
				row(f.name, values, f.labels, strconv.FormatInt(m.Value(), 10))
			case *Histogram:
				row(f.name+"_count", values, f.labels, strconv.FormatUint(m.Count(), 10))
				row(f.name+"_sum", values, f.labels, formatValue(m.Sum()))
				row(f.name+"_p50", values, f.labels, formatValue(m.Quantile(0.5)))
				row(f.name+"_p99", values, f.labels, formatValue(m.Quantile(0.99)))
			}
		})
	}
	return bw.Flush()
}

// Exposition is the parsed summary ValidateExposition returns: the
// family names seen (TYPE lines plus bare sample bases) and the sample
// count.
type Exposition struct {
	// Families maps each declared family name to its TYPE.
	Families map[string]string
	// Samples is the total number of sample lines.
	Samples int
}

// ValidateExposition parses Prometheus text format 0.0.4 strictly and
// returns a summary, or an error naming the first malformed line. It
// enforces: legal metric/label names, float-parsable values, TYPE/HELP
// declared at most once and before the family's samples, no duplicate
// (name, labels) sample, histogram families carrying _sum, _count and a
// le="+Inf" bucket, and a newline-terminated final line.
func ValidateExposition(r io.Reader) (*Exposition, error) {
	br := bufio.NewReader(r)
	exp := &Exposition{Families: map[string]string{}}
	helped := map[string]bool{}
	sampled := map[string]bool{}  // family base names with samples
	seen := map[string]bool{}     // exact name{labels} tuples
	histParts := map[string]int{} // histogram family -> bitmask of sum|count|+Inf
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if line != "" {
				return nil, fmt.Errorf("line %d: missing trailing newline", lineNo+1)
			}
			break
		}
		if err != nil {
			return nil, err
		}
		lineNo++
		line = strings.TrimSuffix(line, "\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, exp, helped, sampled); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		exp.Samples++
		base, part := histogramBase(name, labels)
		if typ, ok := exp.Families[base]; ok && typ == "histogram" && part != 0 {
			histParts[base] |= part
			sampled[base] = true
			continue
		}
		// A sample with no TYPE is legal (untyped); record it as such.
		if _, ok := exp.Families[name]; !ok {
			exp.Families[name] = "untyped"
		}
		sampled[name] = true
	}
	for name, typ := range exp.Families {
		if typ != "histogram" || !sampled[name] {
			// A declared histogram vec with no children yet emits only
			// HELP/TYPE; that is valid exposition.
			continue
		}
		const wantParts = partSum | partCount | partInf
		if histParts[name]&wantParts != wantParts {
			return nil, fmt.Errorf("histogram %s is missing _sum, _count or a le=\"+Inf\" bucket", name)
		}
	}
	return exp, nil
}

const (
	partSum = 1 << iota
	partCount
	partInf
	partBucket
)

// histogramBase maps a histogram series name to its family base name and
// which structural part it is; (name, 0) when it is not a histogram part.
func histogramBase(name, labels string) (string, int) {
	switch {
	case strings.HasSuffix(name, "_sum"):
		return strings.TrimSuffix(name, "_sum"), partSum
	case strings.HasSuffix(name, "_count"):
		return strings.TrimSuffix(name, "_count"), partCount
	case strings.HasSuffix(name, "_bucket"):
		base := strings.TrimSuffix(name, "_bucket")
		if strings.Contains(labels, `le="+Inf"`) {
			return base, partBucket | partInf
		}
		return base, partBucket
	}
	return name, 0
}

// parseComment validates a # line: HELP/TYPE with ordering rules, or a
// free comment.
func parseComment(line string, exp *Exposition, helped, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if helped[fields[2]] {
			return fmt.Errorf("second HELP for %s", fields[2])
		}
		helped[fields[2]] = true
	case "TYPE":
		if len(fields) < 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if _, dup := exp.Families[name]; dup {
			return fmt.Errorf("second TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		exp.Families[name] = typ
	}
	return nil
}

// parseSample validates one sample line and returns its metric name and
// raw label block (without braces).
func parseSample(line string) (name, labels string, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		if err := validateLabels(labels); err != nil {
			return "", "", fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	if _, perr := strconv.ParseFloat(strings.TrimPrefix(fields[0], "+"), 64); perr != nil {
		return "", "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
			return "", "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, nil
}

// validateLabels checks a label block body: k="v" pairs, comma-separated,
// with escaped values.
func validateLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("bad label pair %q", rest)
		}
		lname := rest[:eq]
		if !validName(lname) || strings.Contains(lname, ":") {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", lname)
		}
		rest = rest[1:]
		// Scan to the closing quote, honoring escapes.
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value after %q", lname)
		}
		rest = rest[end+1:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Errorf("expected ',' between labels, got %q", rest)
		}
		rest = rest[1:]
	}
	return nil
}
