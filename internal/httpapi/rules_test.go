package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/prop"
)

// newPropStore builds a store with two overlapping interval annotations
// on domain chr1.
func newPropStore(t *testing.T) *core.Store {
	t.Helper()
	s := core.NewStore()
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 500))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	for _, span := range []interval.Interval{{Lo: 100, Hi: 200}, {Lo: 150, Hi: 250}} {
		m, err := s.MarkDomainInterval("chr1", span)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(s.NewAnnotation().Creator("t").Date("2026-01-01").Body("site").Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestRuleCRUDAndProvenance(t *testing.T) {
	s := newPropStore(t)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var rules []prop.Rule
	if code := getJSON(t, ts.URL+"/api/rules", &rules); code != http.StatusOK || len(rules) != 0 {
		t.Fatalf("empty rule list: code=%d rules=%v", code, rules)
	}

	rule := prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: "chr1"}
	if code := postJSON(t, ts.URL+"/api/rules", rule, nil); code != http.StatusCreated {
		t.Fatalf("add rule: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/rules", rule, nil); code != http.StatusConflict {
		t.Fatalf("duplicate rule: %d, want 409", code)
	}
	if code := postJSON(t, ts.URL+"/api/rules", prop.Rule{ID: "bad", Edge: "warp"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad rule: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/rules", &rules); code != http.StatusOK || len(rules) != 1 || rules[0].ID != "ov" {
		t.Fatalf("rule list: code=%d rules=%v", code, rules)
	}

	// Stats expose the materialized fact count.
	var st struct{ Derived int }
	if code := getJSON(t, ts.URL+"/api/stats", &st); code != http.StatusOK || st.Derived != 2 {
		t.Fatalf("stats: code=%d derived=%d, want 2", code, st.Derived)
	}

	// Provenance of annotation 2: it derives onto annotation 1's referent
	// and annotation 1 derives onto its.
	var pv struct {
		ID         uint64
		Derives    []factView
		Provenance []factView
	}
	if code := getJSON(t, ts.URL+"/api/provenance/2", &pv); code != http.StatusOK {
		t.Fatalf("provenance: %d", code)
	}
	if len(pv.Derives) != 1 || pv.Derives[0].Rule != "ov" || pv.Derives[0].TargetKind != "referent" {
		t.Fatalf("derives = %+v", pv.Derives)
	}
	if code := getJSON(t, ts.URL+"/api/provenance/99", nil); code != http.StatusNotFound {
		t.Fatalf("provenance of missing annotation: %d", code)
	}

	if code := doDelete(t, ts.URL+"/api/rules/ov"); code != http.StatusNoContent {
		t.Fatalf("delete rule: %d", code)
	}
	if code := doDelete(t, ts.URL+"/api/rules/ov"); code != http.StatusNotFound {
		t.Fatalf("delete missing rule: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/stats", &st); code != http.StatusOK || st.Derived != 0 {
		t.Fatalf("stats after rule delete: derived=%d, want 0", st.Derived)
	}
}

// TestDurableRuleSurvivesReopen checks rules added over the durable
// handler are WAL-logged and the derived table is rebuilt on reopen.
func TestDurableRuleSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 500))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := d.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewDurableHandler(d))
	rule := prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: "chr1"}
	if code := postJSON(t, ts.URL+"/api/rules", rule, nil); code != http.StatusCreated {
		t.Fatalf("add rule: %d", code)
	}
	for _, span := range []interval.Interval{{Lo: 100, Hi: 200}, {Lo: 150, Hi: 250}} {
		m, err := d.MarkDomainInterval("chr1", span)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Commit(d.NewAnnotation().Creator("t").Date("2026-01-01").Body("x").Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ts2 := httptest.NewServer(NewDurableHandler(d2))
	defer ts2.Close()
	var rules []prop.Rule
	if code := getJSON(t, ts2.URL+"/api/rules", &rules); code != http.StatusOK || len(rules) != 1 {
		t.Fatalf("recovered rules: code=%d rules=%v", code, rules)
	}
	var pv struct{ Derives []factView }
	if code := getJSON(t, fmt.Sprintf("%s/api/provenance/%d", ts2.URL, 1), &pv); code != http.StatusOK {
		t.Fatalf("provenance after reopen: %d", code)
	}
	if len(pv.Derives) != 1 {
		t.Fatalf("derived facts not rebuilt on reopen: %+v", pv)
	}
}
