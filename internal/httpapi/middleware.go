// Request instrumentation: the metrics middleware every route is
// wrapped in, request-ID propagation, and the observability endpoints
// (GET /metrics, GET /debug/vars, optional /debug/pprof).

package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"graphitti/internal/obs"
	"graphitti/internal/trace"
)

// Process-wide HTTP metrics (see internal/obs for the scope model). All
// are documented in docs/METRICS.md, which a test keeps in sync.
var (
	mHTTPRequests = obs.NewCounterVec("graphitti_http_requests_total",
		"HTTP requests served, by route pattern, method and status code.",
		"route", "method", "status")
	mHTTPDuration = obs.NewHistogramVec("graphitti_http_request_duration_seconds",
		"HTTP request latency, handler entry to response completion, by route pattern.",
		nil, "route")
	mHTTPInFlight = obs.NewGauge("graphitti_http_in_flight_requests",
		"HTTP requests currently being served.")
)

// requestIDHeader is honored on ingress (so upstream proxies correlate)
// and always set on the response.
const requestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the request's correlation ID, or "" outside an
// instrumented request. Every JSON error envelope and 5xx log line
// carries the same value, so client reports match server logs.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID returns a fresh 16-hex-char correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// acceptRequestID reports whether a client-supplied ID is safe to echo:
// short and printable ASCII (it lands in headers, JSON and logs).
func acceptRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// traceParentHeader is the W3C trace-context header: honored on ingress
// (the root span joins the caller's trace) and always set on the
// response so clients learn the trace ID their request got.
const traceParentHeader = "traceparent"

// instrument wraps the whole mux: it assigns (or honors) the request ID,
// opens the request's root span (honoring an incoming W3C traceparent),
// tracks the in-flight gauge, and — after dispatch, when ServeMux has
// populated r.Pattern — records the route-labelled counter and latency
// sample. 5xx responses are logged with the request ID; requests at or
// above Options.SlowRequest are logged with the span breakdown.
//
// The request ID and traceparent are written to the response header
// BEFORE dispatch, so every route — including /metrics and /debug/pprof,
// which write their bodies directly — echoes them.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if !acceptRequestID(id) {
			id = newRequestID()
		}
		sp := trace.NewRoot("http", r.Header.Get(traceParentHeader))
		sp.SetAttr("method", r.Method)
		w.Header().Set(requestIDHeader, id)
		w.Header().Set(traceParentHeader, sp.TraceParent())
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		r = r.WithContext(trace.NewContext(ctx, sp))

		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		var tb *traceBuffer
		if traceRequested(r) {
			// Buffer the body so the finished span tree can be folded
			// into the response envelope after the handler returns.
			tb = &traceBuffer{dst: sw}
			out = tb
		}
		mHTTPInFlight.Add(1)
		next.ServeHTTP(out, r)
		mHTTPInFlight.Add(-1)

		// ServeMux fills r.Pattern on the request it dispatched; an empty
		// pattern is a 404/405 that matched no route.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if tb != nil && tb.status != 0 {
			status = tb.status
		}
		if status == 0 {
			status = http.StatusOK
		}
		sp.SetAttr("route", route)
		sp.SetAttrInt("status", int64(status))
		sp.Finish()
		s.tracer.Record(sp, tb != nil)
		if tb != nil {
			tb.flush(sp)
		}

		elapsed := time.Since(start)
		mHTTPRequests.With(route, r.Method, strconv.Itoa(status)).Inc()
		mHTTPDuration.With(route).Observe(elapsed.Seconds())
		if status >= 500 && s.opts.Logger != nil {
			s.opts.Logger.Error("request failed",
				"requestId", id, "route", route, "method", r.Method,
				"status", status, "duration", elapsed)
		}
		if s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest && s.opts.Logger != nil {
			s.opts.Logger.Warn("slow request",
				"requestId", id, "traceId", sp.TraceID(), "route", route,
				"method", r.Method, "status", status, "duration", elapsed,
				"spans", sp.Breakdown())
		}
	})
}

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// debugVars serves the registry as one JSON object, expvar-style.
func (s *server) debugVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.Default.WriteJSON(w)
}

// mountPprof registers the net/http/pprof handlers; gated behind
// Options.EnablePprof (the -pprof server flag) because profiles expose
// internals and cost CPU.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
