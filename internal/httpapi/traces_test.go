package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphitti/internal/durable"
	"graphitti/internal/prop"
	"graphitti/internal/shard"
	"graphitti/internal/trace"
)

// collectKinds walks a span tree into a set of span kinds.
func collectKinds(n *trace.Node, seen map[string]bool) {
	if n == nil {
		return
	}
	seen[n.Name] = true
	for _, c := range n.Children {
		collectKinds(c, seen)
	}
}

// doTraced POSTs body to rawURL and decodes the ?trace=1 envelope.
func doTraced(t *testing.T, rawURL string, body interface{}) (*http.Response, tracedEnvelope) {
	t.Helper()
	resp, raw := doJSON(t, "POST", rawURL, body)
	var env tracedEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("traced envelope: %v (%s)", err, raw)
	}
	return resp, env
}

// TestTracedCommitShardedDurable is the acceptance path: a ?trace=1
// commit against a 4-shard durable store with a propagation rule
// installed returns a span tree covering the whole pipeline — HTTP root,
// router dispatch, shard writer, commit critical section, propagation
// delta, WAL group-commit flush.
func TestTracedCommitShardedDurable(t *testing.T) {
	const shards = 4
	sh, err := shard.Open(t.TempDir(), shards, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	ts := httptest.NewServer(NewShardedHandler(sh))
	defer ts.Close()

	domain := keyOnShard(t, shards, 2, "chr")
	registerDomainSeq(t, sh, domain)
	if err := sh.AddRule(prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: domain}); err != nil {
		t.Fatal(err)
	}

	// Join an upstream trace: the root span must adopt this trace ID.
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest("POST", ts.URL+"/api/annotations?trace=1",
		bytes.NewReader(mustJSON(t, seqAnnReq(domain))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("traced create: %d (%s)", resp.StatusCode, raw)
	}

	// The response carries a traceparent continuing the upstream trace.
	tp := resp.Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || len(tp) != 55 {
		t.Fatalf("response traceparent %q does not continue upstream trace", tp)
	}

	var env tracedEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("traced envelope: %v (%s)", err, raw)
	}
	if env.Trace == nil {
		t.Fatalf("no trace in envelope: %s", raw)
	}
	if env.Trace.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID %q, want the upstream's", env.Trace.TraceID)
	}
	var created struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(env.Response, &created); err != nil || created.ID == 0 {
		t.Fatalf("envelope response is not the created annotation: %s", env.Response)
	}

	seen := map[string]bool{}
	collectKinds(env.Trace, seen)
	for _, kind := range []string{"http", "router", "shard.writer", "commit", "prop.delta", "wal.flush"} {
		if !seen[kind] {
			t.Errorf("span kind %q missing from traced commit tree: %s", kind, raw)
		}
	}

	// The writer span is tagged with the routed shard; the flush span
	// carries that shard's batch ID.
	writer := findSpan(env.Trace, "shard.writer")
	if writer == nil || writer.Shard == nil || *writer.Shard != 2 {
		t.Fatalf("shard.writer span not tagged with home shard 2: %s", raw)
	}
	flush := findSpan(env.Trace, "wal.flush")
	if flush == nil || !strings.HasPrefix(flush.Attrs["batch"], "2#") {
		t.Fatalf("wal.flush span has no shard-2 batch ID: %s", raw)
	}

	// The forced trace is retrievable from the ring, and the filters
	// narrow to it.
	assertDebugTraces(t, ts.URL, env.Trace.TraceID, 2)
}

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// findSpan returns the first span of the given kind in the tree.
func findSpan(n *trace.Node, kind string) *trace.Node {
	if n == nil {
		return nil
	}
	if n.Name == kind {
		return n
	}
	for _, c := range n.Children {
		if got := findSpan(c, kind); got != nil {
			return got
		}
	}
	return nil
}

// assertDebugTraces checks GET /debug/traces serves the recorded trace
// and that the route, shard and min-duration filters behave.
func assertDebugTraces(t *testing.T, base, traceID string, homeShard int) {
	t.Helper()
	fetch := func(params url.Values) tracesView {
		t.Helper()
		resp, body := doJSON(t, "GET", base+"/debug/traces?"+params.Encode(), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/traces?%s: %d (%s)", params.Encode(), resp.StatusCode, body)
		}
		var v tracesView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	hasTrace := func(v tracesView) bool {
		for _, n := range v.Traces {
			if n.TraceID == traceID {
				return true
			}
		}
		return false
	}

	if v := fetch(url.Values{}); !hasTrace(v) {
		t.Fatalf("trace %s not in unfiltered /debug/traces (%d traces)", traceID, v.Count)
	}
	if v := fetch(url.Values{"route": {"POST /api/annotations"}, "shard": {strconv.Itoa(homeShard)}}); !hasTrace(v) {
		t.Fatalf("trace %s not found under its route+shard filter", traceID)
	}
	if v := fetch(url.Values{"route": {"GET /api/stats"}}); hasTrace(v) {
		t.Fatal("route filter matched a different route's trace")
	}
	if v := fetch(url.Values{"min": {"10h"}}); v.Count != 0 {
		t.Fatalf("min=10h returned %d traces, want 0", v.Count)
	}
	resp, _ := doJSON(t, "GET", base+"/debug/traces?min=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min filter: %d, want 400", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", base+"/debug/traces?shard=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard filter: %d, want 400", resp.StatusCode)
	}
}

// TestRequestIDEchoAllRoutes pins the pre-dispatch header write: every
// route — including /metrics, /debug/*, and unmatched paths, whose
// handlers write their bodies directly — echoes X-Request-Id and a
// traceparent.
func TestRequestIDEchoAllRoutes(t *testing.T) {
	ts := httptest.NewServer(NewHandlerWithOptions(smallStore(t), Options{EnablePprof: true}))
	defer ts.Close()
	for _, path := range []string{
		"/metrics", "/debug/vars", "/debug/traces", "/debug/pprof/",
		"/api/stats", "/no/such/route",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if id := resp.Header.Get("X-Request-Id"); id == "" {
			t.Errorf("GET %s: no X-Request-Id echoed", path)
		}
		if tp := resp.Header.Get("traceparent"); len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
			t.Errorf("GET %s: bad traceparent %q", path, tp)
		}
	}
}

// scrapeMetrics fetches /metrics and returns the raw exposition text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSpanKindsHaveHistograms is the trace/metrics invariant: every span
// kind appearing in a live trace has a non-zero sample count in the
// graphitti_trace_span_duration_seconds histogram family, and the traced
// request's span total reconciles with its route's histogram observation.
func TestSpanKindsHaveHistograms(t *testing.T) {
	const shards = 2
	sh, err := shard.Open(t.TempDir(), shards, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	ts := httptest.NewServer(NewShardedHandler(sh))
	defer ts.Close()

	domain := keyOnShard(t, shards, 1, "chr")
	registerDomainSeq(t, sh, domain)
	if err := sh.AddRule(prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: domain}); err != nil {
		t.Fatal(err)
	}

	sumBefore := histogramSum(t, scrapeMetrics(t, ts.URL),
		"graphitti_http_request_duration_seconds", `route="POST /api/annotations"`)

	resp, env := doTraced(t, ts.URL+"/api/annotations?trace=1", seqAnnReq(domain))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("traced create: %d", resp.StatusCode)
	}
	// Exercise the read-path kinds too.
	doJSON(t, "POST", ts.URL+"/api/search", map[string]string{"expr": "contains(/annotation/body, 'written')"})
	doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"query": "select ?a where { ?a contains \"written\" }"})

	text := scrapeMetrics(t, ts.URL)
	seen := map[string]bool{}
	collectKinds(env.Trace, seen)
	if len(seen) < 5 {
		t.Fatalf("traced commit produced only kinds %v", seen)
	}
	for kind := range seen {
		needle := fmt.Sprintf(`graphitti_trace_span_duration_seconds_count{kind=%q}`, kind)
		if !strings.Contains(text, needle) {
			t.Errorf("span kind %q has no duration histogram sample in /metrics", kind)
		}
	}

	// Reconciliation: the route histogram's added observation covers the
	// root span (middleware entry to exit) — at least the span's duration,
	// and not implausibly more.
	sumAfter := histogramSum(t, text,
		"graphitti_http_request_duration_seconds", `route="POST /api/annotations"`)
	obsSeconds := sumAfter - sumBefore
	spanSeconds := float64(env.Trace.DurationMicros) / 1e6
	if obsSeconds < spanSeconds {
		t.Errorf("histogram observed %.6fs < root span %.6fs", obsSeconds, spanSeconds)
	}
	if obsSeconds-spanSeconds > 0.25 {
		t.Errorf("histogram observed %.6fs, root span %.6fs: gap too large to be one request", obsSeconds, spanSeconds)
	}
}

// histogramSum extracts a histogram family's _sum sample for a label
// match (0 when the series does not exist yet).
func histogramSum(t *testing.T, exposition, family, label string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(family) + `_sum\{([^}]*)\} ([0-9eE.+-]+)$`)
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		if strings.Contains(m[1], label) {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("bad sum sample %q: %v", m[0], err)
			}
			return v
		}
	}
	return 0
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestLogged checks the -slow-request path: a request over
// the threshold gets a structured line with the span breakdown.
func TestSlowRequestLogged(t *testing.T) {
	var logs syncBuffer
	ts := httptest.NewServer(NewHandlerWithOptions(smallStore(t), Options{
		SlowRequest: time.Nanosecond,
		Logger:      slog.New(slog.NewTextHandler(&logs, nil)),
	}))
	defer ts.Close()

	resp, _ := doJSON(t, "GET", ts.URL+"/api/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := logs.String()
		if strings.Contains(got, "slow request") &&
			strings.Contains(got, "spans=") && strings.Contains(got, "http") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-request line with span breakdown; logs:\n%s", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceSampling checks SampleEvery drops untraced requests from the
// rings while ?trace=1 is always retained.
func TestTraceSampling(t *testing.T) {
	ts := httptest.NewServer(NewHandlerWithOptions(smallStore(t), Options{
		TraceSampleEvery: 1000,
	}))
	defer ts.Close()

	for i := 0; i < 5; i++ {
		doJSON(t, "GET", ts.URL+"/api/stats", nil)
	}
	resp, body := doJSON(t, "GET", ts.URL+"/api/stats?trace=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced stats: %d", resp.StatusCode)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Trace == nil {
		t.Fatalf("traced stats envelope: %v (%s)", err, body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/debug/traces", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	var v tracesView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range v.Traces {
		if n.TraceID == env.Trace.TraceID {
			found = true
		}
		if n.Attrs["route"] == "GET /api/stats" && n.TraceID != env.Trace.TraceID {
			t.Fatalf("sampled-out request leaked into the ring: %s", body)
		}
	}
	if !found {
		t.Fatal("?trace=1 request was not force-recorded past sampling")
	}
}
