package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/durable"
	"graphitti/internal/faultfs"
)

// The degraded-server test drives the full production story over HTTP:
// a disk fault mid-write turns the store read-only — the failing write
// and all later ones answer 503 with Retry-After, reads and /healthz
// stay 200, /readyz flips to 503 — until POST /api/recover re-validates
// the directory and restores read-write service.

type healthBody struct {
	Status string `json:"status"`
	State  string `json:"state"`
	Reads  bool   `json:"reads"`
	Writes bool   `json:"writes"`
	Reason string `json:"reason,omitempty"`
}

// doJSON is postJSON/getJSON with response headers exposed.
func doJSON(t *testing.T, method, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestDegradedServerServesReadsRefusesWrites(t *testing.T) {
	sc := faultfs.NewScript()
	d, err := durable.Open(t.TempDir(), durable.Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sq, err := seq.New("chr1", seq.DNA, strings.Repeat("ACGT", 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewDurableHandler(d))
	defer ts.Close()

	annReq := map[string]interface{}{
		"creator": "u", "date": "2026-08-08", "body": "written over http",
		"marks": []map[string]interface{}{
			{"type": "sequence", "seqId": "chr1", "lo": 1, "hi": 20},
		},
	}

	// Healthy baseline: write acks, both probes 200 and write-ready.
	if resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", annReq); resp.StatusCode != http.StatusCreated {
		t.Fatalf("healthy write: %d (%s)", resp.StatusCode, body)
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, body := doJSON(t, "GET", ts.URL+probe, nil)
		var hv healthBody
		if err := json.Unmarshal(body, &hv); err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		if resp.StatusCode != 200 || hv.Status != "ok" || !hv.Writes {
			t.Fatalf("healthy %s: %d %+v", probe, resp.StatusCode, hv)
		}
	}

	// Break the disk under the next fdatasync: the in-flight write must
	// be refused — 503, Retry-After, a JSON error envelope — not acked.
	sc.FailAt(faultfs.OpSync, 1, faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})
	resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", annReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted write: %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("faulted write missing Retry-After")
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("faulted write body not an error envelope: %s", body)
	}

	// Degraded: writes 503, reads 200, liveness 200-but-degraded,
	// readiness 503 + Retry-After.
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/annotations", annReq); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: %d", resp.StatusCode)
	}
	if resp, body := doJSON(t, "GET", ts.URL+"/api/stats", nil); resp.StatusCode != 200 {
		t.Fatalf("degraded read: %d (%s)", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/healthz", nil)
	var hv healthBody
	if err := json.Unmarshal(body, &hv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || hv.Status != "degraded" || !hv.Reads || hv.Writes || hv.Reason == "" {
		t.Fatalf("degraded /healthz: %d %+v", resp.StatusCode, hv)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded /readyz: %d (Retry-After=%q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Explicit recovery over HTTP (the script rule already fired once, so
	// the "disk" is repaired): service returns to read-write.
	resp, body = doJSON(t, "POST", ts.URL+"/api/recover", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("recover: %d (%s)", resp.StatusCode, body)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != 200 {
		t.Fatalf("post-recovery /readyz: %d", resp.StatusCode)
	}
	if resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", annReq); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-recovery write: %d (%s)", resp.StatusCode, body)
	}
}

func TestRecoverRequiresDurableStore(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := doJSON(t, "POST", ts.URL+"/api/recover", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("recover on in-memory store: %d (%s)", resp.StatusCode, body)
	}
}

func TestBodyCap(t *testing.T) {
	_, store := newTestServer(t)
	ts := httptest.NewServer(NewHandlerWithOptions(store, Options{MaxBodyBytes: 256}))
	t.Cleanup(ts.Close)
	big := map[string]interface{}{
		"creator": "u", "date": "2026-08-08",
		"body": strings.Repeat("x", 4096),
	}
	resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d (%s)", resp.StatusCode, body)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("oversized-body response not an error envelope: %s", body)
	}
	// A small malformed body is a 400, not a cap error.
	req, err := http.NewRequest("POST", ts.URL+"/api/search", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp2.StatusCode)
	}
}
