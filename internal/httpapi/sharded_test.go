package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/faultfs"
	"graphitti/internal/interval"
	"graphitti/internal/shard"
)

// keyOnShard finds a routing key ("<prefix>-<i>") the router places on
// shard want, so tests can aim writes at a specific pipeline.
func keyOnShard(t *testing.T, shards, want int, prefix string) string {
	t.Helper()
	r := core.Router{Shards: shards}
	for i := 0; i < 10_000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.ShardOfKey(k) == want {
			return k
		}
	}
	t.Fatalf("no %s key hashes to shard %d/%d", prefix, want, shards)
	return ""
}

func seqAnnReq(domain string) map[string]interface{} {
	return map[string]interface{}{
		"creator": "u", "date": "2026-08-08", "body": "written into " + domain,
		"marks": []map[string]interface{}{
			{"type": "sequence", "seqId": domain, "lo": 1, "hi": 20},
		},
	}
}

func registerDomainSeq(t *testing.T, sh *shard.Store, domain string) {
	t.Helper()
	sq, err := seq.New(domain, seq.DNA, strings.Repeat("ACGT", 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.RegisterSequence(sq); err != nil {
		t.Fatalf("register %s: %v", domain, err)
	}
}

// TestShardedHandlerSmoke drives the full API against an in-memory
// 3-shard store: mutations route, reads merge, stats expose the sharding
// section, and a snapshot/restore round-trips.
func TestShardedHandlerSmoke(t *testing.T) {
	const shards = 3
	sh := shard.New(shards)
	ts := httptest.NewServer(NewShardedHandler(sh))
	defer ts.Close()

	// One sequence per shard, one annotation in each.
	var domains []string
	for k := 0; k < shards; k++ {
		d := keyOnShard(t, shards, k, "chr")
		domains = append(domains, d)
		registerDomainSeq(t, sh, d)
		resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(d))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create on shard %d: %d (%s)", k, resp.StatusCode, body)
		}
	}

	resp, body := doJSON(t, "GET", ts.URL+"/api/annotations", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != shards {
		t.Fatalf("listed %d annotations, want %d", len(list), shards)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("merged list not in ID order: %v", list)
		}
	}

	resp, body = doJSON(t, "GET", ts.URL+"/api/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st struct {
		Annotations int `json:"annotations"`
		Sharding    *struct {
			Shards int `json:"shards"`
		} `json:"sharding"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Annotations != shards || st.Sharding == nil || st.Sharding.Shards != shards {
		t.Fatalf("stats missing sharded counts: %s", body)
	}

	// Content search fans out over all shards.
	resp, body = doJSON(t, "POST", ts.URL+"/api/search",
		map[string]string{"expr": "contains(/annotation/body, 'written into')"})
	if resp.StatusCode != 200 {
		t.Fatalf("search: %d (%s)", resp.StatusCode, body)
	}
	var hits []json.RawMessage
	if err := json.Unmarshal(body, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != shards {
		t.Fatalf("search found %d, want %d", len(hits), shards)
	}

	// Snapshot → restore round trip through the API.
	resp, snapBody := doJSON(t, "GET", ts.URL+"/api/snapshot", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/api/restore", json.RawMessage(snapBody))
	if resp.StatusCode != 200 {
		t.Fatalf("restore: %d (%s)", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/api/annotations", nil)
	if resp.StatusCode != 200 {
		t.Fatal("post-restore list failed")
	}
	var after []json.RawMessage
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if len(after) != shards {
		t.Fatalf("post-restore listed %d annotations, want %d", len(after), shards)
	}
	_ = domains
}

// TestShardStorePartialDegradation exercises the same fault at the
// shard.Store level: the error carries the shard tag and
// DegradedShards/Health single out the broken pipeline.
func TestShardStorePartialDegradation(t *testing.T) {
	const shards = 2
	sc := faultfs.NewScript()
	sh, err := shard.Open(t.TempDir(), shards, durable.Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	domains := make([]string, shards)
	for k := 0; k < shards; k++ {
		domains[k] = keyOnShard(t, shards, k, "dom")
		registerDomainSeq(t, sh, domains[k])
	}

	sc.FailPath(faultfs.OpSync, "shard-1", 1,
		faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})

	commitTo := func(domain string) error {
		b := sh.NewAnnotation().Creator("u").Date("2026-08-08").Body("x")
		m, err := sh.MarkSequenceInterval(domain, interval.Interval{Lo: 2, Hi: 9})
		if err != nil {
			return err
		}
		_, err = sh.Commit(b.Refer(m))
		return err
	}

	err = commitTo(domains[1])
	var se *shard.Error
	if err == nil || !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("faulted commit error not tagged with shard 1: %v", err)
	}
	if err := commitTo(domains[0]); err != nil {
		t.Fatalf("healthy shard commit while shard 1 degraded: %v", err)
	}
	if got := sh.DegradedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DegradedShards = %v, want [1]", got)
	}
	for _, h := range sh.Health() {
		healthy := h.State == durable.StateHealthy
		if healthy == (h.Shard == 1) {
			t.Fatalf("shard %d health %v, want only shard 1 degraded", h.Shard, h.State)
		}
	}

	if err := sh.Reopen(1); err != nil {
		t.Fatalf("reopen shard 1: %v", err)
	}
	if err := commitTo(domains[1]); err != nil {
		t.Fatalf("post-reopen commit: %v", err)
	}
	if got := sh.DegradedShards(); len(got) != 0 {
		t.Fatalf("DegradedShards after reopen = %v, want none", got)
	}
}

// TestShardedPartialDegradation is the degraded-shard story over HTTP:
// a disk fault on ONE shard turns that pipeline read-only — its writes
// answer 503 naming the shard — while writes routed to the other shards
// keep succeeding; /readyz flips to 503 with the shard in the reason
// until POST /api/recover?shard=k repairs exactly that pipeline.
func TestShardedPartialDegradation(t *testing.T) {
	const shards = 3
	sc := faultfs.NewScript()
	sh, err := shard.Open(t.TempDir(), shards, durable.Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	ts := httptest.NewServer(NewShardedHandler(sh))
	defer ts.Close()

	domains := make([]string, shards)
	for k := 0; k < shards; k++ {
		domains[k] = keyOnShard(t, shards, k, "chr")
		registerDomainSeq(t, sh, domains[k])
		if resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(domains[k])); resp.StatusCode != http.StatusCreated {
			t.Fatalf("healthy write shard %d: %d (%s)", k, resp.StatusCode, body)
		}
	}

	// Break shard 1's disk under its next fdatasync. The other shards'
	// files never see the fault.
	sc.FailPath(faultfs.OpSync, "shard-1", 1,
		faultfs.Fault{Err: faultfs.Errno(faultfs.OpSync, syscall.EIO)})

	resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(domains[1]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted write: %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("faulted write missing Retry-After")
	}
	var eb struct {
		Error string `json:"error"`
		Shard *int   `json:"shard"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("faulted write body not an error envelope: %s", body)
	}
	if eb.Shard == nil || *eb.Shard != 1 {
		t.Fatalf("503 envelope does not name shard 1: %s", body)
	}

	// Shard 1 stays degraded; shards 0 and 2 keep accepting writes.
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(domains[1])); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded shard write: %d", resp.StatusCode)
	}
	for _, k := range []int{0, 2} {
		if resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(domains[k])); resp.StatusCode != http.StatusCreated {
			t.Fatalf("healthy shard %d write while shard 1 degraded: %d (%s)", k, resp.StatusCode, body)
		}
	}
	// Reads — including from the degraded shard — answer 200.
	if resp, _ := doJSON(t, "GET", ts.URL+"/api/annotations", nil); resp.StatusCode != 200 {
		t.Fatalf("degraded read: %d", resp.StatusCode)
	}

	// /healthz stays 200 but reports the shard; /readyz flips to 503.
	resp, body = doJSON(t, "GET", ts.URL+"/healthz", nil)
	var hv struct {
		Status         string `json:"status"`
		Reason         string `json:"reason"`
		DegradedShards []int  `json:"degradedShards"`
	}
	if err := json.Unmarshal(body, &hv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || hv.Status != "degraded" {
		t.Fatalf("degraded /healthz: %d %+v", resp.StatusCode, hv)
	}
	if !strings.Contains(hv.Reason, "shard 1") || len(hv.DegradedShards) != 1 || hv.DegradedShards[0] != 1 {
		t.Fatalf("/healthz does not name shard 1: %+v", hv)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded /readyz: %d", resp.StatusCode)
	}

	// Targeted recovery of exactly the broken shard.
	resp, body = doJSON(t, "POST", ts.URL+"/api/recover?shard=1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("recover shard 1: %d (%s)", resp.StatusCode, body)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != 200 {
		t.Fatalf("post-recovery /readyz: %d", resp.StatusCode)
	}
	if resp, body := doJSON(t, "POST", ts.URL+"/api/annotations", seqAnnReq(domains[1])); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-recovery write: %d (%s)", resp.StatusCode, body)
	}

	// Out-of-range shard parameter is a client error.
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/recover?shard=9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("recover bad shard: %d", resp.StatusCode)
	}
}
