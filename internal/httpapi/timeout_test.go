package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphitti/internal/workload"
)

// newTimeoutServer serves the influenza study with a per-request query
// budget so small that any real scan or join exceeds it.
func newTimeoutServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 200
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandlerWithOptions(study.Store, Options{QueryTimeout: time.Nanosecond}))
	t.Cleanup(ts.Close)
	return ts
}

// TestSearchTimeout checks /api/search returns a 408 JSON error when the
// configured per-request budget expires mid-scan.
func TestSearchTimeout(t *testing.T) {
	ts := newTimeoutServer(t)
	var body struct {
		Error string `json:"error"`
	}
	code := postJSON2(t, ts.URL+"/api/search",
		map[string]string{"expr": `contains(/annotation/body, "protease")`}, &body)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", code)
	}
	if !strings.Contains(body.Error, "deadline") {
		t.Fatalf("error body %q does not mention the deadline", body.Error)
	}
}

// TestQueryTimeout checks /api/query honors the same budget.
func TestQueryTimeout(t *testing.T) {
	ts := newTimeoutServer(t)
	var body struct {
		Error string `json:"error"`
	}
	code := postJSON2(t, ts.URL+"/api/query", map[string]string{"query": `
select contents
where {
  ?a isa annotation ; contains "protease" .
  ?r isa referent ; kind interval .
  ?a annotates ?r .
}`}, &body)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", code)
	}
	if !strings.Contains(body.Error, "deadline") {
		t.Fatalf("error body %q does not mention the deadline", body.Error)
	}
}

// TestNoTimeoutByDefault checks the zero option imposes no budget.
func TestNoTimeoutByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []map[string]interface{}
	code := postJSON2(t, ts.URL+"/api/search",
		map[string]string{"expr": `contains(/annotation/body, "protease")`}, &out)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
}

// postJSON2 posts a body and decodes the response regardless of status
// (the shared postJSON helper only decodes 2xx responses).
func postJSON2(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}
