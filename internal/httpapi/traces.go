// Trace exposure: the ?trace=1 inline span tree and GET /debug/traces,
// the HTTP surface of internal/trace's per-shard ring buffers.

package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphitti/internal/trace"
)

// traceRequested reports whether the request asked for its own span tree
// inline (?trace=1). Honored on every route; it also forces the trace
// into the ring past sampling.
func traceRequested(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// traceBuffer holds the response body of a ?trace=1 request until its
// root span has finished, so the completed span tree can be folded into
// the envelope. Headers pass straight through to the real writer (they
// are not flushed until the buffered WriteHeader).
type traceBuffer struct {
	dst    http.ResponseWriter
	status int
	buf    []byte
}

func (b *traceBuffer) Header() http.Header { return b.dst.Header() }

func (b *traceBuffer) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *traceBuffer) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// tracedEnvelope is what a ?trace=1 request receives: the handler's
// normal JSON payload under "response", plus the request's span tree.
type tracedEnvelope struct {
	Trace    *trace.Node     `json:"trace"`
	Response json.RawMessage `json:"response,omitempty"`
}

// flush releases the buffered response. JSON bodies are wrapped in the
// traced envelope; anything else (snapshots, 204s) is sent verbatim —
// the trace is still in the ring for GET /debug/traces either way.
func (b *traceBuffer) flush(root *trace.Span) {
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	ct := b.Header().Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") && len(b.buf) > 0 && json.Valid(b.buf) {
		b.dst.WriteHeader(status)
		_ = json.NewEncoder(b.dst).Encode(tracedEnvelope{
			Trace:    root.Tree(),
			Response: json.RawMessage(b.buf),
		})
		return
	}
	b.dst.WriteHeader(status)
	if len(b.buf) > 0 {
		_, _ = b.dst.Write(b.buf)
	}
}

// tracesView is the GET /debug/traces payload.
type tracesView struct {
	Count  int           `json:"count"`
	Traces []*trace.Node `json:"traces"`
}

// debugTraces serves the retained traces, newest-last within each
// shard's ring. Filters: ?shard=k (one shard's ring; -1 for requests
// that never touched a shard), ?route=<pattern> (exact route match),
// ?min=<duration> (at least this slow, e.g. 10ms).
func (s *server) debugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shard := trace.ShardAll
	if raw := q.Get("shard"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil || k < -1 {
			jsonError(w, r, http.StatusBadRequest,
				fmt.Sprintf("bad shard %q: want -1 or a shard index", raw))
			return
		}
		shard = k
	}
	var minDur time.Duration
	if raw := q.Get("min"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			jsonError(w, r, http.StatusBadRequest,
				fmt.Sprintf("bad min %q: want a duration like 10ms", raw))
			return
		}
		minDur = d
	}
	route := q.Get("route")
	out := tracesView{Traces: []*trace.Node{}}
	for _, sp := range s.tracer.Traces(shard) {
		if minDur > 0 && sp.Duration() < minDur {
			continue
		}
		if route != "" && sp.Attr("route") != route {
			continue
		}
		out.Traces = append(out.Traces, sp.Tree())
	}
	out.Count = len(out.Traces)
	writeJSON(w, http.StatusOK, out)
}
