// Package httpapi exposes a Graphitti store over HTTP/JSON.
//
// The paper's demonstration is a three-tab GUI; this API is the
// service-shaped equivalent a modern deployment would put behind such a
// front-end. Endpoints map one-to-one onto the tabs:
//
//	annotation tab:  POST /api/annotations, GET /api/objects
//	query tab:       POST /api/search, POST /api/query,
//	                 GET  /api/annotations/{id}/related,
//	                 GET  /api/annotations/{id}/correlated,
//	                 GET  /api/referents
//	admin tab:       GET /api/stats, DELETE /api/annotations/{id},
//	                 GET /api/snapshot, POST /api/restore
//	propagation:     GET/POST /api/rules, DELETE /api/rules/{id},
//	                 GET /api/provenance/{id}
//
// Served over a durable store (NewDurableHandler), mutations are
// write-ahead logged before they are acknowledged, /api/stats grows a
// "durability" section (WAL and compaction counters), and /api/restore
// checkpoints the restored state immediately.
//
// Operational endpoints: GET /healthz (liveness — always 200 while the
// process serves) and GET /readyz (readiness — 503 + Retry-After while
// the store is degraded to read-only after a disk fault; reads keep
// answering 200 throughout). Mutations against a degraded store return
// 503 JSON with Retry-After; POST /api/recover runs the store's Reopen
// path and restores readiness once the directory re-validates. All JSON
// bodies are size-capped (413 beyond the limit).
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/query"
	"graphitti/internal/rtree"
)

// Options tune the handler.
type Options struct {
	// QueryTimeout bounds the execution of the search and query
	// endpoints; 0 means no server-side limit. Client disconnects cancel
	// execution either way (the request context is plumbed through query
	// and search evaluation).
	QueryTimeout time.Duration
	// MaxBodyBytes caps every JSON request body except the restore
	// upload; oversized requests get 413 instead of an unbounded read.
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxRestoreBytes caps the POST /api/restore snapshot upload.
	// 0 means DefaultMaxRestoreBytes.
	MaxRestoreBytes int64
	// Logger, when set, receives a structured line (with the request ID)
	// for every 5xx response. Nil disables request logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// server flag). Off by default: profiles expose internals.
	EnablePprof bool
}

const (
	// DefaultMaxBodyBytes bounds mutation/query bodies: far above any
	// legitimate annotation or query, far below a memory-exhaustion
	// payload.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultMaxRestoreBytes bounds snapshot uploads, which carry whole
	// stores.
	DefaultMaxRestoreBytes = 1 << 30
)

// retryAfterSeconds is the Retry-After hint attached to 503 responses:
// long enough for an operator (or orchestrator) to notice /readyz and
// run recovery, short enough that clients re-probe promptly.
const retryAfterSeconds = "10"

// NewHandler returns an http.Handler serving the API for one in-memory
// store. Writes do not survive a restart; see NewDurableHandler.
func NewHandler(s *core.Store) http.Handler {
	return NewHandlerWithOptions(s, Options{})
}

// NewHandlerWithOptions is NewHandler with explicit options.
func NewHandlerWithOptions(s *core.Store, opts Options) http.Handler {
	return newMux(&server{store: s, proc: query.NewProcessor(s), opts: opts})
}

// NewDurableHandler serves a durable store: every mutating endpoint is
// logged-then-acknowledged through d, reads go to the wrapped store.
func NewDurableHandler(d *durable.Store) http.Handler {
	return NewDurableHandlerWithOptions(d, Options{})
}

// NewDurableHandlerWithOptions is NewDurableHandler with explicit options.
func NewDurableHandlerWithOptions(d *durable.Store, opts Options) http.Handler {
	s := d.Core()
	return newMux(&server{store: s, proc: query.NewProcessor(s), durable: d, opts: opts})
}

// routeDefs is the single registration table: newMux mounts every entry
// and the middleware conformance test walks the same list, so a route
// can't be added without being counted by the metrics middleware.
var routeDefs = []struct {
	pattern string
	handler func(*server) http.HandlerFunc
}{
	{"GET /healthz", func(s *server) http.HandlerFunc { return s.healthz }},
	{"GET /readyz", func(s *server) http.HandlerFunc { return s.readyz }},
	{"POST /api/recover", func(s *server) http.HandlerFunc { return s.recoverStore }},
	{"GET /api/stats", func(s *server) http.HandlerFunc { return s.stats }},
	{"GET /metrics", func(s *server) http.HandlerFunc { return s.metrics }},
	{"GET /debug/vars", func(s *server) http.HandlerFunc { return s.debugVars }},
	{"GET /api/annotations", func(s *server) http.HandlerFunc { return s.listAnnotations }},
	{"POST /api/annotations", func(s *server) http.HandlerFunc { return s.createAnnotation }},
	{"GET /api/annotations/{id}", func(s *server) http.HandlerFunc { return s.getAnnotation }},
	{"DELETE /api/annotations/{id}", func(s *server) http.HandlerFunc { return s.deleteAnnotation }},
	{"GET /api/annotations/{id}/related", func(s *server) http.HandlerFunc { return s.related }},
	{"GET /api/annotations/{id}/correlated", func(s *server) http.HandlerFunc { return s.correlated }},
	{"POST /api/search", func(s *server) http.HandlerFunc { return s.search }},
	{"POST /api/query", func(s *server) http.HandlerFunc { return s.runQuery }},
	{"GET /api/referents", func(s *server) http.HandlerFunc { return s.referents }},
	{"GET /api/objects", func(s *server) http.HandlerFunc { return s.objects }},
	{"GET /api/snapshot", func(s *server) http.HandlerFunc { return s.snapshot }},
	{"POST /api/restore", func(s *server) http.HandlerFunc { return s.restore }},
	{"GET /api/rules", func(s *server) http.HandlerFunc { return s.listRules }},
	{"POST /api/rules", func(s *server) http.HandlerFunc { return s.addRule }},
	{"DELETE /api/rules/{id}", func(s *server) http.HandlerFunc { return s.deleteRule }},
	{"GET /api/provenance/{id}", func(s *server) http.HandlerFunc { return s.provenance }},
}

func newMux(api *server) http.Handler {
	mux := http.NewServeMux()
	for _, def := range routeDefs {
		mux.HandleFunc(def.pattern, def.handler(api))
	}
	if api.opts.EnablePprof {
		mountPprof(mux)
	}
	return api.instrument(mux)
}

type server struct {
	// mu guards store/proc, which /api/restore swaps wholesale; handlers
	// snapshot both via view(). durable is set once and never changes.
	mu      sync.RWMutex
	store   *core.Store
	proc    *query.Processor
	durable *durable.Store
	opts    Options
}

// view returns the current store and query processor.
func (s *server) view() (*core.Store, *query.Processor) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store, s.proc
}

// queryCtx derives the execution context of a search/query request: the
// request's own context (canceled when the client goes away) bounded by
// the configured per-request timeout.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.QueryTimeout)
	}
	return r.Context(), func() {}
}

type errorBody struct {
	Error string `json:"error"`
	// RequestID is the correlation ID the middleware assigned (also in
	// the X-Request-Id response header), so a client-reported failure can
	// be matched to its server log line.
	RequestID string `json:"requestId,omitempty"`
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request aborted by the client; there is no official HTTP code.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// jsonError writes a JSON error envelope carrying the request ID.
func jsonError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, RequestID: RequestID(r.Context())})
}

func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, durable.ErrDegraded):
		// The store is read-only until recovery; tell clients when to
		// retry rather than letting them hammer a wedged writer.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusRequestTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, core.ErrNoSuchAnnotation),
		errors.Is(err, core.ErrNoSuchObject),
		errors.Is(err, core.ErrNoSuchReferent),
		errors.Is(err, core.ErrNoSuchOntology),
		errors.Is(err, core.ErrNoSuchTerm),
		errors.Is(err, core.ErrNoSuchSystem):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrBadMark),
		errors.Is(err, core.ErrEmptyAnnotation),
		errors.Is(err, query.ErrSyntax),
		errors.Is(err, prop.ErrBadRule):
		status = http.StatusBadRequest
	case errors.Is(err, prop.ErrDuplicateRule):
		status = http.StatusConflict
	case errors.Is(err, prop.ErrNoSuchRule):
		status = http.StatusNotFound
	}
	jsonError(w, r, status, err.Error())
}

// healthView is the /healthz and /readyz payload: the degradation state
// plus what the server can still do about it. A degraded store serves
// reads but not writes.
type healthView struct {
	Status string `json:"status"` // ok | degraded | closed
	State  string `json:"state"`
	Reads  bool   `json:"reads"`
	Writes bool   `json:"writes"`
	Reason string `json:"reason,omitempty"`
}

func (s *server) health() healthView {
	if s.durable == nil {
		// In-memory mode has no disk to fail.
		return healthView{Status: "ok", State: durable.StateHealthy.String(), Reads: true, Writes: true}
	}
	h := s.durable.Health()
	v := healthView{State: h.State.String(), Reason: h.Reason}
	switch h.State {
	case durable.StateHealthy:
		v.Status, v.Reads, v.Writes = "ok", true, true
	case durable.StateDegraded:
		v.Status, v.Reads = "degraded", true
	case durable.StateClosed:
		v.Status = "closed"
	}
	return v
}

// healthz is liveness: the process is up and serving HTTP, so always
// 200 — a degraded store is still alive (and answering reads), and
// restarting the process would not repair the disk. The state rides
// along for operators.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// readyz is readiness for full read-write service: 503 + Retry-After
// while degraded or closed, so load balancers stop routing writes; the
// body says reads are still served. POST /api/recover flips it back.
func (s *server) readyz(w http.ResponseWriter, _ *http.Request) {
	v := s.health()
	if v.Writes {
		writeJSON(w, http.StatusOK, v)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, http.StatusServiceUnavailable, v)
}

// recoverStore runs the durable store's explicit recovery path —
// re-validating the data directory and probing the log — and on success
// swaps the reloaded core in, exactly as restore does.
func (s *server) recoverStore(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		jsonError(w, r, http.StatusBadRequest, "recover requires a durable store (-data-dir)")
		return
	}
	s.mu.Lock()
	store, err := s.durable.Reopen()
	if err != nil {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterSeconds)
		jsonError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.store = store
	s.proc = query.NewProcessor(store)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.health())
}

// decodeJSON decodes a size-capped JSON request body into v, writing
// the HTTP error itself on failure: 413 when the cap is hit, 400 for
// malformed JSON.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	limit := s.opts.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			jsonError(w, r, http.StatusBadRequest, "bad JSON: "+err.Error())
		}
		return false
	}
	return true
}

// statsView is the /api/stats payload: the store's component sizes plus
// the published view epoch and, in durable mode, the durability counters.
type statsView struct {
	core.Stats
	Epoch      uint64         `json:"epoch"`
	Durability *durable.Stats `json:"durability,omitempty"`
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	store, _ := s.view()
	out := statsView{Stats: store.Stats(), Epoch: store.View().Epoch()}
	if s.durable != nil {
		ds := s.durable.Stats()
		out.Durability = &ds
	}
	writeJSON(w, http.StatusOK, out)
}

// annotationView is the JSON projection of an annotation.
type annotationView struct {
	ID       uint64         `json:"id"`
	Creator  string         `json:"creator"`
	Date     string         `json:"date"`
	Title    string         `json:"title,omitempty"`
	Terms    []core.TermRef `json:"terms,omitempty"`
	Referent []uint64       `json:"referents,omitempty"`
	XML      string         `json:"xml"`
}

func viewOf(ann *core.Annotation) annotationView {
	return annotationView{
		ID:       ann.ID,
		Creator:  ann.DC.First("creator"),
		Date:     ann.DC.First("date"),
		Title:    ann.DC.First("title"),
		Terms:    ann.Terms,
		Referent: ann.ReferentIDs,
		XML:      ann.Content.String(),
	}
}

func (s *server) listAnnotations(w http.ResponseWriter, r *http.Request) {
	store, _ := s.view()
	keyword := r.URL.Query().Get("keyword")
	var out []annotationView
	if keyword != "" {
		for _, ann := range store.SearchKeyword(keyword, true) {
			out = append(out, viewOf(ann))
		}
	} else {
		for _, ann := range store.Annotations() {
			out = append(out, viewOf(ann))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) getAnnotation(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	ann, err := store.Annotation(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(ann))
}

func (s *server) deleteAnnotation(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if err := s.deleteAnnotationOp(id); err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// deleteAnnotationOp routes the mutation through the WAL when present.
func (s *server) deleteAnnotationOp(id uint64) error {
	if s.durable != nil {
		return s.durable.DeleteAnnotation(id)
	}
	store, _ := s.view()
	return store.DeleteAnnotation(id)
}

// markSpec describes one referent in an annotation request.
type markSpec struct {
	Type string `json:"type"` // interval|sequence|region|clade|subgraph|block|object
	// interval / sequence / block
	Domain string `json:"domain,omitempty"`
	SeqID  string `json:"seqId,omitempty"`
	Lo     int64  `json:"lo,omitempty"`
	Hi     int64  `json:"hi,omitempty"`
	// region
	ImageID string    `json:"imageId,omitempty"`
	Rect    []float64 `json:"rect,omitempty"` // x0,y0,x1,y1 or 3-D with 6
	// clade / subgraph / block rows
	ObjectID string   `json:"objectId,omitempty"`
	Keys     []string `json:"keys,omitempty"`
	// object
	ObjectType string `json:"objectType,omitempty"`
}

type annotationRequest struct {
	Creator string            `json:"creator"`
	Date    string            `json:"date"`
	Title   string            `json:"title,omitempty"`
	Body    string            `json:"body,omitempty"`
	Tags    map[string]string `json:"tags,omitempty"`
	Marks   []markSpec        `json:"marks"`
	Terms   []core.TermRef    `json:"terms,omitempty"`
}

func (s *server) createAnnotation(w http.ResponseWriter, r *http.Request) {
	var req annotationRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	store, _ := s.view()
	b := store.NewAnnotation().Creator(req.Creator).Date(req.Date).Body(req.Body)
	if req.Title != "" {
		b.Title(req.Title)
	}
	for name, val := range req.Tags {
		b.Tag(name, val)
	}
	for i, m := range req.Marks {
		ref, err := resolveMark(store, m)
		if err != nil {
			writeErr(w, r, fmt.Errorf("mark %d: %w", i, err))
			return
		}
		b.Refer(ref)
	}
	for _, tr := range req.Terms {
		b.OntologyRef(tr.Ontology, tr.TermID)
	}
	ann, err := s.commitOp(store, b)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, viewOf(ann))
}

// commitOp routes the commit through the WAL when present.
func (s *server) commitOp(store *core.Store, b *core.Builder) (*core.Annotation, error) {
	if s.durable != nil {
		return s.durable.Commit(b)
	}
	return store.Commit(b)
}

// resolveMark builds a referent from a mark spec (read-only: marks are
// only registered at commit).
func resolveMark(store *core.Store, m markSpec) (*core.Referent, error) {
	switch m.Type {
	case "interval":
		return store.MarkDomainInterval(m.Domain, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "sequence":
		return store.MarkSequenceInterval(m.SeqID, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "region":
		rect, err := rectOf(m.Rect)
		if err != nil {
			return nil, err
		}
		return store.MarkImageRegion(m.ImageID, rect)
	case "clade":
		return store.MarkClade(m.ObjectID, m.Keys...)
	case "subgraph":
		return store.MarkSubgraph(m.ObjectID, m.Keys...)
	case "block":
		return store.MarkAlignmentBlock(m.ObjectID, m.Keys, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "object":
		return store.MarkObject(core.ObjectType(m.ObjectType), m.ObjectID)
	default:
		return nil, fmt.Errorf("%w: unknown mark type %q", core.ErrBadMark, m.Type)
	}
}

func rectOf(coords []float64) (rtree.Rect, error) {
	switch len(coords) {
	case 4:
		return rtree.Rect2D(coords[0], coords[1], coords[2], coords[3]), nil
	case 6:
		return rtree.Rect3D(coords[0], coords[1], coords[2], coords[3], coords[4], coords[5]), nil
	default:
		return rtree.Rect{}, fmt.Errorf("%w: rect wants 4 or 6 coordinates, got %d",
			core.ErrBadMark, len(coords))
	}
}

func (s *server) related(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	rel, err := store.RelatedAnnotations(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	out := make([]annotationView, 0, len(rel))
	for _, ann := range rel {
		out = append(out, viewOf(ann))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) correlated(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	items, err := store.CorrelatedData(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	type item struct {
		Kind        string `json:"kind"`
		Key         string `json:"key"`
		Label       string `json:"label"`
		Description string `json:"description"`
	}
	out := make([]item, 0, len(items))
	for _, it := range items {
		out = append(out, item{
			Kind: it.Node.Kind.String(), Key: it.Node.Key,
			Label: string(it.Label), Description: it.Description,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type searchRequest struct {
	Expr string `json:"expr"`
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	store, _ := s.view()
	// The whole scan runs against one pinned snapshot, cancellable at
	// every evaluation stride.
	anns, err := store.View().SearchContentsCtx(ctx, req.Expr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeErr(w, r, err)
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]annotationView, 0, len(anns))
	for _, ann := range anns {
		out = append(out, viewOf(ann))
	}
	writeJSON(w, http.StatusOK, out)
}

type queryRequest struct {
	Query      string `json:"query"`
	MaxResults int    `json:"maxResults,omitempty"`
}

type queryResponse struct {
	Matches     int              `json:"matches"`
	Order       []string         `json:"order"`
	Annotations []annotationView `json:"annotations,omitempty"`
	Referents   []string         `json:"referents,omitempty"`
	Subgraphs   []subgraphView   `json:"subgraphs,omitempty"`
	Explain     *explainView     `json:"explain,omitempty"`
}

// explainView surfaces the planner's decisions (POST /api/query with
// ?explain=1): the chosen order, the per-variable sub-query sizes and
// cost estimates, each variable's join strategy, and the join work the
// plan actually performed.
type explainView struct {
	Order           []string           `json:"order"`
	CandidateCounts map[string]int     `json:"candidateCounts"`
	Costs           map[string]float64 `json:"costs"`
	Strategies      map[string]string  `json:"strategies"`
	BindingsTried   int                `json:"bindingsTried"`
}

type subgraphView struct {
	Nodes []string `json:"nodes"`
	Edges int      `json:"edges"`
}

func (s *server) runQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	_, proc := s.view()
	opts := query.DefaultOptions
	opts.MaxResults = req.MaxResults
	res, err := proc.ExecuteCtx(ctx, req.Query, opts)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp := queryResponse{Matches: res.Stats.Matches, Order: res.Stats.Order}
	if v := r.URL.Query().Get("explain"); v == "1" || v == "true" {
		resp.Explain = &explainView{
			Order:           res.Stats.Order,
			CandidateCounts: res.Stats.CandidateCounts,
			Costs:           res.Stats.Costs,
			Strategies:      res.Stats.Strategies,
			BindingsTried:   res.Stats.BindingsTried,
		}
	}
	for _, ann := range res.Annotations {
		resp.Annotations = append(resp.Annotations, viewOf(ann))
	}
	for _, ref := range res.Referents {
		resp.Referents = append(resp.Referents, ref.String())
	}
	for _, sg := range res.Subgraphs {
		sv := subgraphView{Edges: sg.EdgeCount()}
		for _, n := range sg.Nodes {
			sv.Nodes = append(sv.Nodes, n.String())
		}
		resp.Subgraphs = append(resp.Subgraphs, sv)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) referents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	domain := q.Get("domain")
	if domain == "" {
		jsonError(w, r, http.StatusBadRequest, "domain parameter required")
		return
	}
	pos, err := strconv.ParseInt(q.Get("pos"), 10, 64)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "pos parameter required")
		return
	}
	store, _ := s.view()
	refs := store.ReferentsAt(domain, pos)
	out := make([]string, 0, len(refs))
	for _, ref := range refs {
		out = append(out, ref.String())
	}
	writeJSON(w, http.StatusOK, out)
}

// objects lists the registered data objects, optionally filtered by type.
func (s *server) objects(w http.ResponseWriter, r *http.Request) {
	typeFilter := r.URL.Query().Get("type")
	type objectView struct {
		Type string `json:"type"`
		ID   string `json:"id"`
	}
	store, _ := s.view()
	out := []objectView{}
	for _, h := range store.ObjectList() {
		if typeFilter != "" && string(h.Type) != typeFilter {
			continue
		}
		out = append(out, objectView{Type: string(h.Type), ID: h.ID})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) snapshot(w http.ResponseWriter, _ *http.Request) {
	store, _ := s.view()
	w.Header().Set("Content-Type", "application/json")
	if err := persist.Write(store, w); err != nil {
		// Headers are gone; best effort.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

// restore loads a persist snapshot (the body is what GET /api/snapshot
// produces) into a fresh store and swaps it in. In durable mode the
// restored state is checkpointed (snapshot + empty WAL) before the
// request is acknowledged; the previous state is discarded either way.
func (s *server) restore(w http.ResponseWriter, r *http.Request) {
	limit := s.opts.MaxRestoreBytes
	if limit <= 0 {
		limit = DefaultMaxRestoreBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	snap, err := persist.Decode(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooBig.Limit))
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// An aborted upload cancels the request context; don't swap in a
	// store the client no longer wants (decoding above fails on a torn
	// body, but a complete body with a gone client lands here).
	if err := r.Context().Err(); err != nil {
		writeErr(w, r, err)
		return
	}
	// The durable restore and the handler's store swap happen under one
	// critical section: were they separate, two concurrent restores could
	// interleave so s.store diverges from durable.Core() permanently.
	s.mu.Lock()
	var store *core.Store
	if s.durable != nil {
		store, err = s.durable.Restore(snap)
	} else {
		store, err = persist.Load(snap)
	}
	if err != nil {
		s.mu.Unlock()
		if errors.Is(err, durable.ErrDegraded) {
			writeErr(w, r, err) // 503 + Retry-After, like any degraded write
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	s.store = store
	s.proc = query.NewProcessor(store)
	s.mu.Unlock()
	s.stats(w, r)
}

// factView is the JSON projection of one derived fact.
type factView struct {
	Rule       string `json:"rule"`
	Source     uint64 `json:"source"`
	TargetKind string `json:"targetKind"`
	TargetKey  string `json:"targetKey"`
	Witness    string `json:"witness"`
}

func viewOfFact(f core.DerivedFact) factView {
	return factView{
		Rule: f.Rule, Source: f.Source,
		TargetKind: f.Target.Kind.String(), TargetKey: f.Target.Key,
		Witness: f.Witness,
	}
}

func factViews(facts []core.DerivedFact) []factView {
	out := make([]factView, 0, len(facts))
	for _, f := range facts {
		out = append(out, viewOfFact(f))
	}
	return out
}

func (s *server) listRules(w http.ResponseWriter, _ *http.Request) {
	store, _ := s.view()
	rules := prop.RulesOf(store)
	if rules == nil {
		rules = []prop.Rule{}
	}
	writeJSON(w, http.StatusOK, rules)
}

func (s *server) addRule(w http.ResponseWriter, r *http.Request) {
	var rule prop.Rule
	if !s.decodeJSON(w, r, &rule) {
		return
	}
	if err := s.addRuleOp(rule); err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, rule)
}

// addRuleOp routes the mutation through the WAL when present.
func (s *server) addRuleOp(rule prop.Rule) error {
	if s.durable != nil {
		return s.durable.AddRule(rule)
	}
	store, _ := s.view()
	return prop.Attach(store).AddRule(rule)
}

func (s *server) deleteRule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.deleteRuleOp(id); err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) deleteRuleOp(id string) error {
	if s.durable != nil {
		return s.durable.DeleteRule(id)
	}
	store, _ := s.view()
	return prop.Attach(store).DeleteRule(id)
}

// provenance traces derived annotations through one annotation: the
// facts it sourced ("derives") and the facts derived onto it
// ("provenance"), each carrying rule + source + witness.
func (s *server) provenance(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	v := store.View()
	onto, err := v.DerivedOnto(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	type provenanceView struct {
		ID         uint64     `json:"id"`
		Epoch      uint64     `json:"epoch,omitempty"`
		Derives    []factView `json:"derives"`
		Provenance []factView `json:"provenance"`
	}
	writeJSON(w, http.StatusOK, provenanceView{
		ID:         id,
		Epoch:      v.DerivedSourceEpoch(id),
		Derives:    factViews(v.DerivedFrom(id)),
		Provenance: factViews(onto),
	})
}

func pathID(r *http.Request) (uint64, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad annotation id %q", core.ErrNoSuchAnnotation, raw)
	}
	return id, nil
}
