// Package httpapi exposes a Graphitti store over HTTP/JSON.
//
// The paper's demonstration is a three-tab GUI; this API is the
// service-shaped equivalent a modern deployment would put behind such a
// front-end. Endpoints map one-to-one onto the tabs:
//
//	annotation tab:  POST /api/annotations, GET /api/objects
//	query tab:       POST /api/search, POST /api/query,
//	                 GET  /api/annotations/{id}/related,
//	                 GET  /api/annotations/{id}/correlated,
//	                 GET  /api/referents
//	admin tab:       GET /api/stats, DELETE /api/annotations/{id},
//	                 GET /api/snapshot, POST /api/restore
//	propagation:     GET/POST /api/rules, DELETE /api/rules/{id},
//	                 GET /api/provenance/{id}
//
// Served over a durable store (NewDurableHandler), mutations are
// write-ahead logged before they are acknowledged, /api/stats grows a
// "durability" section (WAL and compaction counters), and /api/restore
// checkpoints the restored state immediately.
//
// Operational endpoints: GET /healthz (liveness — always 200 while the
// process serves) and GET /readyz (readiness — 503 + Retry-After while
// the store is degraded to read-only after a disk fault; reads keep
// answering 200 throughout). Mutations against a degraded store return
// 503 JSON with Retry-After; POST /api/recover runs the store's Reopen
// path and restores readiness once the directory re-validates. All JSON
// bodies are size-capped (413 beyond the limit).
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/query"
	"graphitti/internal/rtree"
	"graphitti/internal/shard"
	"graphitti/internal/trace"
)

// Options tune the handler.
type Options struct {
	// QueryTimeout bounds the execution of the search and query
	// endpoints; 0 means no server-side limit. Client disconnects cancel
	// execution either way (the request context is plumbed through query
	// and search evaluation).
	QueryTimeout time.Duration
	// MaxBodyBytes caps every JSON request body except the restore
	// upload; oversized requests get 413 instead of an unbounded read.
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxRestoreBytes caps the POST /api/restore snapshot upload.
	// 0 means DefaultMaxRestoreBytes.
	MaxRestoreBytes int64
	// Logger, when set, receives a structured line (with the request ID)
	// for every 5xx response. Nil disables request logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// server flag). Off by default: profiles expose internals.
	EnablePprof bool
	// SlowRequest, when positive, logs a structured line — with the
	// request's full span breakdown — for every request at least this
	// slow (the -slow-request server flag). Needs Logger.
	SlowRequest time.Duration
	// TraceRingSize is the per-shard retention of GET /debug/traces
	// (trace.DefaultRingSize when 0).
	TraceRingSize int
	// TraceSampleEvery retains every Nth request's trace in the rings
	// (every request when 0 or 1). ?trace=1 requests are always retained.
	TraceSampleEvery int
}

const (
	// DefaultMaxBodyBytes bounds mutation/query bodies: far above any
	// legitimate annotation or query, far below a memory-exhaustion
	// payload.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultMaxRestoreBytes bounds snapshot uploads, which carry whole
	// stores.
	DefaultMaxRestoreBytes = 1 << 30
)

// retryAfterSeconds is the Retry-After hint attached to 503 responses:
// long enough for an operator (or orchestrator) to notice /readyz and
// run recovery, short enough that clients re-probe promptly.
const retryAfterSeconds = "10"

// NewHandler returns an http.Handler serving the API for one in-memory
// store. Writes do not survive a restart; see NewDurableHandler.
func NewHandler(s *core.Store) http.Handler {
	return NewHandlerWithOptions(s, Options{})
}

// NewHandlerWithOptions is NewHandler with explicit options.
func NewHandlerWithOptions(s *core.Store, opts Options) http.Handler {
	return newMux(&server{store: s, proc: query.NewProcessor(s), opts: opts})
}

// NewDurableHandler serves a durable store: every mutating endpoint is
// logged-then-acknowledged through d, reads go to the wrapped store.
func NewDurableHandler(d *durable.Store) http.Handler {
	return NewDurableHandlerWithOptions(d, Options{})
}

// NewDurableHandlerWithOptions is NewDurableHandler with explicit options.
func NewDurableHandlerWithOptions(d *durable.Store, opts Options) http.Handler {
	s := d.Core()
	return newMux(&server{store: s, proc: query.NewProcessor(s), durable: d, opts: opts})
}

// NewShardedHandler serves a sharded store (in-memory or durable): every
// endpoint answers over the merged view set, mutations route to their
// home shard, and a degraded shard's 503 names the shard while healthy
// shards keep writing.
func NewShardedHandler(sh *shard.Store) http.Handler {
	return NewShardedHandlerWithOptions(sh, Options{})
}

// NewShardedHandlerWithOptions is NewShardedHandler with explicit options.
func NewShardedHandlerWithOptions(sh *shard.Store, opts Options) http.Handler {
	return newMux(&server{sh: sh, opts: opts})
}

// routeDefs is the single registration table: newMux mounts every entry
// and the middleware conformance test walks the same list, so a route
// can't be added without being counted by the metrics middleware.
var routeDefs = []struct {
	pattern string
	handler func(*server) http.HandlerFunc
}{
	{"GET /healthz", func(s *server) http.HandlerFunc { return s.healthz }},
	{"GET /readyz", func(s *server) http.HandlerFunc { return s.readyz }},
	{"POST /api/recover", func(s *server) http.HandlerFunc { return s.recoverStore }},
	{"GET /api/stats", func(s *server) http.HandlerFunc { return s.stats }},
	{"GET /metrics", func(s *server) http.HandlerFunc { return s.metrics }},
	{"GET /debug/vars", func(s *server) http.HandlerFunc { return s.debugVars }},
	{"GET /debug/traces", func(s *server) http.HandlerFunc { return s.debugTraces }},
	{"GET /api/annotations", func(s *server) http.HandlerFunc { return s.listAnnotations }},
	{"POST /api/annotations", func(s *server) http.HandlerFunc { return s.createAnnotation }},
	{"GET /api/annotations/{id}", func(s *server) http.HandlerFunc { return s.getAnnotation }},
	{"DELETE /api/annotations/{id}", func(s *server) http.HandlerFunc { return s.deleteAnnotation }},
	{"GET /api/annotations/{id}/related", func(s *server) http.HandlerFunc { return s.related }},
	{"GET /api/annotations/{id}/correlated", func(s *server) http.HandlerFunc { return s.correlated }},
	{"POST /api/search", func(s *server) http.HandlerFunc { return s.search }},
	{"POST /api/query", func(s *server) http.HandlerFunc { return s.runQuery }},
	{"GET /api/referents", func(s *server) http.HandlerFunc { return s.referents }},
	{"GET /api/objects", func(s *server) http.HandlerFunc { return s.objects }},
	{"GET /api/snapshot", func(s *server) http.HandlerFunc { return s.snapshot }},
	{"POST /api/restore", func(s *server) http.HandlerFunc { return s.restore }},
	{"GET /api/rules", func(s *server) http.HandlerFunc { return s.listRules }},
	{"POST /api/rules", func(s *server) http.HandlerFunc { return s.addRule }},
	{"DELETE /api/rules/{id}", func(s *server) http.HandlerFunc { return s.deleteRule }},
	{"GET /api/provenance/{id}", func(s *server) http.HandlerFunc { return s.provenance }},
}

func newMux(api *server) http.Handler {
	api.tracer = trace.NewTracer(trace.Options{
		RingSize:    api.opts.TraceRingSize,
		SampleEvery: api.opts.TraceSampleEvery,
	})
	mux := http.NewServeMux()
	for _, def := range routeDefs {
		mux.HandleFunc(def.pattern, def.handler(api))
	}
	if api.opts.EnablePprof {
		mountPprof(mux)
	}
	return api.instrument(mux)
}

type server struct {
	// mu guards store/proc, which /api/restore swaps wholesale; handlers
	// snapshot both via view(). durable and sh are set once and never
	// change; in sharded mode store/proc/durable stay nil (the shard
	// store swaps its pipelines internally).
	mu      sync.RWMutex
	store   *core.Store
	proc    *query.Processor
	durable *durable.Store
	sh      *shard.Store
	opts    Options
	tracer  *trace.Tracer
}

// backend is the read-and-mark surface the handlers share between one
// core store and a sharded deployment. Mutations go through the *Op
// helpers, which pick the WAL/router path.
type backend interface {
	Stats() core.Stats
	Epoch() uint64
	Annotation(uint64) (*core.Annotation, error)
	Annotations() []*core.Annotation
	SearchKeyword(string, bool) []*core.Annotation
	SearchContentsCtx(context.Context, string) ([]*core.Annotation, error)
	RelatedAnnotations(uint64) ([]*core.Annotation, error)
	CorrelatedData(uint64) ([]core.CorrelatedItem, error)
	ReferentsAt(string, int64) []*core.Referent
	ObjectList() []core.ObjectHandle
	NewAnnotation() *core.Builder
	DerivedFrom(uint64) []core.DerivedFact
	DerivedOnto(uint64) ([]core.DerivedFact, error)
	DerivedSourceEpoch(uint64) uint64
	MarkDomainInterval(string, interval.Interval) (*core.Referent, error)
	MarkSequenceInterval(string, interval.Interval) (*core.Referent, error)
	MarkImageRegion(string, rtree.Rect) (*core.Referent, error)
	MarkClade(string, ...string) (*core.Referent, error)
	MarkSubgraph(string, ...string) (*core.Referent, error)
	MarkAlignmentBlock(string, []string, interval.Interval) (*core.Referent, error)
	MarkObject(core.ObjectType, string) (*core.Referent, error)
}

// coreBackend adapts *core.Store to backend: the handful of reads the
// handlers used to reach through a pinned View become store-level calls.
type coreBackend struct{ *core.Store }

func (b coreBackend) Epoch() uint64 { return b.Store.View().Epoch() }
func (b coreBackend) SearchContentsCtx(ctx context.Context, expr string) ([]*core.Annotation, error) {
	return b.Store.View().SearchContentsCtx(ctx, expr)
}
func (b coreBackend) DerivedOnto(id uint64) ([]core.DerivedFact, error) {
	return b.Store.View().DerivedOnto(id)
}
func (b coreBackend) DerivedSourceEpoch(id uint64) uint64 {
	return b.Store.View().DerivedSourceEpoch(id)
}

// view returns the current backend and query processor (nil processor in
// sharded mode: runQuery fans out through the shard store instead).
func (s *server) view() (backend, *query.Processor) {
	if s.sh != nil {
		return s.sh, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return coreBackend{s.store}, s.proc
}

// queryCtx derives the execution context of a search/query request: the
// request's own context (canceled when the client goes away) bounded by
// the configured per-request timeout.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.QueryTimeout)
	}
	return r.Context(), func() {}
}

type errorBody struct {
	Error string `json:"error"`
	// RequestID is the correlation ID the middleware assigned (also in
	// the X-Request-Id response header), so a client-reported failure can
	// be matched to its server log line.
	RequestID string `json:"requestId,omitempty"`
	// Shard names the pipeline that refused a sharded-mode mutation
	// (e.g. the degraded shard behind a 503), so operators can recover
	// that shard while the rest keep writing.
	Shard *int `json:"shard,omitempty"`
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request aborted by the client; there is no official HTTP code.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// jsonError writes a JSON error envelope carrying the request ID.
func jsonError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, RequestID: RequestID(r.Context())})
}

func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, durable.ErrDegraded):
		// The store is read-only until recovery; tell clients when to
		// retry rather than letting them hammer a wedged writer.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusRequestTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, core.ErrNoSuchAnnotation),
		errors.Is(err, core.ErrNoSuchObject),
		errors.Is(err, core.ErrNoSuchReferent),
		errors.Is(err, core.ErrNoSuchOntology),
		errors.Is(err, core.ErrNoSuchTerm),
		errors.Is(err, core.ErrNoSuchSystem):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrBadMark),
		errors.Is(err, core.ErrEmptyAnnotation),
		errors.Is(err, query.ErrSyntax),
		errors.Is(err, prop.ErrBadRule),
		errors.Is(err, shard.ErrCrossShardReferent):
		status = http.StatusBadRequest
	case errors.Is(err, prop.ErrDuplicateRule):
		status = http.StatusConflict
	case errors.Is(err, prop.ErrNoSuchRule):
		status = http.StatusNotFound
	}
	body := errorBody{Error: err.Error(), RequestID: RequestID(r.Context())}
	var se *shard.Error
	if errors.As(err, &se) {
		body.Shard = &se.Shard
	}
	writeJSON(w, status, body)
}

// healthView is the /healthz and /readyz payload: the degradation state
// plus what the server can still do about it. A degraded store serves
// reads but not writes.
type healthView struct {
	Status string `json:"status"` // ok | degraded | closed
	State  string `json:"state"`
	Reads  bool   `json:"reads"`
	Writes bool   `json:"writes"`
	Reason string `json:"reason,omitempty"`
	// DegradedShards lists the pipelines refusing writes in sharded mode.
	// Writes routed to any other shard still succeed, so partial
	// degradation keeps Reads true and most writes flowing even while
	// /readyz reports 503.
	DegradedShards []int `json:"degradedShards,omitempty"`
}

func (s *server) health() healthView {
	if s.sh != nil {
		return s.shardedHealth()
	}
	if s.durable == nil {
		// In-memory mode has no disk to fail.
		return healthView{Status: "ok", State: durable.StateHealthy.String(), Reads: true, Writes: true}
	}
	h := s.durable.Health()
	v := healthView{State: h.State.String(), Reason: h.Reason}
	switch h.State {
	case durable.StateHealthy:
		v.Status, v.Reads, v.Writes = "ok", true, true
	case durable.StateDegraded:
		v.Status, v.Reads = "degraded", true
	case durable.StateClosed:
		v.Status = "closed"
	}
	return v
}

// shardedHealth folds the per-shard states: any degraded shard flips
// readiness (Writes false → /readyz 503) and is named in the reason,
// but reads — and writes routed to healthy shards — keep working.
func (s *server) shardedHealth() healthView {
	v := healthView{Status: "ok", State: durable.StateHealthy.String(), Reads: true, Writes: true}
	for _, h := range s.sh.Health() {
		if h.State == durable.StateHealthy {
			continue
		}
		v.DegradedShards = append(v.DegradedShards, h.Shard)
		v.Status, v.State, v.Writes = "degraded", durable.StateDegraded.String(), false
		if h.State == durable.StateClosed {
			v.Status, v.State = "closed", durable.StateClosed.String()
		}
		part := fmt.Sprintf("shard %d %s", h.Shard, h.State)
		if h.Reason != "" {
			part += ": " + h.Reason
		}
		if v.Reason != "" {
			v.Reason += "; "
		}
		v.Reason += part
	}
	return v
}

// healthz is liveness: the process is up and serving HTTP, so always
// 200 — a degraded store is still alive (and answering reads), and
// restarting the process would not repair the disk. The state rides
// along for operators.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// readyz is readiness for full read-write service: 503 + Retry-After
// while degraded or closed, so load balancers stop routing writes; the
// body says reads are still served. POST /api/recover flips it back.
func (s *server) readyz(w http.ResponseWriter, _ *http.Request) {
	v := s.health()
	if v.Writes {
		writeJSON(w, http.StatusOK, v)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, http.StatusServiceUnavailable, v)
}

// recoverStore runs the durable store's explicit recovery path —
// re-validating the data directory and probing the log — and on success
// swaps the reloaded core in, exactly as restore does.
func (s *server) recoverStore(w http.ResponseWriter, r *http.Request) {
	if s.sh != nil {
		s.recoverShards(w, r)
		return
	}
	if s.durable == nil {
		jsonError(w, r, http.StatusBadRequest, "recover requires a durable store (-data-dir)")
		return
	}
	s.mu.Lock()
	store, err := s.durable.Reopen()
	if err != nil {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterSeconds)
		jsonError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.store = store
	s.proc = query.NewProcessor(store)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.health())
}

// recoverShards reopens one shard (?shard=k) or every degraded shard.
// Each shard recovers independently; the first failure is reported with
// its shard ID and a Retry-After, like any degraded-shard write.
func (s *server) recoverShards(w http.ResponseWriter, r *http.Request) {
	if !s.sh.Durable() {
		jsonError(w, r, http.StatusBadRequest, "recover requires a durable store (-data-dir)")
		return
	}
	var targets []int
	if raw := r.URL.Query().Get("shard"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil || k < 0 || k >= s.sh.NumShards() {
			jsonError(w, r, http.StatusBadRequest,
				fmt.Sprintf("bad shard %q: want 0..%d", raw, s.sh.NumShards()-1))
			return
		}
		targets = []int{k}
	} else {
		targets = s.sh.DegradedShards()
	}
	for _, k := range targets {
		if err := s.sh.Reopen(k); err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds)
			body := errorBody{Error: err.Error(), RequestID: RequestID(r.Context())}
			var se *shard.Error
			if errors.As(err, &se) {
				body.Shard = &se.Shard
			}
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.health())
}

// decodeJSON decodes a size-capped JSON request body into v, writing
// the HTTP error itself on failure: 413 when the cap is hit, 400 for
// malformed JSON.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	limit := s.opts.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			jsonError(w, r, http.StatusBadRequest, "bad JSON: "+err.Error())
		}
		return false
	}
	return true
}

// statsView is the /api/stats payload: the store's component sizes plus
// the published view epoch and, in durable mode, the durability counters.
type statsView struct {
	core.Stats
	Epoch      uint64         `json:"epoch"`
	Durability *durable.Stats `json:"durability,omitempty"`
	Sharding   *shardingView  `json:"sharding,omitempty"`
}

// shardingView is the sharded-mode /api/stats section: the shard count,
// the inter-shard channel counters, and (durable mode) each shard's
// durability stats indexed by shard.
type shardingView struct {
	Shards            int             `json:"shards"`
	CrossShardCommits uint64          `json:"crossShardCommits"`
	DeltaSeq          uint64          `json:"deltaSeq"`
	Durability        []durable.Stats `json:"durability,omitempty"`
	// Load is each shard's load profile: mutation count, writer busy
	// time, and the top routing keys by estimated mutation count — the
	// signal for the "diagnose a slow shard" runbook in OPERATIONS.md.
	Load []shard.ShardLoad `json:"load,omitempty"`
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	store, _ := s.view()
	out := statsView{Stats: store.Stats(), Epoch: store.Epoch()}
	if s.durable != nil {
		ds := s.durable.Stats()
		out.Durability = &ds
	}
	if s.sh != nil {
		out.Sharding = &shardingView{
			Shards:            s.sh.NumShards(),
			CrossShardCommits: s.sh.CrossShardCommits(),
			DeltaSeq:          s.sh.DeltaSeq(),
			Durability:        s.sh.DurabilityStats(),
			Load:              s.sh.LoadStats(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// annotationView is the JSON projection of an annotation.
type annotationView struct {
	ID       uint64         `json:"id"`
	Creator  string         `json:"creator"`
	Date     string         `json:"date"`
	Title    string         `json:"title,omitempty"`
	Terms    []core.TermRef `json:"terms,omitempty"`
	Referent []uint64       `json:"referents,omitempty"`
	XML      string         `json:"xml"`
}

func viewOf(ann *core.Annotation) annotationView {
	return annotationView{
		ID:       ann.ID,
		Creator:  ann.DC.First("creator"),
		Date:     ann.DC.First("date"),
		Title:    ann.DC.First("title"),
		Terms:    ann.Terms,
		Referent: ann.ReferentIDs,
		XML:      ann.Content.String(),
	}
}

func (s *server) listAnnotations(w http.ResponseWriter, r *http.Request) {
	store, _ := s.view()
	keyword := r.URL.Query().Get("keyword")
	var out []annotationView
	if keyword != "" {
		for _, ann := range store.SearchKeyword(keyword, true) {
			out = append(out, viewOf(ann))
		}
	} else {
		for _, ann := range store.Annotations() {
			out = append(out, viewOf(ann))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) getAnnotation(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	ann, err := store.Annotation(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(ann))
}

func (s *server) deleteAnnotation(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if err := s.deleteAnnotationOp(id); err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// deleteAnnotationOp routes the mutation through the router/WAL when
// present.
func (s *server) deleteAnnotationOp(id uint64) error {
	switch {
	case s.sh != nil:
		return s.sh.DeleteAnnotation(id)
	case s.durable != nil:
		return s.durable.DeleteAnnotation(id)
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.store.DeleteAnnotation(id)
	}
}

// markSpec describes one referent in an annotation request.
type markSpec struct {
	Type string `json:"type"` // interval|sequence|region|clade|subgraph|block|object
	// interval / sequence / block
	Domain string `json:"domain,omitempty"`
	SeqID  string `json:"seqId,omitempty"`
	Lo     int64  `json:"lo,omitempty"`
	Hi     int64  `json:"hi,omitempty"`
	// region
	ImageID string    `json:"imageId,omitempty"`
	Rect    []float64 `json:"rect,omitempty"` // x0,y0,x1,y1 or 3-D with 6
	// clade / subgraph / block rows
	ObjectID string   `json:"objectId,omitempty"`
	Keys     []string `json:"keys,omitempty"`
	// object
	ObjectType string `json:"objectType,omitempty"`
}

type annotationRequest struct {
	Creator string            `json:"creator"`
	Date    string            `json:"date"`
	Title   string            `json:"title,omitempty"`
	Body    string            `json:"body,omitempty"`
	Tags    map[string]string `json:"tags,omitempty"`
	Marks   []markSpec        `json:"marks"`
	Terms   []core.TermRef    `json:"terms,omitempty"`
}

func (s *server) createAnnotation(w http.ResponseWriter, r *http.Request) {
	var req annotationRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	store, _ := s.view()
	// The middleware's root span rides the builder down the commit path
	// (router → shard writer → commit → propagation → WAL flush).
	b := store.NewAnnotation().WithSpan(trace.FromContext(r.Context())).
		Creator(req.Creator).Date(req.Date).Body(req.Body)
	if req.Title != "" {
		b.Title(req.Title)
	}
	for name, val := range req.Tags {
		b.Tag(name, val)
	}
	for i, m := range req.Marks {
		ref, err := resolveMark(store, m)
		if err != nil {
			writeErr(w, r, fmt.Errorf("mark %d: %w", i, err))
			return
		}
		b.Refer(ref)
	}
	for _, tr := range req.Terms {
		b.OntologyRef(tr.Ontology, tr.TermID)
	}
	ann, err := s.commitOp(b)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, viewOf(ann))
}

// commitOp routes the commit through the router/WAL when present.
func (s *server) commitOp(b *core.Builder) (*core.Annotation, error) {
	switch {
	case s.sh != nil:
		return s.sh.Commit(b)
	case s.durable != nil:
		return s.durable.Commit(b)
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.store.Commit(b)
	}
}

// resolveMark builds a referent from a mark spec (read-only: marks are
// only registered at commit).
func resolveMark(store backend, m markSpec) (*core.Referent, error) {
	switch m.Type {
	case "interval":
		return store.MarkDomainInterval(m.Domain, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "sequence":
		return store.MarkSequenceInterval(m.SeqID, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "region":
		rect, err := rectOf(m.Rect)
		if err != nil {
			return nil, err
		}
		return store.MarkImageRegion(m.ImageID, rect)
	case "clade":
		return store.MarkClade(m.ObjectID, m.Keys...)
	case "subgraph":
		return store.MarkSubgraph(m.ObjectID, m.Keys...)
	case "block":
		return store.MarkAlignmentBlock(m.ObjectID, m.Keys, interval.Interval{Lo: m.Lo, Hi: m.Hi})
	case "object":
		return store.MarkObject(core.ObjectType(m.ObjectType), m.ObjectID)
	default:
		return nil, fmt.Errorf("%w: unknown mark type %q", core.ErrBadMark, m.Type)
	}
}

func rectOf(coords []float64) (rtree.Rect, error) {
	switch len(coords) {
	case 4:
		return rtree.Rect2D(coords[0], coords[1], coords[2], coords[3]), nil
	case 6:
		return rtree.Rect3D(coords[0], coords[1], coords[2], coords[3], coords[4], coords[5]), nil
	default:
		return rtree.Rect{}, fmt.Errorf("%w: rect wants 4 or 6 coordinates, got %d",
			core.ErrBadMark, len(coords))
	}
}

func (s *server) related(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	rel, err := store.RelatedAnnotations(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	out := make([]annotationView, 0, len(rel))
	for _, ann := range rel {
		out = append(out, viewOf(ann))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) correlated(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	items, err := store.CorrelatedData(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	type item struct {
		Kind        string `json:"kind"`
		Key         string `json:"key"`
		Label       string `json:"label"`
		Description string `json:"description"`
	}
	out := make([]item, 0, len(items))
	for _, it := range items {
		out = append(out, item{
			Kind: it.Node.Kind.String(), Key: it.Node.Key,
			Label: string(it.Label), Description: it.Description,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type searchRequest struct {
	Expr string `json:"expr"`
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	store, _ := s.view()
	// The whole scan runs against one pinned snapshot per shard,
	// cancellable at every evaluation stride.
	anns, err := store.SearchContentsCtx(ctx, req.Expr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeErr(w, r, err)
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]annotationView, 0, len(anns))
	for _, ann := range anns {
		out = append(out, viewOf(ann))
	}
	writeJSON(w, http.StatusOK, out)
}

type queryRequest struct {
	Query      string `json:"query"`
	MaxResults int    `json:"maxResults,omitempty"`
}

type queryResponse struct {
	Matches     int              `json:"matches"`
	Order       []string         `json:"order"`
	Annotations []annotationView `json:"annotations,omitempty"`
	Referents   []string         `json:"referents,omitempty"`
	Subgraphs   []subgraphView   `json:"subgraphs,omitempty"`
	Explain     *explainView     `json:"explain,omitempty"`
}

// explainView surfaces the planner's decisions (POST /api/query with
// ?explain=1): the chosen order, the per-variable sub-query sizes and
// cost estimates, each variable's join strategy, and the join work the
// plan actually performed.
type explainView struct {
	Order           []string           `json:"order"`
	CandidateCounts map[string]int     `json:"candidateCounts"`
	Costs           map[string]float64 `json:"costs"`
	Strategies      map[string]string  `json:"strategies"`
	BindingsTried   int                `json:"bindingsTried"`
}

type subgraphView struct {
	Nodes []string `json:"nodes"`
	Edges int      `json:"edges"`
}

func (s *server) runQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	opts := query.DefaultOptions
	opts.MaxResults = req.MaxResults
	var res *query.Result
	var err error
	if s.sh != nil {
		res, err = s.sh.Query(ctx, req.Query, opts)
	} else {
		_, proc := s.view()
		res, err = proc.ExecuteCtx(ctx, req.Query, opts)
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp := queryResponse{Matches: res.Stats.Matches, Order: res.Stats.Order}
	if v := r.URL.Query().Get("explain"); v == "1" || v == "true" {
		resp.Explain = &explainView{
			Order:           res.Stats.Order,
			CandidateCounts: res.Stats.CandidateCounts,
			Costs:           res.Stats.Costs,
			Strategies:      res.Stats.Strategies,
			BindingsTried:   res.Stats.BindingsTried,
		}
	}
	for _, ann := range res.Annotations {
		resp.Annotations = append(resp.Annotations, viewOf(ann))
	}
	for _, ref := range res.Referents {
		resp.Referents = append(resp.Referents, ref.String())
	}
	for _, sg := range res.Subgraphs {
		sv := subgraphView{Edges: sg.EdgeCount()}
		for _, n := range sg.Nodes {
			sv.Nodes = append(sv.Nodes, n.String())
		}
		resp.Subgraphs = append(resp.Subgraphs, sv)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) referents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	domain := q.Get("domain")
	if domain == "" {
		jsonError(w, r, http.StatusBadRequest, "domain parameter required")
		return
	}
	pos, err := strconv.ParseInt(q.Get("pos"), 10, 64)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "pos parameter required")
		return
	}
	store, _ := s.view()
	refs := store.ReferentsAt(domain, pos)
	out := make([]string, 0, len(refs))
	for _, ref := range refs {
		out = append(out, ref.String())
	}
	writeJSON(w, http.StatusOK, out)
}

// objects lists the registered data objects, optionally filtered by type.
func (s *server) objects(w http.ResponseWriter, r *http.Request) {
	typeFilter := r.URL.Query().Get("type")
	type objectView struct {
		Type string `json:"type"`
		ID   string `json:"id"`
	}
	store, _ := s.view()
	out := []objectView{}
	for _, h := range store.ObjectList() {
		if typeFilter != "" && string(h.Type) != typeFilter {
			continue
		}
		out = append(out, objectView{Type: string(h.Type), ID: h.ID})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) snapshot(w http.ResponseWriter, _ *http.Request) {
	var err error
	w.Header().Set("Content-Type", "application/json")
	if s.sh != nil {
		var snap *persist.Snapshot
		if snap, err = s.sh.Export(); err == nil {
			err = persist.WriteSnapshot(snap, w)
		}
	} else {
		s.mu.RLock()
		store := s.store
		s.mu.RUnlock()
		err = persist.Write(store, w)
	}
	if err != nil {
		// Headers are gone; best effort.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

// restore loads a persist snapshot (the body is what GET /api/snapshot
// produces) into a fresh store and swaps it in. In durable mode the
// restored state is checkpointed (snapshot + empty WAL) before the
// request is acknowledged; the previous state is discarded either way.
func (s *server) restore(w http.ResponseWriter, r *http.Request) {
	limit := s.opts.MaxRestoreBytes
	if limit <= 0 {
		limit = DefaultMaxRestoreBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	snap, err := persist.Decode(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("snapshot exceeds %d bytes", tooBig.Limit))
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// An aborted upload cancels the request context; don't swap in a
	// store the client no longer wants (decoding above fails on a torn
	// body, but a complete body with a gone client lands here).
	if err := r.Context().Err(); err != nil {
		writeErr(w, r, err)
		return
	}
	if s.sh != nil {
		// The shard store partitions the snapshot and swaps its
		// pipelines internally, under the inter-shard channel.
		if err := s.sh.Restore(snap); err != nil {
			if errors.Is(err, durable.ErrDegraded) {
				writeErr(w, r, err) // 503 + Retry-After, shard named
				return
			}
			jsonError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		s.stats(w, r)
		return
	}
	// The durable restore and the handler's store swap happen under one
	// critical section: were they separate, two concurrent restores could
	// interleave so s.store diverges from durable.Core() permanently.
	s.mu.Lock()
	var store *core.Store
	if s.durable != nil {
		store, err = s.durable.Restore(snap)
	} else {
		store, err = persist.Load(snap)
	}
	if err != nil {
		s.mu.Unlock()
		if errors.Is(err, durable.ErrDegraded) {
			writeErr(w, r, err) // 503 + Retry-After, like any degraded write
			return
		}
		jsonError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	s.store = store
	s.proc = query.NewProcessor(store)
	s.mu.Unlock()
	s.stats(w, r)
}

// factView is the JSON projection of one derived fact.
type factView struct {
	Rule       string `json:"rule"`
	Source     uint64 `json:"source"`
	TargetKind string `json:"targetKind"`
	TargetKey  string `json:"targetKey"`
	Witness    string `json:"witness"`
}

func viewOfFact(f core.DerivedFact) factView {
	return factView{
		Rule: f.Rule, Source: f.Source,
		TargetKind: f.Target.Kind.String(), TargetKey: f.Target.Key,
		Witness: f.Witness,
	}
}

func factViews(facts []core.DerivedFact) []factView {
	out := make([]factView, 0, len(facts))
	for _, f := range facts {
		out = append(out, viewOfFact(f))
	}
	return out
}

func (s *server) listRules(w http.ResponseWriter, _ *http.Request) {
	var rules []prop.Rule
	if s.sh != nil {
		rules = s.sh.Rules()
	} else {
		s.mu.RLock()
		store := s.store
		s.mu.RUnlock()
		rules = prop.RulesOf(store)
	}
	if rules == nil {
		rules = []prop.Rule{}
	}
	writeJSON(w, http.StatusOK, rules)
}

func (s *server) addRule(w http.ResponseWriter, r *http.Request) {
	var rule prop.Rule
	if !s.decodeJSON(w, r, &rule) {
		return
	}
	if err := s.addRuleOp(rule); err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, rule)
}

// addRuleOp routes the mutation through the router/WAL when present
// (sharded mode broadcasts the rule to every shard).
func (s *server) addRuleOp(rule prop.Rule) error {
	switch {
	case s.sh != nil:
		return s.sh.AddRule(rule)
	case s.durable != nil:
		return s.durable.AddRule(rule)
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		return prop.Attach(s.store).AddRule(rule)
	}
}

func (s *server) deleteRule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.deleteRuleOp(id); err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) deleteRuleOp(id string) error {
	switch {
	case s.sh != nil:
		return s.sh.DeleteRule(id)
	case s.durable != nil:
		return s.durable.DeleteRule(id)
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		return prop.Attach(s.store).DeleteRule(id)
	}
}

// provenance traces derived annotations through one annotation: the
// facts it sourced ("derives") and the facts derived onto it
// ("provenance"), each carrying rule + source + witness.
func (s *server) provenance(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	store, _ := s.view()
	onto, err := store.DerivedOnto(id)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	type provenanceView struct {
		ID         uint64     `json:"id"`
		Epoch      uint64     `json:"epoch,omitempty"`
		Derives    []factView `json:"derives"`
		Provenance []factView `json:"provenance"`
	}
	writeJSON(w, http.StatusOK, provenanceView{
		ID:         id,
		Epoch:      store.DerivedSourceEpoch(id),
		Derives:    factViews(store.DerivedFrom(id)),
		Provenance: factViews(onto),
	})
}

func pathID(r *http.Request) (uint64, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad annotation id %q", core.ErrNoSuchAnnotation, raw)
	}
	return id, nil
}
