package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/persist"
	"graphitti/internal/workload"
)

// fetch returns a response body, failing the test on transport errors.
func fetch(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

const parityQuery = `{"query":"select contents where { ?a isa annotation ; contains \"protease\" . }"}`

// stripEpoch decodes a /api/stats body and drops the per-process view
// epoch so stats comparisons cover only logical state.
func stripEpoch(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding stats %s: %v", body, err)
	}
	delete(m, "epoch")
	return m
}

// TestSnapshotRestoreRoundTrip drives the full persistence loop through
// the HTTP layer: export via GET /api/snapshot, import via POST
// /api/restore into a server seeded with a different store, and require
// identical /api/stats and /api/query answers afterwards.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src, _ := newTestServer(t)

	// A second server with a different (smaller) study: restore must
	// replace this state entirely.
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 5
	cfg.Seed = 99
	other, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := httptest.NewServer(NewHandler(other.Store))
	t.Cleanup(dst.Close)

	code, wantStats := fetch(t, "GET", src.URL+"/api/stats", nil)
	if code != 200 {
		t.Fatalf("source stats: %d", code)
	}
	code, wantQuery := fetch(t, "POST", src.URL+"/api/query", []byte(parityQuery))
	if code != 200 {
		t.Fatalf("source query: %d (%s)", code, wantQuery)
	}

	code, snap := fetch(t, "GET", src.URL+"/api/snapshot", nil)
	if code != 200 {
		t.Fatalf("snapshot: %d", code)
	}
	if code, body := fetch(t, "POST", dst.URL+"/api/restore", snap); code != 200 {
		t.Fatalf("restore: %d (%s)", code, body)
	}

	code, gotStats := fetch(t, "GET", dst.URL+"/api/stats", nil)
	if code != 200 {
		t.Fatalf("restored stats: %d", code)
	}
	// The view epoch is a per-process publish counter, not logical state;
	// replaying a snapshot publishes a different number of views.
	if got, want := stripEpoch(t, gotStats), stripEpoch(t, wantStats); !reflect.DeepEqual(got, want) {
		t.Fatalf("stats after restore:\n got %v\nwant %v", got, want)
	}
	code, gotQuery := fetch(t, "POST", dst.URL+"/api/query", []byte(parityQuery))
	if code != 200 {
		t.Fatalf("restored query: %d", code)
	}
	if !reflect.DeepEqual(gotQuery, wantQuery) {
		t.Fatalf("query after restore:\n got %s\nwant %s", gotQuery, wantQuery)
	}

	if code, body := fetch(t, "POST", dst.URL+"/api/restore", []byte("{nonsense")); code != 400 {
		t.Fatalf("bad restore body: %d (%s)", code, body)
	}
}

// TestDurableHandler exercises the durable-mode API: mutations are
// logged, /api/stats exposes durability counters, and a reopened data
// directory serves the same state.
func TestDurableHandler(t *testing.T) {
	dir := t.TempDir()
	d, err := durable.Open(dir, durable.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewDurableHandler(d))

	// Seed via the restore endpoint, then mutate via the API.
	study, err := workload.Influenza(workload.InfluenzaConfig{
		Seed: 3, Segments: 4, SeqsPerSeg: 2, SeqLen: 400, Annotations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := persist.Write(study.Store, &buf); err != nil {
		t.Fatal(err)
	}
	if code, body := fetch(t, "POST", ts.URL+"/api/restore", buf.Bytes()); code != 200 {
		t.Fatalf("restore into durable: %d (%s)", code, body)
	}

	var stats struct {
		core.Stats
		Durability *durable.Stats `json:"durability"`
	}
	if code := getJSON(t, ts.URL+"/api/stats", &stats); code != 200 {
		t.Fatal("stats failed")
	}
	if stats.Durability == nil {
		t.Fatal("durable stats missing from /api/stats")
	}
	if stats.Durability.SnapshotSeq == 0 {
		t.Fatalf("restore did not checkpoint: %+v", stats.Durability)
	}

	// A mutation through the API must reach the log.
	seqID := study.SequenceIDs[0]
	code := postJSON(t, ts.URL+"/api/annotations", map[string]interface{}{
		"creator": "api-user", "date": "2026-07-29", "body": "durable via http",
		"marks": []map[string]interface{}{
			{"type": "sequence", "seqId": seqID, "lo": 1, "hi": 20},
		},
	}, nil)
	if code != 201 {
		t.Fatalf("create annotation: %d", code)
	}
	preStats := d.Core().Stats()
	ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open(dir, durable.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Core().Stats(); got != preStats {
		t.Fatalf("reopened store differs:\n got %+v\nwant %+v", got, preStats)
	}
	if got := d2.Core().SearchKeyword("durable", true); len(got) != 1 {
		t.Fatalf("API-committed annotation did not survive reopen (found %d)", len(got))
	}
}
