package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/persist"
	"graphitti/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Store) {
	t.Helper()
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 30
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(study.Store))
	t.Cleanup(ts.Close)
	return ts, study.Store
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStats(t *testing.T) {
	ts, store := newTestServer(t)
	var stats core.Stats
	if code := getJSON(t, ts.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats != store.Stats() {
		t.Fatalf("stats = %+v, want %+v", stats, store.Stats())
	}
}

func TestListAndGetAnnotations(t *testing.T) {
	ts, store := newTestServer(t)
	var list []map[string]interface{}
	if code := getJSON(t, ts.URL+"/api/annotations", &list); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(list) != store.Stats().Annotations {
		t.Fatalf("listed %d, store has %d", len(list), store.Stats().Annotations)
	}
	// Keyword filter.
	var filtered []map[string]interface{}
	if code := getJSON(t, ts.URL+"/api/annotations?keyword=protease", &filtered); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(filtered) == 0 || len(filtered) >= len(list) {
		t.Fatalf("keyword filter returned %d of %d", len(filtered), len(list))
	}
	// Single annotation.
	var one map[string]interface{}
	if code := getJSON(t, ts.URL+"/api/annotations/1", &one); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if one["id"].(float64) != 1 {
		t.Fatalf("id = %v", one["id"])
	}
	if !strings.Contains(one["xml"].(string), "<annotation") {
		t.Fatal("xml missing")
	}
	// Missing annotation -> 404.
	if code := getJSON(t, ts.URL+"/api/annotations/99999", nil); code != 404 {
		t.Fatalf("missing annotation status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/annotations/not-a-number", nil); code != 404 {
		t.Fatalf("bad id status = %d", code)
	}
}

func TestCreateAndDeleteAnnotation(t *testing.T) {
	ts, store := newTestServer(t)
	before := store.Stats().Annotations
	req := map[string]interface{}{
		"creator": "http-user",
		"date":    "2008-04-07",
		"title":   "posted over HTTP",
		"body":    "protease-ish observation",
		"tags":    map[string]string{"via": "httpapi"},
		"marks": []map[string]interface{}{
			{"type": "interval", "domain": "segment1", "lo": 10, "hi": 90},
			{"type": "clade", "objectId": "H5N1-phylogeny", "keys": []string{"duck", "chicken"}},
		},
		"terms": []map[string]string{{"Ontology": "go", "TermID": "protease"}},
	}
	var created map[string]interface{}
	if code := postJSON(t, ts.URL+"/api/annotations", req, &created); code != 201 {
		t.Fatalf("create status = %d", code)
	}
	if store.Stats().Annotations != before+1 {
		t.Fatal("annotation not committed")
	}
	id := uint64(created["id"].(float64))
	xml := created["xml"].(string)
	for _, want := range []string{"http-user", `kind="clade"`, "<via>httpapi</via>"} {
		if !strings.Contains(xml, want) {
			t.Fatalf("created xml missing %q:\n%s", want, xml)
		}
	}
	// Delete it.
	delReq, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/api/annotations/%d", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if store.Stats().Annotations != before {
		t.Fatal("annotation not deleted")
	}
	// Bad mark -> 400.
	bad := map[string]interface{}{
		"creator": "x", "date": "2008-01-01",
		"marks": []map[string]interface{}{{"type": "interval", "domain": "segment1", "lo": 90, "hi": 10}},
	}
	if code := postJSON(t, ts.URL+"/api/annotations", bad, nil); code != 400 {
		t.Fatalf("bad mark status = %d", code)
	}
	// Unknown mark type -> 400.
	bad2 := map[string]interface{}{
		"creator": "x", "date": "2008-01-01",
		"marks": []map[string]interface{}{{"type": "hologram"}},
	}
	if code := postJSON(t, ts.URL+"/api/annotations", bad2, nil); code != 400 {
		t.Fatalf("unknown mark status = %d", code)
	}
	// Bad JSON -> 400.
	resp2, err := http.Post(ts.URL+"/api/annotations", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("bad json status = %d", resp2.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []map[string]interface{}
	code := postJSON(t, ts.URL+"/api/search",
		map[string]string{"expr": "contains(/annotation/body, 'protease')"}, &out)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out) == 0 {
		t.Fatal("no hits")
	}
	if code := postJSON(t, ts.URL+"/api/search", map[string]string{"expr": "((("}, nil); code != 400 {
		t.Fatalf("bad expr status = %d", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out queryResponse
	code := postJSON(t, ts.URL+"/api/query", map[string]interface{}{
		"query": `select contents where { ?a isa annotation ; contains "protease" . }`,
	}, &out)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Matches == 0 || len(out.Annotations) == 0 {
		t.Fatalf("response = %+v", out)
	}
	// Max results respected.
	var capped queryResponse
	code = postJSON(t, ts.URL+"/api/query", map[string]interface{}{
		"query":      `select contents where { ?a isa annotation . }`,
		"maxResults": 2,
	}, &capped)
	if code != 200 || capped.Matches != 2 {
		t.Fatalf("capped = %+v (code %d)", capped, code)
	}
	// Syntax error -> 400.
	if code := postJSON(t, ts.URL+"/api/query", map[string]string{"query": "select nothing"}, nil); code != 400 {
		t.Fatalf("bad query status = %d", code)
	}
}

func TestQueryExplain(t *testing.T) {
	ts, _ := newTestServer(t)
	req := map[string]interface{}{
		"query": `select contents where {
  ?a isa annotation ; contains "protease" .
  ?r isa referent ; kind interval .
  ?a annotates ?r .
}`,
	}
	// Without the arg, no explain block.
	var plain queryResponse
	if code := postJSON(t, ts.URL+"/api/query", req, &plain); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if plain.Explain != nil {
		t.Fatalf("explain block present without ?explain=1: %+v", plain.Explain)
	}
	// With it, the planner's decisions surface.
	var out queryResponse
	if code := postJSON(t, ts.URL+"/api/query?explain=1", req, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Explain == nil {
		t.Fatal("no explain block in ?explain=1 response")
	}
	ex := out.Explain
	if len(ex.Order) != 2 || len(ex.CandidateCounts) != 2 || len(ex.Costs) != 2 || len(ex.Strategies) != 2 {
		t.Fatalf("incomplete explain block: %+v", ex)
	}
	semis := 0
	for _, strat := range ex.Strategies {
		if strings.HasPrefix(strat, "semi-join(") {
			semis++
		}
	}
	if semis != 1 {
		t.Fatalf("expected one semi-join step, strategies = %v", ex.Strategies)
	}
	if ex.BindingsTried == 0 {
		t.Fatalf("bindingsTried missing: %+v", ex)
	}
	if plain.Matches != out.Matches {
		t.Fatalf("explain changed results: %d vs %d", out.Matches, plain.Matches)
	}
}

func TestReferentsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var refs []string
	// Planted protease chain starts at [0,50) on segment1.
	if code := getJSON(t, ts.URL+"/api/referents?domain=segment1&pos=10", &refs); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(refs) == 0 {
		t.Fatal("no referents at a planted position")
	}
	if code := getJSON(t, ts.URL+"/api/referents?pos=10", nil); code != 400 {
		t.Fatalf("missing domain status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/referents?domain=segment1", nil); code != 400 {
		t.Fatalf("missing pos status = %d", code)
	}
}

func TestRelatedAndCorrelatedEndpoints(t *testing.T) {
	ts, store := newTestServer(t)
	// Create two annotations sharing a mark so "related" is non-empty.
	m1, err := store.MarkDomainInterval("segment1", span(500, 600))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := store.Commit(store.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := store.MarkDomainInterval("segment1", span(500, 600))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Commit(store.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2)); err != nil {
		t.Fatal(err)
	}
	var rel []map[string]interface{}
	if code := getJSON(t, fmt.Sprintf("%s/api/annotations/%d/related", ts.URL, a1.ID), &rel); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(rel) == 0 {
		t.Fatal("no related annotations")
	}
	var corr []map[string]interface{}
	if code := getJSON(t, fmt.Sprintf("%s/api/annotations/%d/correlated", ts.URL, a1.ID), &corr); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(corr) == 0 {
		t.Fatal("no correlated items")
	}
}

func TestObjectsEndpoint(t *testing.T) {
	ts, store := newTestServer(t)
	var all []map[string]string
	if code := getJSON(t, ts.URL+"/api/objects", &all); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(all) != len(store.ObjectList()) {
		t.Fatalf("objects = %d, want %d", len(all), len(store.ObjectList()))
	}
	var trees []map[string]string
	if code := getJSON(t, ts.URL+"/api/objects?type=phylo_trees", &trees); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(trees) != 1 || trees[0]["id"] != "H5N1-phylogeny" {
		t.Fatalf("tree objects = %v", trees)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	ts, store := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	restored, err := persist.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != store.Stats() {
		t.Fatalf("snapshot stats = %+v, want %+v", restored.Stats(), store.Stats())
	}
}

func span(lo, hi int64) interval.Interval { return interval.Interval{Lo: lo, Hi: hi} }
