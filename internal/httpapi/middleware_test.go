package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphitti/internal/core"
	"graphitti/internal/obs"
	"graphitti/internal/workload"
)

// jsonDecode strictly decodes one JSON value from r.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// smallStore builds a tiny influenza study for servers the shared
// newTestServer helper doesn't fit.
func smallStore(t *testing.T) *core.Store {
	t.Helper()
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 3
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study.Store
}

var (
	reReqSample = regexp.MustCompile(`^graphitti_http_requests_total\{(.*)\} (\S+)$`)
	reDurSample = regexp.MustCompile(`^graphitti_http_request_duration_seconds_count\{(.*)\} (\S+)$`)
	reRouteLbl  = regexp.MustCompile(`route="([^"]*)"`)
)

// routeMetricSnapshot reads the process registry and returns, per route
// label, the request-counter total (summed over method/status) and the
// latency-histogram sample count.
func routeMetricSnapshot(t *testing.T) (reqs, durs map[string]float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	reqs = make(map[string]float64)
	durs = make(map[string]float64)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, spec := range []struct {
			re   *regexp.Regexp
			dest map[string]float64
		}{{reReqSample, reqs}, {reDurSample, durs}} {
			m := spec.re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			route := reRouteLbl.FindStringSubmatch(m[1])
			if route == nil {
				t.Fatalf("sample without route label: %s", line)
			}
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			spec.dest[route[1]] += v
		}
	}
	return reqs, durs
}

// TestMiddlewareRouteConformance drives one request through every entry
// in routeDefs and requires that exactly that route's counter and
// latency histogram advance by one — so no route can be registered
// outside the instrumented mux.
func TestMiddlewareRouteConformance(t *testing.T) {
	ts, _ := newTestServer(t)

	targets := make([]struct{ method, path, pattern string }, 0, len(routeDefs)+1)
	for _, def := range routeDefs {
		method, path, ok := strings.Cut(def.pattern, " ")
		if !ok {
			t.Fatalf("route pattern without method: %q", def.pattern)
		}
		path = strings.NewReplacer("{id}", "1").Replace(path)
		targets = append(targets, struct{ method, path, pattern string }{method, path, def.pattern})
	}
	// A miss must land on the fallback label, not vanish.
	targets = append(targets, struct{ method, path, pattern string }{"GET", "/no/such/route", "unmatched"})

	for _, tgt := range targets {
		before, beforeDur := routeMetricSnapshot(t)
		req, err := http.NewRequest(tgt.method, ts.URL+tgt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tgt.method, tgt.path, err)
		}
		resp.Body.Close()
		after, afterDur := routeMetricSnapshot(t)

		if got := after[tgt.pattern] - before[tgt.pattern]; got != 1 {
			t.Errorf("%s %s: counter for route %q advanced by %v, want 1",
				tgt.method, tgt.path, tgt.pattern, got)
		}
		if got := afterDur[tgt.pattern] - beforeDur[tgt.pattern]; got != 1 {
			t.Errorf("%s %s: histogram count for route %q advanced by %v, want 1",
				tgt.method, tgt.path, tgt.pattern, got)
		}
		// No other route may move: one request, one label.
		for route, v := range after {
			if route != tgt.pattern && v != before[route] {
				t.Errorf("%s %s: unrelated route %q counter moved %v -> %v",
					tgt.method, tgt.path, route, before[route], v)
			}
		}
	}
}

// TestRequestIDPropagation covers the correlation-ID contract: IDs are
// generated when absent, echoed when acceptable, replaced when hostile,
// and embedded in JSON error envelopes.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)

	t.Run("generated", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(requestIDHeader)
		if len(id) != 16 {
			t.Fatalf("generated request ID %q, want 16 hex chars", id)
		}
	})

	t.Run("echoed", func(t *testing.T) {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set(requestIDHeader, "upstream-trace-42")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(requestIDHeader); got != "upstream-trace-42" {
			t.Fatalf("request ID not echoed: got %q", got)
		}
	})

	t.Run("hostile replaced", func(t *testing.T) {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set(requestIDHeader, strings.Repeat("x", 65))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(requestIDHeader); len(got) != 16 {
			t.Fatalf("over-long client ID not replaced: got %q", got)
		}
	})

	t.Run("in error envelope", func(t *testing.T) {
		req, _ := http.NewRequest("GET", ts.URL+"/api/annotations/999999", nil)
		req.Header.Set(requestIDHeader, "envelope-check")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
		var body struct {
			Error     string `json:"error"`
			RequestID string `json:"requestId"`
		}
		if err := jsonDecode(resp.Body, &body); err != nil {
			t.Fatal(err)
		}
		if body.RequestID != "envelope-check" {
			t.Fatalf("error envelope requestId = %q, want %q", body.RequestID, "envelope-check")
		}
		if body.Error == "" {
			t.Fatal("error envelope missing message")
		}
	})
}

// TestMetricsEndpointValidExposition scrapes GET /metrics and runs the
// strict format validator over the payload: the endpoint must always
// serve parseable Prometheus text with the core families present.
func TestMetricsEndpointValidExposition(t *testing.T) {
	ts, _ := newTestServer(t)

	// Touch a few subsystems first so their samples exist.
	for _, path := range []string{"/api/stats", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	exp, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if len(exp.Families) < 20 {
		t.Fatalf("only %d metric families exposed, want >= 20", len(exp.Families))
	}
	for _, name := range []string{
		"graphitti_http_requests_total",
		"graphitti_http_request_duration_seconds",
		"graphitti_store_commit_duration_seconds",
		"graphitti_store_view_epoch",
		"graphitti_queries_total",
	} {
		if _, ok := exp.Families[name]; !ok {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
}

// TestDebugVarsJSON checks the expvar-style endpoint serves one valid
// JSON object.
func TestDebugVarsJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := jsonDecode(resp.Body, &m); err != nil {
		t.Fatalf("debug/vars not JSON: %v", err)
	}
	if len(m) == 0 {
		t.Fatal("debug/vars empty")
	}
}

// TestPprofGating: the profiling handlers exist only when opted in.
func TestPprofGating(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", resp.StatusCode)
	}

	on := httptest.NewServer(NewHandlerWithOptions(smallStore(t), Options{EnablePprof: true}))
	t.Cleanup(on.Close)
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not reachable with EnablePprof: %d", resp.StatusCode)
	}
}
