//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fdatasync flushes file data (and the size metadata needed to read it
// back) without forcing unrelated metadata out — one syscall cheaper than
// fsync on the group-commit hot path.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
