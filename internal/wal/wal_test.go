package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

// scanAll collects every valid payload.
func scanAll(t *testing.T, path string) ([][]byte, RecoveryInfo) {
	t.Helper()
	var got [][]byte
	info, err := Scan(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got, info
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%17)))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := scanAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if info.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes (%s)", info.TornBytes, info.TornReason)
	}
	fi, _ := os.Stat(path)
	if info.ValidSize != fi.Size() {
		t.Fatalf("ValidSize %d != file size %d", info.ValidSize, fi.Size())
	}
}

func TestEmptyPayloadRecord(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(nil); err != nil { // Sync() uses this form
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := scanAll(t, path)
	if len(got) != 2 || len(got[0]) != 0 || string(got[1]) != "x" {
		t.Fatalf("got %q", got)
	}
}

// TestTornTailEveryOffset truncates a valid log at every possible byte
// length and checks Scan always recovers the longest intact prefix.
func TestTornTailEveryOffset(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	var boundaries []int64 // ValidSize after records 0..i
	off := int64(HeaderSize)
	for i := 0; i < 8; i++ {
		p := bytes.Repeat([]byte{'a' + byte(i)}, 5+3*i)
		payloads = append(payloads, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		off += int64(frameHeaderSize + len(p))
		boundaries = append(boundaries, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(HeaderSize); cut <= int64(len(full)); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := 0
		wantValid := int64(HeaderSize)
		for i, b := range boundaries {
			if b <= cut {
				wantRecords = i + 1
				wantValid = b
			}
		}
		got, info := scanAll(t, torn)
		if len(got) != wantRecords || info.ValidSize != wantValid {
			t.Fatalf("cut=%d: got %d records valid=%d, want %d records valid=%d (%s)",
				cut, len(got), info.ValidSize, wantRecords, wantValid, info.TornReason)
		}
		if info.TornBytes != cut-wantValid {
			t.Fatalf("cut=%d: torn=%d want %d", cut, info.TornBytes, cut-wantValid)
		}
		for i := 0; i < wantRecords; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d mismatch", cut, i)
			}
		}
	}
}

func TestCorruptChecksumStopsScan(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	recLen := int64(frameHeaderSize + len("rec-0"))
	data[HeaderSize+recLen+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info := scanAll(t, path)
	if len(got) != 1 || string(got[0]) != "rec-0" {
		t.Fatalf("got %q, want only rec-0", got)
	}
	if info.TornReason != "checksum mismatch" {
		t.Fatalf("reason = %q", info.TornReason)
	}
}

func TestBadHeader(t *testing.T) {
	path := testLog(t)
	if err := os.WriteFile(path, []byte("not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(path, nil); err == nil {
		t.Fatal("Scan accepted a non-WAL file")
	}
}

func TestOpenAtTruncatesAndResumes(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte(fmt.Sprintf("first-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, info := scanAll(t, path)
	if info.Records != 3 || info.TornBytes == 0 {
		t.Fatalf("expected 3 intact records and a torn tail, got %+v", info)
	}
	w2, err := OpenAt(path, info.ValidSize, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := scanAll(t, path)
	if len(got) != 4 || string(got[3]) != "resumed" {
		t.Fatalf("after resume got %q", got)
	}
	if info.TornBytes != 0 {
		t.Fatalf("resumed log still torn: %+v", info)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Append([]byte(fmt.Sprintf("w%02d-%03d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != writers*perWriter {
		t.Fatalf("stats.Records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.Flushes == 0 || st.Flushes > st.Records {
		t.Fatalf("implausible flush count %d for %d records", st.Flushes, st.Records)
	}
	got, info := scanAll(t, path)
	if len(got) != writers*perWriter || info.TornBytes != 0 {
		t.Fatalf("scanned %d records torn=%d", len(got), info.TornBytes)
	}
	seen := make(map[string]bool, len(got))
	for _, p := range got {
		seen[string(p)] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("duplicate or missing records: %d unique", len(seen))
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := testLog(t)
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	huge := make([]byte, MaxRecordSize+1)
	if err := w.Append(huge); err == nil {
		t.Fatal("oversize record accepted")
	}
}
