package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// validLogBytes builds a real log holding op-envelope-shaped payloads
// and returns its raw bytes — the seed corpus for FuzzScan.
func validLogBytes(tb testing.TB, payloads ...string) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.wal")
	w, err := Create(path, Options{NoSync: true})
	if err != nil {
		tb.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append([]byte(p)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzScan feeds corrupt/torn/truncated log bytes to Scan and asserts
// the recovery contract: no panic, ErrBadHeader only for a bad header,
// and — whatever the damage — a valid prefix that re-scans to the same
// records and accepts appends via OpenAt.
func FuzzScan(f *testing.F) {
	envelopes := []string{
		`{"seq":1,"kind":10,"annotation":{"id":1,"dc":{"creator":["gupta"],"date":["2007-11-02"]},"body":"protease site","referents":[{"id":1,"kind":0,"objectType":"dna_sequences","objectId":"NC_1","domain":"segment4","lo":100,"hi":240}]}}`,
		`{"seq":2,"kind":11,"deleteId":1}`,
		`{"seq":3,"kind":12,"rule":{"id":"ov","edge":"overlap","domain":"segment4"}}`,
	}
	valid := validLogBytes(f, envelopes...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn payload
	f.Add(valid[:HeaderSize+4]) // partial frame header
	f.Add(valid[:HeaderSize])   // header only
	f.Add(valid[:3])            // torn header
	f.Add([]byte{})             // empty file
	f.Add([]byte("not a wal file at all"))
	flipped := append([]byte(nil), valid...)
	flipped[HeaderSize+12] ^= 0x40 // corrupt first payload byte
	f.Add(flipped)
	huge := append([]byte(nil), valid[:HeaderSize]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var records [][]byte
		info, err := Scan(path, func(p []byte) error {
			records = append(records, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			// The only permitted failure is a missing/torn/foreign header;
			// anything past a valid header must recover, never fail.
			if !errors.Is(err, ErrBadHeader) {
				t.Fatalf("Scan returned %v, want ErrBadHeader or success", err)
			}
			return
		}

		// The recovered geometry must be internally consistent.
		if info.Records != len(records) {
			t.Fatalf("info.Records=%d but fn saw %d", info.Records, len(records))
		}
		if info.ValidSize < HeaderSize || info.ValidSize > int64(len(data)) {
			t.Fatalf("ValidSize %d outside [%d, %d]", info.ValidSize, HeaderSize, len(data))
		}
		if info.TornBytes != int64(len(data))-info.ValidSize {
			t.Fatalf("TornBytes %d != file size %d - ValidSize %d",
				info.TornBytes, len(data), info.ValidSize)
		}

		// The valid prefix alone must re-scan to exactly the same records
		// with no torn tail — Scan recovers a valid prefix, not a guess.
		prefixPath := filepath.Join(dir, "prefix.wal")
		if err := os.WriteFile(prefixPath, data[:info.ValidSize], 0o644); err != nil {
			t.Fatal(err)
		}
		var again [][]byte
		reinfo, err := Scan(prefixPath, func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("re-scan of valid prefix failed: %v", err)
		}
		if reinfo.TornBytes != 0 || reinfo.Records != info.Records || !reflect.DeepEqual(records, again) {
			t.Fatalf("valid prefix did not re-scan cleanly: torn=%d records=%d/%d",
				reinfo.TornBytes, reinfo.Records, info.Records)
		}

		// Appending over the torn tail must work and be recoverable.
		w, err := OpenAt(path, info.ValidSize, Options{NoSync: true})
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", info.ValidSize, err)
		}
		if err := w.Append([]byte("post-recovery record")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		final, err := Scan(path, nil)
		if err != nil {
			t.Fatalf("scan after append: %v", err)
		}
		if final.Records != info.Records+1 || final.TornBytes != 0 {
			t.Fatalf("after append: records=%d torn=%d, want %d and 0",
				final.Records, final.TornBytes, info.Records+1)
		}
	})
}
