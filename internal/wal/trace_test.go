package wal

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graphitti/internal/faultfs"
	"graphitti/internal/trace"
)

// slowSync delays fdatasync without failing it, long enough for
// appends issued during the in-flight flush to pile into one batch.
type slowSync struct {
	mu    sync.Mutex
	delay time.Duration
	syncs int
}

func (s *slowSync) Decide(op faultfs.Op, path string) *faultfs.Fault {
	if op != faultfs.OpSync {
		return nil
	}
	s.mu.Lock()
	s.syncs++
	// Sync #1 is Create's header fsync; #2 is the first flush. Only
	// that one sleeps: while the flusher is stuck in it, the riders of
	// the next batch all enqueue.
	slow := s.syncs == 2
	s.mu.Unlock()
	if !slow {
		return nil
	}
	time.Sleep(s.delay)
	return nil
}

func flushChild(t *testing.T, root *trace.Span) *trace.Node {
	t.Helper()
	var find func(n *trace.Node) *trace.Node
	find = func(n *trace.Node) *trace.Node {
		if n.Name == "wal.flush" {
			return n
		}
		for _, c := range n.Children {
			if f := find(c); f != nil {
				return f
			}
		}
		return nil
	}
	got := find(root.Tree())
	if got == nil {
		t.Fatalf("no wal.flush span in %s", root.Breakdown())
	}
	return got
}

// TestGroupCommitBatchAttribution pins the tentpole's batch-attribution
// contract: concurrent appends riding the same fsync get wal.flush
// spans carrying the same batch ID, and an append in a different flush
// gets a different one.
func TestGroupCommitBatchAttribution(t *testing.T) {
	inj := &slowSync{delay: 150 * time.Millisecond}
	w, err := Create(filepath.Join(t.TempDir(), "wal.log"), Options{Inject: inj, Shard: "3"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A goes alone: its flush is the slow one.
	rootA := trace.NewRoot("http", "")
	ackA := w.AppendAsyncTraced([]byte("record-a"), rootA)

	// While A's fsync sleeps, B and C enqueue and must share the next batch.
	time.Sleep(20 * time.Millisecond)
	rootB := trace.NewRoot("http", "")
	rootC := trace.NewRoot("http", "")
	ackB := w.AppendAsyncTraced([]byte("record-b"), rootB)
	ackC := w.AppendAsyncTraced([]byte("record-c"), rootC)

	for name, ack := range map[string]<-chan error{"a": ackA, "b": ackB, "c": ackC} {
		if err := <-ack; err != nil {
			t.Fatalf("append %s: %v", name, err)
		}
	}

	fa := flushChild(t, rootA)
	fb := flushChild(t, rootB)
	fc := flushChild(t, rootC)
	for _, n := range []*trace.Node{fa, fb, fc} {
		if n.Attrs["batch"] == "" {
			t.Fatalf("flush span missing batch ID: %+v", n)
		}
	}
	if fb.Attrs["batch"] != fc.Attrs["batch"] {
		t.Fatalf("group-commit riders got different batch IDs: %q vs %q",
			fb.Attrs["batch"], fc.Attrs["batch"])
	}
	if fa.Attrs["batch"] == fb.Attrs["batch"] {
		t.Fatalf("separate flushes share batch ID %q", fa.Attrs["batch"])
	}
	if fb.Attrs["riders"] != "2" {
		t.Fatalf("riders = %q, want 2 (b and c batched)", fb.Attrs["riders"])
	}
	// Batch IDs carry the shard label for cross-shard disambiguation.
	if got := fa.Attrs["batch"]; len(got) < 3 || got[:2] != "3#" {
		t.Fatalf("batch ID %q not prefixed with shard label", got)
	}
	// The flush span must cover the (injected) slow fsync.
	if fa.DurationMicros < 100_000 {
		t.Fatalf("slow flush span only %dµs", fa.DurationMicros)
	}
}

// TestUntracedAppendUnaffected guards the zero-cost path: nil spans ride
// batches without producing spans or panics.
func TestUntracedAppendUnaffected(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "wal.log"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	root := trace.NewRoot("http", "")
	if err := <-w.AppendAsyncTraced([]byte("traced"), root); err != nil {
		t.Fatal(err)
	}
	flushChild(t, root)
}
