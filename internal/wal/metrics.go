package wal

import "graphitti/internal/obs"

// Process-wide WAL metrics (see internal/obs: counters and histograms
// are cumulative across writer instances; the size gauge is
// last-writer-wins, meaningful in the one-store-per-process server).
// All are documented in docs/METRICS.md, which a test keeps in sync.
var (
	mRecords = obs.NewCounter("graphitti_wal_records_total",
		"Records appended to the write-ahead log.")
	mBytes = obs.NewCounter("graphitti_wal_appended_bytes_total",
		"Frame bytes appended to the write-ahead log, excluding the file header.")
	mFlushes = obs.NewCounter("graphitti_wal_flushes_total",
		"Write+fdatasync batches (the fsync count); records/flushes is the group-commit amortisation factor.")
	mFlushErrors = obs.NewCounter("graphitti_wal_flush_errors_total",
		"Flush batches that failed; each one sets the writer's sticky error.")
	mBatchRecords = obs.NewHistogram("graphitti_wal_flush_batch_records",
		"Records covered by one flush batch.", obs.CountBuckets)
	mFsyncSeconds = obs.NewHistogram("graphitti_wal_fsync_duration_seconds",
		"fdatasync latency per flush batch.", nil)
	mSizeBytes = obs.NewGauge("graphitti_wal_size_bytes",
		"Current log file size in bytes, header included, pending appends counted.")
)
