package wal

import "graphitti/internal/obs"

// WAL metric families, labelled by shard (see internal/obs: counters and
// histograms are cumulative across writer instances of the same shard;
// the size gauge is last-writer-wins per shard, meaningful in the
// one-store-per-shard server). An unsharded deployment reports as shard
// "0". All are documented in docs/METRICS.md, which a test keeps in sync.
var (
	mRecordsVec = obs.NewCounterVec("graphitti_wal_records_total",
		"Records appended to the write-ahead log.", "shard")
	mBytesVec = obs.NewCounterVec("graphitti_wal_appended_bytes_total",
		"Frame bytes appended to the write-ahead log, excluding the file header.", "shard")
	mFlushesVec = obs.NewCounterVec("graphitti_wal_flushes_total",
		"Write+fdatasync batches (the fsync count); records/flushes is the group-commit amortisation factor.", "shard")
	mFlushErrorsVec = obs.NewCounterVec("graphitti_wal_flush_errors_total",
		"Flush batches that failed; each one sets the writer's sticky error.", "shard")
	mBatchRecordsVec = obs.NewHistogramVec("graphitti_wal_flush_batch_records",
		"Records covered by one flush batch.", obs.CountBuckets, "shard")
	mFsyncSecondsVec = obs.NewHistogramVec("graphitti_wal_fsync_duration_seconds",
		"fdatasync latency per flush batch.", nil, "shard")
	mSizeBytesVec = obs.NewGaugeVec("graphitti_wal_size_bytes",
		"Current log file size in bytes, header included, pending appends counted.", "shard")
)

// walMetrics binds one shard's children of the WAL families.
type walMetrics struct {
	records      *obs.Counter
	bytes        *obs.Counter
	flushes      *obs.Counter
	flushErrors  *obs.Counter
	batchRecords *obs.Histogram
	fsyncSeconds *obs.Histogram
	sizeBytes    *obs.Gauge
}

func metricsForShard(shard string) *walMetrics {
	if shard == "" {
		shard = "0"
	}
	return &walMetrics{
		records:      mRecordsVec.With(shard),
		bytes:        mBytesVec.With(shard),
		flushes:      mFlushesVec.With(shard),
		flushErrors:  mFlushErrorsVec.With(shard),
		batchRecords: mBatchRecordsVec.With(shard),
		fsyncSeconds: mFsyncSecondsVec.With(shard),
		sizeBytes:    mSizeBytesVec.With(shard),
	}
}
