// Package wal implements the append-only write-ahead log underneath the
// durable store (internal/durable).
//
// # Format
//
// A log file starts with an 8-byte header — the magic "GRWAL" followed by
// a format-version byte and two zero bytes — and continues with
// length-prefixed, checksummed records:
//
//	[4B little-endian payload length][4B CRC32-Castagnoli of payload][payload]
//
// The payload is opaque to this package (internal/durable encodes one
// store mutation per record). A record is valid only if its full frame is
// present and the checksum matches; Recover scans the file front to back
// and reports the byte offset of the first invalid frame, so a tail torn
// by a crash — a partial header, a partial payload, or a corrupt checksum
// — is detected and truncated rather than failing the open.
//
// # Group commit
//
// Writer batches concurrent appends: callers enqueue frames into a shared
// buffer and a single flusher goroutine writes and fdatasyncs the whole
// pending batch with one syscall pair, then wakes every caller in the
// batch. Under concurrent load each fsync therefore amortises over many
// records ("group commit"), while a lone writer still gets one fsync per
// record. Append returns only after the record is durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"graphitti/internal/faultfs"
	"graphitti/internal/trace"
)

// Magic starts every log file, followed by the format version byte.
var Magic = [8]byte{'G', 'R', 'W', 'A', 'L', 1, 0, 0}

// HeaderSize is the length of the file header.
const HeaderSize = 8

// frameHeaderSize is the per-record prefix: length + CRC.
const frameHeaderSize = 8

// MaxRecordSize bounds a single payload; a length prefix beyond it is
// treated as torn/corrupt rather than allocated.
const MaxRecordSize = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends to a closed writer.
var ErrClosed = errors.New("wal: writer closed")

// ErrBadHeader is returned when a log file exists but does not start with
// the magic (it is some other file, or a crash tore even the header).
var ErrBadHeader = errors.New("wal: bad file header")

// Stats counts writer activity since open.
type Stats struct {
	// Records appended (durably acknowledged or pending).
	Records uint64
	// Bytes of frames appended, excluding the file header.
	Bytes uint64
	// Flushes is the number of write+fdatasync batches — the fsync count.
	// Records / Flushes is the group-commit amortisation factor.
	Flushes uint64
	// MaxBatch is the largest number of records covered by one flush.
	MaxBatch uint64
	// Size is the current file size, header included.
	Size int64
}

// Writer is an append-only log writer with group commit. It is safe for
// concurrent use.
type Writer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	nosync  bool
	inject  faultfs.Injector
	closed  bool
	err     error // sticky I/O error; fails all subsequent appends
	buf     []byte
	waiters []waiter
	size    int64 // durable+pending file size
	stats   Stats
	done    chan struct{}
	m       *walMetrics
	shard   string // metrics/batch-ID label
}

// waiter is one enqueued record's rider: the ack channel plus the
// caller's span (nil when the append is untraced). The flusher attaches
// a finished "wal.flush" child to sp — carrying the batch ID every rider
// of the same fsync shares — before sending on ch, so by the time the
// caller unblocks its span tree already tells it which batch carried it.
type waiter struct {
	ch chan error
	sp *trace.Span
}

// Options tune a Writer.
type Options struct {
	// NoSync skips fdatasync; the OS may reorder or lose acknowledged
	// records on crash. For benchmarks and tests only.
	NoSync bool
	// Inject, when non-nil, is consulted before every file operation the
	// writer performs (create, write, fdatasync, truncate, directory
	// sync) and can fail it — the fault-injection hook the durable
	// layer's harness drives. Nil injects nothing.
	Inject faultfs.Injector
	// Shard labels this writer's metrics; "" means "0" (unsharded).
	Shard string
}

// Create creates a fresh log at path (truncating any existing file),
// writes the header, and returns a writer. The parent directory is
// fsynced so the new file's directory entry — and with it every record
// later acknowledged into the file — survives power loss.
func Create(path string, opts Options) (*Writer, error) {
	if err := faultfs.Check(opts.Inject, faultfs.OpCreate, path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := injectedWrite(opts.Inject, f, Magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if !opts.NoSync {
		if err := injectedSync(opts.Inject, f); err != nil {
			f.Close()
			return nil, err
		}
		if err := syncDir(opts.Inject, filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return newWriter(f, HeaderSize, opts), nil
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(inj faultfs.Injector, dir string) error {
	if err := faultfs.Check(inj, faultfs.OpDirSync, dir); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// injectedWrite writes buf through the optional injector; an injected
// torn write puts Fault.Short leading bytes into the file before the
// error, as a partially flushed block would.
func injectedWrite(inj faultfs.Injector, f *os.File, buf []byte) error {
	if inj != nil {
		if flt := inj.Decide(faultfs.OpWrite, f.Name()); flt != nil {
			if n := flt.Short; n > 0 {
				if n > len(buf) {
					n = len(buf)
				}
				_, _ = f.Write(buf[:n])
			}
			return flt.Err
		}
	}
	_, err := f.Write(buf)
	return err
}

// injectedSync fdatasyncs through the optional injector.
func injectedSync(inj faultfs.Injector, f *os.File) error {
	if err := faultfs.Check(inj, faultfs.OpSync, f.Name()); err != nil {
		return err
	}
	return fdatasync(f)
}

// OpenAt opens an existing log for appending at offset valid (typically
// the ValidSize reported by Recover), truncating anything past it — the
// torn tail of a crashed run.
func OpenAt(path string, valid int64, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if valid < HeaderSize {
		f.Close()
		return nil, fmt.Errorf("wal: valid size %d below header size", valid)
	}
	if err := faultfs.Check(opts.Inject, faultfs.OpTruncate, path); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if !opts.NoSync {
		if err := injectedSync(opts.Inject, f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return newWriter(f, valid, opts), nil
}

func newWriter(f *os.File, size int64, opts Options) *Writer {
	shard := opts.Shard
	if shard == "" {
		shard = "0"
	}
	w := &Writer{f: f, nosync: opts.NoSync, inject: opts.Inject, size: size,
		done: make(chan struct{}), m: metricsForShard(opts.Shard), shard: shard}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w
}

// AppendAsync enqueues one record and returns a channel that receives the
// (single) durability result. Records become durable in enqueue order;
// the caller may enqueue several records and wait once on the last.
func (w *Writer) AppendAsync(payload []byte) <-chan error {
	return w.AppendAsyncTraced(payload, nil)
}

// AppendAsyncTraced is AppendAsync with span attribution: when sp is
// non-nil, the flusher attaches a finished "wal.flush" child to it
// covering the write+fdatasync that made this record durable, tagged
// with the batch ID ("<shard>#<flush number>") and rider count shared
// by every record in the same group commit. The child is attached
// before the ack channel fires, so the caller's span tree is complete
// as soon as the append returns.
func (w *Writer) AppendAsyncTraced(payload []byte, sp *trace.Span) <-chan error {
	ch := make(chan error, 1)
	if len(payload) > MaxRecordSize {
		ch <- fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecordSize)
		return ch
	}
	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		if err == nil {
			err = ErrClosed
		}
		w.mu.Unlock()
		ch <- err
		return ch
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.waiters = append(w.waiters, waiter{ch: ch, sp: sp})
	w.size += int64(frameHeaderSize + len(payload))
	w.stats.Records++
	w.stats.Bytes += uint64(frameHeaderSize + len(payload))
	size := w.size
	w.cond.Signal()
	w.mu.Unlock()
	w.m.records.Inc()
	w.m.bytes.Add(uint64(frameHeaderSize + len(payload)))
	w.m.sizeBytes.Set(size)
	return ch
}

// Append enqueues one record and blocks until it is durable (or until the
// flush fails).
func (w *Writer) Append(payload []byte) error {
	return <-w.AppendAsync(payload)
}

// flushLoop is the single flusher: it drains the pending buffer, writes
// it with one write call, fdatasyncs once, and wakes the whole batch.
//
// A flush failure is terminal for the file (the fsyncgate rule): a
// failed fdatasync may have dropped the dirty pages it covered, so a
// later write+fdatasync that succeeded would acknowledge new records
// over a silently lost tail. Once the sticky error is set, no batch —
// including ones already enqueued when the failure happened — touches
// the file again; every waiter gets the original error.
func (w *Writer) flushLoop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.buf) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		buf := w.buf
		waiters := w.waiters
		w.buf = nil
		w.waiters = nil
		w.stats.Flushes++
		batchID := w.shard + "#" + strconv.FormatUint(w.stats.Flushes, 10)
		if n := uint64(len(waiters)); n > w.stats.MaxBatch {
			w.stats.MaxBatch = n
		}
		err := w.err
		w.mu.Unlock()
		w.m.flushes.Inc()
		w.m.batchRecords.Observe(float64(len(waiters)))

		flushStart := time.Now()
		if err == nil {
			if werr := injectedWrite(w.inject, w.f, buf); werr != nil {
				err = werr
			} else if !w.nosync {
				start := time.Now()
				err = injectedSync(w.inject, w.f)
				w.m.fsyncSeconds.Observe(time.Since(start).Seconds())
			}
			if err != nil {
				w.mu.Lock()
				w.err = err // sticky: the log tail is now undefined
				w.mu.Unlock()
				w.m.flushErrors.Inc()
			}
		}
		flushEnd := time.Now()
		riders := strconv.Itoa(len(waiters))
		for _, wt := range waiters {
			// Attribute the shared flush to each rider's trace before the
			// ack: the rider is still blocked on wt.ch, so its span tree
			// cannot be read or finished concurrently.
			wt.sp.FinishedChild("wal.flush", flushStart, flushEnd,
				trace.Attr{Key: "batch", Value: batchID},
				trace.Attr{Key: "riders", Value: riders})
			wt.ch <- err
		}
	}
}

// Sync blocks until everything enqueued so far is durable.
func (w *Writer) Sync() error {
	return w.Append(nil) // a zero-length record is valid and cheap
}

// Close flushes pending records and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Signal()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Err returns the writer's terminal state: the sticky I/O error if a
// flush failed (the log tail is undefined and all appends fail), ErrClosed
// after Close, or nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	return nil
}

// Stats returns a snapshot of the writer counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Size returns the current log size in bytes (header included, pending
// appends counted).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}
