package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// RecoveryInfo reports what a Scan found.
type RecoveryInfo struct {
	// Records is the number of valid records scanned.
	Records int
	// ValidSize is the byte offset just past the last valid record —
	// the offset to hand OpenAt so appending resumes over the torn tail.
	ValidSize int64
	// TornBytes is how many trailing bytes were invalid (0 for a clean
	// shutdown).
	TornBytes int64
	// TornReason describes the first invalid frame when TornBytes > 0.
	TornReason string
}

// Scan reads a log front to back, calling fn for each valid record
// payload. It stops — without error — at the first torn or corrupt frame,
// reporting the valid prefix in RecoveryInfo; fn's error aborts the scan
// and is returned as is. The payload slice is reused across calls.
func Scan(path string, fn func(payload []byte) error) (RecoveryInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return RecoveryInfo{}, err
	}
	defer f.Close()

	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// Even the header is incomplete: nothing recoverable.
		return RecoveryInfo{}, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if hdr != Magic {
		return RecoveryInfo{}, fmt.Errorf("%w: got % x", ErrBadHeader, hdr)
	}

	info := RecoveryInfo{ValidSize: HeaderSize}
	var frame [frameHeaderSize]byte
	var payload []byte
	for {
		n, err := io.ReadFull(f, frame[:])
		if err == io.EOF {
			break // clean end
		}
		if err != nil {
			info.TornBytes = int64(n)
			info.TornReason = "partial frame header"
			break
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > MaxRecordSize {
			info.TornBytes = frameHeaderSize
			info.TornReason = fmt.Sprintf("frame length %d exceeds max %d", length, MaxRecordSize)
			break
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		n, err = io.ReadFull(f, payload)
		if err != nil {
			info.TornBytes = int64(frameHeaderSize + n)
			info.TornReason = "partial payload"
			break
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			info.TornBytes = int64(frameHeaderSize) + int64(length)
			info.TornReason = "checksum mismatch"
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return info, err
			}
		}
		info.Records++
		info.ValidSize += int64(frameHeaderSize) + int64(length)
	}
	// Anything between ValidSize and EOF is torn tail, whether the loop
	// classified it or only read part of it.
	if end, err := f.Seek(0, io.SeekEnd); err == nil && end > info.ValidSize {
		info.TornBytes = end - info.ValidSize
	}
	return info, nil
}
