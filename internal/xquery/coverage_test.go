package xquery

import (
	"errors"
	"strings"
	"testing"

	"graphitti/internal/xmldoc"
)

func TestSourceAndSyntaxError(t *testing.T) {
	q := MustCompile("/a/b")
	if q.Source() != "/a/b" {
		t.Fatalf("Source = %q", q.Source())
	}
	_, err := Compile("//a[")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Fatalf("Error() = %q", se.Error())
	}
}

func TestUnaryMinusAndArithmetic(t *testing.T) {
	d, _ := xmldoc.ParseString("<r><n>5</n></r>")
	cases := []struct {
		expr string
		want float64
	}{
		{"-3", -3},
		{"- 3 + 10", 7},
		{"/r/n - 2", 3},
		{"2 - -2", 4},
	}
	for _, tc := range cases {
		q := MustCompile(tc.expr)
		v, err := q.EvalValue(d)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if v.AsNumber() != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, v.AsNumber(), tc.want)
		}
	}
}

func TestNodeSetComparisons(t *testing.T) {
	d, _ := xmldoc.ParseString(`<r><v>1</v><v>5</v><v>9</v><w>5</w></r>`)
	cases := []struct {
		expr string
		want bool
	}{
		{"/r/v = 5", true}, // existential: some v equals 5
		{"/r/v = 4", false},
		{"/r/v != 5", true}, // some v differs from 5
		{"/r/v > 8", true},
		{"/r/v < 1", false},
		{"/r/v = /r/w", true},  // node-set vs node-set: some pair equal
		{"/r/v >= /r/w", true}, // 5 >= 5 or 9 >= 5
		{"5 = /r/w", true},     // literal on the left
		{"10 < /r/v", false},   // no v above 10? 9 < 10, so false
		{"true() = /r/w", true},
	}
	for _, tc := range cases {
		got, err := MustCompile(tc.expr).EvalBool(d)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestBooleanComparisons(t *testing.T) {
	d, _ := xmldoc.ParseString(`<r><v>x</v></r>`)
	cases := []struct {
		expr string
		want bool
	}{
		{"true() = true()", true},
		{"true() != false()", true},
		{"not(false())", true},
		{"1 = true()", true}, // boolean coercion
	}
	for _, tc := range cases {
		got, err := MustCompile(tc.expr).EvalBool(d)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestNameFunction(t *testing.T) {
	d, _ := xmldoc.ParseString(`<root><child/></root>`)
	got, err := MustCompile("name(/root/child)").EvalString(d)
	if err != nil || got != "child" {
		t.Fatalf("name(path) = %q, %v", got, err)
	}
	got, err = MustCompile("name()").EvalString(d)
	if err != nil || got != "root" {
		t.Fatalf("name() = %q, %v", got, err)
	}
	got, err = MustCompile("name(/nothing)").EvalString(d)
	if err != nil || got != "" {
		t.Fatalf("name(empty) = %q, %v", got, err)
	}
}

func TestNumberStringFunctions(t *testing.T) {
	d, _ := xmldoc.ParseString(`<r><n> 42 </n></r>`)
	v, err := MustCompile("number(/r/n)").EvalValue(d)
	if err != nil || v.AsNumber() != 42 {
		t.Fatalf("number = %v, %v", v, err)
	}
	s, err := MustCompile("string(3.5)").EvalString(d)
	if err != nil || s != "3.5" {
		t.Fatalf("string(3.5) = %q, %v", s, err)
	}
	s, err = MustCompile("string(count(/r/n))").EvalString(d)
	if err != nil || s != "1" {
		t.Fatalf("string(count) = %q, %v", s, err)
	}
	// NaN conversions are safe.
	v, err = MustCompile("number('abc')").EvalValue(d)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() == v.AsNumber() { // NaN != NaN
		t.Fatalf("number('abc') = %v, want NaN", v.AsNumber())
	}
	if v.AsBool() {
		t.Fatal("NaN must be falsy")
	}
}

func TestEvalOnNilDocument(t *testing.T) {
	q := MustCompile("/a")
	if _, err := q.EvalValue(nil); err == nil {
		t.Fatal("nil document accepted")
	}
	if _, err := q.Eval(nil); err == nil {
		t.Fatal("nil document accepted by Eval")
	}
	if _, err := q.EvalBool(nil); err == nil {
		t.Fatal("nil document accepted by EvalBool")
	}
	if _, err := q.EvalString(nil); err == nil {
		t.Fatal("nil document accepted by EvalString")
	}
}

func TestEvalTypeErrorNames(t *testing.T) {
	d, _ := xmldoc.ParseString("<a/>")
	// Eval on each non-node-set kind mentions the kind name.
	for _, expr := range []string{"count(/a)", "'str'", "true()"} {
		_, err := MustCompile(expr).Eval(d)
		if err == nil {
			t.Fatalf("%q: expected type error", expr)
		}
	}
}

func TestDescendantAttributeStep(t *testing.T) {
	d, _ := xmldoc.ParseString(`<r><a k="1"/><b><a k="2"/></b></r>`)
	ns, err := MustCompile("//a/@k").Eval(d)
	if err != nil || len(ns) != 2 {
		t.Fatalf("//a/@k = %d nodes, %v", len(ns), err)
	}
	// Attribute node string values.
	got, _ := MustCompile("//b/a/@k").EvalString(d)
	if got != "2" {
		t.Fatalf("//b/a/@k = %q", got)
	}
}

func TestPositionLastInNestedPredicates(t *testing.T) {
	d, _ := xmldoc.ParseString(`<r><s><i>a</i><i>b</i></s><s><i>c</i></s></r>`)
	ns, err := MustCompile("/r/s[last()]/i[1]").Eval(d)
	if err != nil || len(ns) != 1 || ns[0].Text() != "c" {
		t.Fatalf("nested positional = %v, %v", ns, err)
	}
	ns, err = MustCompile("//i[position() = 2]").Eval(d)
	if err != nil || len(ns) != 1 || ns[0].Text() != "b" {
		t.Fatalf("position()=2 = %v, %v", ns, err)
	}
}
