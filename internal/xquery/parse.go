// Package xquery implements the path-expression query language Graphitti
// uses to search annotation contents.
//
// The paper stores annotation contents as a collection of XML documents and
// performs "collection-searching operations … using standard XQuery"; the
// query processor embeds "XQuery fragments to retrieve fragments of
// annotation". This package implements the XPath 1.0 subset those fragments
// need: absolute/relative location paths with child, descendant, attribute,
// self and parent axes, positional and comparison predicates, and the core
// function library (contains, starts-with, count, position, last, name,
// not, text, string, number, boolean literals).
//
// Expressions compile once (Compile) and evaluate against any document.
package xquery

import (
	"fmt"
	"strconv"
	"strings"
)

// --- AST ---

// Expr is any compiled expression node.
type Expr interface{ exprNode() }

// Axis selects the relationship a step traverses.
type Axis uint8

// Axes supported by the subset.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisAttribute
	AxisSelf
	AxisParent
)

// TestKind discriminates node tests within a step.
type TestKind uint8

// Node tests supported by the subset.
const (
	TestName TestKind = iota // a specific element (or attribute) name
	TestAny                  // *
	TestText                 // text()
	TestNode                 // node()
)

// Step is one location step: axis, node test, and zero or more predicates.
type Step struct {
	Axis  Axis
	Kind  TestKind
	Name  string
	Preds []Expr
}

// PathExpr is a location path.
type PathExpr struct {
	Absolute bool
	Steps    []Step
}

// BinaryExpr applies an operator to two sub-expressions. Op is one of
// "or", "and", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "div", "mod".
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// NumberLit is a numeric literal.
type NumberLit float64

// StringLit is a string literal.
type StringLit string

// FuncCall invokes a core-library function.
type FuncCall struct {
	Name string
	Args []Expr
}

func (*PathExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (NumberLit) exprNode()   {}
func (StringLit) exprNode()   {}
func (*FuncCall) exprNode()   {}

// Query is a compiled expression ready for evaluation.
type Query struct {
	src  string
	expr Expr
}

// Source returns the original expression text.
func (q *Query) Source() string { return q.src }

// SyntaxError describes a compile failure with its position.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xquery: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

// Compile parses an expression.
func Compile(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.tok.text)
	}
	return &Query{src: src, expr: expr}, nil
}

// MustCompile is Compile for expressions known to be valid; it panics on
// error. Intended for tests and package-level variables.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash
	tokAt
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokDot
	tokDotDot
	tokName
	tokString
	tokNumber
	tokOp // = != < <= > >= + -
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{tokDSlash, "//", start}, nil
		}
		return token{tokSlash, "/", start}, nil
	case c == '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case c == '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '.':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			l.pos++
			return token{tokDotDot, "..", start}, nil
		}
		return token{tokDot, ".", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, &SyntaxError{l.src, start, "expected != "}
	case c == '<' || c == '>':
		l.pos++
		op := string(c)
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{tokOp, op, start}, nil
	case c == '+' || c == '-':
		l.pos++
		return token{tokOp, string(c), start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, &SyntaxError{l.src, start, "unterminated string literal"}
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{tokString, text, start}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isNameStart(c):
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		return token{tokName, l.src[start:l.pos], start}, nil
	default:
		return token{}, &SyntaxError{l.src, start, fmt.Sprintf("unexpected character %q", c)}
	}
}

// --- parser ---

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{p.lex.src, p.tok.pos, fmt.Sprintf(format, args...)}
}

// parseExpr := orExpr
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "=" || p.tok.text == "!=" ||
		p.tok.text == "<" || p.tok.text == "<=" || p.tok.text == ">" || p.tok.text == ">=") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", L: NumberLit(0), R: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return NumberLit(f), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return StringLit(s), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected )")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	case tokSlash, tokDSlash, tokAt, tokDot, tokDotDot, tokStar:
		return p.parsePath()
	case tokName:
		// Function call or relative path; disambiguate by lookahead for '('.
		name := p.tok.text
		save := *p.lex
		savedTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen && !isNodeTestName(name) {
			return p.parseFuncCall(name)
		}
		// Rewind: it's a path beginning with a name test.
		*p.lex = save
		p.tok = savedTok
		return p.parsePath()
	default:
		return nil, p.errorf("unexpected %q", p.tok.text)
	}
}

// isNodeTestName reports whether name(…) is a node test rather than a
// function call when it appears as a path step.
func isNodeTestName(name string) bool { return name == "text" || name == "node" }

func (p *parser) parseFuncCall(name string) (Expr, error) {
	// current token is '('
	if err := p.advance(); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	if p.tok.kind != tokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ) in call to %s", name)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, ok := coreFunctions[name]; !ok {
		return nil, p.errorf("unknown function %q", name)
	}
	if err := checkArity(name, len(call.Args)); err != nil {
		return nil, p.errorf("%v", err)
	}
	return call, nil
}

func checkArity(name string, n int) error {
	lo, hi := arity[name][0], arity[name][1]
	if n < lo || n > hi {
		return fmt.Errorf("function %s takes %d..%d arguments, got %d", name, lo, hi, n)
	}
	return nil
}

func (p *parser) parsePath() (Expr, error) {
	path := &PathExpr{}
	switch p.tok.kind {
	case tokSlash:
		path.Absolute = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEOF {
			// "/" alone selects the root.
			return path, nil
		}
	case tokDSlash:
		path.Absolute = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		step, err := p.parseStep(AxisDescendant)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		return p.parseMoreSteps(path)
	}
	step, err := p.parseStep(AxisChild)
	if err != nil {
		return nil, err
	}
	path.Steps = append(path.Steps, step)
	return p.parseMoreSteps(path)
}

func (p *parser) parseMoreSteps(path *PathExpr) (Expr, error) {
	for {
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			step, err := p.parseStep(AxisChild)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		case tokDSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			step, err := p.parseStep(AxisDescendant)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		default:
			return path, nil
		}
	}
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	step := Step{Axis: axis, Kind: TestName}
	switch p.tok.kind {
	case tokAt:
		if axis == AxisDescendant {
			// //@x means descendant-or-self::node()/@x; approximate with
			// attribute search on all descendants.
			step.Axis = AxisAttribute
		} else {
			step.Axis = AxisAttribute
		}
		if err := p.advance(); err != nil {
			return step, err
		}
		switch p.tok.kind {
		case tokName:
			step.Name = p.tok.text
		case tokStar:
			step.Kind = TestAny
		default:
			return step, p.errorf("expected attribute name after @")
		}
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokStar:
		step.Kind = TestAny
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokDot:
		step.Axis = AxisSelf
		step.Kind = TestNode
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokDotDot:
		step.Axis = AxisParent
		step.Kind = TestNode
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return step, err
		}
		if p.tok.kind == tokLParen && isNodeTestName(name) {
			if err := p.advance(); err != nil {
				return step, err
			}
			if p.tok.kind != tokRParen {
				return step, p.errorf("expected ) after %s(", name)
			}
			if err := p.advance(); err != nil {
				return step, err
			}
			if name == "text" {
				step.Kind = TestText
			} else {
				step.Kind = TestNode
			}
		} else {
			step.Name = name
		}
	default:
		return step, p.errorf("expected step, found %q", p.tok.text)
	}
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return step, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return step, err
		}
		if p.tok.kind != tokRBracket {
			return step, p.errorf("expected ]")
		}
		if err := p.advance(); err != nil {
			return step, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

// String reconstructs a textual form of the compiled expression (for
// diagnostics; not guaranteed to be byte-identical to the source).
func (q *Query) String() string { return exprString(q.expr) }

func exprString(e Expr) string {
	switch v := e.(type) {
	case NumberLit:
		return strconv.FormatFloat(float64(v), 'g', -1, 64)
	case StringLit:
		return "'" + string(v) + "'"
	case *BinaryExpr:
		return "(" + exprString(v.L) + " " + v.Op + " " + exprString(v.R) + ")"
	case *FuncCall:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = exprString(a)
		}
		return v.Name + "(" + strings.Join(args, ", ") + ")"
	case *PathExpr:
		var sb strings.Builder
		for i, s := range v.Steps {
			if i == 0 {
				if v.Absolute {
					if s.Axis == AxisDescendant {
						sb.WriteString("//")
					} else {
						sb.WriteString("/")
					}
				}
			} else {
				if s.Axis == AxisDescendant {
					sb.WriteString("//")
				} else {
					sb.WriteString("/")
				}
			}
			sb.WriteString(stepString(s))
		}
		if len(v.Steps) == 0 {
			sb.WriteString("/")
		}
		return sb.String()
	default:
		return fmt.Sprintf("%v", e)
	}
}

func stepString(s Step) string {
	var sb strings.Builder
	switch s.Axis {
	case AxisAttribute:
		sb.WriteString("@")
	case AxisSelf:
		return "."
	case AxisParent:
		return ".."
	}
	switch s.Kind {
	case TestAny:
		sb.WriteString("*")
	case TestText:
		sb.WriteString("text()")
	case TestNode:
		sb.WriteString("node()")
	default:
		sb.WriteString(s.Name)
	}
	for _, p := range s.Preds {
		sb.WriteString("[")
		sb.WriteString(exprString(p))
		sb.WriteString("]")
	}
	return sb.String()
}
