package xquery

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"graphitti/internal/xmldoc"
)

// ValueKind discriminates evaluation results.
type ValueKind uint8

// The four XPath 1.0 value types.
const (
	NodeSetValue ValueKind = iota
	StringValue
	NumberValue
	BooleanValue
)

// Value is the result of evaluating an expression.
type Value struct {
	Kind  ValueKind
	Nodes []*xmldoc.Node
	Str   string
	Num   float64
	Bool  bool
}

func nodeSet(ns []*xmldoc.Node) Value { return Value{Kind: NodeSetValue, Nodes: ns} }
func str(s string) Value              { return Value{Kind: StringValue, Str: s} }
func num(f float64) Value             { return Value{Kind: NumberValue, Num: f} }
func boolean(b bool) Value            { return Value{Kind: BooleanValue, Bool: b} }

// AsBool converts the value to a boolean using XPath rules.
func (v Value) AsBool() bool {
	switch v.Kind {
	case NodeSetValue:
		return len(v.Nodes) > 0
	case StringValue:
		return len(v.Str) > 0
	case NumberValue:
		return v.Num != 0 && !math.IsNaN(v.Num)
	default:
		return v.Bool
	}
}

// AsString converts the value to a string using XPath rules (the string
// value of a node set is the string value of its first node).
func (v Value) AsString() string {
	switch v.Kind {
	case NodeSetValue:
		if len(v.Nodes) == 0 {
			return ""
		}
		return nodeString(v.Nodes[0])
	case StringValue:
		return v.Str
	case NumberValue:
		return formatNumber(v.Num)
	default:
		if v.Bool {
			return "true"
		}
		return "false"
	}
}

// AsNumber converts the value to a number using XPath rules.
func (v Value) AsNumber() float64 {
	switch v.Kind {
	case NodeSetValue, StringValue:
		s := strings.TrimSpace(v.AsString())
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case NumberValue:
		return v.Num
	default:
		if v.Bool {
			return 1
		}
		return 0
	}
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// nodeString is the XPath string-value of a node.
func nodeString(n *xmldoc.Node) string {
	switch n.Kind {
	case xmldoc.TextNode, xmldoc.CommentNode:
		return n.Value
	default:
		return n.Text()
	}
}

type evalCtx struct {
	node *xmldoc.Node
	pos  int // 1-based position in the current node list
	size int
}

// Eval evaluates the query against doc and returns the resulting node set.
// Non-node-set results produce an error; use EvalValue for those.
func (q *Query) Eval(doc *xmldoc.Document) ([]*xmldoc.Node, error) {
	v, err := q.EvalValue(doc)
	if err != nil {
		return nil, err
	}
	if v.Kind != NodeSetValue {
		return nil, fmt.Errorf("xquery: %q evaluates to a %s, not a node set", q.src, kindName(v.Kind))
	}
	return v.Nodes, nil
}

// EvalValue evaluates the query against doc and returns the raw value.
func (q *Query) EvalValue(doc *xmldoc.Document) (Value, error) {
	if doc == nil || doc.Root == nil {
		return Value{}, fmt.Errorf("xquery: nil document")
	}
	ctx := evalCtx{node: doc.Root, pos: 1, size: 1}
	return evalExpr(q.expr, ctx)
}

// EvalBool evaluates the query and converts the result to a boolean.
func (q *Query) EvalBool(doc *xmldoc.Document) (bool, error) {
	v, err := q.EvalValue(doc)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

// EvalString evaluates the query and converts the result to a string.
func (q *Query) EvalString(doc *xmldoc.Document) (string, error) {
	v, err := q.EvalValue(doc)
	if err != nil {
		return "", err
	}
	return v.AsString(), nil
}

func kindName(k ValueKind) string {
	switch k {
	case NodeSetValue:
		return "node-set"
	case StringValue:
		return "string"
	case NumberValue:
		return "number"
	default:
		return "boolean"
	}
}

func evalExpr(e Expr, ctx evalCtx) (Value, error) {
	switch v := e.(type) {
	case NumberLit:
		return num(float64(v)), nil
	case StringLit:
		return str(string(v)), nil
	case *BinaryExpr:
		return evalBinary(v, ctx)
	case *FuncCall:
		return evalFunc(v, ctx)
	case *PathExpr:
		ns, err := evalPath(v, ctx)
		if err != nil {
			return Value{}, err
		}
		return nodeSet(ns), nil
	default:
		return Value{}, fmt.Errorf("xquery: unknown expression %T", e)
	}
}

func evalBinary(b *BinaryExpr, ctx evalCtx) (Value, error) {
	switch b.Op {
	case "or":
		l, err := evalExpr(b.L, ctx)
		if err != nil {
			return Value{}, err
		}
		if l.AsBool() {
			return boolean(true), nil
		}
		r, err := evalExpr(b.R, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolean(r.AsBool()), nil
	case "and":
		l, err := evalExpr(b.L, ctx)
		if err != nil {
			return Value{}, err
		}
		if !l.AsBool() {
			return boolean(false), nil
		}
		r, err := evalExpr(b.R, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolean(r.AsBool()), nil
	}
	l, err := evalExpr(b.L, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(b.R, ctx)
	if err != nil {
		return Value{}, err
	}
	switch b.Op {
	case "+", "-":
		a, c := l.AsNumber(), r.AsNumber()
		if b.Op == "+" {
			return num(a + c), nil
		}
		return num(a - c), nil
	case "=", "!=", "<", "<=", ">", ">=":
		return boolean(compare(b.Op, l, r)), nil
	default:
		return Value{}, fmt.Errorf("xquery: unknown operator %q", b.Op)
	}
}

// compare implements XPath 1.0 comparison semantics, including the
// existential semantics of node-set comparisons.
func compare(op string, l, r Value) bool {
	if l.Kind == NodeSetValue && r.Kind == NodeSetValue {
		for _, ln := range l.Nodes {
			for _, rn := range r.Nodes {
				if cmpAtoms(op, str(nodeString(ln)), str(nodeString(rn))) {
					return true
				}
			}
		}
		return false
	}
	if l.Kind == NodeSetValue {
		for _, ln := range l.Nodes {
			if cmpAtoms(op, str(nodeString(ln)), r) {
				return true
			}
		}
		return false
	}
	if r.Kind == NodeSetValue {
		for _, rn := range r.Nodes {
			if cmpAtoms(op, l, str(nodeString(rn))) {
				return true
			}
		}
		return false
	}
	return cmpAtoms(op, l, r)
}

func cmpAtoms(op string, l, r Value) bool {
	switch op {
	case "=", "!=":
		var eq bool
		switch {
		case l.Kind == BooleanValue || r.Kind == BooleanValue:
			eq = l.AsBool() == r.AsBool()
		case l.Kind == NumberValue || r.Kind == NumberValue:
			eq = l.AsNumber() == r.AsNumber()
		default:
			eq = l.AsString() == r.AsString()
		}
		if op == "=" {
			return eq
		}
		return !eq
	default:
		a, b := l.AsNumber(), r.AsNumber()
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	}
}

func evalPath(p *PathExpr, ctx evalCtx) ([]*xmldoc.Node, error) {
	var current []*xmldoc.Node
	if p.Absolute {
		root := ctx.node
		for root.Parent != nil {
			root = root.Parent
		}
		if len(p.Steps) == 0 {
			return []*xmldoc.Node{root}, nil
		}
		// The context for the first absolute step is a virtual document
		// node whose only child is the root element; model it by running
		// the first step against the root's "self or children".
		first := p.Steps[0]
		var err error
		current, err = applyStepFromDocument(first, root, ctx)
		if err != nil {
			return nil, err
		}
		for _, s := range p.Steps[1:] {
			current, err = applyStepAll(s, current, ctx)
			if err != nil {
				return nil, err
			}
		}
		return current, nil
	}
	current = []*xmldoc.Node{ctx.node}
	var err error
	for _, s := range p.Steps {
		current, err = applyStepAll(s, current, ctx)
		if err != nil {
			return nil, err
		}
	}
	return current, nil
}

// applyStepFromDocument runs the first step of an absolute path, where the
// conceptual context node is the document: /a matches the root element
// named a; //a matches any descendant-or-self element named a.
func applyStepFromDocument(s Step, root *xmldoc.Node, outer evalCtx) ([]*xmldoc.Node, error) {
	var candidates []*xmldoc.Node
	switch s.Axis {
	case AxisChild:
		candidates = matchTest(s, []*xmldoc.Node{root})
	case AxisDescendant:
		all := []*xmldoc.Node{root}
		root.Descendants(func(n *xmldoc.Node) bool {
			all = append(all, n)
			return true
		})
		candidates = matchTest(s, all)
	case AxisAttribute:
		candidates = nil // the document node has no attributes
	case AxisSelf, AxisParent:
		candidates = nil
	}
	return applyPreds(s.Preds, candidates, outer)
}

func applyStepAll(s Step, nodes []*xmldoc.Node, outer evalCtx) ([]*xmldoc.Node, error) {
	var out []*xmldoc.Node
	seen := map[*xmldoc.Node]bool{}
	for _, n := range nodes {
		res, err := applyStep(s, n, outer)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sortDocOrder(out)
	return out, nil
}

func applyStep(s Step, n *xmldoc.Node, outer evalCtx) ([]*xmldoc.Node, error) {
	var candidates []*xmldoc.Node
	switch s.Axis {
	case AxisChild:
		candidates = matchTest(s, n.Children)
	case AxisDescendant:
		var all []*xmldoc.Node
		n.Descendants(func(d *xmldoc.Node) bool {
			all = append(all, d)
			return true
		})
		candidates = matchTest(s, all)
	case AxisSelf:
		candidates = matchTest(s, []*xmldoc.Node{n})
	case AxisParent:
		if n.Parent != nil {
			candidates = matchTest(s, []*xmldoc.Node{n.Parent})
		}
	case AxisAttribute:
		// Attributes are surfaced as synthetic text nodes so that string
		// conversion and comparison work uniformly.
		for _, a := range n.Attrs {
			if s.Kind == TestAny || a.Name == s.Name {
				candidates = append(candidates, syntheticAttrNode(n, a))
			}
		}
	}
	return applyPreds(s.Preds, candidates, outer)
}

// syntheticAttrNode materialises an attribute as a detached text node.
// Its value is the attribute value. The node is not part of the document
// tree; Parent points at the owning element so ".." still works.
func syntheticAttrNode(owner *xmldoc.Node, a xmldoc.Attr) *xmldoc.Node {
	return &xmldoc.Node{
		ID:     owner.ID, // attribute results map back to the owning element
		Kind:   xmldoc.TextNode,
		Name:   a.Name,
		Value:  a.Value,
		Parent: owner,
	}
}

func matchTest(s Step, nodes []*xmldoc.Node) []*xmldoc.Node {
	var out []*xmldoc.Node
	for _, n := range nodes {
		switch s.Kind {
		case TestName:
			if n.Kind == xmldoc.ElementNode && n.Name == s.Name {
				out = append(out, n)
			}
		case TestAny:
			if n.Kind == xmldoc.ElementNode {
				out = append(out, n)
			}
		case TestText:
			if n.Kind == xmldoc.TextNode {
				out = append(out, n)
			}
		case TestNode:
			out = append(out, n)
		}
	}
	return out
}

func applyPreds(preds []Expr, nodes []*xmldoc.Node, outer evalCtx) ([]*xmldoc.Node, error) {
	cur := nodes
	for _, pred := range preds {
		var kept []*xmldoc.Node
		size := len(cur)
		for i, n := range cur {
			v, err := evalExpr(pred, evalCtx{node: n, pos: i + 1, size: size})
			if err != nil {
				return nil, err
			}
			// A numeric predicate is a position test.
			if v.Kind == NumberValue {
				if float64(i+1) == v.Num {
					kept = append(kept, n)
				}
				continue
			}
			if v.AsBool() {
				kept = append(kept, n)
			}
		}
		cur = kept
	}
	return cur, nil
}

// sortDocOrder sorts nodes by their document node ID, which xmldoc assigns
// in creation order (document order for parsed documents).
func sortDocOrder(ns []*xmldoc.Node) {
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// --- core function library ---

var arity = map[string][2]int{
	"contains":         {2, 2},
	"starts-with":      {2, 2},
	"count":            {1, 1},
	"position":         {0, 0},
	"last":             {0, 0},
	"name":             {0, 1},
	"not":              {1, 1},
	"string":           {0, 1},
	"number":           {0, 1},
	"true":             {0, 0},
	"false":            {0, 0},
	"concat":           {2, 16},
	"string-length":    {0, 1},
	"normalize-space":  {0, 1},
	"substring-before": {2, 2},
	"substring-after":  {2, 2},
}

var coreFunctions = arity // presence check shares the table

func evalFunc(f *FuncCall, ctx evalCtx) (Value, error) {
	argv := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return Value{}, err
		}
		argv[i] = v
	}
	switch f.Name {
	case "contains":
		return boolean(strings.Contains(argv[0].AsString(), argv[1].AsString())), nil
	case "starts-with":
		return boolean(strings.HasPrefix(argv[0].AsString(), argv[1].AsString())), nil
	case "count":
		if argv[0].Kind != NodeSetValue {
			return Value{}, fmt.Errorf("xquery: count() requires a node set")
		}
		return num(float64(len(argv[0].Nodes))), nil
	case "position":
		return num(float64(ctx.pos)), nil
	case "last":
		return num(float64(ctx.size)), nil
	case "name":
		n := ctx.node
		if len(argv) == 1 {
			if argv[0].Kind != NodeSetValue || len(argv[0].Nodes) == 0 {
				return str(""), nil
			}
			n = argv[0].Nodes[0]
		}
		return str(n.Name), nil
	case "not":
		return boolean(!argv[0].AsBool()), nil
	case "string":
		if len(argv) == 0 {
			return str(nodeString(ctx.node)), nil
		}
		return str(argv[0].AsString()), nil
	case "number":
		if len(argv) == 0 {
			return num(Value{Kind: StringValue, Str: nodeString(ctx.node)}.AsNumber()), nil
		}
		return num(argv[0].AsNumber()), nil
	case "true":
		return boolean(true), nil
	case "false":
		return boolean(false), nil
	case "concat":
		var sb strings.Builder
		for _, a := range argv {
			sb.WriteString(a.AsString())
		}
		return str(sb.String()), nil
	case "string-length":
		if len(argv) == 0 {
			return num(float64(len(nodeString(ctx.node)))), nil
		}
		return num(float64(len(argv[0].AsString()))), nil
	case "normalize-space":
		s := ""
		if len(argv) == 0 {
			s = nodeString(ctx.node)
		} else {
			s = argv[0].AsString()
		}
		return str(strings.Join(strings.Fields(s), " ")), nil
	case "substring-before":
		s, sep := argv[0].AsString(), argv[1].AsString()
		if i := strings.Index(s, sep); i >= 0 {
			return str(s[:i]), nil
		}
		return str(""), nil
	case "substring-after":
		s, sep := argv[0].AsString(), argv[1].AsString()
		if i := strings.Index(s, sep); i >= 0 {
			return str(s[i+len(sep):]), nil
		}
		return str(""), nil
	default:
		return Value{}, fmt.Errorf("xquery: unknown function %q", f.Name)
	}
}
