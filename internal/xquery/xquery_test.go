package xquery

import (
	"strings"
	"testing"
	"testing/quick"

	"graphitti/internal/xmldoc"
)

const sample = `<annotation id="a7" kind="comment">
  <dc>
    <creator>gupta</creator>
    <subject>influenza</subject>
    <date>2007-11-02</date>
  </dc>
  <body>The protease cleavage site overlaps segment 3.</body>
  <referent type="sequence" object="NC_007362" lo="100" hi="240"/>
  <referent type="image" object="brain-17" lo="0" hi="0"/>
  <ontologyRef term="GO:0008233"/>
</annotation>`

func doc(t *testing.T) *xmldoc.Document {
	t.Helper()
	d, err := xmldoc.ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func evalNodes(t *testing.T, d *xmldoc.Document, expr string) []*xmldoc.Node {
	t.Helper()
	q, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	ns, err := q.Eval(d)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return ns
}

func evalStr(t *testing.T, d *xmldoc.Document, expr string) string {
	t.Helper()
	q, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	s, err := q.EvalString(d)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", expr, err)
	}
	return s
}

func evalBool(t *testing.T, d *xmldoc.Document, expr string) bool {
	t.Helper()
	q, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	b, err := q.EvalBool(d)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", expr, err)
	}
	return b
}

func TestAbsolutePaths(t *testing.T) {
	d := doc(t)
	tests := []struct {
		expr string
		n    int
	}{
		{"/annotation", 1},
		{"/annotation/dc", 1},
		{"/annotation/dc/creator", 1},
		{"/annotation/referent", 2},
		{"/nothing", 0},
		{"/annotation/nothing", 0},
		{"//referent", 2},
		{"//creator", 1},
		{"/annotation/*", 5},
		{"//*", 9},
		{"/", 1},
	}
	for _, tc := range tests {
		if got := len(evalNodes(t, d, tc.expr)); got != tc.n {
			t.Errorf("%q matched %d nodes, want %d", tc.expr, got, tc.n)
		}
	}
}

func TestRelativePathFromRoot(t *testing.T) {
	d := doc(t)
	// Relative paths evaluate with the root element as context.
	if got := len(evalNodes(t, d, "dc/creator")); got != 1 {
		t.Errorf("dc/creator matched %d", got)
	}
	if got := len(evalNodes(t, d, "referent")); got != 2 {
		t.Errorf("referent matched %d", got)
	}
}

func TestTextNodes(t *testing.T) {
	d := doc(t)
	ns := evalNodes(t, d, "/annotation/body/text()")
	if len(ns) != 1 || !strings.Contains(ns[0].Value, "protease") {
		t.Fatalf("body text() = %v", ns)
	}
}

func TestAttributes(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, "/annotation/@id"); got != "a7" {
		t.Errorf("@id = %q", got)
	}
	if got := len(evalNodes(t, d, "//referent/@type")); got != 2 {
		t.Errorf("//referent/@type matched %d", got)
	}
	if got := len(evalNodes(t, d, "/annotation/@*")); got != 2 {
		t.Errorf("@* matched %d", got)
	}
}

func TestPredicates(t *testing.T) {
	d := doc(t)
	tests := []struct {
		expr string
		n    int
	}{
		{"//referent[@type='sequence']", 1},
		{"//referent[@type='image']", 1},
		{"//referent[@type='video']", 0},
		{"//referent[1]", 1},
		{"//referent[2]", 1},
		{"//referent[3]", 0},
		{"//referent[position()=2]", 1},
		{"//referent[last()]", 1},
		{"//referent[@lo='100' and @hi='240']", 1},
		{"//referent[@type='image' or @type='sequence']", 2},
		{"/annotation[dc/creator='gupta']", 1},
		{"/annotation[dc/creator='nobody']", 0},
		{"//referent[@lo > 50]", 1},
		{"//referent[@lo >= 0]", 2},
		{"//referent[not(@type='image')]", 1},
	}
	for _, tc := range tests {
		if got := len(evalNodes(t, d, tc.expr)); got != tc.n {
			t.Errorf("%q matched %d nodes, want %d", tc.expr, got, tc.n)
		}
	}
}

func TestContains(t *testing.T) {
	d := doc(t)
	if !evalBool(t, d, "contains(/annotation/body, 'protease')") {
		t.Error("contains(body, protease) = false")
	}
	if evalBool(t, d, "contains(/annotation/body, 'kinase')") {
		t.Error("contains(body, kinase) = true")
	}
	if got := len(evalNodes(t, d, "//body[contains(., 'protease')]")); got != 1 {
		t.Errorf("predicate contains matched %d", got)
	}
	if !evalBool(t, d, "starts-with(/annotation/dc/date, '2007')") {
		t.Error("starts-with failed")
	}
}

func TestCountAndArithmetic(t *testing.T) {
	d := doc(t)
	q := MustCompile("count(//referent)")
	v, err := q.EvalValue(d)
	if err != nil || v.AsNumber() != 2 {
		t.Fatalf("count(//referent) = %v, %v", v, err)
	}
	q = MustCompile("count(//referent) + 1")
	v, _ = q.EvalValue(d)
	if v.AsNumber() != 3 {
		t.Fatalf("count+1 = %v", v.AsNumber())
	}
	if !evalBool(t, d, "count(//referent) >= 2") {
		t.Error("count comparison failed")
	}
}

func TestStringFunctions(t *testing.T) {
	d := doc(t)
	if got := evalStr(t, d, "concat(/annotation/dc/creator, ':', /annotation/dc/subject)"); got != "gupta:influenza" {
		t.Errorf("concat = %q", got)
	}
	if got := evalStr(t, d, "substring-before(/annotation/dc/date, '-')"); got != "2007" {
		t.Errorf("substring-before = %q", got)
	}
	if got := evalStr(t, d, "substring-after(//ontologyRef/@term, ':')"); got != "0008233" {
		t.Errorf("substring-after = %q", got)
	}
	if got := evalStr(t, d, "normalize-space('  a   b ')"); got != "a b" {
		t.Errorf("normalize-space = %q", got)
	}
	q := MustCompile("string-length(/annotation/dc/creator)")
	v, _ := q.EvalValue(d)
	if v.AsNumber() != 5 {
		t.Errorf("string-length = %v", v.AsNumber())
	}
}

func TestParentAndSelf(t *testing.T) {
	d := doc(t)
	ns := evalNodes(t, d, "//creator/..")
	if len(ns) != 1 || ns[0].Name != "dc" {
		t.Fatalf("//creator/.. = %v", ns)
	}
	ns = evalNodes(t, d, "//creator/.")
	if len(ns) != 1 || ns[0].Name != "creator" {
		t.Fatalf("//creator/. = %v", ns)
	}
}

func TestDescendantDeduplication(t *testing.T) {
	d, err := xmldoc.ParseString(`<a><b><c/><c/></b><b><c/></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	// //b//c must not duplicate results.
	q := MustCompile("//b//c")
	ns, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 {
		t.Fatalf("//b//c matched %d nodes, want 3", len(ns))
	}
	seen := map[uint64]bool{}
	for _, n := range ns {
		if seen[n.ID] {
			t.Fatal("duplicate node in result")
		}
		seen[n.ID] = true
	}
}

func TestDocumentOrder(t *testing.T) {
	d, err := xmldoc.ParseString(`<a><x>1</x><y>2</y><x>3</x></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := MustCompile("//x").Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].Text() != "1" || ns[1].Text() != "3" {
		t.Fatalf("//x order wrong: %v", ns)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"/annotation[",
		"//referent[@type=]",
		"foo(",
		"unknownfn(1)",
		"contains('a')", // wrong arity
		"count(1,2)",    // wrong arity
		"/annotation/referent]",
		"'unterminated",
		"//a ! b",
		"@",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalTypeError(t *testing.T) {
	d := doc(t)
	q := MustCompile("count(//referent)")
	if _, err := q.Eval(d); err == nil {
		t.Fatal("Eval of a numeric expression should fail; use EvalValue")
	}
}

func TestQueryStringRendering(t *testing.T) {
	// The rendered form must recompile to an equivalent query.
	exprs := []string{
		"/annotation/dc/creator",
		"//referent[@type='sequence'][1]",
		"count(//referent) + 1",
		"contains(/a/b, 'x') and //c",
		"//body/text()",
		"//a/@href",
	}
	d := doc(t)
	for _, src := range exprs {
		q1 := MustCompile(src)
		q2, err := Compile(q1.String())
		if err != nil {
			t.Errorf("rendered form %q does not recompile: %v", q1.String(), err)
			continue
		}
		v1, err1 := q1.EvalValue(d)
		v2, err2 := q2.EvalValue(d)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q: eval error mismatch", src)
			continue
		}
		if err1 == nil && v1.AsString() != v2.AsString() {
			t.Errorf("%q: %q vs %q after re-render", src, v1.AsString(), v2.AsString())
		}
	}
}

func TestValueConversions(t *testing.T) {
	tests := []struct {
		v    Value
		b    bool
		s    string
		nOK  bool
		nVal float64
	}{
		{Value{Kind: StringValue, Str: ""}, false, "", false, 0},
		{Value{Kind: StringValue, Str: "12"}, true, "12", true, 12},
		{Value{Kind: NumberValue, Num: 0}, false, "0", true, 0},
		{Value{Kind: NumberValue, Num: 2.5}, true, "2.5", true, 2.5},
		{Value{Kind: BooleanValue, Bool: true}, true, "true", true, 1},
		{Value{Kind: NodeSetValue}, false, "", false, 0},
	}
	for _, tc := range tests {
		if tc.v.AsBool() != tc.b {
			t.Errorf("%+v AsBool = %v", tc.v, tc.v.AsBool())
		}
		if tc.v.AsString() != tc.s {
			t.Errorf("%+v AsString = %q", tc.v, tc.v.AsString())
		}
		if tc.nOK && tc.v.AsNumber() != tc.nVal {
			t.Errorf("%+v AsNumber = %v", tc.v, tc.v.AsNumber())
		}
	}
}

// TestQuickNumericPredicates cross-checks numeric position predicates
// against manual indexing for generated sibling counts.
func TestQuickNumericPredicates(t *testing.T) {
	check := func(count uint8, pick uint8) bool {
		n := int(count%20) + 1
		d := xmldoc.NewDocument("r")
		for i := 0; i < n; i++ {
			d.AddElementText(d.Root, "item", string(rune('a'+i%26)))
		}
		k := int(pick)%n + 1
		q, err := Compile("/r/item[" + itoa(k) + "]")
		if err != nil {
			return false
		}
		ns, err := q.Eval(d)
		if err != nil || len(ns) != 1 {
			return false
		}
		return ns[0].Text() == string(rune('a'+(k-1)%26))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestQuickContainsConsistency verifies contains() against strings.Contains
// over generated documents.
func TestQuickContainsConsistency(t *testing.T) {
	check := func(body, probe string) bool {
		clean := sanitizeText(body)
		d := xmldoc.NewDocument("r")
		d.AddElementText(d.Root, "body", clean)
		p := sanitizeText(probe)
		if p == "" {
			p = "z"
		}
		q, err := Compile("contains(/r/body, '" + p + "')")
		if err != nil {
			return false
		}
		got, err := q.EvalBool(d)
		if err != nil {
			return false
		}
		return got == strings.Contains(clean, p)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == ' ' {
			sb.WriteRune(r)
		}
	}
	return strings.TrimSpace(sb.String())
}

func BenchmarkEvalDescendant(b *testing.B) {
	d := xmldoc.NewDocument("root")
	for i := 0; i < 200; i++ {
		sec := d.AddElement(d.Root, "section")
		for j := 0; j < 10; j++ {
			d.AddElementText(sec, "para", "some text with protease maybe")
		}
	}
	q := MustCompile("//para[contains(., 'protease')]")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(d); err != nil {
			b.Fatal(err)
		}
	}
}
