package rtree

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSnapshotImmutable pins a snapshot, keeps mutating the tree (enough
// inserts and deletes to force splits and condensation), and checks the
// snapshot still answers exactly as at capture time.
func TestSnapshotImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, err := NewTree[int](2)
	if err != nil {
		t.Fatal(err)
	}
	insertRand := func(id uint64) {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := Rect2D(x, y, x+1+rng.Float64()*40, y+1+rng.Float64()*40)
		if err := tr.Insert(r, id, int(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 600; i++ {
		insertRand(i)
	}

	snap := tr.Snapshot()
	q := Rect2D(100, 100, 400, 400)
	wantSearch := snap.Search(q)
	wantBounds, _ := snap.Bounds()
	wantLen := snap.Len()

	for i := uint64(0); i < 500; i++ {
		tr.Delete(i)
	}
	for i := uint64(1000); i < 1900; i++ {
		insertRand(i)
	}

	if got := snap.Search(q); !reflect.DeepEqual(got, wantSearch) {
		t.Fatalf("snapshot Search changed after mutation: %d vs %d hits", len(got), len(wantSearch))
	}
	if got, _ := snap.Bounds(); got != wantBounds {
		t.Fatalf("snapshot Bounds changed: %v vs %v", got, wantBounds)
	}
	if snap.Len() != wantLen {
		t.Fatalf("snapshot Len changed: %d vs %d", snap.Len(), wantLen)
	}
	if tr.Len() != 600-500+900 {
		t.Fatalf("live tree Len = %d", tr.Len())
	}
	if got := tr.Snapshot().Search(q); !reflect.DeepEqual(got, tr.Search(q)) {
		t.Fatal("fresh snapshot disagrees with live tree")
	}
}
