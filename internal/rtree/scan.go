package rtree

import (
	"fmt"
	"sort"
)

// Scan is a naive, unindexed collection of rectangles answering the same
// queries as Tree by linear search. It is the baseline for the A3 ablation
// (R-tree vs. scan) and the oracle for the tree's property tests.
type Scan[V any] struct {
	dims    int
	entries []Entry[V]
	ids     map[uint64]int
}

// NewScan returns an empty scan baseline for rectangles of the given
// dimensionality.
func NewScan[V any](dims int) (*Scan[V], error) {
	if dims < 2 || dims > MaxDims {
		return nil, fmt.Errorf("%w: dims %d", ErrInvalid, dims)
	}
	return &Scan[V]{dims: dims}, nil
}

// Len reports the number of entries.
func (s *Scan[V]) Len() int { return len(s.entries) }

// Insert adds an entry under the same contract as Tree.Insert.
func (s *Scan[V]) Insert(r Rect, id uint64, val V) error {
	if !r.Valid() || r.Dims != s.dims {
		return fmt.Errorf("%w: %v (dims %d)", ErrInvalid, r, s.dims)
	}
	if s.ids == nil {
		s.ids = make(map[uint64]int)
	}
	if _, dup := s.ids[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	s.ids[id] = len(s.entries)
	s.entries = append(s.entries, Entry[V]{Rect: r, ID: id, Value: val})
	return nil
}

// Delete removes the entry with the given ID, reporting whether it existed.
func (s *Scan[V]) Delete(id uint64) bool {
	i, ok := s.ids[id]
	if !ok {
		return false
	}
	last := len(s.entries) - 1
	s.entries[i] = s.entries[last]
	s.ids[s.entries[i].ID] = i
	s.entries = s.entries[:last]
	delete(s.ids, id)
	return true
}

// Search returns all entries overlapping q, sorted by ID.
func (s *Scan[V]) Search(q Rect) []Entry[V] {
	if !q.Valid() || q.Dims != s.dims {
		return nil
	}
	var out []Entry[V]
	for _, e := range s.entries {
		if e.Rect.Overlaps(q) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the number of entries overlapping q.
func (s *Scan[V]) Count(q Rect) int {
	if !q.Valid() || q.Dims != s.dims {
		return 0
	}
	n := 0
	for _, e := range s.entries {
		if e.Rect.Overlaps(q) {
			n++
		}
	}
	return n
}
