package rtree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectValidity(t *testing.T) {
	tests := []struct {
		r     Rect
		valid bool
	}{
		{Rect2D(0, 0, 1, 1), true},
		{Rect2D(0, 0, 0, 1), false},
		{Rect2D(0, 0, 1, 0), false},
		{Rect2D(5, 5, 1, 8), false},
		{Rect3D(0, 0, 0, 1, 1, 1), true},
		{Rect3D(0, 0, 0, 1, 1, 0), false},
		{Rect{Dims: 1}, false},
		{Rect{Dims: 4}, false},
	}
	for _, tc := range tests {
		if got := tc.r.Valid(); got != tc.valid {
			t.Errorf("%v.Valid() = %v, want %v", tc.r, got, tc.valid)
		}
	}
}

func TestRectOverlapIntersect(t *testing.T) {
	a := Rect2D(0, 0, 10, 10)
	b := Rect2D(5, 5, 15, 15)
	c := Rect2D(10, 0, 20, 10) // touching edge: no overlap (half-open)
	d := Rect3D(0, 0, 0, 1, 1, 1)

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("touching rectangles must not overlap under half-open semantics")
	}
	if a.Overlaps(d) {
		t.Error("2-D and 3-D rectangles must never overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || got != Rect2D(5, 5, 10, 10) {
		t.Errorf("Intersect = (%v,%v)", got, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("Intersect of touching rects should be empty")
	}
	if u := a.Union(b); u != Rect2D(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	if !a.Contains(Rect2D(1, 1, 9, 9)) || a.Contains(b) {
		t.Error("Contains wrong")
	}
	if a.Volume() != 100 {
		t.Errorf("Volume = %g", a.Volume())
	}
	if d.Volume() != 1 {
		t.Errorf("3-D Volume = %g", d.Volume())
	}
}

func TestNewTreeDims(t *testing.T) {
	if _, err := NewTree[int](1); !errors.Is(err, ErrInvalid) {
		t.Fatal("dims=1 should be rejected")
	}
	if _, err := NewTree[int](4); !errors.Is(err, ErrInvalid) {
		t.Fatal("dims=4 should be rejected")
	}
	tr, err := NewTree[int](3)
	if err != nil || tr.Dims() != 3 {
		t.Fatalf("NewTree(3) = (%v,%v)", tr, err)
	}
}

func TestTreeInsertErrors(t *testing.T) {
	tr, _ := NewTree[string](2)
	if err := tr.Insert(Rect2D(0, 0, 0, 1), 1, "x"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid rect: err = %v", err)
	}
	if err := tr.Insert(Rect3D(0, 0, 0, 1, 1, 1), 1, "x"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("dims mismatch: err = %v", err)
	}
	if err := tr.Insert(Rect2D(0, 0, 1, 1), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Rect2D(2, 2, 3, 3), 1, "y"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate id: err = %v", err)
	}
}

func TestTreeSearchSmall(t *testing.T) {
	tr, _ := NewTree[string](2)
	rects := map[uint64]Rect{
		1: Rect2D(0, 0, 10, 10),
		2: Rect2D(5, 5, 15, 15),
		3: Rect2D(20, 20, 30, 30),
		4: Rect2D(-5, -5, 1, 1),
	}
	for id, r := range rects {
		if err := tr.Insert(r, id, ""); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		q    Rect
		want []uint64
	}{
		{Rect2D(0, 0, 1, 1), []uint64{1, 4}},
		{Rect2D(6, 6, 7, 7), []uint64{1, 2}},
		{Rect2D(100, 100, 110, 110), nil},
		{Rect2D(-100, -100, 100, 100), []uint64{1, 2, 3, 4}},
		{Rect2D(10, 10, 20, 20), []uint64{2}}, // rect 1 touches at corner only
	}
	for _, tc := range tests {
		got := entryIDs(tr.Search(tc.q))
		if !sameIDs(got, tc.want) {
			t.Errorf("Search(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestTreeLargeRandom(t *testing.T) {
	tr, _ := NewTree[int](2)
	sc, _ := NewScan[int](2)
	rng := rand.New(rand.NewSource(21))
	const n = 5000
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := Rect2D(x, y, x+1+rng.Float64()*20, y+1+rng.Float64()*20)
		if err := tr.Insert(r, uint64(i), i); err != nil {
			t.Fatal(err)
		}
		if err := sc.Insert(r, uint64(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := Rect2D(x, y, x+30, y+30)
		a, b := entryIDs(tr.Search(q)), entryIDs(sc.Search(q))
		if !sameIDs(a, b) {
			t.Fatalf("query %d: tree %d hits, scan %d hits", i, len(a), len(b))
		}
	}
}

func TestTreeDelete(t *testing.T) {
	tr, _ := NewTree[int](2)
	sc, _ := NewScan[int](2)
	rng := rand.New(rand.NewSource(33))
	const n = 1500
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		r := Rect2D(x, y, x+1+rng.Float64()*10, y+1+rng.Float64()*10)
		_ = tr.Insert(r, uint64(i), i)
		_ = sc.Insert(r, uint64(i), i)
	}
	perm := rng.Perm(n)
	for k, i := range perm[:n/2] {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missed at step %d", i, k)
		}
		sc.Delete(uint64(i))
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		q := Rect2D(x, y, x+25, y+25)
		if !sameIDs(entryIDs(tr.Search(q)), entryIDs(sc.Search(q))) {
			t.Fatalf("after deletes, query %d disagrees with oracle", i)
		}
	}
	// Delete the rest.
	for _, i := range perm[n/2:] {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Delete(0) {
		t.Fatal("Delete on empty tree reported a hit")
	}
}

func TestTree3D(t *testing.T) {
	tr, _ := NewTree[int](3)
	sc, _ := NewScan[int](3)
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	for i := 0; i < n; i++ {
		x, y, z := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		r := Rect3D(x, y, z, x+1+rng.Float64()*5, y+1+rng.Float64()*5, z+1+rng.Float64()*5)
		_ = tr.Insert(r, uint64(i), i)
		_ = sc.Insert(r, uint64(i), i)
	}
	for i := 0; i < 100; i++ {
		x, y, z := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		q := Rect3D(x, y, z, x+10, y+10, z+10)
		if !sameIDs(entryIDs(tr.Search(q)), entryIDs(sc.Search(q))) {
			t.Fatalf("3-D query %d disagrees with oracle", i)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 3000
	entries := make([]Entry[int], n)
	sc, _ := NewScan[int](2)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := Rect2D(x, y, x+1+rng.Float64()*15, y+1+rng.Float64()*15)
		entries[i] = Entry[int]{Rect: r, ID: uint64(i), Value: i}
		_ = sc.Insert(r, uint64(i), i)
	}
	tr, err := BulkLoad(2, entries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 150; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := Rect2D(x, y, x+40, y+40)
		if !sameIDs(entryIDs(tr.Search(q)), entryIDs(sc.Search(q))) {
			t.Fatalf("bulk-loaded tree disagrees with oracle on query %d", i)
		}
	}
	// Bulk-loaded trees should be shallow.
	if h := tr.Height(); h > 4 {
		t.Errorf("Height = %d for %d STR-packed entries", h, n)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	if _, err := BulkLoad(2, []Entry[int]{{Rect: Rect2D(0, 0, 0, 0), ID: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatal("invalid rect should be rejected")
	}
	es := []Entry[int]{
		{Rect: Rect2D(0, 0, 1, 1), ID: 1},
		{Rect: Rect2D(2, 2, 3, 3), ID: 1},
	}
	if _, err := BulkLoad(2, es); !errors.Is(err, ErrDuplicateID) {
		t.Fatal("duplicate IDs should be rejected")
	}
	tr, err := BulkLoad[int](2, nil)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty bulk load = (%v, %v)", tr.Len(), err)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr, _ := NewTree[int](2)
	for i := 0; i < 200; i++ {
		_ = tr.Insert(Rect2D(0, 0, 100, 100), uint64(i), i)
	}
	count := 0
	tr.Visit(Rect2D(1, 1, 2, 2), func(Entry[int]) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d, want 5", count)
	}
}

func TestBoundsAndHeight(t *testing.T) {
	tr, _ := NewTree[int](2)
	if _, ok := tr.Bounds(); ok {
		t.Fatal("Bounds of empty tree reported ok")
	}
	_ = tr.Insert(Rect2D(3, 4, 5, 6), 1, 0)
	_ = tr.Insert(Rect2D(-1, -2, 0, 0), 2, 0)
	b, ok := tr.Bounds()
	if !ok || b != Rect2D(-1, -2, 5, 6) {
		t.Fatalf("Bounds = (%v,%v)", b, ok)
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d", tr.Height())
	}
}

// TestQuickTreeVsScan compares the tree against the oracle under random
// insert/delete workloads.
func TestQuickTreeVsScan(t *testing.T) {
	type op struct {
		X, Y uint8
		W, H uint8
		Del  bool
	}
	check := func(ops []op) bool {
		tr, _ := NewTree[int](2)
		sc, _ := NewScan[int](2)
		id := uint64(0)
		var live []uint64
		for _, o := range ops {
			if o.Del && len(live) > 0 {
				victim := live[int(o.X)%len(live)]
				live = removeID(live, victim)
				if tr.Delete(victim) != sc.Delete(victim) {
					return false
				}
				continue
			}
			r := Rect2D(float64(o.X), float64(o.Y), float64(o.X)+float64(o.W)+1, float64(o.Y)+float64(o.H)+1)
			if tr.Insert(r, id, 0) != nil || sc.Insert(r, id, 0) != nil {
				return false
			}
			live = append(live, id)
			id++
		}
		for qx := 0.0; qx < 256; qx += 41 {
			for qy := 0.0; qy < 256; qy += 41 {
				q := Rect2D(qx, qy, qx+60, qy+60)
				if !sameIDs(entryIDs(tr.Search(q)), entryIDs(sc.Search(q))) {
					return false
				}
				if tr.Count(q) != sc.Count(q) {
					return false
				}
			}
		}
		return tr.Len() == sc.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRectAlgebra checks the SUB_X operator identities on rectangles.
func TestQuickRectAlgebra(t *testing.T) {
	mk := func(x, y, w, h uint8) Rect {
		return Rect2D(float64(x), float64(y), float64(x)+float64(w)+1, float64(y)+float64(h)+1)
	}
	commutative := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a, b := mk(ax, ay, aw, ah), mk(bx, by, bw, bh)
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		return okx == oky && x == y && a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("rect intersect not commutative: %v", err)
	}
	consistent := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a, b := mk(ax, ay, aw, ah), mk(bx, by, bw, bh)
		_, ok := a.Intersect(b)
		return ok == a.Overlaps(b)
	}
	if err := quick.Check(consistent, nil); err != nil {
		t.Errorf("rect intersect/ifOverlap inconsistent: %v", err)
	}
	unionContains := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a, b := mk(ax, ay, aw, ah), mk(bx, by, bw, bh)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(unionContains, nil); err != nil {
		t.Errorf("union does not contain operands: %v", err)
	}
}

func entryIDs[V any](es []Entry[V]) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[uint64]int, len(a))
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		seen[x]--
		if seen[x] < 0 {
			return false
		}
	}
	return true
}

func removeID(s []uint64, v uint64) []uint64 {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func BenchmarkTreeSearch(b *testing.B) {
	tr, _ := NewTree[int](2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50_000; i++ {
		x, y := rng.Float64()*10_000, rng.Float64()*10_000
		_ = tr.Insert(Rect2D(x, y, x+1+rng.Float64()*30, y+1+rng.Float64()*30), uint64(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i*7919%10_000 + 1)
		tr.Count(Rect2D(x, x, x+50, x+50))
	}
}
