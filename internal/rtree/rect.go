// Package rtree implements the 2-D/3-D sub-structure index used by
// Graphitti for image data.
//
// The paper stores annotated image regions in "a collection of R-tree for
// 2D and 3D data", with all regions of images registered to the same
// coordinate system sharing a single tree ("regions [of] all brain images
// of the same resolution are referenced with respect to the same brain
// coordinate system, and placed in a single R-tree"). This package provides
// that tree (Guttman R-tree with quadratic split, plus an STR bulk loader)
// and the SUB_X operators on rectangular sub-structures: ifOverlap and
// intersect.
package rtree

import (
	"errors"
	"fmt"
)

// MaxDims is the largest supported dimensionality. The paper needs 2-D
// (image planes) and 3-D (volumetric brain coordinates).
const MaxDims = 3

// ErrInvalid is returned for degenerate or dimension-mismatched rectangles.
var ErrInvalid = errors.New("rtree: invalid rectangle")

// ErrDuplicateID is returned when inserting an entry whose ID is already
// present in the tree.
var ErrDuplicateID = errors.New("rtree: duplicate entry ID")

// Rect is an axis-aligned box in 2 or 3 dimensions. Coordinates are
// half-open per axis: a point p is inside when Min[d] <= p[d] < Max[d].
// Only the first Dims axes are meaningful.
type Rect struct {
	Min, Max [MaxDims]float64
	Dims     int
}

// Rect2D returns a 2-D rectangle.
func Rect2D(x0, y0, x1, y1 float64) Rect {
	return Rect{Min: [MaxDims]float64{x0, y0}, Max: [MaxDims]float64{x1, y1}, Dims: 2}
}

// Rect3D returns a 3-D box.
func Rect3D(x0, y0, z0, x1, y1, z1 float64) Rect {
	return Rect{Min: [MaxDims]float64{x0, y0, z0}, Max: [MaxDims]float64{x1, y1, z1}, Dims: 3}
}

// Valid reports whether the rectangle has a supported dimensionality and a
// positive extent on every axis.
func (r Rect) Valid() bool {
	if r.Dims < 2 || r.Dims > MaxDims {
		return false
	}
	for d := 0; d < r.Dims; d++ {
		if r.Max[d] <= r.Min[d] {
			return false
		}
	}
	return true
}

// Overlaps implements the paper's ifOverlap operator for rectangular
// sub-structures. Rectangles of different dimensionality never overlap.
func (r Rect) Overlaps(o Rect) bool {
	if r.Dims != o.Dims {
		return false
	}
	for d := 0; d < r.Dims; d++ {
		if r.Min[d] >= o.Max[d] || o.Min[d] >= r.Max[d] {
			return false
		}
	}
	return true
}

// Intersect implements the paper's intersect operator for convex
// sub-structures: it returns the common box and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	if r.Dims != o.Dims {
		return Rect{}, false
	}
	out := Rect{Dims: r.Dims}
	for d := 0; d < r.Dims; d++ {
		out.Min[d] = maxf(r.Min[d], o.Min[d])
		out.Max[d] = minf(r.Max[d], o.Max[d])
		if out.Max[d] <= out.Min[d] {
			return Rect{}, false
		}
	}
	return out, true
}

// Union returns the minimum bounding box of the two rectangles, which must
// share a dimensionality.
func (r Rect) Union(o Rect) Rect {
	out := Rect{Dims: r.Dims}
	for d := 0; d < r.Dims; d++ {
		out.Min[d] = minf(r.Min[d], o.Min[d])
		out.Max[d] = maxf(r.Max[d], o.Max[d])
	}
	return out
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	if r.Dims != o.Dims {
		return false
	}
	for d := 0; d < r.Dims; d++ {
		if o.Min[d] < r.Min[d] || o.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point (x,y[,z]) lies inside r.
func (r Rect) ContainsPoint(p [MaxDims]float64) bool {
	for d := 0; d < r.Dims; d++ {
		if p[d] < r.Min[d] || p[d] >= r.Max[d] {
			return false
		}
	}
	return true
}

// Volume returns the area (2-D) or volume (3-D) of the rectangle.
func (r Rect) Volume() float64 {
	v := 1.0
	for d := 0; d < r.Dims; d++ {
		v *= r.Max[d] - r.Min[d]
	}
	return v
}

// enlargement returns how much r's volume grows if extended to include o.
func (r Rect) enlargement(o Rect) float64 {
	return r.Union(o).Volume() - r.Volume()
}

// Center returns the midpoint of the rectangle along axis d.
func (r Rect) Center(d int) float64 { return (r.Min[d] + r.Max[d]) / 2 }

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	switch r.Dims {
	case 2:
		return fmt.Sprintf("[%g,%g;%g,%g)", r.Min[0], r.Min[1], r.Max[0], r.Max[1])
	case 3:
		return fmt.Sprintf("[%g,%g,%g;%g,%g,%g)", r.Min[0], r.Min[1], r.Min[2], r.Max[0], r.Max[1], r.Max[2])
	default:
		return fmt.Sprintf("invalid-rect(dims=%d)", r.Dims)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
