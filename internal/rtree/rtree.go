package rtree

import (
	"fmt"
	"sort"
)

const (
	// maxEntries is the node capacity M; minEntries is the fill factor m.
	maxEntries = 16
	minEntries = maxEntries * 2 / 5
)

// Entry is a rectangle stored in a Tree together with the identity of the
// mark it represents (a referent ID in Graphitti) and an arbitrary payload.
type Entry[V any] struct {
	Rect  Rect
	ID    uint64
	Value V
}

// Tree is a Guttman R-tree with quadratic split. The zero value is an empty
// 2-D tree; use NewTree to pick a dimensionality explicitly.
//
// Mutations are path-copying: Insert and Delete copy every node they
// modify instead of mutating in place, so a Snapshot taken before a
// mutation remains a consistent, immutable view of the tree at that
// instant (the same discipline as interval.Tree). Tree is not safe for
// concurrent mutation; Snapshots are safe for concurrent reads.
type Tree[V any] struct {
	root *rnode[V]
	dims int
	ids  map[uint64]Rect
}

type rnode[V any] struct {
	leaf     bool
	rects    []Rect
	children []*rnode[V] // internal nodes
	entries  []Entry[V]  // leaf nodes
	bounds   Rect
}

// clone returns a copy of n with fresh slice headers and backing arrays,
// safe for the mutation in progress to modify.
func (n *rnode[V]) clone() *rnode[V] {
	c := &rnode[V]{leaf: n.leaf, bounds: n.bounds}
	if n.rects != nil {
		c.rects = append(make([]Rect, 0, len(n.rects)+1), n.rects...)
	}
	if n.children != nil {
		c.children = append(make([]*rnode[V], 0, len(n.children)+1), n.children...)
	}
	if n.entries != nil {
		c.entries = append(make([]Entry[V], 0, len(n.entries)+1), n.entries...)
	}
	return c
}

// Snapshot is an immutable point-in-time view of a Tree. The zero value is
// an empty 2-D snapshot. Snapshots share structure with the tree; later
// mutations never alter a snapshot.
type Snapshot[V any] struct {
	root *rnode[V]
	dims int
	size int
}

// Snapshot returns an immutable view of the tree's current contents in
// O(1).
func (t *Tree[V]) Snapshot() Snapshot[V] {
	return Snapshot[V]{root: t.root, dims: t.Dims(), size: t.Len()}
}

// Dims returns the snapshot's dimensionality.
func (s Snapshot[V]) Dims() int {
	if s.dims == 0 {
		return 2
	}
	return s.dims
}

// Len reports the number of entries in the snapshot.
func (s Snapshot[V]) Len() int { return s.size }

// NewTree returns an empty tree indexing rectangles of the given
// dimensionality (2 or 3).
func NewTree[V any](dims int) (*Tree[V], error) {
	if dims < 2 || dims > MaxDims {
		return nil, fmt.Errorf("%w: dims %d", ErrInvalid, dims)
	}
	return &Tree[V]{dims: dims}, nil
}

// Dims returns the tree's dimensionality.
func (t *Tree[V]) Dims() int {
	if t.dims == 0 {
		return 2
	}
	return t.dims
}

// Len reports the number of entries.
func (t *Tree[V]) Len() int { return len(t.ids) }

// Insert adds an entry. The rectangle must be valid and match the tree's
// dimensionality; the ID must not be present already.
func (t *Tree[V]) Insert(r Rect, id uint64, val V) error {
	if !r.Valid() || r.Dims != t.Dims() {
		return fmt.Errorf("%w: %v (tree dims %d)", ErrInvalid, r, t.Dims())
	}
	if t.ids == nil {
		t.ids = make(map[uint64]Rect)
	}
	if _, dup := t.ids[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	t.ids[id] = r
	e := Entry[V]{Rect: r, ID: id, Value: val}
	if t.root == nil {
		t.root = &rnode[V]{leaf: true}
	}
	t.root = t.insertRoot(t.root, e)
	return nil
}

// insertRoot inserts e under root and returns the new root (grown by one
// level when the old root split).
func (t *Tree[V]) insertRoot(root *rnode[V], e Entry[V]) *rnode[V] {
	n1, n2 := t.insert(root, e)
	if n2 == nil {
		return n1
	}
	grown := &rnode[V]{
		leaf:     false,
		children: []*rnode[V]{n1, n2},
		rects:    []Rect{n1.bounds, n2.bounds},
	}
	grown.recomputeBounds()
	return grown
}

// insert places e into the subtree rooted at n, returning the (possibly
// rebuilt) node and a second node when n had to split. n itself is never
// modified: the copy of the descent path is returned instead.
func (t *Tree[V]) insert(n *rnode[V], e Entry[V]) (*rnode[V], *rnode[V]) {
	n = n.clone()
	if n.leaf {
		n.entries = append(n.entries, e)
		n.recomputeBounds()
		if len(n.entries) > maxEntries {
			return t.splitLeaf(n)
		}
		return n, nil
	}
	best := t.chooseSubtree(n, e.Rect)
	c1, c2 := t.insert(n.children[best], e)
	n.children[best] = c1
	n.rects[best] = c1.bounds
	if c2 != nil {
		n.children = append(n.children, c2)
		n.rects = append(n.rects, c2.bounds)
	}
	n.recomputeBounds()
	if len(n.children) > maxEntries {
		return t.splitInternal(n)
	}
	return n, nil
}

// chooseSubtree picks the child needing the least enlargement to include r,
// breaking ties by smaller volume (Guttman's ChooseLeaf).
func (t *Tree[V]) chooseSubtree(n *rnode[V], r Rect) int {
	best, bestEnl, bestVol := -1, 0.0, 0.0
	for i, cr := range n.rects {
		enl := cr.enlargement(r)
		vol := cr.Volume()
		if best == -1 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

func (n *rnode[V]) recomputeBounds() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.bounds = Rect{}
			return
		}
		b := n.entries[0].Rect
		for _, e := range n.entries[1:] {
			b = b.Union(e.Rect)
		}
		n.bounds = b
		return
	}
	if len(n.children) == 0 {
		n.bounds = Rect{}
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// quadratic split: pick the pair of rects wasting the most volume as seeds,
// then assign the rest greedily.
func pickSeeds(rects []Rect) (int, int) {
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Volume() - rects[i].Volume() - rects[j].Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

func (t *Tree[V]) splitLeaf(n *rnode[V]) (*rnode[V], *rnode[V]) {
	entries := n.entries
	rects := make([]Rect, len(entries))
	for i, e := range entries {
		rects[i] = e.Rect
	}
	g1, g2 := splitGroups(rects)
	a := &rnode[V]{leaf: true}
	b := &rnode[V]{leaf: true}
	for _, i := range g1 {
		a.entries = append(a.entries, entries[i])
	}
	for _, i := range g2 {
		b.entries = append(b.entries, entries[i])
	}
	a.recomputeBounds()
	b.recomputeBounds()
	return a, b
}

func (t *Tree[V]) splitInternal(n *rnode[V]) (*rnode[V], *rnode[V]) {
	g1, g2 := splitGroups(n.rects)
	a := &rnode[V]{leaf: false}
	b := &rnode[V]{leaf: false}
	for _, i := range g1 {
		a.children = append(a.children, n.children[i])
		a.rects = append(a.rects, n.rects[i])
	}
	for _, i := range g2 {
		b.children = append(b.children, n.children[i])
		b.rects = append(b.rects, n.rects[i])
	}
	a.recomputeBounds()
	b.recomputeBounds()
	return a, b
}

// splitGroups partitions indices of rects into two groups using Guttman's
// quadratic method, respecting the minimum fill.
func splitGroups(rects []Rect) ([]int, []int) {
	s1, s2 := pickSeeds(rects)
	g1, g2 := []int{s1}, []int{s2}
	b1, b2 := rects[s1], rects[s2]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// If one group must take all remaining to reach minimum fill, do it.
		if len(g1)+len(remaining) <= minEntries {
			g1 = append(g1, remaining...)
			break
		}
		if len(g2)+len(remaining) <= minEntries {
			g2 = append(g2, remaining...)
			break
		}
		// PickNext: the index with the greatest preference difference.
		bestIdx, bestDiff := -1, -1.0
		for k, i := range remaining {
			d1 := b1.enlargement(rects[i])
			d2 := b2.enlargement(rects[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, k
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		d1 := b1.enlargement(rects[i])
		d2 := b2.enlargement(rects[i])
		switch {
		case d1 < d2:
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
		case d2 < d1:
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
		case len(g1) <= len(g2):
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
		default:
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
		}
	}
	return g1, g2
}

// Delete removes the entry with the given ID, reporting whether it existed.
// Underfull nodes are condensed by re-inserting their orphaned entries.
func (t *Tree[V]) Delete(id uint64) bool {
	r, ok := t.ids[id]
	if !ok {
		return false
	}
	delete(t.ids, id)
	var orphans []Entry[V]
	t.root = t.condense(t.root, r, id, &orphans)
	if t.root != nil && !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	for _, e := range orphans {
		if t.root == nil {
			t.root = &rnode[V]{leaf: true}
		}
		t.root = t.insertRoot(t.root, e)
	}
	return true
}

// condense removes (r,id) from the subtree at n. Nodes that drop below the
// minimum fill contribute their entries to orphans and are pruned. Like
// insert, it works on copies: n is never modified in place.
func (t *Tree[V]) condense(n *rnode[V], r Rect, id uint64, orphans *[]Entry[V]) *rnode[V] {
	if n == nil {
		return nil
	}
	n = n.clone()
	if n.leaf {
		for i, e := range n.entries {
			if e.ID == id {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				break
			}
		}
		n.recomputeBounds()
		if len(n.entries) == 0 {
			return nil
		}
		return n
	}
	for i := 0; i < len(n.children); i++ {
		if !n.rects[i].Overlaps(r) && !n.rects[i].Contains(r) {
			continue
		}
		child := t.condense(n.children[i], r, id, orphans)
		if child == nil || (child.leaf && len(child.entries) < minEntries) || (!child.leaf && len(child.children) < minEntries) {
			// Prune the underfull child and re-insert its entries.
			if child != nil {
				collectEntries(child, orphans)
			}
			n.children = append(n.children[:i], n.children[i+1:]...)
			n.rects = append(n.rects[:i], n.rects[i+1:]...)
			i--
		} else {
			n.children[i] = child
			n.rects[i] = child.bounds
		}
	}
	n.recomputeBounds()
	if len(n.children) == 0 {
		return nil
	}
	return n
}

func collectEntries[V any](n *rnode[V], out *[]Entry[V]) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// Search returns all entries whose rectangle overlaps q, sorted by ID.
func (t *Tree[V]) Search(q Rect) []Entry[V] {
	return t.Snapshot().Search(q)
}

// Search returns all entries whose rectangle overlaps q, sorted by ID.
func (s Snapshot[V]) Search(q Rect) []Entry[V] {
	var out []Entry[V]
	s.Visit(q, func(e Entry[V]) bool {
		out = append(out, e)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Visit calls fn for every entry overlapping q until fn returns false.
// Visit order is unspecified.
func (t *Tree[V]) Visit(q Rect, fn func(Entry[V]) bool) {
	t.Snapshot().Visit(q, fn)
}

// Visit calls fn for every entry overlapping q until fn returns false.
// Visit order is unspecified.
func (s Snapshot[V]) Visit(q Rect, fn func(Entry[V]) bool) {
	if !q.Valid() || q.Dims != s.Dims() {
		return
	}
	visit(s.root, q, fn)
}

func visit[V any](n *rnode[V], q Rect, fn func(Entry[V]) bool) bool {
	if n == nil || !n.bounds.Overlaps(q) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Overlaps(q) && !fn(e) {
				return false
			}
		}
		return true
	}
	for i, c := range n.children {
		if n.rects[i].Overlaps(q) {
			if !visit(c, q, fn) {
				return false
			}
		}
	}
	return true
}

// Count returns the number of entries overlapping q.
func (t *Tree[V]) Count(q Rect) int {
	return t.Snapshot().Count(q)
}

// Count returns the number of entries overlapping q.
func (s Snapshot[V]) Count(q Rect) int {
	n := 0
	s.Visit(q, func(Entry[V]) bool {
		n++
		return true
	})
	return n
}

// Bounds returns the bounding box of all entries; ok is false for an empty
// tree.
func (t *Tree[V]) Bounds() (Rect, bool) {
	return t.Snapshot().Bounds()
}

// Bounds returns the bounding box of all entries; ok is false for an empty
// snapshot.
func (s Snapshot[V]) Bounds() (Rect, bool) {
	if s.root == nil || s.size == 0 {
		return Rect{}, false
	}
	return s.root.bounds, true
}

// Height returns the height of the tree (0 when empty).
func (t *Tree[V]) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// BulkLoad builds a tree from entries using the Sort-Tile-Recursive (STR)
// packing algorithm, which produces better-clustered nodes than repeated
// insertion. Entries must all have valid rectangles of the same
// dimensionality and distinct IDs.
func BulkLoad[V any](dims int, entries []Entry[V]) (*Tree[V], error) {
	t, err := NewTree[V](dims)
	if err != nil {
		return nil, err
	}
	t.ids = make(map[uint64]Rect, len(entries))
	for _, e := range entries {
		if !e.Rect.Valid() || e.Rect.Dims != dims {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, e.Rect)
		}
		if _, dup := t.ids[e.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateID, e.ID)
		}
		t.ids[e.ID] = e.Rect
	}
	if len(entries) == 0 {
		return t, nil
	}
	leaves := strPack(entries, dims)
	nodes := make([]*rnode[V], len(leaves))
	for i, grp := range leaves {
		n := &rnode[V]{leaf: true, entries: grp}
		n.recomputeBounds()
		nodes[i] = n
	}
	for len(nodes) > 1 {
		rects := make([]Entry[*rnode[V]], len(nodes))
		for i, n := range nodes {
			rects[i] = Entry[*rnode[V]]{Rect: n.bounds, ID: uint64(i), Value: n}
		}
		groups := strPack(rects, dims)
		next := make([]*rnode[V], len(groups))
		for i, grp := range groups {
			n := &rnode[V]{leaf: false}
			for _, g := range grp {
				n.children = append(n.children, g.Value)
				n.rects = append(n.rects, g.Rect)
			}
			n.recomputeBounds()
			next[i] = n
		}
		nodes = next
	}
	t.root = nodes[0]
	return t, nil
}

// strPack groups entries into runs of at most maxEntries using STR tiling.
func strPack[V any](entries []Entry[V], dims int) [][]Entry[V] {
	es := append([]Entry[V](nil), entries...)
	nLeaves := (len(es) + maxEntries - 1) / maxEntries
	if nLeaves <= 1 {
		return [][]Entry[V]{es}
	}
	// Sort by x-center, slice into vertical strips, sort each strip by
	// y-center (then z for 3-D), pack runs of maxEntries.
	sort.Slice(es, func(i, j int) bool { return es[i].Rect.Center(0) < es[j].Rect.Center(0) })
	stripCount := intSqrtCeil(nLeaves)
	perStrip := (len(es) + stripCount - 1) / stripCount
	var groups [][]Entry[V]
	for s := 0; s < len(es); s += perStrip {
		e := s + perStrip
		if e > len(es) {
			e = len(es)
		}
		strip := es[s:e]
		sort.Slice(strip, func(i, j int) bool {
			if strip[i].Rect.Center(1) != strip[j].Rect.Center(1) {
				return strip[i].Rect.Center(1) < strip[j].Rect.Center(1)
			}
			if dims > 2 {
				return strip[i].Rect.Center(2) < strip[j].Rect.Center(2)
			}
			return false
		})
		for g := 0; g < len(strip); g += maxEntries {
			ge := g + maxEntries
			if ge > len(strip) {
				ge = len(strip)
			}
			groups = append(groups, append([]Entry[V](nil), strip[g:ge]...))
		}
	}
	return groups
}

func intSqrtCeil(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}
