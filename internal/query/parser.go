package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
)

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("query: syntax error")

// Parse compiles query text into a validated Query.
func Parse(src string) (*Query, error) {
	p := &qparser{lex: newQLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixed queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qtokKind uint8

const (
	qEOF qtokKind = iota
	qIdent
	qVar
	qString
	qNumber
	qLBrace
	qRBrace
	qLBracket
	qRBracket
	qLParen
	qRParen
	qComma
	qSemi
	qDot
)

type qtoken struct {
	kind qtokKind
	text string
	pos  int
}

type qlexer struct {
	src string
	pos int
}

func newQLexer(src string) *qlexer { return &qlexer{src: src} }

func (l *qlexer) next() (qtoken, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' { // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return qtoken{kind: qEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return qtoken{qLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return qtoken{qRBrace, "}", start}, nil
	case c == '[':
		l.pos++
		return qtoken{qLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return qtoken{qRBracket, "]", start}, nil
	case c == '(':
		l.pos++
		return qtoken{qLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return qtoken{qRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return qtoken{qComma, ",", start}, nil
	case c == ';':
		l.pos++
		return qtoken{qSemi, ";", start}, nil
	case c == '.':
		l.pos++
		return qtoken{qDot, ".", start}, nil
	case c == '?':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isQIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return qtoken{}, fmt.Errorf("%w: empty variable name at %d", ErrSyntax, start)
		}
		return qtoken{qVar, l.src[s:l.pos], start}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return qtoken{}, fmt.Errorf("%w: unterminated string at %d", ErrSyntax, start)
		}
		text := l.src[s:l.pos]
		l.pos++
		return qtoken{qString, text, start}, nil
	case c >= '0' && c <= '9' || c == '-':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			// A trailing '.' followed by non-digit is the statement dot.
			if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9') {
				break
			}
			l.pos++
		}
		return qtoken{qNumber, l.src[start:l.pos], start}, nil
	case isQIdentStart(c):
		for l.pos < len(l.src) && isQIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return qtoken{qIdent, l.src[start:l.pos], start}, nil
	default:
		return qtoken{}, fmt.Errorf("%w: unexpected %q at %d", ErrSyntax, c, start)
	}
}

func isQIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isQIdentChar(c byte) bool {
	return isQIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

type qparser struct {
	lex *qlexer
	tok qtoken
}

func (p *qparser) next() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *qparser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s at offset %d", ErrSyntax, fmt.Sprintf(format, args...), p.tok.pos)
}

func (p *qparser) expectIdent(word string) error {
	if p.tok.kind != qIdent || !strings.EqualFold(p.tok.text, word) {
		return p.errorf("expected %q, found %q", word, p.tok.text)
	}
	return p.next()
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectIdent("select"); err != nil {
		return nil, err
	}
	if p.tok.kind != qIdent {
		return nil, p.errorf("expected contents|referents|graph")
	}
	switch strings.ToLower(p.tok.text) {
	case "contents":
		q.Select = SelectContents
	case "referents":
		q.Select = SelectReferents
	case "graph":
		q.Select = SelectGraph
	default:
		return nil, p.errorf("expected contents|referents|graph, found %q", p.tok.text)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expectIdent("where"); err != nil {
		return nil, err
	}
	if p.tok.kind != qLBrace {
		return nil, p.errorf("expected {")
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	for p.tok.kind != qRBrace {
		if err := p.parseStatement(q); err != nil {
			return nil, err
		}
	}
	if err := p.next(); err != nil { // consume }
		return nil, err
	}
	if p.tok.kind == qIdent && strings.EqualFold(p.tok.text, "constrain") {
		if err := p.next(); err != nil {
			return nil, err
		}
		for p.tok.kind == qIdent && !strings.EqualFold(p.tok.text, "limit") {
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			q.Constraints = append(q.Constraints, c)
		}
	}
	if p.tok.kind == qIdent && strings.EqualFold(p.tok.text, "limit") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != qNumber {
			return nil, p.errorf("limit wants a number")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 1 {
			return nil, p.errorf("bad limit %q", p.tok.text)
		}
		q.Limit = n
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != qEOF {
		return nil, p.errorf("unexpected %q after query", p.tok.text)
	}
	return q, nil
}

// parseStatement handles either a declaration (?v isa class ; props .) or
// an edge pattern (?a label ?b .).
func (p *qparser) parseStatement(q *Query) error {
	if p.tok.kind != qVar {
		return p.errorf("expected variable, found %q", p.tok.text)
	}
	subject := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != qIdent {
		return p.errorf("expected predicate after ?%s", subject)
	}
	pred := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if strings.EqualFold(pred, "isa") {
		return p.parseDecl(q, subject)
	}
	// Edge pattern: label then object variable.
	label, ok := normaliseLabel(pred)
	if !ok {
		return p.errorf("unknown edge label %q", pred)
	}
	if p.tok.kind != qVar {
		return p.errorf("expected variable after %s", pred)
	}
	obj := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != qDot {
		return p.errorf("expected . after edge pattern")
	}
	if err := p.next(); err != nil {
		return err
	}
	q.Edges = append(q.Edges, EdgePattern{From: subject, To: obj, Label: label})
	return nil
}

func normaliseLabel(s string) (string, bool) {
	switch strings.ToLower(s) {
	case "annotates":
		return "annotates", true
	case "marks":
		return "marks", true
	case "refersto", "refers-to":
		return "refersTo", true
	default:
		return "", false
	}
}

func (p *qparser) parseDecl(q *Query, name string) error {
	if p.tok.kind != qIdent {
		return p.errorf("expected class after isa")
	}
	var class NodeClass
	switch strings.ToLower(p.tok.text) {
	case "annotation":
		class = ClassAnnotation
	case "referent":
		class = ClassReferent
	case "object":
		class = ClassObject
	case "term":
		class = ClassTerm
	default:
		return p.errorf("unknown class %q", p.tok.text)
	}
	if err := p.next(); err != nil {
		return err
	}
	decl := VarDecl{Name: name, Class: class}
	for p.tok.kind == qSemi {
		if err := p.next(); err != nil {
			return err
		}
		prop, err := p.parseProp(class)
		if err != nil {
			return err
		}
		decl.Props = append(decl.Props, prop)
	}
	if p.tok.kind != qDot {
		return p.errorf("expected . after declaration of ?%s", name)
	}
	if err := p.next(); err != nil {
		return err
	}
	q.Vars = append(q.Vars, decl)
	return nil
}

func (p *qparser) parseProp(class NodeClass) (Prop, error) {
	if p.tok.kind != qIdent {
		return Prop{}, p.errorf("expected property name")
	}
	name := strings.ToLower(p.tok.text)
	if err := p.next(); err != nil {
		return Prop{}, err
	}
	strArg := func() (string, error) {
		if p.tok.kind != qString && p.tok.kind != qIdent {
			return "", p.errorf("property %s needs a string or identifier argument", name)
		}
		s := p.tok.text
		return s, p.next()
	}
	switch name {
	case "contains":
		s, err := strArg()
		return Prop{Kind: PropContains, Str: s}, err
	case "creator":
		s, err := strArg()
		return Prop{Kind: PropCreator, Str: s}, err
	case "xpath":
		s, err := strArg()
		return Prop{Kind: PropXPath, Str: s}, err
	case "kind":
		s, err := strArg()
		return Prop{Kind: PropKindIs, Str: strings.ToLower(s)}, err
	case "domain":
		s, err := strArg()
		return Prop{Kind: PropDomain, Str: s}, err
	case "object":
		s, err := strArg()
		return Prop{Kind: PropObjectIs, Str: s}, err
	case "type":
		s, err := strArg()
		return Prop{Kind: PropType, Str: s}, err
	case "id":
		s, err := strArg()
		return Prop{Kind: PropID, Str: s}, err
	case "ontology":
		s, err := strArg()
		return Prop{Kind: PropOntology, Str: s}, err
	case "term":
		s, err := strArg()
		return Prop{Kind: PropTermIs, Str: s}, err
	case "under":
		s, err := strArg()
		return Prop{Kind: PropUnder, Str: s}, err
	case "named":
		s, err := strArg()
		return Prop{Kind: PropNamed, Str: s}, err
	case "derived":
		s, err := p.optionalRuleArg()
		return Prop{Kind: PropDerived, Str: s}, err
	case "provenance":
		s, err := p.optionalRuleArg()
		return Prop{Kind: PropProvenance, Str: s}, err
	case "overlaps":
		return p.parseOverlaps(class)
	default:
		return Prop{}, p.errorf("unknown property %q", name)
	}
}

// optionalRuleArg consumes a rule-ID argument if one follows; a bare
// `derived` / `provenance` predicate matches facts of any rule ("*").
func (p *qparser) optionalRuleArg() (string, error) {
	if p.tok.kind != qString && p.tok.kind != qIdent {
		return "*", nil
	}
	s := p.tok.text
	return s, p.next()
}

// parseOverlaps parses "[lo, hi)" as an interval or "[x0, y0, x1, y1]" as
// a rectangle.
func (p *qparser) parseOverlaps(class NodeClass) (Prop, error) {
	if p.tok.kind != qLBracket {
		return Prop{}, p.errorf("overlaps needs [lo, hi) or [x0, y0, x1, y1]")
	}
	if err := p.next(); err != nil {
		return Prop{}, err
	}
	var nums []float64
	for {
		if p.tok.kind != qNumber {
			return Prop{}, p.errorf("expected number in overlaps range")
		}
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return Prop{}, p.errorf("bad number %q", p.tok.text)
		}
		nums = append(nums, f)
		if err := p.next(); err != nil {
			return Prop{}, err
		}
		if p.tok.kind == qComma {
			if err := p.next(); err != nil {
				return Prop{}, err
			}
			continue
		}
		break
	}
	switch p.tok.kind {
	case qRParen:
		if len(nums) != 2 {
			return Prop{}, p.errorf("interval overlap needs exactly [lo, hi)")
		}
		if err := p.next(); err != nil {
			return Prop{}, err
		}
		return Prop{Kind: PropOverlapsIv,
			Iv: interval.Interval{Lo: int64(nums[0]), Hi: int64(nums[1])}}, nil
	case qRBracket:
		if len(nums) != 4 && len(nums) != 6 {
			return Prop{}, p.errorf("rect overlap needs [x0,y0,x1,y1] or [x0,y0,z0,x1,y1,z1]")
		}
		if err := p.next(); err != nil {
			return Prop{}, err
		}
		var r rtree.Rect
		if len(nums) == 4 {
			r = rtree.Rect2D(nums[0], nums[1], nums[2], nums[3])
		} else {
			r = rtree.Rect3D(nums[0], nums[1], nums[2], nums[3], nums[4], nums[5])
		}
		return Prop{Kind: PropOverlapsRect, Rect: r}, nil
	default:
		return Prop{}, p.errorf("expected ) or ] to close overlaps range")
	}
}

func (p *qparser) parseConstraint() (Constraint, error) {
	var kind ConstraintKind
	switch strings.ToLower(p.tok.text) {
	case "disjoint":
		kind = ConstraintDisjoint
	case "overlapping":
		kind = ConstraintOverlapping
	case "consecutive":
		kind = ConstraintConsecutive
	case "samedomain":
		kind = ConstraintSameDomain
	case "distinct":
		kind = ConstraintDistinct
	default:
		return Constraint{}, p.errorf("unknown constraint %q", p.tok.text)
	}
	if err := p.next(); err != nil {
		return Constraint{}, err
	}
	if p.tok.kind != qLParen {
		return Constraint{}, p.errorf("expected ( after constraint name")
	}
	if err := p.next(); err != nil {
		return Constraint{}, err
	}
	c := Constraint{Kind: kind}
	for {
		if p.tok.kind != qVar {
			return Constraint{}, p.errorf("expected variable in constraint")
		}
		c.Vars = append(c.Vars, p.tok.text)
		if err := p.next(); err != nil {
			return Constraint{}, err
		}
		if p.tok.kind == qComma {
			if err := p.next(); err != nil {
				return Constraint{}, err
			}
			continue
		}
		break
	}
	if p.tok.kind != qRParen {
		return Constraint{}, p.errorf("expected ) to close constraint")
	}
	if err := p.next(); err != nil {
		return Constraint{}, err
	}
	return c, nil
}
