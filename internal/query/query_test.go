package query

import (
	"strings"
	"testing"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/rtree"
)

// newQueryStore builds a store with:
//   - a protein ontology (enzyme > hydrolase > protease > serine-protease)
//   - a nif ontology (brain-region > cerebellum > deep-cerebellar-nuclei)
//   - a DNA sequence on domain "segment4" carrying 4 consecutive disjoint
//     protease annotations at [0,10) [10,20) [20,30) [30,40) plus an
//     overlapping decoy at [5,15)
//   - two brain images in the "atlas" system, one with 2 DCN-annotated
//     regions, one with a single region
func newQueryStore(t testing.TB) *core.Store {
	s := core.NewStore()

	enz := ontology.New("go")
	for _, id := range []string{"enzyme", "hydrolase", "protease", "serine-protease"} {
		if _, err := enz.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	must(t, enz.AddEdge("hydrolase", "enzyme", ontology.IsA, ontology.Some))
	must(t, enz.AddEdge("protease", "hydrolase", ontology.IsA, ontology.Some))
	must(t, enz.AddEdge("serine-protease", "protease", ontology.IsA, ontology.Some))
	must(t, s.RegisterOntology(enz))

	nif := ontology.New("nif")
	for _, id := range []string{"brain-region", "cerebellum", "deep-cerebellar-nuclei"} {
		if _, err := nif.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	must(t, nif.AddEdge("cerebellum", "brain-region", ontology.IsA, ontology.Some))
	must(t, nif.AddEdge("deep-cerebellar-nuclei", "cerebellum", ontology.IsA, ontology.Some))
	must(t, s.RegisterOntology(nif))

	d, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 50))
	must(t, err)
	d.Domain = "segment4"
	must(t, s.RegisterSequence(d))

	for i, body := range []string{
		"protease motif alpha", "protease motif beta",
		"protease motif gamma", "protease motif delta",
	} {
		m, err := s.MarkSequenceInterval("NC_1", interval.Interval{Lo: int64(i * 10), Hi: int64(i*10 + 10)})
		must(t, err)
		_, err = s.Commit(s.NewAnnotation().
			Creator("gupta").Date("2007-11-01").Body(body).
			Refer(m).OntologyRef("go", "serine-protease"))
		must(t, err)
	}
	// Decoy overlapping annotation without "protease".
	m, err := s.MarkSequenceInterval("NC_1", interval.Interval{Lo: 5, Hi: 15})
	must(t, err)
	_, err = s.Commit(s.NewAnnotation().
		Creator("condit").Date("2007-11-02").Body("replication signal").Refer(m))
	must(t, err)

	cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 1000, 1000))
	must(t, err)
	must(t, s.RegisterCoordinateSystem(cs))
	im1, err := imaging.NewImage("brain-1", "atlas", rtree.Rect2D(0, 0, 400, 400), imaging.Identity(2))
	must(t, err)
	must(t, s.RegisterImage(im1))
	im2, err := imaging.NewImage("brain-2", "atlas", rtree.Rect2D(0, 0, 400, 400), imaging.Identity(2))
	must(t, err)
	must(t, s.RegisterImage(im2))

	// brain-1: two DCN regions; brain-2: one.
	for i, rect := range []rtree.Rect{
		rtree.Rect2D(10, 10, 60, 60), rtree.Rect2D(100, 100, 160, 160),
	} {
		rm, err := s.MarkImageRegion("brain-1", rect)
		must(t, err)
		_, err = s.Commit(s.NewAnnotation().
			Creator("martone").Date("2007-12-01").
			Body("DCN expression site "+string(rune('a'+i))).
			Refer(rm).OntologyRef("nif", "deep-cerebellar-nuclei"))
		must(t, err)
	}
	rm, err := s.MarkImageRegion("brain-2", rtree.Rect2D(50, 50, 90, 90))
	must(t, err)
	_, err = s.Commit(s.NewAnnotation().
		Creator("martone").Date("2007-12-02").Body("single DCN site").
		Refer(rm).OntologyRef("nif", "deep-cerebellar-nuclei"))
	must(t, err)

	return s
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select things where {}",
		"select graph {}",
		"select graph where { ?a isa thing . }",
		"select graph where { ?a isa annotation . ?a annotates ?r . }",  // ?r undeclared
		"select graph where { ?a isa annotation ; bogus 'x' . }",        // unknown property
		"select graph where { ?a isa annotation ; kind interval . }",    // property/class mismatch
		"select graph where { ?a isa annotation . ?a marks ?a . }",      // label/class mismatch
		"select graph where { ?a isa annotation . } constrain nope(?a)", // unknown constraint
		"select graph where { ?a isa annotation . ?a isa annotation . }",
		"select graph where { ?r isa referent ; overlaps [1) . }",
		"select graph where { ?a isa annotation ",
		"select contents where { ?a isa annotation . } constrain disjoint(?a)", // arity
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: %q parsed without error", i, src)
		}
	}
}

func TestParseShapes(t *testing.T) {
	q := MustParse(`
# the query-tab protease query
select graph
where {
  ?a isa annotation ; contains "protease" ; creator "gupta" .
  ?r isa referent ; kind interval ; domain "segment4" ; overlaps [0, 40) .
  ?r2 isa referent ; kind interval .
  ?o isa object ; type dna_sequences .
  ?a annotates ?r .
  ?a annotates ?r2 .
  ?r marks ?o .
}
constrain disjoint(?r, ?r2) samedomain(?r, ?r2)`)
	_ = q
	// Missing declaration of ?r2 must fail validation, so redo correctly:
	if _, err := Parse(`select graph where { ?r isa referent . } constrain disjoint(?r, ?ghost)`); err == nil {
		t.Fatal("constraint on undeclared variable accepted")
	}
}

func TestExecuteContents(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation ; contains "protease" .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 4 {
		t.Fatalf("protease annotations = %d, want 4", len(res.Annotations))
	}
	// creator filter
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation ; creator "condit" .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 1 {
		t.Fatalf("condit annotations = %d", len(res.Annotations))
	}
	// xpath property
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation ; xpath "//referent[@kind='region']" .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 3 {
		t.Fatalf("region annotations = %d, want 3", len(res.Annotations))
	}
}

func TestExecuteReferentsWithIntervalPredicate(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select referents
where {
  ?r isa referent ; kind interval ; domain "segment4" ; overlaps [12, 18) .
}`, DefaultOptions)
	must(t, err)
	// [10,20) and the decoy [5,15) overlap [12,18).
	if len(res.Referents) != 2 {
		t.Fatalf("referents = %d, want 2", len(res.Referents))
	}
}

func TestExecuteJoin(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
  ?r isa referent ; kind region .
  ?t isa term ; ontology "nif" ; under "cerebellum" .
  ?a annotates ?r .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 3 {
		t.Fatalf("joined annotations = %d, want 3", len(res.Annotations))
	}
	// Join via object: annotations on brain-1 only.
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation .
  ?r isa referent .
  ?o isa object ; id "brain-1" .
  ?a annotates ?r .
  ?r marks ?o .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 2 {
		t.Fatalf("brain-1 annotations = %d, want 2", len(res.Annotations))
	}
}

// TestQ2ProteaseConsecutive is the paper's query-tab query: "annotated
// sequences … where 4 consecutive non-overlapping intervals in the
// sequence has annotations having the keyword 'protease' in each of them."
func TestQ2ProteaseConsecutive(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select graph
where {
  ?a1 isa annotation ; contains "protease" .
  ?a2 isa annotation ; contains "protease" .
  ?a3 isa annotation ; contains "protease" .
  ?a4 isa annotation ; contains "protease" .
  ?r1 isa referent ; kind interval ; domain "segment4" .
  ?r2 isa referent ; kind interval ; domain "segment4" .
  ?r3 isa referent ; kind interval ; domain "segment4" .
  ?r4 isa referent ; kind interval ; domain "segment4" .
  ?o isa object ; type dna_sequences .
  ?a1 annotates ?r1 .
  ?a2 annotates ?r2 .
  ?a3 annotates ?r3 .
  ?a4 annotates ?r4 .
  ?r1 marks ?o .
  ?r2 marks ?o .
  ?r3 marks ?o .
  ?r4 marks ?o .
}
constrain consecutive(?r1, ?r2, ?r3, ?r4) distinct(?r1, ?r2, ?r3, ?r4)`, DefaultOptions)
	must(t, err)
	// The 4 protease intervals can be bound in any order: 4! matches.
	if res.Stats.Matches != 24 {
		t.Fatalf("matches = %d, want 24 (4! orderings)", res.Stats.Matches)
	}
	if len(res.Subgraphs) != 24 {
		t.Fatalf("subgraphs = %d", len(res.Subgraphs))
	}
	for _, sg := range res.Subgraphs {
		if !sg.Connected() {
			t.Fatal("result subgraph disconnected")
		}
		// 4 contents + 4 referents + 1 object.
		if sg.NodeCount() != 9 {
			t.Fatalf("subgraph nodes = %d, want 9", sg.NodeCount())
		}
	}
}

func TestConstraintSemantics(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// Overlapping: the decoy [5,15) overlaps [0,10) and [10,20).
	res, err := p.Execute(`
select referents
where {
  ?r1 isa referent ; kind interval ; domain "segment4" ; overlaps [5, 15) .
  ?r2 isa referent ; kind interval ; domain "segment4" .
}
constrain overlapping(?r1, ?r2) distinct(?r1, ?r2)`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches == 0 {
		t.Fatal("no overlapping pairs found")
	}
	for _, m := range res.Matches {
		if m["r1"] == m["r2"] {
			t.Fatal("distinct constraint violated")
		}
	}
}

func TestPlannerOrderingAblation(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	src := `
select contents
where {
  ?a isa annotation .
  ?r isa referent ; kind region ; domain "atlas" ; overlaps [0, 0, 70, 70] .
  ?a annotates ?r .
}`
	smart, err := p.Execute(src, Options{OrderBySelectivity: true})
	must(t, err)
	naive, err := p.Execute(src, Options{OrderBySelectivity: false})
	must(t, err)
	// Same answers: brain-1's [10,60)² and brain-2's [50,90)² overlap the box.
	if len(smart.Annotations) != len(naive.Annotations) || len(smart.Annotations) != 2 {
		t.Fatalf("ablation changed results: %d vs %d", len(smart.Annotations), len(naive.Annotations))
	}
	// The selectivity-ordered plan starts from the 2-candidate referent,
	// not the 8-annotation set.
	if smart.Stats.Order[0] != "r" {
		t.Fatalf("smart order = %v", smart.Stats.Order)
	}
	if naive.Stats.Order[0] != "a" {
		t.Fatalf("naive order = %v", naive.Stats.Order)
	}
	if smart.Stats.BindingsTried >= naive.Stats.BindingsTried {
		t.Fatalf("selectivity ordering tried %d bindings, naive %d — expected fewer",
			smart.Stats.BindingsTried, naive.Stats.BindingsTried)
	}
}

func TestMaxResults(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
}`, Options{OrderBySelectivity: true, MaxResults: 3})
	must(t, err)
	if res.Stats.Matches != 3 {
		t.Fatalf("matches = %d, want 3", res.Stats.Matches)
	}
}

func TestTermUnderClosure(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// "under protease" must catch serine-protease references.
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
  ?t isa term ; ontology "go" ; under "protease" .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 4 {
		t.Fatalf("under-closure annotations = %d, want 4", len(res.Annotations))
	}
	// Exact term does not.
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation .
  ?t isa term ; ontology "go" ; term "protease" .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 0 {
		t.Fatalf("exact-term annotations = %d, want 0", len(res.Annotations))
	}
}

func TestEmptyCandidateSets(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation ; contains "nonexistent-keyword" .
}`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 0 || len(res.Annotations) != 0 {
		t.Fatalf("expected no matches, got %d", res.Stats.Matches)
	}
}
