package query

import "graphitti/internal/obs"

// costBuckets cover the planner's per-variable cost estimates, which are
// candidate counts and fan-out products rather than seconds.
var costBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// Process-wide query-path metrics (see internal/obs for the scope
// model). The strategy counter buckets "semi-join(...)" plans under one
// "semi-join" label to keep cardinality bounded. All are documented in
// docs/METRICS.md, which a test keeps in sync.
var (
	mQueries = obs.NewCounter("graphitti_queries_total",
		"Graph queries executed to completion.")
	mQuerySeconds = obs.NewHistogramVec("graphitti_query_duration_seconds",
		"Query latency end to end (candidates, planning, join, collation), by select kind.",
		nil, "select")
	mPlanCost = obs.NewHistogram("graphitti_query_plan_cost",
		"Planner cost estimate summed over the chosen binding order (candidate counts and fan-out products, unitless).",
		costBuckets)
	mBindingsTried = obs.NewCounter("graphitti_query_bindings_tried_total",
		"Candidate assignments attempted during backtracking joins.")
	mStrategy = obs.NewCounterVec("graphitti_query_strategy_total",
		"Variable binding strategies the planner chose: scan or semi-join.", "strategy")
	mPredicates = obs.NewCounterVec("graphitti_query_predicates_total",
		"Property predicates appearing in executed queries, by predicate kind.", "kind")
)

// strategyLabel collapses the explain-style strategy string ("scan" or
// "semi-join(?a -label-> ?b)") to its bounded family.
func strategyLabel(s string) string {
	if len(s) >= 9 && s[:9] == "semi-join" {
		return "semi-join"
	}
	return s
}
