package query

import (
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
)

func TestParse3DRectAndLabelForms(t *testing.T) {
	q := MustParse(`
select referents
where {
  ?r isa referent ; overlaps [0, 0, 0, 10, 10, 10] .
}`)
	if len(q.Vars) != 1 || q.Vars[0].Props[0].Rect.Dims != 3 {
		t.Fatalf("3-D rect not parsed: %+v", q.Vars[0].Props)
	}
	// refers-to / refersto label spellings.
	for _, label := range []string{"refersTo", "refersto", "refers-to"} {
		src := `select contents where {
  ?a isa annotation .
  ?t isa term .
  ?a ` + label + ` ?t .
}`
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("label %q rejected: %v", label, err)
		}
		if q.Edges[0].Label != "refersTo" {
			t.Fatalf("label %q normalised to %q", label, q.Edges[0].Label)
		}
	}
	// Comments are skipped.
	if _, err := Parse("# leading comment\nselect contents where { ?a isa annotation . }"); err != nil {
		t.Fatal(err)
	}
}

func TestSelectKindAndClassStrings(t *testing.T) {
	if SelectContents.String() != "contents" || SelectReferents.String() != "referents" ||
		SelectGraph.String() != "graph" {
		t.Error("SelectKind strings wrong")
	}
	for _, c := range []NodeClass{ClassAnnotation, ClassReferent, ClassObject, ClassTerm} {
		if c.String() == "" {
			t.Error("NodeClass string missing")
		}
	}
	for _, k := range []ConstraintKind{ConstraintDisjoint, ConstraintOverlapping,
		ConstraintConsecutive, ConstraintSameDomain, ConstraintDistinct} {
		if k.String() == "" {
			t.Error("ConstraintKind string missing")
		}
	}
}

func TestReferentPropertyMismatches(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// overlaps [..] on a region predicate filters out interval referents
	// (kind mismatch) and vice versa.
	res, err := p.Execute(`
select referents
where {
  ?r isa referent ; kind region ; overlaps [12, 18) .
}`, DefaultOptions)
	must(t, err)
	if len(res.Referents) != 0 {
		t.Fatalf("region referents matched an interval predicate: %d", len(res.Referents))
	}
	// object filter.
	res, err = p.Execute(`
select referents
where {
  ?r isa referent ; object "NC_1" .
}`, DefaultOptions)
	must(t, err)
	if len(res.Referents) != 5 {
		t.Fatalf("object-filtered referents = %d, want 5", len(res.Referents))
	}
	// rect overlap with domain-driven index seeding.
	res, err = p.Execute(`
select referents
where {
  ?r isa referent ; domain "atlas" ; overlaps [0, 0, 70, 70] .
}`, DefaultOptions)
	must(t, err)
	if len(res.Referents) != 2 {
		t.Fatalf("atlas rect referents = %d, want 2", len(res.Referents))
	}
}

func TestDisconnectedPatternGetsConnected(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// Two annotations with no pattern edge between them: the collated
	// subgraph must be extended through connect().
	res, err := p.Execute(`
select graph
where {
  ?a1 isa annotation ; contains "alpha" .
  ?a2 isa annotation ; contains "beta" .
}`, DefaultOptions)
	must(t, err)
	if len(res.Subgraphs) != 1 {
		t.Fatalf("subgraphs = %d", len(res.Subgraphs))
	}
	sg := res.Subgraphs[0]
	if !sg.Connected() {
		t.Fatal("disconnected pattern result not extended via connect()")
	}
	if sg.NodeCount() < 3 {
		t.Fatalf("extended subgraph too small: %d nodes", sg.NodeCount())
	}
}

func TestSameDomainAndOverlapConstraintRejections(t *testing.T) {
	s := core.NewStore()
	d1, err := seq.New("A", seq.DNA, strings.Repeat("ACGT", 30))
	must(t, err)
	d1.Domain = "dom1"
	must(t, s.RegisterSequence(d1))
	d2, err := seq.New("B", seq.DNA, strings.Repeat("ACGT", 30))
	must(t, err)
	d2.Domain = "dom2"
	must(t, s.RegisterSequence(d2))
	for _, id := range []string{"A", "B"} {
		m, err := s.MarkSequenceInterval(id, interval.Interval{Lo: 0, Hi: 50})
		must(t, err)
		_, err = s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body("cross-domain").Refer(m))
		must(t, err)
	}
	p := NewProcessor(s)
	// samedomain rejects marks from different domains.
	res, err := p.Execute(`
select referents
where {
  ?r1 isa referent ; domain "dom1" .
  ?r2 isa referent ; domain "dom2" .
}
constrain samedomain(?r1, ?r2)`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 0 {
		t.Fatalf("samedomain across domains matched %d", res.Stats.Matches)
	}
	// consecutive rejects non-interval or cross-domain groups.
	res, err = p.Execute(`
select referents
where {
  ?r1 isa referent ; domain "dom1" .
  ?r2 isa referent ; domain "dom2" .
}
constrain consecutive(?r1, ?r2)`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 0 {
		t.Fatalf("consecutive across domains matched %d", res.Stats.Matches)
	}
}

func TestNamedTermProperty(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// The nif ontology terms are named like their IDs in newQueryStore;
	// the real lookup is by Term.Name or synonym via TermByName.
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
  ?t isa term ; ontology "nif" ; named "deep-cerebellar-nuclei" .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if len(res.Annotations) != 3 {
		t.Fatalf("named-term annotations = %d, want 3", len(res.Annotations))
	}
	// Unknown name yields no candidates, not an error.
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation .
  ?t isa term ; ontology "nif" ; named "No Such Region" .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 0 {
		t.Fatalf("unknown name matched %d", res.Stats.Matches)
	}
	// named is a term-only property.
	if _, err := Parse(`select contents where { ?a isa annotation ; named "x" . }`); err == nil {
		t.Fatal("named on annotation accepted")
	}
}

func TestExecuteParseError(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	if _, err := p.Execute("select garbage", DefaultOptions); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestLimitClause(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
}
limit 3`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 3 {
		t.Fatalf("limit clause: matches = %d", res.Stats.Matches)
	}
	// Caller's tighter cap wins.
	res, err = p.Execute(`
select contents
where {
  ?a isa annotation .
}
limit 5`, Options{OrderBySelectivity: true, MaxResults: 2})
	must(t, err)
	if res.Stats.Matches != 2 {
		t.Fatalf("tighter caller cap: matches = %d", res.Stats.Matches)
	}
	// limit after constrain.
	res, err = p.Execute(`
select referents
where {
  ?r1 isa referent ; kind interval ; domain "segment4" .
  ?r2 isa referent ; kind interval ; domain "segment4" .
}
constrain distinct(?r1, ?r2)
limit 4`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 4 {
		t.Fatalf("constrain+limit: matches = %d", res.Stats.Matches)
	}
	// Bad limits.
	for _, src := range []string{
		"select contents where { ?a isa annotation . } limit",
		"select contents where { ?a isa annotation . } limit x",
		"select contents where { ?a isa annotation . } limit 0",
		"select contents where { ?a isa annotation . } limit -1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestUnderUnknownConceptInNamedOntology(t *testing.T) {
	s := newQueryStore(t)
	p := NewProcessor(s)
	// "under" a concept that does not exist yields zero candidates, not an
	// error (the concept may live in another ontology).
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation .
  ?t isa term ; ontology "go" ; under "no-such-concept" .
  ?a refersTo ?t .
}`, DefaultOptions)
	must(t, err)
	if res.Stats.Matches != 0 {
		t.Fatalf("matches = %d", res.Stats.Matches)
	}
}
