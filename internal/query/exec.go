package query

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/dublincore"
	"graphitti/internal/subx"
	"graphitti/internal/trace"
	"graphitti/internal/xquery"
)

// Processor executes parsed queries against a Graphitti store. Each
// execution pins one immutable store view: every table and index read
// across all sub-queries observes the same snapshot, and execution never
// blocks (or is blocked by) the writer. Edge checks consult the shared
// a-graph handle, so a concurrent deletion can prune join edges
// mid-query — matches always resolve against the pinned view, but an
// annotation deleted after pinning may drop out of the join (never the
// reverse; see core.View).
type Processor struct {
	store *core.Store
}

// NewProcessor returns a processor bound to a store.
func NewProcessor(s *core.Store) *Processor { return &Processor{store: s} }

// Options tune execution.
type Options struct {
	// OrderBySelectivity enables the paper's "finding a feasible order
	// among these subqueries": the cost-based planner orders variables
	// by estimated cost, combining candidate counts with per-edge
	// fan-out estimated from a-graph degree counts. Disabling it
	// (ablation A5) binds variables in declaration order; results are
	// identical either way.
	OrderBySelectivity bool
	// MaxResults caps the number of matches (0 = unlimited).
	MaxResults int
	// Join selects the join mechanism (see JoinStrategy). The zero
	// value, JoinAuto, uses index-driven semi-join enumeration.
	Join JoinStrategy
}

// DefaultOptions enable selectivity ordering.
var DefaultOptions = Options{OrderBySelectivity: true}

// Match binds each query variable to an a-graph node.
type Match map[string]agraph.NodeRef

// Result is the outcome of a query, shaped per the paper's three result
// forms: annotation contents, heterogeneous sub-structures, or connection
// subgraphs.
type Result struct {
	Kind        SelectKind
	Matches     []Match
	Annotations []*core.Annotation // SelectContents
	Referents   []*core.Referent   // SelectReferents
	Subgraphs   []*agraph.Subgraph // SelectGraph (one per match)
	Stats       Stats
}

// cancelCheckStride bounds how many join bindings are tried between
// context checks.
const cancelCheckStride = 256

// Execute parses and runs a query with the given options.
func (p *Processor) Execute(src string, opts Options) (*Result, error) {
	return p.ExecuteCtx(context.Background(), src, opts)
}

// ExecuteCtx parses and runs a query, honoring ctx cancellation between
// candidate evaluations and join steps.
func (p *Processor) ExecuteCtx(ctx context.Context, src string, opts Options) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return p.ExecuteParsedCtx(ctx, q, opts)
}

// ExecuteParsed runs a parsed query.
func (p *Processor) ExecuteParsed(q *Query, opts Options) (*Result, error) {
	return p.ExecuteParsedCtx(context.Background(), q, opts)
}

// ExecuteParsedCtx runs a parsed query against one pinned view of the
// store, honoring ctx cancellation. When the context carries a trace
// span (trace.FromContext), the run is wrapped in a "query" child span
// tagged with variable and match counts.
func (p *Processor) ExecuteParsedCtx(ctx context.Context, q *Query, opts Options) (*Result, error) {
	sp := trace.FromContext(ctx).StartChild("query")
	defer sp.Finish()
	run := &execution{view: p.store.View(), ctx: ctx}
	res, err := run.execute(q, opts)
	if err == nil && sp != nil {
		sp.SetAttrInt("vars", int64(len(q.Vars)))
		sp.SetAttrInt("matches", int64(len(res.Matches)))
	}
	return res, err
}

// execution carries one query run's pinned view and context.
type execution struct {
	view *core.View
	ctx  context.Context
	// posIndex lazily maps a variable's candidates to their positions in
	// its domain slice; semi-join steps use it to intersect enumerated
	// neighbors with the candidate set and restore candidate order.
	posIndex map[string]map[agraph.NodeRef]int
}

func (e *execution) execute(q *Query, opts Options) (*Result, error) {
	return e.executeOrdered(q, opts, nil)
}

// executeOrdered runs q, optionally forcing the variable binding order
// (the differential tests replay legacy orders through it; nil lets the
// planner decide).
func (e *execution) executeOrdered(q *Query, opts Options, forcedOrder []string) (*Result, error) {
	start := time.Now()
	// Phase 1 — sub-query separation: resolve per-type candidate sets.
	// The per-variable sub-queries are independent reads of the same
	// immutable view, so they fan out across the available cores; results
	// land in declaration order, keeping execution deterministic.
	domains := make(map[string][]agraph.NodeRef, len(q.Vars))
	stats := Stats{CandidateCounts: make(map[string]int, len(q.Vars))}
	cands, err := e.candidateSets(q)
	if err != nil {
		return nil, err
	}
	for i := range q.Vars {
		v := &q.Vars[i]
		domains[v.Name] = cands[i]
		stats.CandidateCounts[v.Name] = len(cands[i])
	}

	// Phase 2 — cost-based planning: a feasible order plus a per-variable
	// join strategy (see plan.go).
	pl := buildPlan(q, domains, e.view.Graph(), opts, forcedOrder)
	stats.Order = pl.order
	stats.Costs = pl.costs
	stats.Strategies = pl.strategies

	// Phase 3 — joining along a-graph edges with backtracking. The query's
	// own "limit N" clause applies unless the caller set a tighter cap.
	limit := opts.MaxResults
	if q.Limit > 0 && (limit == 0 || q.Limit < limit) {
		limit = q.Limit
	}
	var matches []Match
	binding := make(Match, len(q.Vars))
	if err := e.backtrack(q, domains, pl, 0, binding, &matches, &stats, limit); err != nil {
		return nil, err
	}
	stats.Matches = len(matches)

	// Phase 4 — collation into the selected result form.
	res := &Result{Kind: q.Select, Matches: matches, Stats: stats}
	if err := e.collate(q, res); err != nil {
		return nil, err
	}
	observeQuery(q, &stats, time.Since(start))
	return res, nil
}

// observeQuery records one completed execution into the query metrics.
func observeQuery(q *Query, stats *Stats, elapsed time.Duration) {
	mQueries.Inc()
	mQuerySeconds.With(q.Select.String()).Observe(elapsed.Seconds())
	mBindingsTried.Add(uint64(stats.BindingsTried))
	var cost float64
	for _, c := range stats.Costs {
		cost += c
	}
	mPlanCost.Observe(cost)
	for _, s := range stats.Strategies {
		mStrategy.With(strategyLabel(s)).Inc()
	}
	for i := range q.Vars {
		for _, p := range q.Vars[i].Props {
			mPredicates.With(p.Kind.String()).Inc()
		}
	}
}

// candidateSets resolves every variable's sub-query, in parallel when the
// query has several variables and the machine has the cores for it.
func (e *execution) candidateSets(q *Query) ([][]agraph.NodeRef, error) {
	out := make([][]agraph.NodeRef, len(q.Vars))
	if len(q.Vars) <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		for i := range q.Vars {
			cands, err := e.candidates(&q.Vars[i])
			if err != nil {
				return nil, err
			}
			out[i] = cands
		}
		return out, nil
	}
	errs := make([]error, len(q.Vars))
	var wg sync.WaitGroup
	for i := range q.Vars {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = e.candidates(&q.Vars[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// candidates resolves one variable's sub-query against the pinned view.
func (e *execution) candidates(v *VarDecl) ([]agraph.NodeRef, error) {
	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	var out []agraph.NodeRef
	var err error
	switch v.Class {
	case ClassAnnotation:
		out, err = e.annotationCandidates(v)
	case ClassReferent:
		out, err = e.referentCandidates(v)
	case ClassObject:
		out, err = e.objectCandidates(v)
	default:
		out, err = e.termCandidates(v)
	}
	if err != nil {
		return nil, err
	}
	// Provenance filtering is class-independent: keep only candidates
	// that are the target of a matching derived fact. Each candidate is
	// one probe of the view's derived target index — cost is the facts
	// on that node, flat in the derived-table size (the retired path
	// rebuilt a target set from a full table scan per variable).
	for _, prop := range v.Props {
		if prop.Kind == PropProvenance {
			kept := out[:0]
			for _, n := range out {
				if e.view.HasDerivedTarget(n, prop.Str) {
					kept = append(kept, n)
				}
			}
			out = kept
		}
	}
	return out, nil
}

// derivesMatch reports whether an annotation sources at least one
// derived fact of the given rule ("*" = any).
func (e *execution) derivesMatch(annID uint64, rule string) bool {
	match := false
	e.view.DerivedFromEach(annID, func(f core.DerivedFact) bool {
		if rule == "*" || f.Rule == rule {
			match = true
			return false
		}
		return true
	})
	return match
}

func (e *execution) annotationCandidates(v *VarDecl) ([]agraph.NodeRef, error) {
	// Start from the most selective source available: a keyword.
	var anns []*core.Annotation
	seeded := false
	for _, prop := range v.Props {
		if prop.Kind == PropContains {
			anns = e.view.SearchKeyword(prop.Str, true)
			seeded = true
			break
		}
	}
	if !seeded {
		anns = e.view.Annotations()
	}
	var out []agraph.NodeRef
	for i, ann := range anns {
		if i%cancelCheckStride == 0 {
			if err := e.ctx.Err(); err != nil {
				return nil, err
			}
		}
		ok, err := e.annotationMatches(ann, v.Props)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, agraph.ContentRoot(ann.ID))
		}
	}
	return out, nil
}

func (e *execution) annotationMatches(ann *core.Annotation, props []Prop) (bool, error) {
	for _, prop := range props {
		switch prop.Kind {
		case PropDerived:
			if !e.derivesMatch(ann.ID, prop.Str) {
				return false, nil
			}
		case PropContains:
			// Must match View.SearchKeyword's normalization exactly:
			// the keyword index seeds this variable's candidates, and a
			// re-check under a different normalization would reject the
			// index's own hits (padded input like `contains " tp53 "`).
			found := false
			token := core.NormalizeKeyword(prop.Str)
			for _, w := range ann.Content.Keywords() {
				if w == token {
					found = true
					break
				}
			}
			if !found {
				return false, nil
			}
		case PropCreator:
			match := false
			for _, c := range ann.DC.Get(dublincore.Creator) {
				if c == prop.Str {
					match = true
					break
				}
			}
			if !match {
				return false, nil
			}
		case PropXPath:
			xq, err := xquery.Compile(prop.Str)
			if err != nil {
				return false, fmt.Errorf("query: xpath property: %w", err)
			}
			truthy, err := xq.EvalBool(ann.Content)
			if err != nil {
				return false, err
			}
			if !truthy {
				return false, nil
			}
		}
	}
	return true, nil
}

func (e *execution) referentCandidates(v *VarDecl) ([]agraph.NodeRef, error) {
	// Index-driven seeding when a spatial predicate names its space.
	var seed []*core.Referent
	seeded := false
	var domain string
	for _, prop := range v.Props {
		if prop.Kind == PropDomain {
			domain = prop.Str
		}
	}
	for _, prop := range v.Props {
		switch prop.Kind {
		case PropOverlapsIv:
			if domain != "" {
				seed = e.view.ReferentsOverlapping(subx.IntervalMark{Domain: domain, IV: prop.Iv})
				seeded = true
			}
		case PropOverlapsRect:
			if domain != "" {
				seed = e.view.ReferentsOverlapping(subx.RegionMark{System: domain, R: prop.Rect})
				seeded = true
			}
		}
		if seeded {
			break
		}
	}
	if !seeded {
		seed = e.view.Referents()
	}
	var out []agraph.NodeRef
	for i, r := range seed {
		if err := e.strideCheck(i); err != nil {
			return nil, err
		}
		if referentMatches(r, v.Props) {
			out = append(out, agraph.Referent(r.ID))
		}
	}
	return out, nil
}

// strideCheck polls ctx every cancelCheckStride loop iterations, so a
// timeout can fire inside a large unseeded candidate scan — not only in
// the annotation scan and the join.
func (e *execution) strideCheck(i int) error {
	if i%cancelCheckStride == 0 {
		return e.ctx.Err()
	}
	return nil
}

func referentMatches(r *core.Referent, props []Prop) bool {
	for _, prop := range props {
		switch prop.Kind {
		case PropKindIs:
			if r.Kind.String() != prop.Str {
				return false
			}
		case PropDomain:
			if r.Domain != prop.Str {
				return false
			}
		case PropObjectIs:
			if r.ObjectID != prop.Str {
				return false
			}
		case PropOverlapsIv:
			if r.Kind != core.IntervalReferent && r.Kind != core.BlockReferent {
				return false
			}
			if !r.Interval.Overlaps(prop.Iv) {
				return false
			}
		case PropOverlapsRect:
			if r.Kind != core.RegionReferent || !r.Region.Overlaps(prop.Rect) {
				return false
			}
		}
	}
	return true
}

func (e *execution) objectCandidates(v *VarDecl) ([]agraph.NodeRef, error) {
	var out []agraph.NodeRef
	for i, h := range e.view.ObjectList() {
		if err := e.strideCheck(i); err != nil {
			return nil, err
		}
		ok := true
		for _, prop := range v.Props {
			switch prop.Kind {
			case PropType:
				if string(h.Type) != prop.Str {
					ok = false
				}
			case PropID:
				if h.ID != prop.Str {
					ok = false
				}
			}
		}
		if ok {
			out = append(out, agraph.Object(string(h.Type), h.ID))
		}
	}
	return out, nil
}

func (e *execution) termCandidates(v *VarDecl) ([]agraph.NodeRef, error) {
	var ontNames []string
	for _, prop := range v.Props {
		if prop.Kind == PropOntology {
			ontNames = []string{prop.Str}
		}
	}
	if ontNames == nil {
		ontNames = e.view.Ontologies()
	}
	var out []agraph.NodeRef
	for _, name := range ontNames {
		o, err := e.view.Ontology(name)
		if err != nil {
			return nil, err
		}
		terms := o.Terms()
		// Narrowing properties.
		for _, prop := range v.Props {
			switch prop.Kind {
			case PropTermIs:
				terms = filterStrings(terms, func(s string) bool { return s == prop.Str })
			case PropNamed:
				if t, ok := o.TermByName(prop.Str); ok {
					terms = filterStrings(terms, func(s string) bool { return s == t.ID })
				} else {
					terms = nil
				}
			case PropUnder:
				ci, err := o.CI(prop.Str)
				if err != nil {
					// The concept may belong to a different ontology in
					// the unnamed case; treat as no candidates here.
					terms = nil
					continue
				}
				allowed := map[string]bool{prop.Str: true}
				for _, t := range ci {
					allowed[t] = true
				}
				terms = filterStrings(terms, func(s string) bool { return allowed[s] })
			}
		}
		for i, t := range terms {
			if err := e.strideCheck(i); err != nil {
				return nil, err
			}
			out = append(out, agraph.Term(name, t))
		}
	}
	return out, nil
}

func filterStrings(in []string, keep func(string) bool) []string {
	var out []string
	for _, s := range in {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// backtrack explores candidate assignments depth-first, binding each
// step's variable by its planned strategy (candidate scan or semi-join
// enumeration). It returns a non-nil error only on context cancellation;
// running out of candidates or hitting the result cap end the walk
// normally.
func (e *execution) backtrack(q *Query, domains map[string][]agraph.NodeRef,
	pl *plan, depth int, binding Match, out *[]Match, stats *Stats, maxResults int) error {
	if maxResults > 0 && len(*out) >= maxResults {
		return nil
	}
	if depth == len(pl.steps) {
		m := make(Match, len(binding))
		for k, v := range binding {
			m[k] = v
		}
		*out = append(*out, m)
		return nil
	}
	step := &pl.steps[depth]
	name := step.name
	cands := e.stepCandidates(step, domains, binding)
	skipEdge := -1
	if step.enum != nil {
		skipEdge = step.enum.edgeIdx // already satisfied by enumeration
	}
	for _, cand := range cands {
		if maxResults > 0 && len(*out) >= maxResults {
			return nil
		}
		stats.BindingsTried++
		if stats.BindingsTried%cancelCheckStride == 0 {
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		binding[name] = cand
		if e.consistent(q, binding, name, skipEdge) {
			if err := e.backtrack(q, domains, pl, depth+1, binding, out, stats, maxResults); err != nil {
				delete(binding, name)
				return err
			}
		}
		delete(binding, name)
	}
	return nil
}

// stepCandidates yields the candidates to try for one step, in the
// variable's canonical candidate order. Scan steps return the domain
// as-is. Semi-join steps enumerate the bound endpoint's a-graph edges,
// intersect with the candidate set, and re-sort the survivors into
// domain order — the same candidates a scan would accept, in the same
// order, found in O(fan-out) instead of O(|domain|) edge probes.
func (e *execution) stepCandidates(step *planStep, domains map[string][]agraph.NodeRef, binding Match) []agraph.NodeRef {
	dom := domains[step.name]
	if step.enum == nil {
		return dom
	}
	pos := e.positionsOf(step.name, dom)
	bval := binding[step.enum.other]
	g := e.view.Graph()
	var hits []int
	collect := func(n agraph.NodeRef) bool {
		if p, ok := pos[n]; ok {
			hits = append(hits, p)
		}
		return true
	}
	if step.enum.varIsTo {
		g.OutEach(bval, func(ed agraph.Edge) bool { return collect(ed.To) }, step.enum.label)
	} else {
		g.InEach(bval, func(ed agraph.Edge) bool { return collect(ed.From) }, step.enum.label)
	}
	if len(hits) == 0 {
		return nil
	}
	sort.Ints(hits)
	out := make([]agraph.NodeRef, 0, len(hits))
	for i, p := range hits {
		if i > 0 && p == hits[i-1] {
			continue // parallel edges to the same candidate
		}
		out = append(out, dom[p])
	}
	return out
}

// positionsOf returns (building lazily, once per execution) the map from
// a variable's candidates to their domain positions.
func (e *execution) positionsOf(name string, dom []agraph.NodeRef) map[agraph.NodeRef]int {
	if pos, ok := e.posIndex[name]; ok {
		return pos
	}
	if e.posIndex == nil {
		e.posIndex = make(map[string]map[agraph.NodeRef]int)
	}
	pos := make(map[agraph.NodeRef]int, len(dom))
	for i, n := range dom {
		pos[n] = i
	}
	e.posIndex[name] = pos
	return pos
}

// consistent checks all edge patterns and constraints whose variables are
// fully bound, after `last` was just assigned. skipEdge names a pattern
// edge already satisfied by semi-join enumeration (-1 = none).
func (e *execution) consistent(q *Query, binding Match, last string, skipEdge int) bool {
	g := e.view.Graph()
	for i, qe := range q.Edges {
		if i == skipEdge {
			continue
		}
		if qe.From != last && qe.To != last {
			continue
		}
		from, okF := binding[qe.From]
		to, okT := binding[qe.To]
		if !okF || !okT {
			continue
		}
		if !g.HasEdgeBetween(from, to, agraph.EdgeLabel(qe.Label)) {
			return false
		}
	}
	for _, c := range q.Constraints {
		relevant := false
		allBound := true
		for _, name := range c.Vars {
			if name == last {
				relevant = true
			}
			if _, ok := binding[name]; !ok {
				allBound = false
			}
		}
		if !relevant || !allBound {
			continue
		}
		if !e.checkConstraint(c, binding) {
			return false
		}
	}
	return true
}

func (e *execution) checkConstraint(c Constraint, binding Match) bool {
	if c.Kind == ConstraintDistinct {
		seen := make(map[agraph.NodeRef]bool, len(c.Vars))
		for _, name := range c.Vars {
			ref := binding[name]
			if seen[ref] {
				return false
			}
			seen[ref] = true
		}
		return true
	}
	refs := make([]*core.Referent, 0, len(c.Vars))
	for _, name := range c.Vars {
		node := binding[name]
		id, ok := agraph.ReferentID(node)
		if !ok {
			return false
		}
		r, err := e.view.Referent(id)
		if err != nil {
			return false
		}
		refs = append(refs, r)
	}
	switch c.Kind {
	case ConstraintDisjoint:
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				if refs[i].ID == refs[j].ID || refs[i].Overlaps(refs[j]) {
					return false
				}
			}
		}
		return true
	case ConstraintOverlapping:
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				if !refs[i].Overlaps(refs[j]) {
					return false
				}
			}
		}
		return true
	case ConstraintSameDomain:
		for _, r := range refs[1:] {
			if r.Domain != refs[0].Domain {
				return false
			}
		}
		return true
	case ConstraintConsecutive:
		for _, r := range refs {
			if r.Kind != core.IntervalReferent || r.Domain != refs[0].Domain {
				return false
			}
		}
		sorted := append([]*core.Referent(nil), refs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Interval.Lo < sorted[j].Interval.Lo })
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1].Interval.Hi > sorted[i].Interval.Lo {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// collate assembles the selected result form from the raw matches.
func (e *execution) collate(q *Query, res *Result) error {
	switch q.Select {
	case SelectContents:
		seen := make(map[uint64]bool)
		for _, m := range res.Matches {
			for _, v := range q.Vars {
				if v.Class != ClassAnnotation {
					continue
				}
				node := m[v.Name]
				if id, ok := parseContentNode(node); ok && !seen[id] {
					seen[id] = true
					ann, err := e.view.Annotation(id)
					if err != nil {
						return err
					}
					res.Annotations = append(res.Annotations, ann)
				}
			}
		}
		sort.Slice(res.Annotations, func(i, j int) bool {
			return res.Annotations[i].ID < res.Annotations[j].ID
		})
	case SelectReferents:
		seen := make(map[uint64]bool)
		for _, m := range res.Matches {
			for _, v := range q.Vars {
				if v.Class != ClassReferent {
					continue
				}
				if id, ok := agraph.ReferentID(m[v.Name]); ok && !seen[id] {
					seen[id] = true
					r, err := e.view.Referent(id)
					if err != nil {
						return err
					}
					res.Referents = append(res.Referents, r)
				}
			}
		}
		sort.Slice(res.Referents, func(i, j int) bool {
			return res.Referents[i].ID < res.Referents[j].ID
		})
	case SelectGraph:
		g := e.view.Graph()
		for _, m := range res.Matches {
			sg := matchSubgraph(q, m, g)
			res.Subgraphs = append(res.Subgraphs, sg)
		}
	}
	return nil
}

// matchSubgraph builds the type-extended connection subgraph of one match:
// the bound nodes plus the a-graph edges realising the pattern edges.
func matchSubgraph(q *Query, m Match, g *agraph.Graph) *agraph.Subgraph {
	nodes := make(map[agraph.NodeRef]bool, len(m))
	var terminals []agraph.NodeRef
	for _, node := range m {
		if !nodes[node] {
			nodes[node] = true
			terminals = append(terminals, node)
		}
	}
	edgeSet := make(map[uint64]agraph.Edge)
	for _, e := range q.Edges {
		from, to := m[e.From], m[e.To]
		g.OutEach(from, func(ge agraph.Edge) bool {
			if ge.To == to {
				edgeSet[ge.ID] = ge
				return false
			}
			return true
		}, agraph.EdgeLabel(e.Label))
	}
	sg := &agraph.Subgraph{Terminals: terminals}
	for n := range nodes {
		sg.Nodes = append(sg.Nodes, n)
	}
	sort.Slice(sg.Nodes, func(i, j int) bool {
		if sg.Nodes[i].Kind != sg.Nodes[j].Kind {
			return sg.Nodes[i].Kind < sg.Nodes[j].Kind
		}
		return sg.Nodes[i].Key < sg.Nodes[j].Key
	})
	for _, e := range edgeSet {
		sg.Edges = append(sg.Edges, e)
	}
	sort.Slice(sg.Edges, func(i, j int) bool { return sg.Edges[i].ID < sg.Edges[j].ID })
	// When the pattern graph leaves bound nodes disconnected, extend the
	// subgraph with connecting paths ("type-extended connection
	// subgraphs").
	if len(terminals) >= 2 && !sg.Connected() {
		if ext, err := g.Connect(terminals...); err == nil {
			merge := make(map[agraph.NodeRef]bool, len(sg.Nodes))
			for _, n := range sg.Nodes {
				merge[n] = true
			}
			for _, n := range ext.Nodes {
				if !merge[n] {
					merge[n] = true
					sg.Nodes = append(sg.Nodes, n)
				}
			}
			for _, e := range ext.Edges {
				if _, ok := edgeSet[e.ID]; !ok {
					edgeSet[e.ID] = e
					sg.Edges = append(sg.Edges, e)
				}
			}
			sort.Slice(sg.Nodes, func(i, j int) bool {
				if sg.Nodes[i].Kind != sg.Nodes[j].Kind {
					return sg.Nodes[i].Kind < sg.Nodes[j].Kind
				}
				return sg.Nodes[i].Key < sg.Nodes[j].Key
			})
			sort.Slice(sg.Edges, func(i, j int) bool { return sg.Edges[i].ID < sg.Edges[j].ID })
		}
	}
	return sg
}

func parseContentNode(ref agraph.NodeRef) (uint64, bool) {
	ann, _, ok := agraph.ContentID(ref)
	return ann, ok
}
