// Package query implements Graphitti's graph query language and its
// processor.
//
// The paper: "Queries in Graphitti are essentially graph queries that
// resemble SPARQL expressions extended to handle (i) XQuery-like path
// expressions on a-graphs, (ii) type-specific predicates on interval
// trees, (iii) XQuery fragments to retrieve fragments of annotation. The
// result of a query can be (a) a collection of heterogeneous substructures
// (b) fragments of XML documents and (c) connection subgraphs. The query
// processor operates by separating subqueries that belong to the different
// types of data elements, finding a feasible order among these subqueries,
// and collating partial results from these subqueries into a set of
// type-extended connection subgraphs."
//
// The processor resolves each variable's sub-query against one pinned
// store view, orders the variables with a cost-based planner (candidate
// counts plus a-graph degree sampling; see plan.go), and joins with a
// backtracking executor that binds pattern-connected variables by
// semi-join enumeration of the bound endpoint's edges. Stats carries
// the chosen plan — order, per-variable cost estimates and strategies —
// as the explain surface.
//
// A query looks like:
//
//	select graph
//	where {
//	  ?a isa annotation ; contains "protease" .
//	  ?r isa referent ; kind interval ; domain "segment4" ; overlaps [100, 240) .
//	  ?o isa object ; type dna_sequences .
//	  ?a annotates ?r .
//	  ?r marks ?o .
//	}
//	constrain disjoint(?r1, ?r2)
//
// Node classes are annotation, referent, object and term; edge patterns use
// the a-graph labels annotates, marks and refersTo. The constrain clause
// applies SUB_X-level graph constraints (disjoint, overlapping,
// consecutive, samedomain) to referent bindings — the paper's "conditions
// on the nodes, node groups, and graphs".
package query

import (
	"fmt"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
)

// SelectKind chooses the result form, per the paper's three result types.
type SelectKind uint8

// Result forms.
const (
	// SelectContents returns annotation contents.
	SelectContents SelectKind = iota
	// SelectReferents returns heterogeneous sub-structures.
	SelectReferents
	// SelectGraph returns connection subgraphs.
	SelectGraph
)

func (k SelectKind) String() string {
	switch k {
	case SelectContents:
		return "contents"
	case SelectReferents:
		return "referents"
	default:
		return "graph"
	}
}

// NodeClass classifies a query variable.
type NodeClass uint8

// Variable classes, one per data-element type the processor separates
// sub-queries over.
const (
	ClassAnnotation NodeClass = iota
	ClassReferent
	ClassObject
	ClassTerm
)

func (c NodeClass) String() string {
	switch c {
	case ClassAnnotation:
		return "annotation"
	case ClassReferent:
		return "referent"
	case ClassObject:
		return "object"
	default:
		return "term"
	}
}

// PropKind enumerates per-class property predicates.
type PropKind uint8

// Property predicates.
const (
	// PropContains (annotation): content keyword containment.
	PropContains PropKind = iota
	// PropCreator (annotation): Dublin Core creator equality.
	PropCreator
	// PropXPath (annotation): a path expression that must be truthy.
	PropXPath
	// PropKindIs (referent): referent kind equality.
	PropKindIs
	// PropDomain (referent): coordinate domain equality.
	PropDomain
	// PropObjectIs (referent): marked object ID equality.
	PropObjectIs
	// PropOverlapsIv (referent): interval overlap.
	PropOverlapsIv
	// PropOverlapsRect (referent): region overlap.
	PropOverlapsRect
	// PropType (object): object type equality.
	PropType
	// PropID (object): object ID equality.
	PropID
	// PropOntology (term): owning ontology equality.
	PropOntology
	// PropTermIs (term): exact term ID.
	PropTermIs
	// PropUnder (term): term is the named concept or one of its instances
	// (CI closure).
	PropUnder
	// PropNamed (term): term's display name or a synonym equals the
	// operand (the GUI's ontology browser works by name, not ID).
	PropNamed
	// PropDerived (annotation): the annotation is the source of at least
	// one derived fact, optionally restricted to a rule ID ("*" = any).
	PropDerived
	// PropProvenance (any class): the node is the target of at least one
	// derived fact, optionally restricted to a rule ID ("*" = any) —
	// i.e. something was propagated onto it and can be traced back.
	PropProvenance
)

// String names the predicate as it appears in query source — the label
// the per-predicate query metrics and validation errors use.
func (k PropKind) String() string {
	switch k {
	case PropContains:
		return "contains"
	case PropCreator:
		return "creator"
	case PropXPath:
		return "xpath"
	case PropKindIs:
		return "kind"
	case PropDomain:
		return "domain"
	case PropObjectIs:
		return "object"
	case PropOverlapsIv:
		return "overlaps-interval"
	case PropOverlapsRect:
		return "overlaps-region"
	case PropType:
		return "type"
	case PropID:
		return "id"
	case PropOntology:
		return "ontology"
	case PropTermIs:
		return "term"
	case PropUnder:
		return "under"
	case PropNamed:
		return "named"
	case PropDerived:
		return "derived"
	case PropProvenance:
		return "provenance"
	}
	return fmt.Sprintf("prop(%d)", uint8(k))
}

// Prop is one property predicate attached to a variable.
type Prop struct {
	Kind PropKind
	Str  string
	Iv   interval.Interval
	Rect rtree.Rect
}

// VarDecl declares a query variable with its class and property
// predicates.
type VarDecl struct {
	Name  string
	Class NodeClass
	Props []Prop
}

// EdgePattern requires an a-graph edge with the given label between the
// bindings of two variables.
type EdgePattern struct {
	From, To string // variable names
	Label    string // "annotates", "marks", "refersTo"
}

// ConstraintKind enumerates graph constraints over referent bindings.
type ConstraintKind uint8

// Graph constraints.
const (
	// ConstraintDisjoint: the referents' marks are pairwise non-overlapping.
	ConstraintDisjoint ConstraintKind = iota
	// ConstraintOverlapping: the referents' marks pairwise overlap.
	ConstraintOverlapping
	// ConstraintConsecutive: interval referents can be ordered so each
	// ends at or before the next begins (the paper's "4 consecutive
	// non-overlapping intervals").
	ConstraintConsecutive
	// ConstraintSameDomain: the referents share a coordinate domain.
	ConstraintSameDomain
	// ConstraintDistinct: the variables bind to distinct nodes.
	ConstraintDistinct
)

func (k ConstraintKind) String() string {
	switch k {
	case ConstraintDisjoint:
		return "disjoint"
	case ConstraintOverlapping:
		return "overlapping"
	case ConstraintConsecutive:
		return "consecutive"
	case ConstraintSameDomain:
		return "samedomain"
	default:
		return "distinct"
	}
}

// Constraint applies a ConstraintKind to a variable group.
type Constraint struct {
	Kind ConstraintKind
	Vars []string
}

// Query is a parsed query.
type Query struct {
	Select      SelectKind
	Vars        []VarDecl
	Edges       []EdgePattern
	Constraints []Constraint
	// Limit caps the number of matches (0 = unlimited); set by the
	// optional "limit N" clause.
	Limit int

	varIndex map[string]int
}

// Var returns the declaration of a named variable.
func (q *Query) Var(name string) (*VarDecl, bool) {
	i, ok := q.varIndex[name]
	if !ok {
		return nil, false
	}
	return &q.Vars[i], true
}

func (q *Query) validate() error {
	q.varIndex = make(map[string]int, len(q.Vars))
	for i, v := range q.Vars {
		if _, dup := q.varIndex[v.Name]; dup {
			return fmt.Errorf("query: variable ?%s declared twice", v.Name)
		}
		q.varIndex[v.Name] = i
	}
	for _, e := range q.Edges {
		from, ok := q.Var(e.From)
		if !ok {
			return fmt.Errorf("query: edge references undeclared ?%s", e.From)
		}
		to, ok := q.Var(e.To)
		if !ok {
			return fmt.Errorf("query: edge references undeclared ?%s", e.To)
		}
		switch e.Label {
		case "annotates":
			if from.Class != ClassAnnotation || to.Class != ClassReferent {
				return fmt.Errorf("query: annotates joins annotation to referent, got %s to %s", from.Class, to.Class)
			}
		case "marks":
			if from.Class != ClassReferent || to.Class != ClassObject {
				return fmt.Errorf("query: marks joins referent to object, got %s to %s", from.Class, to.Class)
			}
		case "refersTo":
			if from.Class != ClassAnnotation || to.Class != ClassTerm {
				return fmt.Errorf("query: refersTo joins annotation to term, got %s to %s", from.Class, to.Class)
			}
		default:
			return fmt.Errorf("query: unknown edge label %q", e.Label)
		}
	}
	for _, c := range q.Constraints {
		if len(c.Vars) < 2 {
			return fmt.Errorf("query: constraint %s needs at least two variables", c.Kind)
		}
		for _, name := range c.Vars {
			v, ok := q.Var(name)
			if !ok {
				return fmt.Errorf("query: constraint references undeclared ?%s", name)
			}
			if c.Kind != ConstraintDistinct && v.Class != ClassReferent {
				return fmt.Errorf("query: constraint %s applies to referent variables, ?%s is a %s", c.Kind, name, v.Class)
			}
		}
	}
	// Property/class compatibility.
	for _, v := range q.Vars {
		for _, p := range v.Props {
			if !propAllowed(v.Class, p.Kind) {
				return fmt.Errorf("query: property %s not valid on %s ?%s", p.Kind, v.Class, v.Name)
			}
		}
	}
	return nil
}

func propAllowed(c NodeClass, p PropKind) bool {
	switch p {
	case PropContains, PropCreator, PropXPath:
		return c == ClassAnnotation
	case PropKindIs, PropDomain, PropObjectIs, PropOverlapsIv, PropOverlapsRect:
		return c == ClassReferent
	case PropType, PropID:
		return c == ClassObject
	case PropOntology, PropTermIs, PropUnder, PropNamed:
		return c == ClassTerm
	case PropDerived:
		return c == ClassAnnotation
	case PropProvenance:
		return true
	default:
		return false
	}
}
