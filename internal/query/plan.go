// The cost-based join planner. Planning happens after the per-variable
// sub-queries resolve, so candidate counts are exact; per-edge fan-out
// is estimated from a-graph degree counts (In/OutCount) sampled over
// the bound endpoint's candidates. The plan fixes, per variable, both
// its position in the binding order and its join strategy:
//
//   - scan: iterate the variable's own candidate set (the only choice
//     for variables with no pattern edge into the bound prefix);
//   - semi-join: enumerate the bound endpoint's a-graph edges along the
//     cheapest connecting pattern edge and intersect with the candidate
//     set, instead of probing every candidate with HasEdgeBetween.
//
// Candidates surviving a semi-join are re-ordered into candidate-set
// order before binding, so the match stream is byte-identical to a
// candidate scan under the same order — which is how the differential
// tests prove the planner against declaration-order execution.
package query

import (
	"fmt"

	"graphitti/internal/agraph"
)

// fanSampleSize bounds how many of a bound variable's candidates the
// planner inspects (via In/OutCount) when estimating per-edge fan-out.
const fanSampleSize = 32

// prefixRowsCap keeps the running partial-binding estimate finite on
// adversarial patterns (pure cross products of large domains).
const prefixRowsCap = 1e15

// stepEdge resolves one pattern edge between a step's variable and an
// already-bound variable into traversal terms.
type stepEdge struct {
	edgeIdx int    // index into q.Edges (skipped by the re-check)
	other   string // the bound endpoint
	label   agraph.EdgeLabel
	varIsTo bool // the step variable is the edge's To endpoint
}

// planStep binds one variable: by candidate scan (enum == nil) or by
// semi-join enumeration along enum.
type planStep struct {
	name string
	enum *stepEdge
}

// plan is a complete execution plan plus its explain surface.
type plan struct {
	steps      []planStep
	order      []string
	costs      map[string]float64
	strategies map[string]string
}

// buildPlan plans q's join. With selectivity ordering the binding order
// minimises estimated cost; otherwise it is declaration order (ablation
// A5) or the caller's forced order (differential tests). Join strategy
// selection is independent of the order source, so every order produces
// identical results.
func buildPlan(q *Query, domains map[string][]agraph.NodeRef, g *agraph.Graph,
	opts Options, forced []string) *plan {
	pl := &plan{
		costs:      make(map[string]float64, len(q.Vars)),
		strategies: make(map[string]string, len(q.Vars)),
	}
	switch {
	case forced != nil:
		pl.order = forced
	case opts.OrderBySelectivity:
		pl.order = planOrderCost(q, domains, g, pl.costs)
	default:
		pl.order = declarationOrder(q)
	}
	bound := make(map[string]bool, len(pl.order))
	prefixRows := 1.0
	for _, name := range pl.order {
		enum, cost, perParent := chooseStrategy(q, domains, g, name, bound, prefixRows)
		if opts.Join == JoinNestedLoop {
			enum = nil
		}
		if _, ok := pl.costs[name]; !ok {
			pl.costs[name] = cost
		}
		pl.strategies[name] = describeStrategy(q, enum, name)
		pl.steps = append(pl.steps, planStep{name: name, enum: enum})
		prefixRows = advanceRows(prefixRows, perParent)
		bound[name] = true
	}
	return pl
}

// chooseStrategy picks how to bind name given the bound prefix: the
// cheapest connecting edge's enumeration when its estimated fan-out
// beats scanning the candidate set, a scan otherwise. It returns the
// enumeration edge (nil for scan), the estimated cost of binding name
// across all prefixRows partial bindings, and the estimated per-binding
// survivor count.
func chooseStrategy(q *Query, domains map[string][]agraph.NodeRef, g *agraph.Graph,
	name string, bound map[string]bool, prefixRows float64) (enum *stepEdge, cost, perParent float64) {
	domainSize := float64(len(domains[name]))
	var best *stepEdge
	bestFan := 0.0
	for _, se := range boundEdges(q, name, bound) {
		fan := estFan(g, domains[se.other], se)
		if best == nil || fan < bestFan {
			e := se
			best, bestFan = &e, fan
		}
	}
	if best == nil {
		return nil, prefixRows * domainSize, domainSize
	}
	perParent = bestFan
	if domainSize < perParent {
		perParent = domainSize
	}
	if bestFan > domainSize {
		// Enumeration would visit more edges than a candidate scan
		// probes; scan, but keep the semi-join cost estimate (the scan
		// still filters on the same edge).
		return nil, prefixRows * perParent, perParent
	}
	return best, prefixRows * perParent, perParent
}

// advanceRows updates the running partial-binding estimate after
// binding a variable whose estimated per-parent survivor count is
// perParent (chooseStrategy's third return).
func advanceRows(prefixRows, perParent float64) float64 {
	rows := prefixRows * perParent
	if rows > prefixRowsCap {
		rows = prefixRowsCap
	}
	return rows
}

// planOrderCost orders variables by estimated cost: at every position
// the cheapest-to-bind unbound variable goes next, where cost combines
// the exact candidate count with the sampled per-edge fan-out from the
// bound prefix. Ties break toward the smaller candidate set, then
// declaration order, keeping plans deterministic.
func planOrderCost(q *Query, domains map[string][]agraph.NodeRef, g *agraph.Graph,
	costs map[string]float64) []string {
	names := declarationOrder(q)
	bound := make(map[string]bool, len(names))
	prefixRows := 1.0
	var order []string
	for len(order) < len(names) {
		best := ""
		var bestCost, bestPerParent float64
		for _, name := range names {
			if bound[name] {
				continue
			}
			_, cost, perParent := chooseStrategy(q, domains, g, name, bound, prefixRows)
			better := best == "" || cost < bestCost ||
				(cost == bestCost && len(domains[name]) < len(domains[best]))
			if better {
				best, bestCost, bestPerParent = name, cost, perParent
			}
		}
		costs[best] = bestCost
		order = append(order, best)
		prefixRows = advanceRows(prefixRows, bestPerParent)
		bound[best] = true
	}
	return order
}

// planOrderGreedy is the retired connected-smallest heuristic (the
// planner before cost-based ordering): the smallest unresolved candidate
// set joined to the bound set goes next, falling back to the global
// smallest. Kept as a differential-test oracle — the cost planner must
// produce identical results under this order too.
func planOrderGreedy(q *Query, domains map[string][]agraph.NodeRef) []string {
	names := declarationOrder(q)
	adjacent := make(map[string]map[string]bool)
	for _, e := range q.Edges {
		if adjacent[e.From] == nil {
			adjacent[e.From] = make(map[string]bool)
		}
		if adjacent[e.To] == nil {
			adjacent[e.To] = make(map[string]bool)
		}
		adjacent[e.From][e.To] = true
		adjacent[e.To][e.From] = true
	}
	var order []string
	bound := make(map[string]bool)
	for len(order) < len(names) {
		best := ""
		bestConnected := false
		for _, name := range names {
			if bound[name] {
				continue
			}
			connected := false
			for b := range bound {
				if adjacent[name][b] {
					connected = true
					break
				}
			}
			if best == "" {
				best, bestConnected = name, connected
				continue
			}
			switch {
			case connected && !bestConnected:
				best, bestConnected = name, connected
			case connected == bestConnected && len(domains[name]) < len(domains[best]):
				best, bestConnected = name, connected
			}
		}
		order = append(order, best)
		bound[best] = true
	}
	return order
}

func declarationOrder(q *Query) []string {
	names := make([]string, len(q.Vars))
	for i, v := range q.Vars {
		names[i] = v.Name
	}
	return names
}

// boundEdges returns the pattern edges joining name to the bound set,
// resolved to traversal terms, in query-edge order.
func boundEdges(q *Query, name string, bound map[string]bool) []stepEdge {
	var out []stepEdge
	for i, e := range q.Edges {
		switch {
		case e.From == name && bound[e.To]:
			out = append(out, stepEdge{edgeIdx: i, other: e.To,
				label: agraph.EdgeLabel(e.Label), varIsTo: false})
		case e.To == name && bound[e.From]:
			out = append(out, stepEdge{edgeIdx: i, other: e.From,
				label: agraph.EdgeLabel(e.Label), varIsTo: true})
		}
	}
	return out
}

// estFan estimates the mean number of a-graph edges a binding of the
// bound endpoint offers toward the step variable, by sampling degree
// counts over (up to fanSampleSize, evenly spaced) candidates of the
// bound endpoint's domain.
func estFan(g *agraph.Graph, boundDomain []agraph.NodeRef, se stepEdge) float64 {
	n := len(boundDomain)
	if n == 0 {
		return 0
	}
	k := fanSampleSize
	if n < k {
		k = n
	}
	total := 0
	for i := 0; i < k; i++ {
		cand := boundDomain[i*n/k]
		if se.varIsTo {
			total += g.OutCount(cand, se.label)
		} else {
			total += g.InCount(cand, se.label)
		}
	}
	return float64(total) / float64(k)
}

// describeStrategy renders a step's strategy for the explain surface.
func describeStrategy(q *Query, enum *stepEdge, name string) string {
	if enum == nil {
		return "scan"
	}
	e := q.Edges[enum.edgeIdx]
	return fmt.Sprintf("semi-join(?%s -%s-> ?%s)", e.From, e.Label, e.To)
}
