package query

import (
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/prop"
)

// derivedFixture builds a store with an active overlap rule: ann1
// [100,200) and ann2 [150,250) overlap (both derive), ann3 [500,600)
// does not.
func derivedFixture(t *testing.T) *core.Store {
	t.Helper()
	s := core.NewStore()
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 500))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	if err := prop.Attach(s).AddRule(prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: "chr1"}); err != nil {
		t.Fatal(err)
	}
	for _, span := range []interval.Interval{{Lo: 100, Hi: 200}, {Lo: 150, Hi: 250}, {Lo: 500, Hi: 600}} {
		m, err := s.MarkDomainInterval("chr1", span)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(s.NewAnnotation().Creator("t").Date("2026-01-01").Body("site").Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDerivedPredicate(t *testing.T) {
	s := derivedFixture(t)
	p := NewProcessor(s)

	res, err := p.Execute(`select contents where { ?a isa annotation ; derived . }`, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if got := annIDs(res.Annotations); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("derived annotations = %v, want [1 2]", got)
	}

	// Rule-scoped: a rule that derived nothing matches nothing.
	res, err = p.Execute(`select contents where { ?a isa annotation ; derived "nope" . }`, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 0 {
		t.Fatalf("derived \"nope\" matched %v", annIDs(res.Annotations))
	}

	res, err = p.Execute(`select contents where { ?a isa annotation ; derived "ov" . }`, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 2 {
		t.Fatalf("derived \"ov\" matched %v", annIDs(res.Annotations))
	}
}

func TestProvenancePredicate(t *testing.T) {
	s := derivedFixture(t)
	p := NewProcessor(s)

	// Referents 1 and 2 are each the target of the other annotation's
	// derived fact; referent 3 is not.
	res, err := p.Execute(`select referents where { ?r isa referent ; provenance . }`, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Referents) != 2 {
		t.Fatalf("provenance referents = %v, want 2", res.Referents)
	}
	for _, r := range res.Referents {
		if r.ID == 3 {
			t.Fatalf("non-derived-onto referent surfaced: %v", r)
		}
	}

	// Joined with an edge pattern: annotations whose referent carries
	// provenance.
	res, err = p.Execute(`select contents where {
	  ?a isa annotation .
	  ?r isa referent ; provenance "ov" .
	  ?a annotates ?r .
	}`, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if got := annIDs(res.Annotations); len(got) != 2 {
		t.Fatalf("joined provenance query matched %v", got)
	}
}

func TestDerivedPredicateValidation(t *testing.T) {
	// derived is annotation-only.
	if _, err := Parse(`select referents where { ?r isa referent ; derived . }`); err == nil {
		t.Fatal("derived on a referent variable parsed")
	}
	// provenance applies to every class.
	for _, q := range []string{
		`select contents where { ?a isa annotation ; provenance . }`,
		`select referents where { ?r isa referent ; provenance "x" . }`,
		`select graph where { ?o isa object ; provenance . }`,
		`select graph where { ?t isa term ; provenance . }`,
	} {
		if _, err := Parse(q); err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
	}
}

func annIDs(anns []*core.Annotation) []uint64 {
	out := make([]uint64, len(anns))
	for i, a := range anns {
		out[i] = a.ID
	}
	return out
}
