package query

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/prop"
	"graphitti/internal/rtree"
)

// TestDifferentialPlannerEquivalence is the planner's correctness
// oracle: random stores × random queries, executed four ways — the
// cost-based planner with semi-join enumeration, the same order with
// the candidate×candidate nested loop, declaration order (ablation A5),
// and the retired greedy connected-smallest order — must produce
// identical matches, annotations and referents. Runs under -race in CI
// (the candidate sub-queries fan out across goroutines).
func TestDifferentialPlannerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := randomDiffStore(t, rng)
			p := NewProcessor(s)
			queries := 40
			if testing.Short() {
				queries = 12
			}
			for qi := 0; qi < queries; qi++ {
				q := randomDiffQuery(rng)
				src := q.src
				parsed, err := Parse(src)
				if err != nil {
					t.Fatalf("generated query does not parse: %v\n%s", err, src)
				}

				// The cap bounds runtime on unconstrained cross products.
				// A query that hits it was truncated mid-exploration —
				// different orders would truncate different subsets — so
				// such queries are skipped below; for everything under
				// the cap the exploration is exhaustive and the cap is
				// invisible.
				const matchCap = 3000
				auto, err := p.ExecuteParsed(parsed, Options{OrderBySelectivity: true, MaxResults: matchCap})
				must(t, err)
				if auto.Stats.Matches >= matchCap || auto.Stats.BindingsTried > 100_000 {
					continue
				}
				nested, err := p.ExecuteParsed(parsed, Options{OrderBySelectivity: true, Join: JoinNestedLoop, MaxResults: matchCap})
				must(t, err)
				decl, err := p.ExecuteParsed(parsed, Options{OrderBySelectivity: false, MaxResults: matchCap})
				must(t, err)
				// Replay the retired greedy connected-smallest order
				// (sizes are all it consulted).
				fakeDomains := make(map[string][]agraph.NodeRef, len(auto.Stats.CandidateCounts))
				for name, n := range auto.Stats.CandidateCounts {
					fakeDomains[name] = make([]agraph.NodeRef, n)
				}
				run := &execution{view: s.View(), ctx: context.Background()}
				greedy, err := run.executeOrdered(parsed, Options{OrderBySelectivity: true, MaxResults: matchCap}, planOrderGreedy(parsed, fakeDomains))
				must(t, err)

				// Same order ⇒ the match stream itself must be identical.
				if !reflect.DeepEqual(auto.Matches, nested.Matches) {
					t.Fatalf("semi-join diverged from nested loop on:\n%s\n got %v\nwant %v",
						src, auto.Matches, nested.Matches)
				}
				// Different orders ⇒ the match set must be identical.
				want := canonicalMatches(auto.Matches)
				for name, res := range map[string]*Result{
					"declaration-order": decl, "greedy-order": greedy,
				} {
					if got := canonicalMatches(res.Matches); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s diverged from cost planner on:\n%s\n got %v\nwant %v",
							name, src, got, want)
					}
					if !reflect.DeepEqual(annIDs(res.Annotations), annIDs(auto.Annotations)) {
						t.Fatalf("%s annotations diverged on:\n%s\n got %v\nwant %v",
							name, src, annIDs(res.Annotations), annIDs(auto.Annotations))
					}
					if !reflect.DeepEqual(refIDs(res.Referents), refIDs(auto.Referents)) {
						t.Fatalf("%s referents diverged on:\n%s\n got %v\nwant %v",
							name, src, refIDs(res.Referents), refIDs(auto.Referents))
					}
				}
			}
		})
	}
}

func refIDs(refs []*core.Referent) []uint64 {
	out := make([]uint64, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

// canonicalMatches serialises a match list into a sorted, order-free
// form (a match is a set of bindings; emission order is an execution
// detail of the variable order).
func canonicalMatches(ms []Match) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s;", k, m[k].String())
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

// randomDiffStore builds a small heterogeneous store: two interval
// domains, an image system, an ontology, and ~60 annotations with
// random marks, keywords, creators and term references — plus an
// overlap rule so derived/provenance predicates have facts to match.
func randomDiffStore(t *testing.T, rng *rand.Rand) *core.Store {
	t.Helper()
	s := core.NewStore()

	o := ontology.New("go")
	terms := []string{"enzyme", "hydrolase", "protease", "kinase"}
	for _, id := range terms {
		if _, err := o.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	must(t, o.AddEdge("hydrolase", "enzyme", ontology.IsA, ontology.Some))
	must(t, o.AddEdge("protease", "hydrolase", ontology.IsA, ontology.Some))
	must(t, o.AddEdge("kinase", "enzyme", ontology.IsA, ontology.Some))
	must(t, s.RegisterOntology(o))

	for _, dom := range []string{"chrA", "chrB"} {
		sq, err := seq.New("NC_"+dom, seq.DNA, strings.Repeat("ACGT", 300))
		must(t, err)
		sq.Domain = dom
		must(t, s.RegisterSequence(sq))
	}
	cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 1000, 1000))
	must(t, err)
	must(t, s.RegisterCoordinateSystem(cs))
	for _, id := range []string{"img-1", "img-2"} {
		im, err := imaging.NewImage(id, "atlas", rtree.Rect2D(0, 0, 500, 500), imaging.Identity(2))
		must(t, err)
		must(t, s.RegisterImage(im))
	}

	must(t, prop.Attach(s).AddRule(prop.Rule{ID: "ov", Edge: prop.EdgeOverlap, Domain: "chrA"}))

	vocab := []string{"alpha", "beta", "gamma", "delta", "hotspot"}
	creators := []string{"gupta", "condit", "martone"}
	for i := 0; i < 60; i++ {
		var m *core.Referent
		var err error
		switch rng.Intn(3) {
		case 0:
			lo := rng.Int63n(1100)
			m, err = s.MarkDomainInterval("chrA", interval.Interval{Lo: lo, Hi: lo + 10 + rng.Int63n(60)})
		case 1:
			lo := rng.Int63n(1100)
			m, err = s.MarkDomainInterval("chrB", interval.Interval{Lo: lo, Hi: lo + 10 + rng.Int63n(60)})
		default:
			x, y := rng.Float64()*400, rng.Float64()*400
			m, err = s.MarkImageRegion([]string{"img-1", "img-2"}[rng.Intn(2)], rtree.Rect2D(x, y, x+30, y+30))
		}
		must(t, err)
		b := s.NewAnnotation().
			Creator(creators[rng.Intn(len(creators))]).
			Date("2026-07-30").
			Body(vocab[rng.Intn(len(vocab))] + " site " + vocab[rng.Intn(len(vocab))]).
			Refer(m)
		if rng.Intn(3) == 0 {
			b.OntologyRef("go", terms[rng.Intn(len(terms))])
		}
		_, err = s.Commit(b)
		must(t, err)
	}
	return s
}

type diffQuery struct{ src string }

// randomDiffQuery emits a random-but-valid query over the differential
// store's schema: 1–3 variables with class-appropriate properties,
// edges wired wherever classes permit, and (sometimes) constraints over
// referent pairs. No limit clause — caps would make results depend on
// the binding order under comparison.
func randomDiffQuery(rng *rand.Rand) diffQuery {
	// graph selects build a connection subgraph per match; keep them in
	// the mix but rare so high-match queries don't dominate runtime.
	kinds := []string{"contents", "referents", "contents", "referents", "graph"}
	classes := []string{"annotation", "referent", "object", "term"}
	vocab := []string{"alpha", "beta", "gamma", "delta", "hotspot", "missing"}

	nvars := 1 + rng.Intn(3)
	var decls []string
	var names, varClass []string
	for i := 0; i < nvars; i++ {
		name := fmt.Sprintf("v%d", i)
		class := classes[rng.Intn(len(classes))]
		names, varClass = append(names, name), append(varClass, class)
		props := ""
		switch class {
		case "annotation":
			switch rng.Intn(4) {
			case 0:
				props = fmt.Sprintf(` ; contains "%s"`, vocab[rng.Intn(len(vocab))])
			case 1:
				props = ` ; creator "gupta"`
			case 2:
				props = ` ; derived "ov"`
			}
		case "referent":
			switch rng.Intn(5) {
			case 0:
				props = ` ; kind interval`
			case 1:
				props = fmt.Sprintf(` ; domain "%s"`, []string{"chrA", "chrB", "atlas"}[rng.Intn(3)])
			case 2:
				lo := rng.Intn(900)
				props = fmt.Sprintf(` ; overlaps [%d, %d)`, lo, lo+100+rng.Intn(200))
			case 3:
				props = ` ; provenance`
			}
		case "object":
			if rng.Intn(2) == 0 {
				props = ` ; type dna_sequences`
			}
		case "term":
			switch rng.Intn(3) {
			case 0:
				props = ` ; ontology "go" ; under "enzyme"`
			case 1:
				props = ` ; ontology "go" ; term "protease"`
			}
		}
		decls = append(decls, fmt.Sprintf("  ?%s isa %s%s .", name, class, props))
	}

	var edges []string
	for i := 0; i < nvars; i++ {
		for j := 0; j < nvars; j++ {
			if i == j || rng.Intn(2) == 0 {
				continue
			}
			switch {
			case varClass[i] == "annotation" && varClass[j] == "referent":
				edges = append(edges, fmt.Sprintf("  ?%s annotates ?%s .", names[i], names[j]))
			case varClass[i] == "referent" && varClass[j] == "object":
				edges = append(edges, fmt.Sprintf("  ?%s marks ?%s .", names[i], names[j]))
			case varClass[i] == "annotation" && varClass[j] == "term":
				edges = append(edges, fmt.Sprintf("  ?%s refersTo ?%s .", names[i], names[j]))
			}
		}
	}

	constraint := ""
	var refVars []string
	for i, c := range varClass {
		if c == "referent" {
			refVars = append(refVars, names[i])
		}
	}
	if len(refVars) >= 2 && rng.Intn(2) == 0 {
		kind := []string{"disjoint", "overlapping", "samedomain", "distinct"}[rng.Intn(4)]
		constraint = fmt.Sprintf("constrain %s(?%s, ?%s)", kind, refVars[0], refVars[1])
	}

	src := fmt.Sprintf("select %s\nwhere {\n%s\n%s\n}\n%s",
		kinds[rng.Intn(len(kinds))],
		strings.Join(decls, "\n"), strings.Join(edges, "\n"), constraint)
	return diffQuery{src: src}
}
