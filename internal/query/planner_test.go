package query

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
)

// plannerTestStore builds a join-heavy fixture: n interval annotations
// on one domain, of which the first `needles` carry the keyword
// "needle". Every annotation has one referent marking the sequence.
func plannerTestStore(t testing.TB, n, needles int) *core.Store {
	t.Helper()
	s := core.NewStore()
	sq, err := seq.New("NC_T", seq.DNA, strings.Repeat("ACGT", n*3+8))
	must(t, err)
	sq.Domain = "chrT"
	must(t, s.RegisterSequence(sq))
	for i := 0; i < n; i++ {
		m, err := s.MarkDomainInterval("chrT", interval.Interval{Lo: int64(i * 10), Hi: int64(i*10 + 5)})
		must(t, err)
		body := fmt.Sprintf("window %d", i)
		if i < needles {
			body = fmt.Sprintf("needle window %d", i)
		}
		_, err = s.Commit(s.NewAnnotation().
			Creator("planner").Date("2026-07-30").Body(body).Refer(m))
		must(t, err)
	}
	return s
}

const plannerJoinSrc = `
select contents
where {
  ?a isa annotation ; contains "needle" .
  ?r isa referent ; kind interval ; domain "chrT" .
  ?o isa object ; type dna_sequences .
  ?a annotates ?r .
  ?r marks ?o .
}`

// TestSemiJoinPrunesBindings is the acceptance gate for index-driven
// edge enumeration: on a join-heavy query the semi-join plan must try
// at least 5x fewer bindings than the candidate×candidate baseline
// while producing the identical match stream.
func TestSemiJoinPrunesBindings(t *testing.T) {
	s := plannerTestStore(t, 500, 8)
	p := NewProcessor(s)
	q := MustParse(plannerJoinSrc)

	auto, err := p.ExecuteParsed(q, Options{OrderBySelectivity: true})
	must(t, err)
	nested, err := p.ExecuteParsed(q, Options{OrderBySelectivity: true, Join: JoinNestedLoop})
	must(t, err)

	if !reflect.DeepEqual(auto.Matches, nested.Matches) {
		t.Fatalf("semi-join changed the match stream:\n got %v\nwant %v", auto.Matches, nested.Matches)
	}
	if !reflect.DeepEqual(annIDs(auto.Annotations), annIDs(nested.Annotations)) {
		t.Fatalf("semi-join changed annotations: %v vs %v",
			annIDs(auto.Annotations), annIDs(nested.Annotations))
	}
	if len(auto.Annotations) != 8 {
		t.Fatalf("needle annotations = %d, want 8", len(auto.Annotations))
	}
	if auto.Stats.BindingsTried*5 > nested.Stats.BindingsTried {
		t.Fatalf("semi-join tried %d bindings, nested loop %d — want ≥5x reduction",
			auto.Stats.BindingsTried, nested.Stats.BindingsTried)
	}
}

// TestPlannerExplainSurface checks the Stats explain fields: every
// variable gets a cost estimate and a strategy, and the joined
// variables are bound by semi-join enumeration.
func TestPlannerExplainSurface(t *testing.T) {
	s := plannerTestStore(t, 200, 4)
	p := NewProcessor(s)
	res, err := p.Execute(plannerJoinSrc, DefaultOptions)
	must(t, err)
	for _, name := range []string{"a", "r", "o"} {
		if _, ok := res.Stats.Costs[name]; !ok {
			t.Fatalf("no cost estimate for ?%s: %v", name, res.Stats.Costs)
		}
		if res.Stats.Strategies[name] == "" {
			t.Fatalf("no strategy for ?%s: %v", name, res.Stats.Strategies)
		}
	}
	// The single dna_sequences object is the cheapest entry point.
	if res.Stats.Order[0] != "o" {
		t.Fatalf("cost planner should start from the 1-candidate object set, order = %v", res.Stats.Order)
	}
	if got := res.Stats.Strategies[res.Stats.Order[0]]; got != "scan" {
		t.Fatalf("first variable strategy = %q, want scan", got)
	}
	// ?r joins both bound variables; it must be bound by enumeration.
	if got := res.Stats.Strategies["r"]; !strings.HasPrefix(got, "semi-join(") {
		t.Fatalf("strategy for ?r = %q, want semi-join", got)
	}
	// The nested-loop ablation reports scans everywhere.
	res, err = p.Execute(plannerJoinSrc, Options{OrderBySelectivity: true, Join: JoinNestedLoop})
	must(t, err)
	for name, strat := range res.Stats.Strategies {
		if strat != "scan" {
			t.Fatalf("nested-loop strategy for ?%s = %q", name, strat)
		}
	}
}

// TestContainsPaddedKeyword is the regression test for the contains
// normalization mismatch: View.SearchKeyword trims and lower-cases the
// word, but the pre-fix re-check in annotationMatches only lower-cased,
// so the index's own hits were rejected and `contains " needle "`
// returned nothing.
func TestContainsPaddedKeyword(t *testing.T) {
	s := plannerTestStore(t, 50, 6)
	p := NewProcessor(s)
	clean, err := p.Execute(`select contents where { ?a isa annotation ; contains "needle" . }`, DefaultOptions)
	must(t, err)
	padded, err := p.Execute(`select contents where { ?a isa annotation ; contains " Needle " . }`, DefaultOptions)
	must(t, err)
	if len(clean.Annotations) != 6 {
		t.Fatalf("clean keyword matched %d, want 6", len(clean.Annotations))
	}
	if !reflect.DeepEqual(annIDs(clean.Annotations), annIDs(padded.Annotations)) {
		t.Fatalf("padded keyword diverged from clean: %v vs %v",
			annIDs(padded.Annotations), annIDs(clean.Annotations))
	}
	// Seeded-vs-scan parity: the index-seeded candidates must agree with
	// the unseeded document scan under the same normalization.
	scan := s.View().SearchKeyword(" Needle ", false)
	if len(scan) != len(padded.Annotations) {
		t.Fatalf("index-seeded query found %d, document scan %d", len(padded.Annotations), len(scan))
	}
}

// stingyCtx is a context whose Err starts failing after a fixed number
// of polls — it makes the cancellation-check schedule observable: a
// path that never polls Err never sees the cancellation.
type stingyCtx struct {
	context.Context
	polls int32
	after int32
}

func (c *stingyCtx) Err() error {
	if atomic.AddInt32(&c.polls, 1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestReferentScanHonorsCancellation is the regression test for the
// missing cancellation strides: pre-fix, a referent-heavy candidate
// scan polled the context only once on entry, so a timeout could not
// fire until the join phase. `limit 1` keeps the join from polling, so
// the scan itself must notice.
func TestReferentScanHonorsCancellation(t *testing.T) {
	s := plannerTestStore(t, 700, 2)
	p := NewProcessor(s)
	// Allow the entry poll plus one stride, then cancel: only the
	// in-scan stride checks can observe it.
	ctx := &stingyCtx{Context: context.Background(), after: 2}
	_, err := p.ExecuteCtx(ctx, `
select referents
where {
  ?r isa referent ; kind interval .
}
limit 1`, DefaultOptions)
	if err != context.Canceled {
		t.Fatalf("referent-heavy scan ignored cancellation: err = %v", err)
	}
}

// TestObjectAndTermScansHonorCancellation covers the other two unseeded
// scans the fix added strides to.
func TestObjectAndTermScansHonorCancellation(t *testing.T) {
	s := newQueryStore(t)
	for _, src := range []string{
		`select graph where { ?o isa object . } limit 1`,
		`select graph where { ?t isa term . } limit 1`,
	} {
		p := NewProcessor(s)
		ctx := &stingyCtx{Context: context.Background(), after: 1}
		if _, err := p.ExecuteCtx(ctx, src, DefaultOptions); err != context.Canceled {
			t.Fatalf("%q ignored cancellation: err = %v", src, err)
		}
	}
}
