package query

// JoinStrategy selects how the join phase binds a variable that is
// pattern-connected to already-bound variables.
type JoinStrategy uint8

const (
	// JoinAuto enumerates the bound endpoint's a-graph edges and
	// intersects with the unbound variable's candidate set (semi-join
	// pruning), falling back to a candidate scan when enumeration is
	// estimated to be more expensive. The default.
	JoinAuto JoinStrategy = iota
	// JoinNestedLoop probes every candidate with HasEdgeBetween — the
	// pre-planner candidate×candidate baseline, kept for ablations and
	// the planner benchmark. Results are identical to JoinAuto.
	JoinNestedLoop
)

// Stats reports how execution went: the sub-query sizes, the plan the
// processor chose (with its cost estimates — the explain surface), and
// the join work actually performed. Used by ablation A5, the planner
// benchmark and the HTTP API's ?explain=1 response.
type Stats struct {
	// CandidateCounts is the per-variable sub-query result size.
	CandidateCounts map[string]int
	// Order is the variable binding order the planner chose.
	Order []string
	// Costs is the planner's per-variable cost estimate at the point
	// each variable was placed: candidate-set size for scans, estimated
	// partial bindings × per-binding edge fan-out for semi-joins.
	Costs map[string]float64
	// Strategies names each variable's binding strategy: "scan" or
	// "semi-join(?bound -label-> ?var)" (the enumeration edge).
	Strategies map[string]string
	// BindingsTried counts candidate assignments attempted.
	BindingsTried int
	// Matches is the number of accepted bindings.
	Matches int
}
