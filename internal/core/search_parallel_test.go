package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/xquery"
)

// seqStore builds a store with one domain sequence and n committed
// annotations; every third annotation carries the word "special".
func seqStore(t testing.TB, n int) *Store {
	t.Helper()
	s := NewStore()
	sq, err := seq.New("chrP", seq.DNA, strings.Repeat("ACGT", 2500))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := s.MarkSequenceInterval("chrP", interval.Interval{Lo: int64(i % 5000), Hi: int64(i%5000 + 10)})
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("note number %d", i)
		if i%3 == 0 {
			body += " special"
		}
		if _, err := s.Commit(s.NewAnnotation().Creator("p").Date("2008-01-01").Body(body).Refer(m)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSearchContentsParallelMatchesSerial checks the fan-out scan returns
// exactly what a serial scan over the same pinned view returns — same
// annotations, same order.
func TestSearchContentsParallelMatchesSerial(t *testing.T) {
	s := seqStore(t, 500) // well past searchParallelThreshold
	v := s.View()
	const expr = `contains(/annotation/body, "special")`

	got, err := v.SearchContentsCtx(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference over the same view.
	q, err := xquery.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := searchChunk(context.Background(), q, expr, v.Annotations())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel returned %d, serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] { // pointer identity: same view, same objects
			t.Fatalf("result %d differs: %d vs %d", i, got[i].ID, want[i].ID)
		}
	}
	if len(got) == 0 {
		t.Fatal("no hits: bad fixture")
	}
}

// TestSearchContentsEvalError covers the error path: an expression that
// compiles but fails during evaluation must abort the scan (serial and
// parallel), return no partial results, and identify the failing
// annotation.
func TestSearchContentsEvalError(t *testing.T) {
	const expr = `count(string(/annotation/body))` // compiles; eval rejects count() of a string
	for _, n := range []int{10, 500} {             // below and above the parallel threshold
		s := seqStore(t, n)
		out, err := s.View().SearchContentsCtx(context.Background(), expr)
		if err == nil {
			t.Fatalf("n=%d: expected evaluation error", n)
		}
		if out != nil {
			t.Fatalf("n=%d: partial results returned alongside error", n)
		}
		if !strings.Contains(err.Error(), "count() requires a node set") {
			t.Fatalf("n=%d: unexpected error: %v", n, err)
		}
		if !strings.Contains(err.Error(), "on annotation") {
			t.Fatalf("n=%d: error does not identify the annotation: %v", n, err)
		}
	}
}

// TestSearchContentsCancellation checks a canceled context stops the scan
// with the context error.
func TestSearchContentsCancellation(t *testing.T) {
	s := seqStore(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.View().SearchContentsCtx(ctx, `contains(/annotation/body, "special")`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestKeywordIndexSorted asserts the invariant SearchKeyword relies on to
// skip per-call sorting: every posting list in the keyword index is kept
// sorted by annotation ID, through commits and deletions.
func TestKeywordIndexSorted(t *testing.T) {
	s := seqStore(t, 120)
	// Churn: delete a third of the annotations.
	for _, id := range s.AnnotationIDs() {
		if id%5 == 0 {
			if err := s.DeleteAnnotation(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	v := s.View()
	checked := 0
	v.keywordIdx.each(func(word string, ids []uint64) bool {
		if len(ids) == 0 {
			t.Fatalf("keyword %q has an empty posting list (should have been deleted)", word)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("keyword %q postings not strictly sorted: %v", word, ids)
			}
		}
		for _, id := range ids {
			if v.annotations.get(id) == nil {
				t.Fatalf("keyword %q references deleted annotation %d", word, id)
			}
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("keyword index empty: bad fixture")
	}
	// And the indexed search path returns ID-sorted results equal to the
	// scan path on the same view.
	idx := v.SearchKeyword("special", true)
	scan := v.SearchKeyword("special", false)
	if len(idx) != len(scan) || len(idx) == 0 {
		t.Fatalf("index %d hits, scan %d", len(idx), len(scan))
	}
	for i := range idx {
		if idx[i] != scan[i] {
			t.Fatalf("hit %d differs: %d vs %d", i, idx[i].ID, scan[i].ID)
		}
	}
}
