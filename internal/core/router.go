package core

import (
	"hash/fnv"
	"sync/atomic"
)

// This file is the core half of the sharded writer pipeline: the Router
// that places every mutation on one of N independent stores, the routing
// key each referent exposes, and the shared ID allocator that keeps
// annotation/referent IDs globally unique across shards. The shard
// facade itself (merged reads, broadcasts, durability) lives in
// internal/shard; the placement rules live here so the routing function
// and the mark/dedup semantics it depends on evolve together.

// IDSource allocates annotation and referent IDs for a store. A sharded
// deployment hands every shard the same source so concurrently committed
// annotations never collide; allocations must be strictly monotone.
type IDSource interface {
	AllocAnnotationID() uint64
	AllocReferentID() uint64
}

// AtomicIDs is the standard IDSource for a set of sharded stores: two
// shared atomic counters. The zero value starts both sequences at 1.
type AtomicIDs struct {
	ann atomic.Uint64
	ref atomic.Uint64
}

// AllocAnnotationID returns the next annotation ID.
func (a *AtomicIDs) AllocAnnotationID() uint64 { return a.ann.Add(1) }

// AllocReferentID returns the next referent ID.
func (a *AtomicIDs) AllocReferentID() uint64 { return a.ref.Add(1) }

// Advance raises the counters to at least (nextAnn, nextRef) — the
// recovery path calls it with the maximum per-shard view counters so
// post-replay allocations resume after every replayed ID.
func (a *AtomicIDs) Advance(nextAnn, nextRef uint64) {
	advanceMax(&a.ann, nextAnn)
	advanceMax(&a.ref, nextRef)
}

// Counters reports the last allocated (annotation, referent) IDs.
func (a *AtomicIDs) Counters() (nextAnn, nextRef uint64) {
	return a.ann.Load(), a.ref.Load()
}

func advanceMax(c *atomic.Uint64, to uint64) {
	for {
		cur := c.Load()
		if cur >= to || c.CompareAndSwap(cur, to) {
			return
		}
	}
}

// Router maps routing keys onto shard indexes with a stable hash, so the
// same key always lands on the same shard across processes and restarts
// (the on-disk shard layout depends on it).
type Router struct {
	// Shards is the shard count; zero or one routes everything to 0.
	Shards int
}

// ShardOfKey returns the owning shard of a routing key (FNV-1a mod N).
func (r Router) ShardOfKey(key string) int {
	if r.Shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(r.Shards))
}

// ShardOfReferent returns the owning shard of a mark.
func (r Router) ShardOfReferent(ref *Referent) int {
	return r.ShardOfKey(ref.RouteKey())
}

// RouteKey returns the placement key of a mark: the coordinate domain
// for interval and region marks (so SUB_X overlap and co-registration
// propagation stay intra-shard), the owning object or table for
// structural marks, and the object ID for whole-object marks. Identical
// marks always have identical route keys, so per-shard mark dedup is
// exactly the unsharded dedup.
func (r *Referent) RouteKey() string {
	if r.Kind == ObjectReferent {
		// Domain for a whole-object mark is the object type — far too
		// coarse to spread load; the object's identity places it.
		return r.ObjectID
	}
	if r.Domain != "" {
		return r.Domain
	}
	return r.ObjectID
}
