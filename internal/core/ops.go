package core

import "fmt"

// OpKind enumerates the store's mutating operations. The durable layer
// (internal/durable) logs one op per mutation and replays them on
// recovery; the enumeration lives in core so the set of loggable
// mutations and the set of store mutations evolve together.
type OpKind uint8

// The mutation operations, in rough dependency order. Values are part of
// the on-disk WAL format: never renumber, only append.
const (
	// OpInvalid is the zero value; it never appears in a valid log.
	OpInvalid OpKind = iota
	// OpRegisterOntology registers a term graph.
	OpRegisterOntology
	// OpRegisterSystem registers a coordinate system.
	OpRegisterSystem
	// OpRegisterSequence registers a DNA/RNA/protein sequence.
	OpRegisterSequence
	// OpRegisterAlignment registers a multiple sequence alignment.
	OpRegisterAlignment
	// OpRegisterTree registers a phylogenetic tree.
	OpRegisterTree
	// OpRegisterInteractionGraph registers a molecular interaction graph.
	OpRegisterInteractionGraph
	// OpRegisterImage registers an image into a coordinate system.
	OpRegisterImage
	// OpCreateRecordTable creates a user record table.
	OpCreateRecordTable
	// OpInsertRecord inserts a row into a user record table.
	OpInsertRecord
	// OpCommitAnnotation commits an annotation (and any new referents).
	OpCommitAnnotation
	// OpDeleteAnnotation deletes an annotation (garbage-collecting
	// referents no other annotation references).
	OpDeleteAnnotation
	// OpAddRule registers a propagation rule. Rules are durable ops —
	// the derived facts they materialize are not (they are recomputed on
	// replay).
	OpAddRule
	// OpDeleteRule removes a propagation rule and its derived facts.
	OpDeleteRule
)

func (k OpKind) String() string {
	switch k {
	case OpRegisterOntology:
		return "register-ontology"
	case OpRegisterSystem:
		return "register-system"
	case OpRegisterSequence:
		return "register-sequence"
	case OpRegisterAlignment:
		return "register-alignment"
	case OpRegisterTree:
		return "register-tree"
	case OpRegisterInteractionGraph:
		return "register-interaction-graph"
	case OpRegisterImage:
		return "register-image"
	case OpCreateRecordTable:
		return "create-record-table"
	case OpInsertRecord:
		return "insert-record"
	case OpCommitAnnotation:
		return "commit-annotation"
	case OpDeleteAnnotation:
		return "delete-annotation"
	case OpAddRule:
		return "add-rule"
	case OpDeleteRule:
		return "delete-rule"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// IDCounters returns the annotation and referent ID counters (the next
// commit assigns nextAnn+1 / nextRef+1). Snapshots persist them so a
// restored store continues the exact ID sequence of the original —
// required for the durable layer's replay determinism when IDs outlive
// their annotations (deleted annotations leave gaps).
func (s *Store) IDCounters() (nextAnn, nextRef uint64) {
	return s.View().IDCounters()
}

// RestoreIDCounters sets the ID counters after a snapshot load. Counters
// may only move forward: lowering them would re-issue IDs that earlier
// annotations (possibly deleted ones recorded in a log) already used.
// Like every mutation, the change commits through the writer and
// publishes a new view.
func (s *Store) RestoreIDCounters(nextAnn, nextRef uint64) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if nextAnn < v.nextAnn || nextRef < v.nextRef {
		return fmt.Errorf("core: ID counters (%d, %d) behind live counters (%d, %d)",
			nextAnn, nextRef, v.nextAnn, v.nextRef)
	}
	nv := v.clone()
	nv.nextAnn, nv.nextRef = nextAnn, nextRef
	s.publish(nv)
	return nil
}
