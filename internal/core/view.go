// The snapshot-isolated read path. A View is an immutable, atomically
// published image of the store: every read runs lock-free against a
// pinned view, so a slow collection scan never blocks writers and a
// burst of commits never stalls readers — the paper's multi-user setting
// ("heavy traffic from millions of users") with the anomaly-free
// semantics snapshot isolation gives annotation systems.
//
// What a view guarantees:
//
//   - Immutability: nothing reachable from a View changes after Publish.
//     Maps are copy-on-write (sharded for the high-churn keyword and
//     mark-dedup indexes, chunked ID tables for annotations/referents),
//     and the interval/R-trees are path-copying, so a view's snapshots
//     share structure with the live trees without observing mutation.
//   - Annotation atomicity: an annotation is visible in a view with all
//     of its referents, its complete keyword postings and its content
//     document, or not at all — never half-applied.
//   - The a-graph and relational store are shared handles with their own
//     fine-grained synchronization (the a-graph iterates over
//     copy-on-write adjacency snapshots). Graph joins filter through the
//     pinned view's tables, so they never surface an annotation the view
//     does not contain. The converse is not guaranteed: a deletion
//     committed after a view was pinned removes join edges from the
//     shared graph immediately, so the pinned view's graph joins can
//     miss annotations its tables still hold. Isolation is exact for
//     table, spatial-index and keyword-index reads; graph-backed reads
//     are bounded between the pinned snapshot and the latest state.
package core

import (
	"fmt"
	"sort"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// View is an immutable snapshot of the store, published atomically by the
// serialized writer. All methods are safe for concurrent use by any
// number of readers and never block on (or observe) concurrent writers.
type View struct {
	rel   *relstore.Store
	graph *agraph.Graph

	ontologies map[string]*ontology.Ontology
	ontNames   []string // sorted
	systems    map[string]*imaging.CoordinateSystem
	sysNames   []string // sorted

	// Immutable snapshots of the per-domain interval trees and per-system
	// R-trees (the writer owns the mutable trees; path-copying makes these
	// O(1) to take and safe to share).
	itrees map[string]interval.Snapshot[string]
	rtrees map[string]rtree.Snapshot[string]

	seqs       map[string]*seq.Sequence
	seqType    map[string]ObjectType
	seqIDs     []string // sorted
	alignments map[string]*msa.Alignment
	alnIDs     []string // sorted
	trees      map[string]*phylo.Tree
	treeIDs    []string // sorted
	igraphs    map[string]*interact.Graph
	igraphIDs  []string // sorted
	images     map[string]*imaging.Image
	imageIDs   []string // sorted

	recordTables  map[string]bool
	recTableNames []string // sorted

	// objects is the (type, id)-sorted list of every registered data
	// object, maintained at registration time so ObjectList never sorts.
	objects []ObjectHandle

	annotations idtable[Annotation]
	referents   idtable[Referent]
	refByMark   smap[uint64]   // canonical mark -> shared referent ID
	keywordIdx  smap[[]uint64] // keyword -> sorted annotation IDs

	// derived is the materialized derived-annotation table, keyed by
	// source annotation ID (see derived.go). Maintained by the attached
	// Propagator inside the writer's critical section, so it is always
	// exactly consistent with the committed annotations of this view.
	derived      idtable[derivedEntry]
	derivedCount int
	derivedEpoch uint64

	// derivedByTarget is the target index of the derived table: every
	// fact, keyed by its target node ("kind:key"). It is maintained in
	// the same writer critical section as derived and published with the
	// same view, so the two are always exactly consistent. Per-target
	// lists are kept in (source, rule, witness) order — the per-target
	// subsequence of the global DerivedEach order — which keeps
	// index-driven reads byte-identical to table scans.
	derivedByTarget smap[[]DerivedFact]

	nextAnn, nextRef uint64

	// epoch numbers this view in publication order: the empty view is 0
	// and every publish increments it, so readers (and the view-epoch
	// gauge) can tell how far a pinned snapshot lags the live store.
	epoch uint64

	// m is the owning store's shard-labelled metric set; read-side
	// instruments (search latency) report through it so per-shard
	// attribution survives into pinned views.
	m *storeMetrics
}

// Epoch returns the view's publication number: 0 for a fresh store,
// incremented by every committed mutation. The difference between two
// epochs is the number of mutations published between them.
func (v *View) Epoch() uint64 { return v.epoch }

// emptyView returns the view of a fresh store.
func emptyView(rel *relstore.Store, graph *agraph.Graph, m *storeMetrics) *View {
	return &View{
		rel:          rel,
		graph:        graph,
		m:            m,
		ontologies:   map[string]*ontology.Ontology{},
		systems:      map[string]*imaging.CoordinateSystem{},
		itrees:       map[string]interval.Snapshot[string]{},
		rtrees:       map[string]rtree.Snapshot[string]{},
		seqs:         map[string]*seq.Sequence{},
		seqType:      map[string]ObjectType{},
		alignments:   map[string]*msa.Alignment{},
		trees:        map[string]*phylo.Tree{},
		igraphs:      map[string]*interact.Graph{},
		images:       map[string]*imaging.Image{},
		recordTables: map[string]bool{},
	}
}

// clone returns a shallow successor view for the writer to specialize:
// every field still shares structure with v until the writer replaces it.
func (v *View) clone() *View {
	nv := *v
	return &nv
}

// Rel exposes the underlying relational store handle.
func (v *View) Rel() *relstore.Store { return v.rel }

// Graph exposes the a-graph handle for path/connect queries.
func (v *View) Graph() *agraph.Graph { return v.graph }

// Ontology returns a registered ontology.
func (v *View) Ontology(name string) (*ontology.Ontology, error) {
	o, ok := v.ontologies[name]
	if !ok {
		return nil, errNoSuchOntology(name)
	}
	return o, nil
}

// Ontologies returns the names of registered ontologies, sorted.
func (v *View) Ontologies() []string { return copyStrings(v.ontNames) }

// CoordinateSystem returns a registered coordinate system.
func (v *View) CoordinateSystem(name string) (*imaging.CoordinateSystem, error) {
	cs, ok := v.systems[name]
	if !ok {
		return nil, errNoSuchSystem(name)
	}
	return cs, nil
}

// CoordinateSystems returns the names of all registered coordinate
// systems, sorted.
func (v *View) CoordinateSystems() []string { return copyStrings(v.sysNames) }

// Sequence returns a registered sequence and its object type.
func (v *View) Sequence(id string) (*seq.Sequence, ObjectType, error) {
	sq, ok := v.seqs[id]
	if !ok {
		return nil, "", errNoSuchObject("sequence", id)
	}
	return sq, v.seqType[id], nil
}

// Alignment returns a registered alignment.
func (v *View) Alignment(id string) (*msa.Alignment, error) {
	a, ok := v.alignments[id]
	if !ok {
		return nil, errNoSuchObject("alignment", id)
	}
	return a, nil
}

// Tree returns a registered phylogenetic tree.
func (v *View) Tree(id string) (*phylo.Tree, error) {
	t, ok := v.trees[id]
	if !ok {
		return nil, errNoSuchObject("tree", id)
	}
	return t, nil
}

// InteractionGraph returns a registered interaction graph.
func (v *View) InteractionGraph(id string) (*interact.Graph, error) {
	g, ok := v.igraphs[id]
	if !ok {
		return nil, errNoSuchObject("interaction graph", id)
	}
	return g, nil
}

// Image returns a registered image.
func (v *View) Image(id string) (*imaging.Image, error) {
	im, ok := v.images[id]
	if !ok {
		return nil, errNoSuchObject("image", id)
	}
	return im, nil
}

// Images returns the IDs of all registered images, sorted.
func (v *View) Images() []string { return copyStrings(v.imageIDs) }

// SequenceIDs returns the IDs of all registered sequences, sorted.
func (v *View) SequenceIDs() []string { return copyStrings(v.seqIDs) }

// AlignmentIDs returns the IDs of all registered alignments, sorted.
func (v *View) AlignmentIDs() []string { return copyStrings(v.alnIDs) }

// TreeIDs returns the IDs of all registered phylogenetic trees, sorted.
func (v *View) TreeIDs() []string { return copyStrings(v.treeIDs) }

// InteractionGraphIDs returns the IDs of all registered interaction
// graphs, sorted.
func (v *View) InteractionGraphIDs() []string { return copyStrings(v.igraphIDs) }

// RecordTables returns the names of all user record tables, sorted.
func (v *View) RecordTables() []string { return copyStrings(v.recTableNames) }

// ObjectList returns every registered data object, sorted by (type, id).
// The list is maintained at registration time, so this is a copy, not a
// scan-and-sort.
func (v *View) ObjectList() []ObjectHandle {
	out := make([]ObjectHandle, len(v.objects))
	copy(out, v.objects)
	return out
}

// Annotation returns a committed annotation by ID.
func (v *View) Annotation(id uint64) (*Annotation, error) {
	if a := v.annotations.get(id); a != nil {
		return a, nil
	}
	return nil, errNoSuchAnnotation(id)
}

// Annotations returns all committed annotations, sorted by ID.
func (v *View) Annotations() []*Annotation {
	out := make([]*Annotation, 0, v.annotations.len())
	v.annotations.each(func(_ uint64, a *Annotation) bool {
		out = append(out, a)
		return true
	})
	return out
}

// AnnotationIDs returns the IDs of all committed annotations, sorted.
func (v *View) AnnotationIDs() []uint64 { return v.annotations.ids() }

// Referent returns a committed referent by ID.
func (v *View) Referent(id uint64) (*Referent, error) {
	if r := v.referents.get(id); r != nil {
		return r, nil
	}
	return nil, errNoSuchReferent(id)
}

// Referents returns all committed referents, sorted by ID.
func (v *View) Referents() []*Referent {
	out := make([]*Referent, 0, v.referents.len())
	v.referents.each(func(_ uint64, r *Referent) bool {
		out = append(out, r)
		return true
	})
	return out
}

// IDCounters returns the annotation and referent ID counters as of this
// view (the next commit assigns nextAnn+1 / nextRef+1).
func (v *View) IDCounters() (nextAnn, nextRef uint64) { return v.nextAnn, v.nextRef }

// EachKeyword visits every indexed keyword in unspecified order, stopping
// early when fn returns false. A sharded deployment uses this to count
// the distinct-keyword union across shards without materialising posting
// lists.
func (v *View) EachKeyword(fn func(word string) bool) {
	v.keywordIdx.each(func(word string, _ []uint64) bool { return fn(word) })
}

// Stats returns the view's component sizes.
func (v *View) Stats() Stats {
	return Stats{
		Annotations:       v.annotations.len(),
		Referents:         v.referents.len(),
		Sequences:         len(v.seqs),
		Alignments:        len(v.alignments),
		Trees:             len(v.trees),
		InteractionGraphs: len(v.igraphs),
		Images:            len(v.images),
		Ontologies:        len(v.ontologies),
		IntervalTrees:     len(v.itrees),
		RTrees:            len(v.rtrees),
		GraphNodes:        v.graph.NodeCount(),
		GraphEdges:        v.graph.EdgeCount(),
		Keywords:          v.keywordIdx.len(),
		Derived:           v.derivedCount,
	}
}

func errNoSuchOntology(name string) error {
	return fmt.Errorf("%w: %s", ErrNoSuchOntology, name)
}

func errNoSuchSystem(name string) error {
	return fmt.Errorf("%w: %s", ErrNoSuchSystem, name)
}

func errNoSuchObject(kind, id string) error {
	return fmt.Errorf("%w: %s %s", ErrNoSuchObject, kind, id)
}

func errNoSuchAnnotation(id uint64) error {
	return fmt.Errorf("%w: %d", ErrNoSuchAnnotation, id)
}

func errNoSuchReferent(id uint64) error {
	return fmt.Errorf("%w: %d", ErrNoSuchReferent, id)
}

func copyStrings(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	return out
}

// sortAnnotations orders a result slice by annotation ID (graph joins
// discover annotations in edge order, not ID order).
func sortAnnotations(out []*Annotation) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}
