// Package core implements Graphitti's annotation model — the paper's
// primary contribution.
//
// An annotation is a "linker object" connecting an annotation content (an
// XML document with Dublin Core and user-defined elements) to one or more
// annotation referents (marked sub-structures of heterogeneous data
// objects) and to ontology terms. Committing an annotation updates the
// type-specific relational tables, the per-domain interval trees and
// per-system R-trees, and the a-graph that joins everything together.
package core

import (
	"errors"
	"fmt"
	"strings"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
	"graphitti/internal/subx"
)

// ObjectType names a registered data type; each has its own relational
// table, per the paper ("DNA sequences, protein sequences, images etc. all
// have their metadata stored in separate tables").
type ObjectType string

// The data types of the two demonstration studies.
const (
	TypeDNA         ObjectType = "dna_sequences"
	TypeRNA         ObjectType = "rna_sequences"
	TypeProtein     ObjectType = "protein_sequences"
	TypeAlignment   ObjectType = "alignments"
	TypeTree        ObjectType = "phylo_trees"
	TypeInteraction ObjectType = "interaction_graphs"
	TypeImage       ObjectType = "images"
	TypeRecord      ObjectType = "records"
)

// ReferentKind discriminates the mark shapes of the heterogeneous data
// types.
type ReferentKind uint8

// Referent kinds.
const (
	// IntervalReferent marks a sub-interval of a sequence, addressed in
	// the sequence's shared coordinate domain.
	IntervalReferent ReferentKind = iota
	// RegionReferent marks a rectangular image region, addressed in the
	// image's shared coordinate system.
	RegionReferent
	// CladeReferent marks a clade of a phylogenetic tree (a leaf set).
	CladeReferent
	// SubgraphReferent marks an induced subgraph of an interaction graph
	// (a molecule set).
	SubgraphReferent
	// BlockReferent marks a block of an alignment (rows x column range).
	BlockReferent
	// RecordSetReferent marks a set of rows of a relational table.
	RecordSetReferent
	// ObjectReferent marks a whole data object.
	ObjectReferent
)

func (k ReferentKind) String() string {
	switch k {
	case IntervalReferent:
		return "interval"
	case RegionReferent:
		return "region"
	case CladeReferent:
		return "clade"
	case SubgraphReferent:
		return "subgraph"
	case BlockReferent:
		return "block"
	case RecordSetReferent:
		return "recordset"
	case ObjectReferent:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Errors reported by the annotation store.
var (
	ErrNoSuchObject     = errors.New("core: no such data object")
	ErrNoSuchAnnotation = errors.New("core: no such annotation")
	ErrNoSuchReferent   = errors.New("core: no such referent")
	ErrNoSuchOntology   = errors.New("core: no such ontology")
	ErrNoSuchTerm       = errors.New("core: no such ontology term")
	ErrNoSuchSystem     = errors.New("core: no such coordinate system")
	ErrDuplicate        = errors.New("core: duplicate registration")
	ErrEmptyAnnotation  = errors.New("core: annotation needs at least one referent or ontology reference")
	ErrBadMark          = errors.New("core: invalid mark")
)

// Referent is a marked sub-structure of a registered data object. A
// referent is created by one of the Store's Mark* constructors and becomes
// permanent (ID != 0) when an annotation referencing it is committed.
// Referents may be shared by multiple annotations — the paper's indirect
// relation ("if the same referent is connected to two different
// annotations … the two annotations become indirectly related").
type Referent struct {
	ID         uint64
	Kind       ReferentKind
	ObjectType ObjectType
	ObjectID   string
	// Domain is the coordinate space of the mark: the chromosome/segment
	// for intervals, the coordinate system for regions, and the owning
	// object ID for structural marks.
	Domain string
	// Interval is set for IntervalReferent (domain coordinates) and holds
	// the column range for BlockReferent.
	Interval interval.Interval
	// Region is set for RegionReferent (system coordinates).
	Region rtree.Rect
	// Keys is set for clade (leaf names), subgraph (molecule IDs), block
	// (row IDs) and record-set (primary keys) marks; sorted.
	Keys []string
}

// Mark converts the referent to its SUB_X algebra value.
func (r *Referent) Mark() subx.Mark {
	switch r.Kind {
	case IntervalReferent:
		return subx.IntervalMark{Domain: r.Domain, IV: r.Interval}
	case RegionReferent:
		return subx.RegionMark{System: r.Domain, R: r.Region}
	case ObjectReferent:
		return subx.NewSetMark(string(r.ObjectType), r.ObjectID)
	default:
		return subx.NewSetMark(r.Domain, r.Keys...)
	}
}

// Overlaps applies the SUB_X ifOverlap operator to two referents.
func (r *Referent) Overlaps(o *Referent) bool {
	return subx.IfOverlap(r.Mark(), o.Mark())
}

// String renders the referent for diagnostics.
func (r *Referent) String() string {
	switch r.Kind {
	case IntervalReferent:
		return fmt.Sprintf("ref%d interval %s on %s/%s %v", r.ID, r.ObjectType, r.ObjectID, r.Domain, r.Interval)
	case RegionReferent:
		return fmt.Sprintf("ref%d region on %s in %s %v", r.ID, r.ObjectID, r.Domain, r.Region)
	case ObjectReferent:
		return fmt.Sprintf("ref%d object %s/%s", r.ID, r.ObjectType, r.ObjectID)
	default:
		return fmt.Sprintf("ref%d %s on %s {%s}", r.ID, r.Kind, r.ObjectID, strings.Join(r.Keys, ","))
	}
}

// TermRef is a reference from an annotation to an ontology node. Per the
// paper, "an annotation only points to ontology nodes".
type TermRef struct {
	Ontology string
	TermID   string
}

func (t TermRef) String() string { return t.Ontology + "/" + t.TermID }
