package core

import (
	"fmt"
	"sort"
	"time"

	"graphitti/internal/agraph"
	"graphitti/internal/dublincore"
	"graphitti/internal/trace"
	"graphitti/internal/xmldoc"
)

// Annotation is the linker object of the Graphitti model: it connects an
// XML content document to referents and ontology terms. Instances are
// immutable once committed.
type Annotation struct {
	ID uint64
	// Content is the annotation's XML document (Dublin Core elements,
	// body, user-defined tags, referent and ontology-reference stanzas).
	Content *xmldoc.Document
	// DC is the parsed Dublin Core record.
	DC *dublincore.Record
	// ReferentIDs are the committed referents, in builder order.
	ReferentIDs []uint64
	// Terms are the ontology references.
	Terms []TermRef
}

// Builder assembles an annotation prior to Commit. Builders are not safe
// for concurrent use; each goroutine should use its own.
type Builder struct {
	store *Store
	dc    dublincore.Record
	title string
	body  string
	tags  []tagPair
	refs  []*Referent
	terms []TermRef
	errs  []error
	span  *trace.Span
}

type tagPair struct {
	name, value string
}

// NewAnnotation starts an annotation builder.
func (s *Store) NewAnnotation() *Builder {
	return &Builder{store: s}
}

// NewBuilder starts a store-free annotation builder: any store can commit
// it. A sharded router uses this to assemble the annotation first and
// pick the owning shard from the referents afterwards.
func NewBuilder() *Builder { return &Builder{} }

// WithSpan attaches a trace span to the builder: commit-path layers
// (router, writer, WAL) hang their child spans off it as the builder
// crosses them. The builder is the one value that travels the whole
// commit pipeline, so it carries the trace instead of every layer
// growing a context parameter. Nil clears it.
func (b *Builder) WithSpan(sp *trace.Span) *Builder {
	b.span = sp
	return b
}

// Span returns the span attached with WithSpan, or nil.
func (b *Builder) Span() *trace.Span { return b.span }

// SetSpan is WithSpan without the chaining return, for layers that
// re-point the builder at a child span and restore it after.
func (b *Builder) SetSpan(sp *trace.Span) { b.span = sp }

// Referents returns the referents attached so far, in builder order. The
// slice is shared with the builder; callers must not mutate it.
func (b *Builder) Referents() []*Referent { return b.refs }

// TermRefs returns the ontology references attached so far, in builder
// order. The slice is shared with the builder; callers must not mutate it.
func (b *Builder) TermRefs() []TermRef { return b.terms }

// Creator sets the Dublin Core creator element.
func (b *Builder) Creator(name string) *Builder {
	b.recordErr(b.dc.Add(dublincore.Creator, name))
	return b
}

// Date sets the Dublin Core date element.
func (b *Builder) Date(date string) *Builder {
	b.recordErr(b.dc.Set(dublincore.Date, date))
	return b
}

// Title sets the Dublin Core title element.
func (b *Builder) Title(title string) *Builder {
	b.title = title
	b.recordErr(b.dc.Set(dublincore.Title, title))
	return b
}

// Subject adds a Dublin Core subject element.
func (b *Builder) Subject(subject string) *Builder {
	b.recordErr(b.dc.Add(dublincore.Subject, subject))
	return b
}

// DCElement sets an arbitrary Dublin Core element.
func (b *Builder) DCElement(e dublincore.Element, values ...string) *Builder {
	b.recordErr(b.dc.Set(e, values...))
	return b
}

// Body sets the free-text comment of the annotation.
func (b *Builder) Body(text string) *Builder {
	b.body = text
	return b
}

// Tag adds a user-defined element (the paper's "other user-defined tags").
func (b *Builder) Tag(name, value string) *Builder {
	b.tags = append(b.tags, tagPair{name, value})
	return b
}

// Refer attaches a referent produced by one of the Mark* constructors (or
// an already-committed referent, enabling shared referents).
func (b *Builder) Refer(r *Referent) *Builder {
	if r == nil {
		b.errs = append(b.errs, fmt.Errorf("%w: nil referent", ErrBadMark))
		return b
	}
	b.refs = append(b.refs, r)
	return b
}

// OntologyRef attaches a reference to an ontology term.
func (b *Builder) OntologyRef(ontologyName, termID string) *Builder {
	b.terms = append(b.terms, TermRef{Ontology: ontologyName, TermID: termID})
	return b
}

func (b *Builder) recordErr(err error) {
	if err != nil {
		b.errs = append(b.errs, err)
	}
}

// Commit validates the annotation, stores its content document, registers
// its referents in the sub-structure indexes, and wires the a-graph. It
// implements the paper's commit flow: the user assembles referents and
// ontology references, previews the XML, and the annotation "is committed
// to the annotation storage". The new state becomes visible to readers
// atomically, as one published view — a concurrent reader sees either the
// whole annotation or none of it.
func (s *Store) Commit(b *Builder) (*Annotation, error) {
	return s.commit(b, 0, nil)
}

// CommitWithIDs commits with a pinned annotation ID and pinned referent
// IDs (one per builder referent; 0 leaves a referent unpinned). Snapshot
// load and WAL replay use it so a recovered store assigns exactly the IDs
// the original store assigned, even when deletions left gaps in the
// sequence. Pinned IDs may not collide with existing objects, and a
// pinned referent that dedups into an existing shared mark must carry
// that mark's ID.
func (s *Store) CommitWithIDs(b *Builder, annID uint64, refIDs []uint64) (*Annotation, error) {
	if annID == 0 {
		return nil, fmt.Errorf("core: pinned annotation ID must be non-zero")
	}
	if refIDs != nil && len(refIDs) != len(b.refs) {
		return nil, fmt.Errorf("core: %d pinned referent IDs for %d referents",
			len(refIDs), len(b.refs))
	}
	return s.commit(b, annID, refIDs)
}

func (s *Store) commit(b *Builder, pinnedAnn uint64, pinnedRefs []uint64) (*Annotation, error) {
	start := time.Now()
	if b.store != nil && b.store != s {
		return nil, fmt.Errorf("core: builder belongs to a different store")
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("core: invalid annotation: %v", b.errs[0])
	}
	if err := b.dc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(b.refs) == 0 && len(b.terms) == 0 {
		return nil, ErrEmptyAnnotation
	}

	s.w.Lock()
	defer s.w.Unlock()
	// The "commit" span covers exactly the writer critical section; time
	// spent queueing for s.w.Lock() shows up as the gap between this
	// span's start and its parent's.
	csp := b.span.StartChild("commit")
	defer csp.Finish()
	v := s.v.Load()

	// Validate ontology references before mutating anything.
	for _, tr := range b.terms {
		o, ok := v.ontologies[tr.Ontology]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchOntology, tr.Ontology)
		}
		if _, ok := o.Term(tr.TermID); !ok {
			return nil, fmt.Errorf("%w: %s in %s", ErrNoSuchTerm, tr.TermID, tr.Ontology)
		}
	}
	// Validate pre-committed referents.
	for _, r := range b.refs {
		if r.ID != 0 && v.referents.get(r.ID) == nil {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchReferent, r.ID)
		}
	}

	nextAnn := v.nextAnn
	var annID uint64
	switch {
	case pinnedAnn != 0:
		if v.annotations.get(pinnedAnn) != nil {
			return nil, fmt.Errorf("core: pinned annotation ID %d already committed", pinnedAnn)
		}
		annID = pinnedAnn
		if annID > nextAnn {
			nextAnn = annID
		}
	case s.ids != nil:
		// Shared allocator: IDs are globally unique and monotone across
		// shards, so within this shard annID always exceeds the counter.
		annID = s.ids.AllocAnnotationID()
		if annID > nextAnn {
			nextAnn = annID
		}
	default:
		nextAnn++
		annID = nextAnn
	}

	// Resolve referents against the pinned view plus this commit's own
	// pending marks: reuse identical marks, assign IDs to new ones.
	// Nothing is mutated yet — resolution errors leave the store exactly
	// as it was.
	nextRef := v.nextRef
	refIDs := make([]uint64, 0, len(b.refs))
	resolved := make([]*Referent, 0, len(b.refs))
	var newRefs []*Referent
	var newKeys []string
	pendingByKey := make(map[string]*Referent)
	pendingByID := make(map[uint64]bool)
	for i, r := range b.refs {
		var pin uint64
		if pinnedRefs != nil {
			pin = pinnedRefs[i]
		}
		if r.ID != 0 {
			stored := v.referents.get(r.ID)
			resolved = append(resolved, stored)
			refIDs = append(refIDs, stored.ID)
			continue
		}
		key := markKey(r)
		if p, ok := pendingByKey[key]; ok {
			if pin != 0 && pin != p.ID {
				return nil, fmt.Errorf("core: pinned referent ID %d, but identical mark stored as %d", pin, p.ID)
			}
			resolved = append(resolved, p)
			refIDs = append(refIDs, p.ID)
			continue
		}
		if id, ok := v.refByMark.get(key); ok {
			if pin != 0 && pin != id {
				return nil, fmt.Errorf("core: pinned referent ID %d, but identical mark stored as %d", pin, id)
			}
			stored := v.referents.get(id)
			resolved = append(resolved, stored)
			refIDs = append(refIDs, id)
			continue
		}
		stored := *r
		switch {
		case pin != 0:
			if v.referents.get(pin) != nil || pendingByID[pin] {
				return nil, fmt.Errorf("core: pinned referent ID %d already used by a different mark", pin)
			}
			stored.ID = pin
			if pin > nextRef {
				nextRef = pin
			}
		case s.ids != nil:
			stored.ID = s.ids.AllocReferentID()
			if stored.ID > nextRef {
				nextRef = stored.ID
			}
		default:
			nextRef++
			stored.ID = nextRef
		}
		pendingByKey[key] = &stored
		pendingByID[stored.ID] = true
		newRefs = append(newRefs, &stored)
		newKeys = append(newKeys, key)
		resolved = append(resolved, &stored)
		refIDs = append(refIDs, stored.ID)
	}

	// Index the new referents in the writer-owned spatial trees. The
	// trees are path-copying, so a failure is rolled back by deleting the
	// entries inserted so far — views already published are untouched.
	touchedDomains, touchedSystems := map[string]bool{}, map[string]bool{}
	for i, ref := range newRefs {
		if err := s.indexReferent(ref); err != nil {
			for _, done := range newRefs[:i] {
				s.unindexReferent(done)
			}
			return nil, err
		}
		switch ref.Kind {
		case IntervalReferent:
			touchedDomains[ref.Domain] = true
		case RegionReferent:
			touchedSystems[ref.Domain] = true
		}
	}

	doc := buildContentDoc(annID, &b.dc, b.body, b.tags, resolved, b.terms)
	ann := &Annotation{
		ID:          annID,
		Content:     doc,
		DC:          &b.dc,
		ReferentIDs: refIDs,
		Terms:       append([]TermRef(nil), b.terms...),
	}

	// a-graph wiring: referent -> object for new marks, then content ->
	// referent and content -> term. The graph is a shared handle with its
	// own synchronization; it is fully wired before the view publishes,
	// so a reader of the new view always finds the complete join index.
	for _, ref := range newRefs {
		s.graph.AddEdge(agraph.Referent(ref.ID),
			agraph.Object(string(ref.ObjectType), ref.ObjectID), agraph.LabelMarks)
	}
	contentNode := agraph.ContentRoot(annID)
	s.graph.AddNode(contentNode)
	for _, ref := range resolved {
		s.graph.AddEdge(contentNode, agraph.Referent(ref.ID), agraph.LabelAnnotates)
	}
	for _, tr := range b.terms {
		s.graph.AddEdge(contentNode, agraph.Term(tr.Ontology, tr.TermID), agraph.LabelRefersTo)
	}

	// Build and publish the successor view.
	nv := v.clone()
	nv.annotations = v.annotations.with(annID, ann)
	nv.nextAnn, nv.nextRef = nextAnn, nextRef
	if len(newRefs) > 0 {
		refTable := v.referents
		rbm := v.refByMark.edit()
		for i, ref := range newRefs {
			refTable = refTable.with(ref.ID, ref)
			rbm.set(newKeys[i], ref.ID)
		}
		nv.referents = refTable
		nv.refByMark = rbm.done()
		if len(touchedDomains) > 0 {
			nv.itrees = s.snapshotITrees(v, touchedDomains)
		}
		if len(touchedSystems) > 0 {
			nv.rtrees = s.snapshotRTrees(v, touchedSystems)
		}
	}
	// Keyword index over the content document (ablation A6). IDs ascend
	// across the writer chain, so each posting list stays sorted.
	kw := v.keywordIdx.edit()
	for _, word := range doc.Keywords() {
		ids, _ := kw.get(word)
		kw.set(word, appendSortedID(ids, annID))
	}
	nv.keywordIdx = kw.done()
	// Derived annotations: the propagator sees the fully-built successor
	// view and returns the delta for every affected source, so the new
	// annotation and its derived consequences publish as one view.
	if p := s.getPropagator(); p != nil {
		deltaStart := time.Now()
		s.applyDerivedDelta(nv, propagatorDelta(p, v, nv, ann, false, csp))
		s.m.propDelta.Observe(time.Since(deltaStart).Seconds())
	}
	csp.SetAttrInt("ann", int64(annID))
	csp.SetAttrInt("referents", int64(len(refIDs)))
	s.publish(nv)
	s.m.commits.Inc()
	s.m.commitSeconds.Observe(time.Since(start).Seconds())
	return ann, nil
}

// propagatorDelta runs the propagation delta under a "prop.delta" child
// of parent, routing through the propagator's per-rule attribution hook
// when it implements TracedPropagator.
func propagatorDelta(p Propagator, pre, post *View, ann *Annotation,
	deleted bool, parent *trace.Span) map[uint64][]DerivedFact {
	dsp := parent.StartChild("prop.delta")
	defer dsp.Finish()
	if tp, ok := p.(TracedPropagator); ok {
		return tp.DeltaTraced(pre, post, ann, deleted, dsp)
	}
	return p.Delta(pre, post, ann, deleted)
}

func buildContentDoc(annID uint64, dc *dublincore.Record, body string,
	tags []tagPair, refs []*Referent, terms []TermRef) *xmldoc.Document {
	doc := xmldoc.NewDocument("annotation")
	doc.Root.SetAttr("id", fmt.Sprintf("%d", annID))
	meta := doc.AddElement(doc.Root, "meta")
	dc.AppendXML(doc, meta)
	if body != "" {
		doc.AddElementText(doc.Root, "body", body)
	}
	if len(tags) > 0 {
		tagEl := doc.AddElement(doc.Root, "tags")
		for _, t := range tags {
			doc.AddElementText(tagEl, t.name, t.value)
		}
	}
	if len(refs) > 0 {
		refsEl := doc.AddElement(doc.Root, "referents")
		for _, r := range refs {
			el := doc.AddElement(refsEl, "referent")
			el.SetAttr("id", fmt.Sprintf("%d", r.ID))
			el.SetAttr("kind", r.Kind.String())
			el.SetAttr("type", string(r.ObjectType))
			el.SetAttr("object", r.ObjectID)
			el.SetAttr("domain", r.Domain)
			switch r.Kind {
			case IntervalReferent:
				el.SetAttr("lo", fmt.Sprintf("%d", r.Interval.Lo))
				el.SetAttr("hi", fmt.Sprintf("%d", r.Interval.Hi))
			case RegionReferent:
				el.SetAttr("region", r.Region.String())
			case BlockReferent:
				el.SetAttr("lo", fmt.Sprintf("%d", r.Interval.Lo))
				el.SetAttr("hi", fmt.Sprintf("%d", r.Interval.Hi))
				el.SetAttr("rows", joinKeys(r.Keys))
			default:
				el.SetAttr("keys", joinKeys(r.Keys))
			}
		}
	}
	if len(terms) > 0 {
		refsEl := doc.AddElement(doc.Root, "ontologyRefs")
		for _, tr := range terms {
			el := doc.AddElement(refsEl, "ref")
			el.SetAttr("ontology", tr.Ontology)
			el.SetAttr("term", tr.TermID)
		}
	}
	return doc
}

func joinKeys(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	out := ""
	for i, k := range sorted {
		if i > 0 {
			out += ","
		}
		out += k
	}
	return out
}

// Annotation returns a committed annotation by ID.
func (s *Store) Annotation(id uint64) (*Annotation, error) {
	return s.View().Annotation(id)
}

// Referent returns a committed referent by ID.
func (s *Store) Referent(id uint64) (*Referent, error) {
	return s.View().Referent(id)
}

// Referents returns all committed referents, sorted by ID.
func (s *Store) Referents() []*Referent { return s.View().Referents() }

// ObjectHandle identifies a registered data object.
type ObjectHandle struct {
	Type ObjectType
	ID   string
}

// ObjectList returns every registered data object (sequences, alignments,
// trees, interaction graphs, images, record rows), sorted by (type, id).
func (s *Store) ObjectList() []ObjectHandle { return s.View().ObjectList() }

// Annotations returns all committed annotations, sorted by ID.
func (s *Store) Annotations() []*Annotation { return s.View().Annotations() }

// AnnotationIDs returns the IDs of all committed annotations, sorted.
func (s *Store) AnnotationIDs() []uint64 { return s.View().AnnotationIDs() }
