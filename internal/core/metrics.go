package core

import "graphitti/internal/obs"

// Process-wide writer-path metrics (see internal/obs for the scope
// model): commit/delete latency covers the full critical section —
// validation, indexing, graph wiring, propagation delta, publish — and
// the gauges track the latest published view. All are documented in
// docs/METRICS.md, which a test keeps in sync.
var (
	mCommits = obs.NewCounter("graphitti_store_commits_total",
		"Annotations committed.")
	mCommitSeconds = obs.NewHistogram("graphitti_store_commit_duration_seconds",
		"Annotation commit latency, critical section end to end.", nil)
	mDeletes = obs.NewCounter("graphitti_store_deletes_total",
		"Annotations deleted.")
	mDeleteSeconds = obs.NewHistogram("graphitti_store_delete_duration_seconds",
		"Annotation delete latency, critical section end to end.", nil)
	mPropDeltaSeconds = obs.NewHistogram("graphitti_store_propagation_delta_seconds",
		"Time computing the incremental derived-annotation delta inside a commit or delete.", nil)
	mSearchSeconds = obs.NewHistogram("graphitti_store_search_duration_seconds",
		"Keyword/content search latency against a pinned view.", nil)
	mViewEpoch = obs.NewGauge("graphitti_store_view_epoch",
		"Publication number of the current view; increments on every mutation.")
	mAnnotations = obs.NewGauge("graphitti_store_annotations",
		"Annotations in the current view.")
	mDerivedFacts = obs.NewGauge("graphitti_store_derived_facts",
		"Materialized derived facts in the current view.")
)
