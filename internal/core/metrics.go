package core

import "graphitti/internal/obs"

// Writer-path metric families (see internal/obs for the scope model):
// commit/delete latency covers the full critical section — validation,
// indexing, graph wiring, propagation delta, publish — and the gauges
// track the latest published view. Every family carries a "shard" label
// so a sharded deployment can tell its writer pipelines apart; an
// unsharded store reports as shard "0". All are documented in
// docs/METRICS.md, which a test keeps in sync.
var (
	mCommitsVec = obs.NewCounterVec("graphitti_store_commits_total",
		"Annotations committed.", "shard")
	mCommitSecondsVec = obs.NewHistogramVec("graphitti_store_commit_duration_seconds",
		"Annotation commit latency, critical section end to end.", nil, "shard")
	mDeletesVec = obs.NewCounterVec("graphitti_store_deletes_total",
		"Annotations deleted.", "shard")
	mDeleteSecondsVec = obs.NewHistogramVec("graphitti_store_delete_duration_seconds",
		"Annotation delete latency, critical section end to end.", nil, "shard")
	mPropDeltaSecondsVec = obs.NewHistogramVec("graphitti_store_propagation_delta_seconds",
		"Time computing the incremental derived-annotation delta inside a commit or delete.", nil, "shard")
	mSearchSecondsVec = obs.NewHistogramVec("graphitti_store_search_duration_seconds",
		"Keyword/content search latency against a pinned view.", nil, "shard")
	mViewEpochVec = obs.NewGaugeVec("graphitti_store_view_epoch",
		"Publication number of the current view; increments on every mutation.", "shard")
	mAnnotationsVec = obs.NewGaugeVec("graphitti_store_annotations",
		"Annotations in the current view.", "shard")
	mDerivedFactsVec = obs.NewGaugeVec("graphitti_store_derived_facts",
		"Materialized derived facts in the current view.", "shard")
)

// storeMetrics binds one shard's children of the writer-path families.
// Each Store carries its own set, and every View it publishes keeps a
// handle so read-side instruments (search latency) attribute to the
// shard that built the view.
type storeMetrics struct {
	commits       *obs.Counter
	commitSeconds *obs.Histogram
	deletes       *obs.Counter
	deleteSeconds *obs.Histogram
	propDelta     *obs.Histogram
	searchSeconds *obs.Histogram
	viewEpoch     *obs.Gauge
	annotations   *obs.Gauge
	derivedFacts  *obs.Gauge
}

func metricsForShard(shard string) *storeMetrics {
	if shard == "" {
		shard = "0"
	}
	return &storeMetrics{
		commits:       mCommitsVec.With(shard),
		commitSeconds: mCommitSecondsVec.With(shard),
		deletes:       mDeletesVec.With(shard),
		deleteSeconds: mDeleteSecondsVec.With(shard),
		propDelta:     mPropDeltaSecondsVec.With(shard),
		searchSeconds: mSearchSecondsVec.With(shard),
		viewEpoch:     mViewEpochVec.With(shard),
		annotations:   mAnnotationsVec.With(shard),
		derivedFacts:  mDerivedFactsVec.With(shard),
	}
}
