// Snapshot-isolation stress test: 8 writers churn commits and deletions
// while 8 readers pin views and check that no pinned view ever observes a
// half-applied mutation, then the interleaved history is replayed
// serially and the final states compared export-for-export.
package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/persist"
)

const stressDomain = "chrStress"

// stressOp is one entry of the interleaved history, recorded in
// completion order for the serial replay.
type stressOp struct {
	commit *persist.AnnotationDump // set for commits
	delete uint64                  // set for deletions
}

func TestSnapshotIsolationStress(t *testing.T) {
	const writers, readers = 8, 8
	iters := 150
	if testing.Short() {
		iters = 40
	}

	s := core.NewStore()
	sq, err := seq.New("stress-seq", seq.DNA, strings.Repeat("ACGT", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = stressDomain
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}

	var (
		histMu  sync.Mutex
		history []stressOp
	)
	record := func(op stressOp) {
		histMu.Lock()
		history = append(history, op)
		histMu.Unlock()
	}

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})

	// Writers: every annotation carries the invariant shape the readers
	// check — keyword "stress", a writer tag, and >= 1 interval referent.
	// Even iterations use marks that collide across writers, exercising
	// concurrent referent dedup; odd iterations use writer-unique marks,
	// and only those annotations are ever deleted. (Shared-mark referents
	// are never garbage-collected, so the completion-order history stays
	// a valid serialization: pinned-ID replay of never-recreated marks is
	// order-insensitive, and each writer's own delete-after-recreate
	// sequences are recorded in that writer's true order.)
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			var deletable []uint64
			for i := 0; i < iters; i++ {
				var lo int64
				if i%2 == 0 {
					lo = int64((i % 40) * 100) // shared across writers
				} else {
					lo = int64(100_000 + w*10_000 + (i%40)*100) // writer-unique
				}
				m, err := s.MarkDomainInterval(stressDomain, interval.Interval{Lo: lo, Hi: lo + 50})
				if err != nil {
					t.Errorf("writer %d: mark: %v", w, err)
					return
				}
				b := s.NewAnnotation().
					Creator(fmt.Sprintf("writer-%d", w)).
					Date("2008-01-01").
					Body(fmt.Sprintf("stress alpha w%dnote%d", w, i)).
					Refer(m)
				ann, err := s.Commit(b)
				if err != nil {
					t.Errorf("writer %d: commit: %v", w, err)
					return
				}
				dump, err := persist.DumpAnnotation(s, ann)
				if err != nil {
					t.Errorf("writer %d: dump: %v", w, err)
					return
				}
				record(stressOp{commit: &dump})
				if i%2 == 1 {
					deletable = append(deletable, ann.ID)
				}
				if i%5 == 4 && len(deletable) > 2 {
					victim := deletable[0]
					deletable = deletable[1:]
					if err := s.DeleteAnnotation(victim); err != nil {
						t.Errorf("writer %d: delete %d: %v", w, victim, err)
						return
					}
					record(stressOp{delete: victim})
				}
			}
		}(w)
	}

	// Readers: pin a view per round and verify its internal consistency.
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()

				// Index and scan answers over the SAME view must agree
				// exactly: a half-applied commit (annotation in the table
				// but postings missing, or vice versa) would break this.
				idx := v.SearchKeyword("stress", true)
				scan := v.SearchKeyword("stress", false)
				if len(idx) != len(scan) {
					t.Errorf("reader %d: index %d hits, scan %d", r, len(idx), len(scan))
					return
				}
				for i := range idx {
					if idx[i].ID != scan[i].ID {
						t.Errorf("reader %d: hit %d: index %d vs scan %d", r, i, idx[i].ID, scan[i].ID)
						return
					}
				}

				// Annotation atomicity: every visible annotation is
				// complete — content, DC record, and all referents
				// resolvable in the same view.
				for _, ann := range idx {
					if ann.Content == nil || ann.DC == nil || len(ann.ReferentIDs) == 0 {
						t.Errorf("reader %d: annotation %d half-applied", r, ann.ID)
						return
					}
					if got := ann.DC.First("creator"); !strings.HasPrefix(got, "writer-") {
						t.Errorf("reader %d: annotation %d creator %q", r, ann.ID, got)
						return
					}
					for _, refID := range ann.ReferentIDs {
						ref, err := v.Referent(refID)
						if err != nil {
							t.Errorf("reader %d: annotation %d referent %d missing from its own view: %v",
								r, ann.ID, refID, err)
							return
						}
						if ref.Kind != core.IntervalReferent || ref.Domain != stressDomain {
							t.Errorf("reader %d: referent %d malformed: %+v", r, refID, ref)
							return
						}
					}
				}

				// Aggregates agree with enumerations on the same view.
				st := v.Stats()
				if anns := v.Annotations(); len(anns) != st.Annotations {
					t.Errorf("reader %d: Stats.Annotations=%d but %d enumerated", r, st.Annotations, len(anns))
					return
				} else {
					for i := 1; i < len(anns); i++ {
						if anns[i-1].ID >= anns[i].ID {
							t.Errorf("reader %d: annotations not sorted", r)
							return
						}
					}
				}
				if refs := v.Referents(); len(refs) != st.Referents {
					t.Errorf("reader %d: Stats.Referents=%d but %d enumerated", r, st.Referents, len(refs))
					return
				}

				// A content scan on the pinned view matches the keyword
				// index on the pinned view (every stress body says alpha).
				hits, err := v.SearchContentsCtx(context.Background(), `contains(/annotation/body, "alpha")`)
				if err != nil {
					t.Errorf("reader %d: search: %v", r, err)
					return
				}
				if len(hits) != len(idx) {
					t.Errorf("reader %d: content scan %d hits, keyword index %d", r, len(hits), len(idx))
					return
				}
			}
		}(r)
	}

	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	if t.Failed() {
		return
	}

	// Serial reference: replay the recorded history, in completion
	// order, into a fresh store through the same writer path (pinned
	// IDs), and compare the final exports byte-for-byte.
	ref := core.NewStore()
	sq2, err := seq.New("stress-seq", seq.DNA, strings.Repeat("ACGT", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	sq2.Domain = stressDomain
	if err := ref.RegisterSequence(sq2); err != nil {
		t.Fatal(err)
	}
	for i, op := range history {
		if op.commit != nil {
			if err := persist.ApplyAnnotation(ref, *op.commit); err != nil {
				t.Fatalf("serial replay op %d: %v", i, err)
			}
		} else {
			if err := ref.DeleteAnnotation(op.delete); err != nil {
				t.Fatalf("serial replay delete %d (op %d): %v", op.delete, i, err)
			}
		}
	}
	gotSnap, err := persist.Export(s)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := persist.Export(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Counters match too: failed commits never burn IDs under the
	// publish-on-success design, and replay re-derives the same maxima
	// from the pinned IDs.
	got, err := json.Marshal(gotSnap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("concurrent final state differs from serial replay:\nconcurrent: %.2000s\nserial: %.2000s", got, want)
	}
}
