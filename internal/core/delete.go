package core

import (
	"time"

	"graphitti/internal/agraph"
)

// DeleteAnnotation removes a committed annotation: its content document,
// its keyword index entries, and its a-graph edges. Referents that no
// other annotation references are garbage-collected from the sub-structure
// indexes (the paper's admin tab owns this lifecycle; deletion must not
// orphan index entries). Like Commit, the removal is published as one new
// view: a pinned reader's table and keyword-index reads keep seeing the
// annotation, complete, until it re-pins. The a-graph is a shared handle,
// so the content node disappears from the join index immediately — a
// pinned view's graph joins may stop finding an annotation its tables
// still hold (they never surface one its tables lack; see the View
// contract in view.go).
func (s *Store) DeleteAnnotation(id uint64) error {
	start := time.Now()
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	ann := v.annotations.get(id)
	if ann == nil {
		return errNoSuchAnnotation(id)
	}

	nv := v.clone()

	// Keyword index entries: fresh (never shared) posting slices.
	kw := v.keywordIdx.edit()
	for _, word := range ann.Content.Keywords() {
		ids, _ := kw.get(word)
		if pruned := withoutID(ids, id); len(pruned) == 0 {
			kw.delete(word)
		} else {
			kw.set(word, pruned)
		}
	}
	nv.keywordIdx = kw.done()

	// a-graph: drop the content node (and its annotates/refersTo edges).
	contentNode := agraph.ContentRoot(id)
	_ = s.graph.RemoveNode(contentNode) // node exists for every commit

	nv.annotations = v.annotations.without(id)

	// Garbage-collect now-unreferenced referents.
	refTable := v.referents
	rbm := v.refByMark.edit()
	touchedDomains, touchedSystems := map[string]bool{}, map[string]bool{}
	for _, refID := range ann.ReferentIDs {
		ref := refTable.get(refID)
		if ref == nil {
			continue
		}
		refNode := agraph.Referent(refID)
		if s.graph.InCount(refNode, agraph.LabelAnnotates) > 0 {
			continue // still referenced
		}
		s.unindexReferent(ref)
		switch ref.Kind {
		case IntervalReferent:
			touchedDomains[ref.Domain] = true
		case RegionReferent:
			touchedSystems[ref.Domain] = true
		}
		rbm.delete(markKey(ref))
		refTable = refTable.without(refID)
		_ = s.graph.RemoveNode(refNode)
	}
	nv.referents = refTable
	nv.refByMark = rbm.done()
	if len(touchedDomains) > 0 {
		nv.itrees = s.snapshotITrees(v, touchedDomains)
	}
	if len(touchedSystems) > 0 {
		nv.rtrees = s.snapshotRTrees(v, touchedSystems)
	}
	// Derived annotations: drop the deleted source's facts and recompute
	// its neighborhood, so no derived fact survives its source or targets
	// a garbage-collected referent. The pre-delete view v still holds the
	// GC'd referents in its tree snapshots, which is how the propagator
	// finds the affected neighbors.
	if p := s.getPropagator(); p != nil {
		deltaStart := time.Now()
		s.applyDerivedDelta(nv, propagatorDelta(p, v, nv, ann, true, nil))
		s.m.propDelta.Observe(time.Since(deltaStart).Seconds())
	}
	s.publish(nv)
	s.m.deletes.Inc()
	s.m.deleteSeconds.Observe(time.Since(start).Seconds())
	return nil
}
