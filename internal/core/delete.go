package core

import (
	"fmt"

	"graphitti/internal/agraph"
)

// DeleteAnnotation removes a committed annotation: its content document,
// its keyword index entries, and its a-graph edges. Referents that no
// other annotation references are garbage-collected from the sub-structure
// indexes (the paper's admin tab owns this lifecycle; deletion must not
// orphan index entries).
func (s *Store) DeleteAnnotation(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ann, ok := s.annotations[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchAnnotation, id)
	}

	// Keyword index entries.
	for _, word := range ann.Content.Keywords() {
		s.keywordIdx[word] = removeID(s.keywordIdx[word], id)
		if len(s.keywordIdx[word]) == 0 {
			delete(s.keywordIdx, word)
		}
	}

	// a-graph: drop the content node (and its annotates/refersTo edges).
	contentNode := agraph.ContentRoot(id)
	_ = s.graph.RemoveNode(contentNode) // node exists for every commit

	delete(s.annotations, id)

	// Garbage-collect now-unreferenced referents.
	for _, refID := range ann.ReferentIDs {
		s.collectReferentLocked(refID)
	}
	return nil
}

// collectReferentLocked removes a referent when no annotation references
// it any more: its spatial index entry, its mark-dedup entry, and its
// a-graph node.
func (s *Store) collectReferentLocked(refID uint64) {
	ref, ok := s.referents[refID]
	if !ok {
		return
	}
	refNode := agraph.Referent(refID)
	if s.graph.InCount(refNode, agraph.LabelAnnotates) > 0 {
		return // still referenced
	}
	switch ref.Kind {
	case IntervalReferent:
		if tree, ok := s.itrees[ref.Domain]; ok {
			tree.Delete(refID)
			if tree.Len() == 0 {
				delete(s.itrees, ref.Domain)
			}
		}
	case RegionReferent:
		if tree, ok := s.rtrees[ref.Domain]; ok {
			tree.Delete(refID)
			// Per-system R-trees persist even when empty: the coordinate
			// system stays registered.
		}
	}
	delete(s.refByMark, markKey(ref))
	delete(s.referents, refID)
	_ = s.graph.RemoveNode(refNode)
}

func removeID(ids []uint64, id uint64) []uint64 {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
