package core

import (
	"errors"
	"testing"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
)

func TestDeleteAnnotationBasic(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 10, Hi: 60})
	ann, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").
		Body("transient protease note").Refer(m))
	mustNoErr(t, err)

	if err := s.DeleteAnnotation(ann.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotation(ann.ID); !errors.Is(err, ErrNoSuchAnnotation) {
		t.Fatalf("annotation still present: %v", err)
	}
	if err := s.DeleteAnnotation(ann.ID); !errors.Is(err, ErrNoSuchAnnotation) {
		t.Fatalf("double delete: %v", err)
	}
	// Keyword index cleaned.
	if got := s.SearchKeyword("protease", true); len(got) != 0 {
		t.Fatalf("stale keyword entries: %d", len(got))
	}
	// Referent garbage-collected from the interval tree.
	if got := s.ReferentsAt("segment4", 20); len(got) != 0 {
		t.Fatalf("stale interval entries: %v", got)
	}
	st := s.Stats()
	if st.Annotations != 0 || st.Referents != 0 {
		t.Fatalf("stats after delete: %+v", st)
	}
}

func TestDeleteKeepsSharedReferent(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 10, Hi: 60})
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 10, Hi: 60})
	a1, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	mustNoErr(t, err)
	a2, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	mustNoErr(t, err)
	if a1.ReferentIDs[0] != a2.ReferentIDs[0] {
		t.Fatal("marks did not share a referent")
	}
	refID := a1.ReferentIDs[0]

	// Deleting one annotation keeps the shared referent alive.
	mustNoErr(t, s.DeleteAnnotation(a1.ID))
	if _, err := s.Referent(refID); err != nil {
		t.Fatalf("shared referent collected too early: %v", err)
	}
	if got := s.ReferentsAt("segment4", 20); len(got) != 1 {
		t.Fatalf("interval entries = %d, want 1", len(got))
	}
	// Deleting the second collects it.
	mustNoErr(t, s.DeleteAnnotation(a2.ID))
	if _, err := s.Referent(refID); !errors.Is(err, ErrNoSuchReferent) {
		t.Fatalf("orphan referent survived: %v", err)
	}
	if got := s.ReferentsAt("segment4", 20); len(got) != 0 {
		t.Fatalf("stale interval entries: %v", got)
	}
}

func TestDeleteThenRemarkReusesNothingStale(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 5, Hi: 25})
	ann, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m))
	mustNoErr(t, err)
	oldRef := ann.ReferentIDs[0]
	mustNoErr(t, s.DeleteAnnotation(ann.ID))

	// Re-annotating the identical mark must mint a fresh referent (the
	// dedup table was cleaned), and queries must see exactly one entry.
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 5, Hi: 25})
	ann2, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	mustNoErr(t, err)
	if ann2.ReferentIDs[0] == oldRef {
		t.Fatal("deleted referent ID reused from a stale dedup entry")
	}
	if got := s.ReferentsAt("segment4", 10); len(got) != 1 {
		t.Fatalf("interval entries = %d, want 1", len(got))
	}
}

func TestDeleteRegionAnnotation(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(10, 10, 50, 50))
	ann, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m))
	mustNoErr(t, err)
	if got := s.RegionsOverlapping("atlas", rtree.Rect2D(0, 0, 100, 100)); len(got) != 1 {
		t.Fatalf("regions = %d", len(got))
	}
	mustNoErr(t, s.DeleteAnnotation(ann.ID))
	if got := s.RegionsOverlapping("atlas", rtree.Rect2D(0, 0, 100, 100)); len(got) != 0 {
		t.Fatalf("stale region entries: %v", got)
	}
	// The coordinate system and its (now empty) R-tree remain usable.
	m2, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(10, 10, 50, 50))
	if _, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2)); err != nil {
		t.Fatalf("re-annotation after delete failed: %v", err)
	}
}

func TestDeletePreservesUnrelatedState(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 30})
	keep, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").
		Body("keep protease").Refer(m1).OntologyRef("go", "protease"))
	mustNoErr(t, err)
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 100, Hi: 130})
	drop, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").
		Body("drop protease").Refer(m2))
	mustNoErr(t, err)

	mustNoErr(t, s.DeleteAnnotation(drop.ID))

	// The surviving annotation is fully intact.
	if got := s.SearchKeyword("protease", true); len(got) != 1 || got[0].ID != keep.ID {
		t.Fatalf("keyword survivors = %v", got)
	}
	if got := s.AnnotationsWithTerm("go", "protease"); len(got) != 1 {
		t.Fatalf("term survivors = %d", len(got))
	}
	if got := s.ReferentsAt("segment4", 10); len(got) != 1 {
		t.Fatalf("interval survivors = %d", len(got))
	}
	// Related/correlated queries still work.
	if _, err := s.CorrelatedData(keep.ID); err != nil {
		t.Fatal(err)
	}
}
