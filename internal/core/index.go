package core

import (
	"fmt"
	"sort"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
	"graphitti/internal/subx"
)

// indexReferentLocked inserts a freshly-assigned referent into the
// sub-structure index for its domain, creating per-domain trees on demand.
// Structural marks (clades, subgraphs, blocks, record sets, whole objects)
// need no spatial index; they are found through refByMark and the a-graph.
func (s *Store) indexReferentLocked(r *Referent) error {
	switch r.Kind {
	case IntervalReferent:
		tree, ok := s.itrees[r.Domain]
		if !ok {
			tree = &interval.Tree[string]{}
			s.itrees[r.Domain] = tree
		}
		return tree.Insert(r.Interval, r.ID, r.ObjectID)
	case RegionReferent:
		tree, ok := s.rtrees[r.Domain]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchSystem, r.Domain)
		}
		return tree.Insert(r.Region, r.ID, r.ObjectID)
	default:
		return nil
	}
}

// ReferentsOverlapping returns the committed referents whose mark overlaps
// the given mark, using the per-domain indexes for interval and region
// marks and a filtered scan for structural marks. Results are sorted by
// referent ID.
func (s *Store) ReferentsOverlapping(m subx.Mark) []*Referent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Referent
	switch mark := m.(type) {
	case subx.IntervalMark:
		if tree, ok := s.itrees[mark.Domain]; ok {
			for _, e := range tree.Overlapping(mark.IV) {
				out = append(out, s.referents[e.ID])
			}
		}
	case subx.RegionMark:
		if tree, ok := s.rtrees[mark.System]; ok {
			for _, e := range tree.Search(mark.R) {
				out = append(out, s.referents[e.ID])
			}
		}
	default:
		for _, r := range s.referents {
			if subx.IfOverlap(r.Mark(), m) {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReferentsAt returns the interval referents containing the given point of
// a coordinate domain (a stab query).
func (s *Store) ReferentsAt(domain string, pos int64) []*Referent {
	return s.ReferentsOverlapping(subx.IntervalMark{
		Domain: domain,
		IV:     interval.Interval{Lo: pos, Hi: pos + 1},
	})
}

// RegionsOverlapping returns the region referents overlapping a rectangle
// of a coordinate system.
func (s *Store) RegionsOverlapping(system string, r rtree.Rect) []*Referent {
	return s.ReferentsOverlapping(subx.RegionMark{System: system, R: r})
}

// NextReferent implements the SUB_X next operator on an interval referent:
// the first interval referent that starts at or after the end of r in the
// same domain. ok is false when none follows or r is not an interval mark.
func (s *Store) NextReferent(r *Referent) (*Referent, bool) {
	if r == nil || r.Kind != IntervalReferent {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := s.itrees[r.Domain]
	if !ok {
		return nil, false
	}
	e, ok := tree.Next(r.Interval)
	if !ok {
		return nil, false
	}
	return s.referents[e.ID], true
}

// IntervalDomains returns the names of coordinate domains that currently
// have an interval tree, sorted (diagnostics for ablation A1).
func (s *Store) IntervalDomains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.itrees))
	for d := range s.itrees {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// IntervalTreeSize returns the number of entries in one domain's tree.
func (s *Store) IntervalTreeSize(domain string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tree, ok := s.itrees[domain]; ok {
		return tree.Len()
	}
	return 0
}
