package core

import (
	"fmt"
	"sort"

	"graphitti/internal/interval"
	"graphitti/internal/rtree"
	"graphitti/internal/subx"
)

// indexReferent inserts a freshly-assigned referent into the writer-owned
// sub-structure index for its domain, creating per-domain trees on demand.
// Structural marks (clades, subgraphs, blocks, record sets, whole objects)
// need no spatial index; they are found through refByMark and the a-graph.
// Caller holds w.
func (s *Store) indexReferent(r *Referent) error {
	switch r.Kind {
	case IntervalReferent:
		tree, ok := s.itrees[r.Domain]
		if !ok {
			tree = &interval.Tree[string]{}
			s.itrees[r.Domain] = tree
		}
		return tree.Insert(r.Interval, r.ID, r.ObjectID)
	case RegionReferent:
		tree, ok := s.rtrees[r.Domain]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchSystem, r.Domain)
		}
		return tree.Insert(r.Region, r.ID, r.ObjectID)
	default:
		return nil
	}
}

// unindexReferent reverses indexReferent (commit rollback and referent
// garbage collection). Caller holds w.
func (s *Store) unindexReferent(r *Referent) {
	switch r.Kind {
	case IntervalReferent:
		if tree, ok := s.itrees[r.Domain]; ok {
			tree.Delete(r.ID)
			if tree.Len() == 0 {
				delete(s.itrees, r.Domain)
			}
		}
	case RegionReferent:
		if tree, ok := s.rtrees[r.Domain]; ok {
			tree.Delete(r.ID)
			// Per-system R-trees persist even when empty: the coordinate
			// system stays registered.
		}
	}
}

// snapshotITrees rebuilds the published interval-snapshot map: untouched
// domains keep their existing snapshots; touched domains get fresh ones
// (including dropping domains whose tree emptied). Caller holds w.
func (s *Store) snapshotITrees(v *View, touched map[string]bool) map[string]interval.Snapshot[string] {
	out := make(map[string]interval.Snapshot[string], len(s.itrees))
	for d, snap := range v.itrees {
		if !touched[d] {
			out[d] = snap
		}
	}
	for d := range touched {
		if tree, ok := s.itrees[d]; ok {
			out[d] = tree.Snapshot()
		}
	}
	return out
}

// snapshotRTrees is snapshotITrees for the per-system R-trees. Caller
// holds w.
func (s *Store) snapshotRTrees(v *View, touched map[string]bool) map[string]rtree.Snapshot[string] {
	out := make(map[string]rtree.Snapshot[string], len(s.rtrees))
	for d, snap := range v.rtrees {
		if !touched[d] {
			out[d] = snap
		}
	}
	for d := range touched {
		if tree, ok := s.rtrees[d]; ok {
			out[d] = tree.Snapshot()
		}
	}
	return out
}

// ReferentsOverlapping returns the committed referents whose mark overlaps
// the given mark, using the per-domain indexes for interval and region
// marks and a filtered scan for structural marks. Results are sorted by
// referent ID.
func (v *View) ReferentsOverlapping(m subx.Mark) []*Referent {
	var out []*Referent
	switch mark := m.(type) {
	case subx.IntervalMark:
		if snap, ok := v.itrees[mark.Domain]; ok {
			for _, e := range snap.Overlapping(mark.IV) {
				out = append(out, v.referents.get(e.ID))
			}
		}
	case subx.RegionMark:
		if snap, ok := v.rtrees[mark.System]; ok {
			for _, e := range snap.Search(mark.R) {
				out = append(out, v.referents.get(e.ID))
			}
		}
	default:
		v.referents.each(func(_ uint64, r *Referent) bool {
			if subx.IfOverlap(r.Mark(), m) {
				out = append(out, r)
			}
			return true
		})
		return out // each() already yields ascending IDs
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReferentsOverlapping returns the committed referents overlapping the
// given mark (see View.ReferentsOverlapping).
func (s *Store) ReferentsOverlapping(m subx.Mark) []*Referent {
	return s.View().ReferentsOverlapping(m)
}

// ReferentsAt returns the interval referents containing the given point of
// a coordinate domain (a stab query).
func (v *View) ReferentsAt(domain string, pos int64) []*Referent {
	return v.ReferentsOverlapping(subx.IntervalMark{
		Domain: domain,
		IV:     interval.Interval{Lo: pos, Hi: pos + 1},
	})
}

// ReferentsAt returns the interval referents containing the given point.
func (s *Store) ReferentsAt(domain string, pos int64) []*Referent {
	return s.View().ReferentsAt(domain, pos)
}

// RegionsOverlapping returns the region referents overlapping a rectangle
// of a coordinate system.
func (v *View) RegionsOverlapping(system string, r rtree.Rect) []*Referent {
	return v.ReferentsOverlapping(subx.RegionMark{System: system, R: r})
}

// RegionsOverlapping returns the region referents overlapping a rectangle
// of a coordinate system.
func (s *Store) RegionsOverlapping(system string, r rtree.Rect) []*Referent {
	return s.View().RegionsOverlapping(system, r)
}

// NextReferent implements the SUB_X next operator on an interval referent:
// the first interval referent that starts at or after the end of r in the
// same domain. ok is false when none follows or r is not an interval mark.
func (v *View) NextReferent(r *Referent) (*Referent, bool) {
	if r == nil || r.Kind != IntervalReferent {
		return nil, false
	}
	snap, ok := v.itrees[r.Domain]
	if !ok {
		return nil, false
	}
	e, ok := snap.Next(r.Interval)
	if !ok {
		return nil, false
	}
	return v.referents.get(e.ID), true
}

// NextReferent implements the SUB_X next operator on an interval referent.
func (s *Store) NextReferent(r *Referent) (*Referent, bool) {
	return s.View().NextReferent(r)
}

// IntervalDomains returns the names of coordinate domains that currently
// have an interval tree, sorted (diagnostics for ablation A1).
func (v *View) IntervalDomains() []string {
	out := make([]string, 0, len(v.itrees))
	for d := range v.itrees {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// IntervalDomains returns the domains that currently have interval trees.
func (s *Store) IntervalDomains() []string { return s.View().IntervalDomains() }

// IntervalTreeSize returns the number of entries in one domain's tree.
func (v *View) IntervalTreeSize(domain string) int {
	if snap, ok := v.itrees[domain]; ok {
		return snap.Len()
	}
	return 0
}

// IntervalTreeSize returns the number of entries in one domain's tree.
func (s *Store) IntervalTreeSize(domain string) int {
	return s.View().IntervalTreeSize(domain)
}
