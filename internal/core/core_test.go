package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
	"graphitti/internal/subx"
)

// newDemoStore builds a store shaped like the paper's demonstration:
// influenza sequences on a shared segment domain, an MSA, a phylogenetic
// tree, an interaction graph, brain images in a shared atlas, a record
// table, and two ontologies.
func newDemoStore(t testing.TB) *Store {
	s := NewStore()

	// Ontologies.
	enzymes := ontology.New("go")
	for _, id := range []string{"enzyme", "hydrolase", "protease", "serine-protease"} {
		if _, err := enzymes.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	mustNoErr(t, enzymes.AddEdge("hydrolase", "enzyme", ontology.IsA, ontology.Some))
	mustNoErr(t, enzymes.AddEdge("protease", "hydrolase", ontology.IsA, ontology.Some))
	mustNoErr(t, enzymes.AddEdge("serine-protease", "protease", ontology.IsA, ontology.Some))
	mustNoErr(t, s.RegisterOntology(enzymes))

	nif := ontology.New("nif")
	for _, id := range []string{"brain-region", "cerebellum", "deep-cerebellar-nuclei"} {
		if _, err := nif.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	mustNoErr(t, nif.AddEdge("cerebellum", "brain-region", ontology.IsA, ontology.Some))
	mustNoErr(t, nif.AddEdge("deep-cerebellar-nuclei", "cerebellum", ontology.IsA, ontology.Some))
	mustNoErr(t, s.RegisterOntology(nif))

	// Sequences on a shared segment domain.
	d1, err := seq.New("NC_007362", seq.DNA, strings.Repeat("ACGT", 100))
	mustNoErr(t, err)
	d1.Domain = "segment4"
	d1.Offset = 0
	mustNoErr(t, s.RegisterSequence(d1))

	d2, err := seq.New("NC_007363", seq.DNA, strings.Repeat("GGCC", 100))
	mustNoErr(t, err)
	d2.Domain = "segment4"
	d2.Offset = 200 // overlaps d1's [200,400)
	mustNoErr(t, s.RegisterSequence(d2))

	p1, err := seq.New("P03452", seq.Protein, strings.Repeat("MKVA", 50))
	mustNoErr(t, err)
	mustNoErr(t, s.RegisterSequence(p1))

	// Alignment.
	a, err := msa.New("HA-aln", []string{"NC_007362", "NC_007363"},
		[]string{"ACGT-ACGT-", "AC-TTAC-TT"})
	mustNoErr(t, err)
	mustNoErr(t, s.RegisterAlignment(a))

	// Phylogenetic tree.
	tr, err := phylo.ParseNewick("H5N1-tree", "((goose:0.1,duck:0.1)wild:0.05,human:0.2)root;")
	mustNoErr(t, err)
	mustNoErr(t, s.RegisterTree(tr))

	// Interaction graph.
	ig := interact.NewGraph("NS1-net")
	for _, m := range []string{"NS1", "PKR", "TRIM25"} {
		_, err := ig.AddMolecule(m, m, interact.ProteinMol)
		mustNoErr(t, err)
	}
	mustNoErr(t, ig.AddInteraction("NS1", "PKR", "inhibits", 0.9))
	mustNoErr(t, ig.AddInteraction("NS1", "TRIM25", "binds", 0.8))
	mustNoErr(t, s.RegisterInteractionGraph(ig))

	// Coordinate system + images.
	cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 1000, 1000))
	mustNoErr(t, err)
	mustNoErr(t, s.RegisterCoordinateSystem(cs))
	im1, err := imaging.NewImage("brain-1", "atlas", rtree.Rect2D(0, 0, 500, 500), imaging.Identity(2))
	mustNoErr(t, err)
	im1.Modality = "confocal"
	im1.Subject = "mouse-17"
	mustNoErr(t, s.RegisterImage(im1))
	reg := imaging.Identity(2)
	reg.Offset = [rtree.MaxDims]float64{250, 250}
	im2, err := imaging.NewImage("brain-2", "atlas", rtree.Rect2D(0, 0, 500, 500), reg)
	mustNoErr(t, err)
	im2.Subject = "mouse-18"
	mustNoErr(t, s.RegisterImage(im2))

	// Record table.
	schema := relstore.MustSchema("isolates", "acc",
		relstore.Column{Name: "acc", Type: relstore.String},
		relstore.Column{Name: "host", Type: relstore.String},
		relstore.Column{Name: "year", Type: relstore.Int64},
	)
	_, err = s.CreateRecordTable(schema)
	mustNoErr(t, err)
	mustNoErr(t, s.InsertRecord("isolates", relstore.Row{
		relstore.S("A/goose/1996"), relstore.S("goose"), relstore.I(1996)}))
	mustNoErr(t, s.InsertRecord("isolates", relstore.Row{
		relstore.S("A/hk/1997"), relstore.S("human"), relstore.I(1997)}))

	return s
}

func mustNoErr(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	s := newDemoStore(t)
	// Duplicates.
	d, _ := seq.New("NC_007362", seq.DNA, "ACGT")
	if err := s.RegisterSequence(d); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup sequence: %v", err)
	}
	o := ontology.New("go")
	if err := s.RegisterOntology(o); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup ontology: %v", err)
	}
	// Image without its coordinate system.
	im, _ := imaging.NewImage("x", "ghost-system", rtree.Rect2D(0, 0, 10, 10), imaging.Identity(2))
	if err := s.RegisterImage(im); !errors.Is(err, ErrNoSuchSystem) {
		t.Fatalf("image w/o system: %v", err)
	}
	// Missing lookups.
	if _, _, err := s.Sequence("ghost"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("ghost sequence: %v", err)
	}
	if _, err := s.Ontology("ghost"); !errors.Is(err, ErrNoSuchOntology) {
		t.Fatalf("ghost ontology: %v", err)
	}
	if err := s.InsertRecord("not-a-record-table", nil); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("ghost record table: %v", err)
	}
}

func TestRegistrationFillsRelationalTables(t *testing.T) {
	s := newDemoStore(t)
	for table, want := range map[string]int{
		string(TypeDNA):         2,
		string(TypeProtein):     1,
		string(TypeAlignment):   1,
		string(TypeTree):        1,
		string(TypeInteraction): 1,
		string(TypeImage):       2,
		"isolates":              2,
	} {
		tbl, err := s.Rel().Table(table)
		mustNoErr(t, err)
		if tbl.Len() != want {
			t.Errorf("table %s has %d rows, want %d", table, tbl.Len(), want)
		}
	}
	// Native data stored in the row.
	tbl, _ := s.Rel().Table(string(TypeDNA))
	row, err := tbl.Get(relstore.S("NC_007362"))
	mustNoErr(t, err)
	if got := string(row[6].BytesVal()); !strings.HasPrefix(got, "ACGTACGT") {
		t.Fatalf("native residues = %q...", got[:16])
	}
}

func TestMarkConstructors(t *testing.T) {
	s := newDemoStore(t)

	r, err := s.MarkSequenceInterval("NC_007363", interval.Interval{Lo: 10, Hi: 50})
	mustNoErr(t, err)
	if r.Domain != "segment4" || r.Interval != (interval.Interval{Lo: 210, Hi: 250}) {
		t.Fatalf("interval mark = %+v (domain normalisation failed)", r)
	}
	if _, err := s.MarkSequenceInterval("NC_007363", interval.Interval{Lo: 390, Hi: 410}); !errors.Is(err, ErrBadMark) {
		t.Fatalf("out-of-range mark: %v", err)
	}
	if _, err := s.MarkSequenceInterval("ghost", interval.Interval{Lo: 0, Hi: 1}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("ghost sequence mark: %v", err)
	}

	r, err = s.MarkDomainInterval("segment4", interval.Interval{Lo: 100, Hi: 150})
	mustNoErr(t, err)
	if r.ObjectID != "NC_007362" {
		t.Fatalf("domain mark owner = %s", r.ObjectID)
	}
	if _, err := s.MarkDomainInterval("segment4", interval.Interval{Lo: 5000, Hi: 5100}); !errors.Is(err, ErrBadMark) {
		t.Fatalf("uncovered domain mark: %v", err)
	}

	r, err = s.MarkImageRegion("brain-2", rtree.Rect2D(0, 0, 100, 100))
	mustNoErr(t, err)
	if r.Domain != "atlas" || r.Region != rtree.Rect2D(250, 250, 350, 350) {
		t.Fatalf("region mark = %+v (registration failed)", r)
	}
	if _, err := s.MarkImageRegion("brain-2", rtree.Rect2D(400, 400, 600, 600)); !errors.Is(err, ErrBadMark) {
		t.Fatalf("oversize region: %v", err)
	}

	r, err = s.MarkClade("H5N1-tree", "goose", "duck")
	mustNoErr(t, err)
	if len(r.Keys) != 2 || r.Keys[0] != "duck" {
		t.Fatalf("clade mark = %+v", r)
	}
	if _, err := s.MarkClade("H5N1-tree", "goose", "ghost"); !errors.Is(err, ErrBadMark) {
		t.Fatalf("ghost leaf: %v", err)
	}

	r, err = s.MarkSubgraph("NS1-net", "NS1", "PKR")
	mustNoErr(t, err)
	if len(r.Keys) != 2 {
		t.Fatalf("subgraph mark = %+v", r)
	}

	r, err = s.MarkAlignmentBlock("HA-aln", []string{"NC_007362"}, interval.Interval{Lo: 2, Hi: 6})
	mustNoErr(t, err)
	if r.Interval.Len() != 4 {
		t.Fatalf("block mark = %+v", r)
	}

	r, err = s.MarkRecords("isolates", relstore.S("A/goose/1996"))
	mustNoErr(t, err)
	if len(r.Keys) != 1 {
		t.Fatalf("record mark = %+v", r)
	}
	if _, err := s.MarkRecords("isolates", relstore.S("ghost")); !errors.Is(err, ErrBadMark) {
		t.Fatalf("ghost record: %v", err)
	}

	r, err = s.MarkObject(TypeTree, "H5N1-tree")
	mustNoErr(t, err)
	if r.Kind != ObjectReferent {
		t.Fatalf("object mark = %+v", r)
	}
	if _, err := s.MarkObject(TypeTree, "ghost"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("ghost object: %v", err)
	}
}

func TestCommitPipeline(t *testing.T) {
	s := newDemoStore(t)
	mark, err := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 100, Hi: 240})
	mustNoErr(t, err)

	ann, err := s.Commit(s.NewAnnotation().
		Creator("gupta").
		Date("2007-11-02").
		Title("protease site").
		Body("The protease cleavage site overlaps the HA segment.").
		Tag("confidence", "high").
		Refer(mark).
		OntologyRef("go", "protease"))
	mustNoErr(t, err)

	if ann.ID == 0 || len(ann.ReferentIDs) != 1 {
		t.Fatalf("annotation = %+v", ann)
	}
	// Content document shape.
	xml := ann.Content.String()
	for _, want := range []string{
		"<dc:creator>gupta</dc:creator>",
		"<dc:date>2007-11-02</dc:date>",
		"protease cleavage site",
		`kind="interval"`,
		`domain="segment4"`,
		`lo="100"`,
		`ontology="go"`,
		`term="protease"`,
		"<confidence>high</confidence>",
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("content missing %q:\n%s", want, xml)
		}
	}
	// Referent stored and indexed.
	ref, err := s.Referent(ann.ReferentIDs[0])
	mustNoErr(t, err)
	if ref.Interval != (interval.Interval{Lo: 100, Hi: 240}) {
		t.Fatalf("stored referent = %+v", ref)
	}
	hits := s.ReferentsAt("segment4", 150)
	if len(hits) != 1 || hits[0].ID != ref.ID {
		t.Fatalf("stab = %v", hits)
	}
	// a-graph wiring.
	g := s.Graph()
	if g.Degree(agraph2Content(ann.ID)) == 0 {
		t.Fatal("content node not wired")
	}
	anns := s.AnnotationsOnObject(TypeDNA, "NC_007362")
	if len(anns) != 1 || anns[0].ID != ann.ID {
		t.Fatalf("AnnotationsOnObject = %v", anns)
	}
	// Stats.
	st := s.Stats()
	if st.Annotations != 1 || st.Referents != 1 || st.IntervalTrees != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCommitValidation(t *testing.T) {
	s := newDemoStore(t)
	mark, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})

	// Missing creator/date.
	if _, err := s.Commit(s.NewAnnotation().Refer(mark)); err == nil {
		t.Fatal("missing DC accepted")
	}
	// Empty annotation.
	if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2008-01-01")); !errors.Is(err, ErrEmptyAnnotation) {
		t.Fatalf("empty: %v", err)
	}
	// Unknown ontology / term.
	if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2008-01-01").
		Refer(mark).OntologyRef("ghost", "t")); !errors.Is(err, ErrNoSuchOntology) {
		t.Fatalf("ghost ontology: %v", err)
	}
	if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2008-01-01").
		Refer(mark).OntologyRef("go", "ghost-term")); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("ghost term: %v", err)
	}
	// Nil referent.
	if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2008-01-01").
		Refer(nil)); err == nil {
		t.Fatal("nil referent accepted")
	}
	// Builder from another store.
	other := NewStore()
	if _, err := s.Commit(other.NewAnnotation().Creator("x").Date("2008-01-01").Refer(mark)); err == nil {
		t.Fatal("foreign builder accepted")
	}
	// Invalid DC element recorded at build time surfaces at commit.
	if _, err := s.Commit(s.NewAnnotation().Creator("x").Date("2008-01-01").
		DCElement("not-a-dc-element", "v").Refer(mark)); err == nil {
		t.Fatal("invalid DC element accepted")
	}
	// Failed commits must leave the store unchanged.
	if st := s.Stats(); st.Annotations != 0 || st.Referents != 0 {
		t.Fatalf("failed commits mutated the store: %+v", st)
	}
}

func TestSharedReferentIndirectRelation(t *testing.T) {
	s := newDemoStore(t)
	// Two scientists mark the identical interval.
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 100, Hi: 240})
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 100, Hi: 240})

	a1, err := s.Commit(s.NewAnnotation().Creator("gupta").Date("2007-11-01").
		Title("first").Body("looks like a protease site").Refer(m1))
	mustNoErr(t, err)
	a2, err := s.Commit(s.NewAnnotation().Creator("condit").Date("2007-11-02").
		Title("second").Body("replication observed here").Refer(m2))
	mustNoErr(t, err)

	// Identical marks resolve to one shared referent.
	if a1.ReferentIDs[0] != a2.ReferentIDs[0] {
		t.Fatalf("identical marks created distinct referents: %v vs %v",
			a1.ReferentIDs, a2.ReferentIDs)
	}
	if s.Stats().Referents != 1 {
		t.Fatalf("referent count = %d", s.Stats().Referents)
	}
	// Both annotations attach to the referent.
	anns := s.AnnotationsOfReferent(a1.ReferentIDs[0])
	if len(anns) != 2 {
		t.Fatalf("annotations of referent = %d", len(anns))
	}
	// Indirect relation.
	rel, err := s.RelatedAnnotations(a1.ID)
	mustNoErr(t, err)
	if len(rel) != 1 || rel[0].ID != a2.ID {
		t.Fatalf("related = %v", rel)
	}
	// And there is an a-graph path content1 - referent - content2.
	p, err := s.PathBetweenAnnotations(a1.ID, a2.ID)
	mustNoErr(t, err)
	if p.Len() != 2 {
		t.Fatalf("path length = %d, want 2", p.Len())
	}
}

func TestRelatedThroughSharedObject(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 50})
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 300, Hi: 350})
	a1, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	mustNoErr(t, err)
	a2, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	mustNoErr(t, err)
	rel, err := s.RelatedAnnotations(a1.ID)
	mustNoErr(t, err)
	if len(rel) != 1 || rel[0].ID != a2.ID {
		t.Fatalf("object-level relation missed: %v", rel)
	}
}

func TestSearchContents(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 50})
	m2, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(10, 10, 40, 40))
	_, err := s.Commit(s.NewAnnotation().Creator("gupta").Date("2008-01-01").
		Title("protease observation").Body("contains protease motif").Refer(m1))
	mustNoErr(t, err)
	_, err = s.Commit(s.NewAnnotation().Creator("condit").Date("2008-01-02").
		Title("region note").Body("strong expression region").Refer(m2).
		OntologyRef("nif", "deep-cerebellar-nuclei"))
	mustNoErr(t, err)

	got, err := s.SearchContents("contains(/annotation/body, 'protease')")
	mustNoErr(t, err)
	if len(got) != 1 || got[0].DC.First("creator") != "gupta" {
		t.Fatalf("search protease = %v", got)
	}
	got, err = s.SearchContents("//referent[@kind='region']")
	mustNoErr(t, err)
	if len(got) != 1 || got[0].DC.First("creator") != "condit" {
		t.Fatalf("search region = %v", got)
	}
	got, err = s.SearchContents("//ref[@term='deep-cerebellar-nuclei']")
	mustNoErr(t, err)
	if len(got) != 1 {
		t.Fatalf("search term = %v", got)
	}
	if _, err := s.SearchContents("((("); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestSearchKeywordIndexVsScan(t *testing.T) {
	s := newDemoStore(t)
	for i := 0; i < 20; i++ {
		m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: int64(i * 10), Hi: int64(i*10 + 5)})
		body := "routine observation"
		if i%4 == 0 {
			body = "notable protease activity"
		}
		_, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(body).Refer(m))
		mustNoErr(t, err)
	}
	idx := s.SearchKeyword("protease", true)
	scan := s.SearchKeyword("protease", false)
	if len(idx) != 5 || len(scan) != 5 {
		t.Fatalf("index %d, scan %d (want 5)", len(idx), len(scan))
	}
	for i := range idx {
		if idx[i].ID != scan[i].ID {
			t.Fatal("index and scan disagree")
		}
	}
	// Case insensitive.
	if got := s.SearchKeyword("PROTEASE", true); len(got) != 5 {
		t.Fatalf("case-insensitive index = %d", len(got))
	}
	if got := s.SearchKeyword("nonexistent-word", true); len(got) != 0 {
		t.Fatalf("ghost keyword = %d", len(got))
	}
}

func TestRegionQueriesAcrossImages(t *testing.T) {
	s := newDemoStore(t)
	// brain-1 occupies [0,500)^2, brain-2 occupies [250,750)^2 in atlas.
	m1, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(200, 200, 300, 300)) // atlas [200,300)
	m2, _ := s.MarkImageRegion("brain-2", rtree.Rect2D(0, 0, 100, 100))     // atlas [250,350)
	_, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	mustNoErr(t, err)
	_, err = s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	mustNoErr(t, err)

	// A query box covering the overlap finds both marks, though they come
	// from different images — the shared coordinate system at work.
	hits := s.RegionsOverlapping("atlas", rtree.Rect2D(260, 260, 290, 290))
	if len(hits) != 2 {
		t.Fatalf("cross-image region query = %d hits, want 2", len(hits))
	}
	// SUB_X overlap between the two referents.
	if !hits[0].Overlaps(hits[1]) {
		t.Fatal("registered marks should overlap in system space")
	}
}

func TestNextReferent(t *testing.T) {
	s := newDemoStore(t)
	var refs []*Referent
	for _, iv := range []interval.Interval{{Lo: 0, Hi: 10}, {Lo: 10, Hi: 20}, {Lo: 50, Hi: 60}} {
		m, err := s.MarkDomainInterval("segment4", iv)
		mustNoErr(t, err)
		ann, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").Refer(m))
		mustNoErr(t, err)
		r, err := s.Referent(ann.ReferentIDs[0])
		mustNoErr(t, err)
		refs = append(refs, r)
	}
	next, ok := s.NextReferent(refs[0])
	if !ok || next.ID != refs[1].ID {
		t.Fatalf("next of first = %v, %v", next, ok)
	}
	next, ok = s.NextReferent(refs[1])
	if !ok || next.ID != refs[2].ID {
		t.Fatalf("next of second = %v, %v", next, ok)
	}
	if _, ok := s.NextReferent(refs[2]); ok {
		t.Fatal("next past the last referent")
	}
	if _, ok := s.NextReferent(nil); ok {
		t.Fatal("next of nil")
	}
}

func TestCorrelatedData(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 50})
	a1, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").
		Title("anchor").Refer(m1).OntologyRef("go", "protease"))
	mustNoErr(t, err)
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 100, Hi: 150})
	_, err = s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").
		Title("other").Refer(m2))
	mustNoErr(t, err)

	items, err := s.CorrelatedData(a1.ID)
	mustNoErr(t, err)
	var haveObject, haveTerm, haveRelated bool
	for _, it := range items {
		switch {
		case strings.HasPrefix(it.Description, "object"):
			haveObject = true
		case strings.HasPrefix(it.Description, "term"):
			haveTerm = true
		case strings.HasPrefix(it.Description, "annotation"):
			haveRelated = true
		}
	}
	if !haveObject || !haveTerm || !haveRelated {
		t.Fatalf("correlated view incomplete: %+v", items)
	}
	if _, err := s.CorrelatedData(9999); !errors.Is(err, ErrNoSuchAnnotation) {
		t.Fatalf("ghost annotation: %v", err)
	}
}

func TestAnnotationsWithTermUnder(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})
	_, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").
		Refer(m).OntologyRef("go", "serine-protease"))
	mustNoErr(t, err)

	// Exact term: no hit for the ancestor...
	if got := s.AnnotationsWithTerm("go", "hydrolase"); len(got) != 0 {
		t.Fatalf("exact ancestor = %d", len(got))
	}
	// ...but ontology-expanded retrieval finds it.
	got, err := s.AnnotationsWithTermUnder("go", "hydrolase")
	mustNoErr(t, err)
	if len(got) != 1 {
		t.Fatalf("expanded = %d", len(got))
	}
	if _, err := s.AnnotationsWithTermUnder("go", "ghost"); err == nil {
		t.Fatal("ghost root accepted")
	}
}

func TestConnectAnnotations(t *testing.T) {
	s := newDemoStore(t)
	// Three annotations share the image object through different regions.
	var ids []uint64
	for i := 0; i < 3; i++ {
		m, err := s.MarkImageRegion("brain-1", rtree.Rect2D(float64(i*50), 0, float64(i*50+40), 40))
		mustNoErr(t, err)
		ann, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").Refer(m))
		mustNoErr(t, err)
		ids = append(ids, ann.ID)
	}
	sg, err := s.ConnectAnnotations(ids...)
	mustNoErr(t, err)
	if !sg.Connected() {
		t.Fatal("connection subgraph disconnected")
	}
	for _, id := range ids {
		if !sg.Contains(agraph2Content(id)) {
			t.Fatalf("subgraph missing annotation %d", id)
		}
	}
	if _, err := s.ConnectAnnotations(ids[0], 9999); !errors.Is(err, ErrNoSuchAnnotation) {
		t.Fatalf("ghost: %v", err)
	}
}

func TestContentFragments(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})
	ann, err := s.Commit(s.NewAnnotation().Creator("gupta").Date("2008-01-01").
		Body("fragment me").Refer(m))
	mustNoErr(t, err)
	nodes, err := s.ContentFragments(ann.ID, "/annotation/body")
	mustNoErr(t, err)
	if len(nodes) != 1 || nodes[0].Text() != "fragment me" {
		t.Fatalf("fragments = %v", nodes)
	}
	if _, err := s.ContentFragments(ann.ID, "((("); err == nil {
		t.Fatal("bad expr accepted")
	}
	if _, err := s.ContentFragments(999, "/a"); !errors.Is(err, ErrNoSuchAnnotation) {
		t.Fatalf("ghost: %v", err)
	}
}

func TestConcurrentCommits(t *testing.T) {
	s := newDemoStore(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, err := s.MarkDomainInterval("segment4",
					interval.Interval{Lo: int64(i), Hi: int64(i + w + 1)})
				if err != nil {
					errCh <- err
					return
				}
				if _, err := s.Commit(s.NewAnnotation().
					Creator(fmt.Sprintf("user%d", w)).Date("2008-01-01").
					Body("concurrent").Refer(m)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := s.Stats().Annotations; got != 400 {
		t.Fatalf("annotations = %d, want 400", got)
	}
	// Reads are consistent afterwards.
	if got := len(s.SearchKeyword("concurrent", true)); got != 400 {
		t.Fatalf("keyword hits = %d", got)
	}
}

func TestSubXOnHeterogeneousReferents(t *testing.T) {
	s := newDemoStore(t)
	seqMark, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 50})
	imgMark, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(0, 0, 50, 50))
	cladeMark, _ := s.MarkClade("H5N1-tree", "goose", "duck")
	// Heterogeneous marks never overlap.
	if subx.IfOverlap(seqMark.Mark(), imgMark.Mark()) ||
		seqMark.Overlaps(cladeMark) || imgMark.Overlaps(cladeMark) {
		t.Fatal("heterogeneous marks must not overlap")
	}
	// Same-kind overlap works through the referent layer.
	seqMark2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 40, Hi: 90})
	if !seqMark.Overlaps(seqMark2) {
		t.Fatal("overlapping sequence marks not detected")
	}
}

func agraph2Content(annID uint64) agraph.NodeRef {
	return agraph.ContentRoot(annID)
}
