package core

import (
	"maps"
	"sort"
)

// Persistent (copy-on-write) containers backing the store's published read
// views. A View shares structure with its predecessor; the writer clones
// only the pieces a mutation touches, so publishing a view after a commit
// costs O(touched state), not O(store size), and a pinned view is
// immutable for as long as a reader holds it.

// --- idtable: persistent chunked array keyed by dense uint64 IDs ---

const (
	tableChunkBits = 8
	tableChunkSize = 1 << tableChunkBits
	tableSlotMask  = tableChunkSize - 1
)

type tableChunk[T any] [tableChunkSize]*T

// idtable maps the store's monotonically assigned annotation/referent IDs
// (starting at 1, dense, never reused) to objects. Iteration in chunk/slot
// order IS ascending ID order, which is what retires the old
// allocate-and-sort-every-ID-on-every-scan pattern: a view enumerates
// annotations sorted by ID with no allocation and no sort.
type idtable[T any] struct {
	chunks []*tableChunk[T]
	count  int
}

func (t idtable[T]) len() int { return t.count }

func (t idtable[T]) get(id uint64) *T {
	ci := id >> tableChunkBits
	if ci >= uint64(len(t.chunks)) || t.chunks[ci] == nil {
		return nil
	}
	return t.chunks[ci][id&tableSlotMask]
}

// with returns a table holding v under id, sharing all untouched chunks.
func (t idtable[T]) with(id uint64, v *T) idtable[T] {
	ci := int(id >> tableChunkBits)
	n := len(t.chunks)
	if ci >= n {
		n = ci + 1
	}
	chunks := make([]*tableChunk[T], n)
	copy(chunks, t.chunks)
	var ch tableChunk[T]
	if chunks[ci] != nil {
		ch = *chunks[ci]
	}
	count := t.count
	if ch[id&tableSlotMask] == nil {
		count++
	}
	ch[id&tableSlotMask] = v
	chunks[ci] = &ch
	return idtable[T]{chunks: chunks, count: count}
}

// without returns a table with id removed, sharing all untouched chunks.
func (t idtable[T]) without(id uint64) idtable[T] {
	if t.get(id) == nil {
		return t
	}
	ci := id >> tableChunkBits
	chunks := make([]*tableChunk[T], len(t.chunks))
	copy(chunks, t.chunks)
	ch := *chunks[ci]
	ch[id&tableSlotMask] = nil
	chunks[ci] = &ch
	return idtable[T]{chunks: chunks, count: t.count - 1}
}

// each visits every present entry in ascending ID order until fn returns
// false.
func (t idtable[T]) each(fn func(uint64, *T) bool) {
	for ci, ch := range t.chunks {
		if ch == nil {
			continue
		}
		base := uint64(ci) << tableChunkBits
		for si := 0; si < tableChunkSize; si++ {
			if v := ch[si]; v != nil {
				if !fn(base|uint64(si), v) {
					return
				}
			}
		}
	}
}

// ids materializes the ascending ID list (for API compatibility; internal
// paths iterate with each instead).
func (t idtable[T]) ids() []uint64 {
	out := make([]uint64, 0, t.count)
	t.each(func(id uint64, _ *T) bool {
		out = append(out, id)
		return true
	})
	return out
}

// --- smap: persistent sharded string-keyed map ---

// smapShards trades read-side indirection (none — shard lookup is one
// hash) against write-side clone cost (per touched shard, size/shards
// entries). Commits touch one shard per distinct content word, so shard
// count matters most for the keyword index: at 512 shards a 10k-word
// vocabulary costs ~20 copied entries per touched shard.
const smapShards = 512

type smapArr[V any] [smapShards]map[string]V

// smap is a string-keyed map sharded by FNV-1a hash. Reads index straight
// into the shard; the writer clones only the shards a mutation touches
// (via edit), so per-op publish cost is (#touched shards) x (shard size)
// instead of the whole map.
type smap[V any] struct {
	shards *smapArr[V]
}

func smapShardOf(k string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= prime32
	}
	return int(h % smapShards)
}

func (m smap[V]) get(k string) (V, bool) {
	if m.shards == nil {
		var zero V
		return zero, false
	}
	v, ok := m.shards[smapShardOf(k)][k]
	return v, ok
}

func (m smap[V]) len() int {
	if m.shards == nil {
		return 0
	}
	n := 0
	for _, sh := range m.shards {
		n += len(sh)
	}
	return n
}

// each visits all entries in unspecified order until fn returns false.
func (m smap[V]) each(fn func(string, V) bool) {
	if m.shards == nil {
		return
	}
	for _, sh := range m.shards {
		for k, v := range sh {
			if !fn(k, v) {
				return
			}
		}
	}
}

// smapEdit batches mutations against a base smap, cloning each shard at
// most once; done() assembles the successor map. Writer-side only.
type smapEdit[V any] struct {
	shards smapArr[V]
	cloned [smapShards]bool
}

func (m smap[V]) edit() *smapEdit[V] {
	e := &smapEdit[V]{}
	if m.shards != nil {
		e.shards = *m.shards
	}
	return e
}

func (e *smapEdit[V]) mutable(si int) map[string]V {
	if !e.cloned[si] {
		if e.shards[si] == nil {
			e.shards[si] = make(map[string]V, 1)
		} else {
			e.shards[si] = maps.Clone(e.shards[si])
		}
		e.cloned[si] = true
	}
	return e.shards[si]
}

func (e *smapEdit[V]) get(k string) (V, bool) {
	v, ok := e.shards[smapShardOf(k)][k]
	return v, ok
}

func (e *smapEdit[V]) set(k string, v V) {
	e.mutable(smapShardOf(k))[k] = v
}

func (e *smapEdit[V]) delete(k string) {
	si := smapShardOf(k)
	if _, ok := e.shards[si][k]; ok {
		delete(e.mutable(si), k)
	}
}

// done publishes the edited map. It aliases the edit's own shard array
// (already a copy of the base), so the edit must not be used afterwards.
func (e *smapEdit[V]) done() smap[V] {
	return smap[V]{shards: &e.shards}
}

// appendSortedID extends a sorted posting list with id. The common case
// (ascending IDs) appends in place: readers pinned to an older slice
// header never index past their own length, so sharing the backing array
// with the single-writer chain is safe. Out-of-order or duplicate IDs
// fall back to a fresh sorted insert.
func appendSortedID(ids []uint64, id uint64) []uint64 {
	if n := len(ids); n == 0 || ids[n-1] < id {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	out := make([]uint64, 0, len(ids)+1)
	out = append(out, ids[:i]...)
	out = append(out, id)
	return append(out, ids[i:]...)
}

// withoutID returns a fresh posting list without id (order preserved).
func withoutID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	if len(ids) == 1 {
		return nil
	}
	out := make([]uint64, 0, len(ids)-1)
	out = append(out, ids[:i]...)
	return append(out, ids[i+1:]...)
}

// --- small helpers for the rarely-mutated registration maps/slices ---

// mapWith clones m and sets k=v; registration-rate mutations only.
func mapWith[K comparable, V any](m map[K]V, k K, v V) map[K]V {
	out := maps.Clone(m)
	if out == nil {
		out = make(map[K]V, 1)
	}
	out[k] = v
	return out
}

// insertSortedStr returns a fresh sorted slice with s inserted.
func insertSortedStr(xs []string, s string) []string {
	i := sort.SearchStrings(xs, s)
	out := make([]string, 0, len(xs)+1)
	out = append(out, xs[:i]...)
	out = append(out, s)
	return append(out, xs[i:]...)
}

// insertSortedObject returns a fresh (type, id)-sorted slice with h added.
func insertSortedObject(xs []ObjectHandle, h ObjectHandle) []ObjectHandle {
	i := sort.Search(len(xs), func(k int) bool {
		if xs[k].Type != h.Type {
			return xs[k].Type > h.Type
		}
		return xs[k].ID >= h.ID
	})
	out := make([]ObjectHandle, 0, len(xs)+1)
	out = append(out, xs[:i]...)
	out = append(out, h)
	return append(out, xs[i:]...)
}
