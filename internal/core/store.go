package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// Store is the Graphitti annotation management system: the relational
// store of data objects, the per-domain interval trees and per-system
// R-trees of marked sub-structures, the registered ontologies, the
// annotation content collection, and the a-graph joining them.
//
// The store is split into a serialized writer and an immutable,
// atomically published read view (see View): mutations take the writer
// mutex, apply, and publish a successor snapshot; reads pin the current
// view with a single atomic load and run lock-free against it. There is
// no reader/writer contention — a slow collection scan never delays a
// commit, and a burst of commits never delays a scan.
//
// All methods are safe for concurrent use. The Store's read methods are
// per-call conveniences that pin a fresh view each time; callers needing
// several reads against one consistent snapshot should pin View() once.
type Store struct {
	rel   *relstore.Store
	graph *agraph.Graph

	// w serializes mutations. Readers never take it.
	w sync.Mutex
	v atomic.Pointer[View]

	// Writer-owned mutable spatial indexes ("simple techniques are used
	// to keep the number of the index structures small"). Both trees are
	// path-copying, so the immutable snapshots published into views share
	// structure with these without observing later mutation. Guarded by w.
	itrees map[string]*interval.Tree[string]
	rtrees map[string]*rtree.Tree[string]

	// propagator, when attached, computes derived annotations inside the
	// writer's critical section (see derived.go). Attachment serializes
	// on w, but the pointer itself is atomic so read-side accessors
	// (Propagator, prop.RulesOf) never block behind a commit or a
	// long-running derived recompute.
	propagator atomic.Pointer[Propagator]

	// m holds this store's shard-labelled metric children ("0" when
	// unsharded). ids, when set, allocates annotation/referent IDs from a
	// source shared across a set of sharded stores so IDs stay globally
	// unique; nil means the view's own counters allocate (the unsharded
	// behaviour). Both are fixed at construction.
	m   *storeMetrics
	ids IDSource
}

// StoreOptions configure NewStoreWithOptions. The zero value reproduces
// NewStore exactly.
type StoreOptions struct {
	// Shard labels this store's metrics; "" means "0" (unsharded).
	Shard string
	// IDs, when non-nil, replaces the view-local ID counters with a
	// shared allocator so several stores can mint non-colliding
	// annotation and referent IDs. Replayed commits with pinned IDs
	// (CommitWithIDs) bypass it.
	IDs IDSource
}

var (
	seqColumns = []relstore.Column{
		{Name: "id", Type: relstore.String},
		{Name: "description", Type: relstore.String},
		{Name: "domain", Type: relstore.String, NotNull: true},
		{Name: "offset", Type: relstore.Int64, NotNull: true},
		{Name: "length", Type: relstore.Int64, NotNull: true},
		{Name: "gc", Type: relstore.Float64},
		{Name: "residues", Type: relstore.Bytes},
	}
	alignmentSchema = relstore.MustSchema(string(TypeAlignment), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_rows", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "num_cols", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "row_ids", Type: relstore.String},
		relstore.Column{Name: "fasta", Type: relstore.Bytes},
	)
	treeSchema = relstore.MustSchema(string(TypeTree), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_leaves", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "newick", Type: relstore.Bytes},
	)
	interactionSchema = relstore.MustSchema(string(TypeInteraction), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_molecules", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "num_interactions", Type: relstore.Int64, NotNull: true},
	)
	imageSchema = relstore.MustSchema(string(TypeImage), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "system", Type: relstore.String, NotNull: true},
		relstore.Column{Name: "modality", Type: relstore.String},
		relstore.Column{Name: "subject", Type: relstore.String},
		relstore.Column{Name: "dims", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "x0", Type: relstore.Float64},
		relstore.Column{Name: "y0", Type: relstore.Float64},
		relstore.Column{Name: "z0", Type: relstore.Float64},
		relstore.Column{Name: "x1", Type: relstore.Float64},
		relstore.Column{Name: "y1", Type: relstore.Float64},
		relstore.Column{Name: "z1", Type: relstore.Float64},
	)
)

func seqSchemaFor(t ObjectType) *relstore.Schema {
	return relstore.MustSchema(string(t), "id", seqColumns...)
}

// NewStore returns an empty Graphitti store with the type-specific tables
// of the demonstration studies pre-created.
func NewStore() *Store { return NewStoreWithOptions(StoreOptions{}) }

// NewStoreWithOptions is NewStore for one shard of a sharded deployment:
// metrics carry the shard label and IDs come from the shared source.
func NewStoreWithOptions(opts StoreOptions) *Store {
	s := &Store{
		rel:    relstore.NewStore(),
		graph:  agraph.New(),
		itrees: make(map[string]*interval.Tree[string]),
		rtrees: make(map[string]*rtree.Tree[string]),
		m:      metricsForShard(opts.Shard),
		ids:    opts.IDs,
	}
	for _, t := range []ObjectType{TypeDNA, TypeRNA, TypeProtein} {
		if _, err := s.rel.CreateTable(seqSchemaFor(t)); err != nil {
			panic(err) // static schemas; cannot fail
		}
	}
	for _, schema := range []*relstore.Schema{alignmentSchema, treeSchema, interactionSchema, imageSchema} {
		if _, err := s.rel.CreateTable(schema); err != nil {
			panic(err)
		}
	}
	s.v.Store(emptyView(s.rel, s.graph, s.m))
	return s
}

// View pins the current read snapshot: one atomic load, no locks. The
// returned view is immutable; hold it for as many reads as need to be
// mutually consistent.
func (s *Store) View() *View { return s.v.Load() }

// publish installs nv as the current view, stamping its epoch and
// updating the view gauges. Caller holds w.
func (s *Store) publish(nv *View) {
	nv.epoch = s.v.Load().epoch + 1
	s.v.Store(nv)
	s.m.viewEpoch.Set(int64(nv.epoch))
	s.m.annotations.Set(int64(nv.annotations.len()))
	s.m.derivedFacts.Set(int64(nv.derivedCount))
}

// Rel exposes the underlying relational store (read-mostly; used by the
// admin workflow and the record-table API).
func (s *Store) Rel() *relstore.Store { return s.rel }

// Graph exposes the a-graph for path/connect queries.
func (s *Store) Graph() *agraph.Graph { return s.graph }

// RegisterOntology makes an ontology available for annotation references.
func (s *Store) RegisterOntology(o *ontology.Ontology) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.ontologies[o.Name()]; dup {
		return fmt.Errorf("%w: ontology %s", ErrDuplicate, o.Name())
	}
	nv := v.clone()
	nv.ontologies = mapWith(v.ontologies, o.Name(), o)
	nv.ontNames = insertSortedStr(v.ontNames, o.Name())
	s.publish(nv)
	return nil
}

// Ontology returns a registered ontology.
func (s *Store) Ontology(name string) (*ontology.Ontology, error) {
	return s.View().Ontology(name)
}

// Ontologies returns the names of registered ontologies, sorted.
func (s *Store) Ontologies() []string { return s.View().Ontologies() }

// RegisterCoordinateSystem makes a shared spatial reference available for
// image registration.
func (s *Store) RegisterCoordinateSystem(cs *imaging.CoordinateSystem) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.systems[cs.Name]; dup {
		return fmt.Errorf("%w: coordinate system %s", ErrDuplicate, cs.Name)
	}
	tr, err := rtree.NewTree[string](cs.Dims)
	if err != nil {
		return err
	}
	s.rtrees[cs.Name] = tr
	nv := v.clone()
	nv.systems = mapWith(v.systems, cs.Name, cs)
	nv.sysNames = insertSortedStr(v.sysNames, cs.Name)
	nv.rtrees = mapWith(v.rtrees, cs.Name, tr.Snapshot())
	s.publish(nv)
	return nil
}

// CoordinateSystem returns a registered coordinate system.
func (s *Store) CoordinateSystem(name string) (*imaging.CoordinateSystem, error) {
	return s.View().CoordinateSystem(name)
}

func seqObjectType(k seq.Kind) ObjectType {
	switch k {
	case seq.DNA:
		return TypeDNA
	case seq.RNA:
		return TypeRNA
	default:
		return TypeProtein
	}
}

// RegisterSequence registers a DNA/RNA/protein sequence. A sequence with
// an empty Domain becomes its own coordinate domain.
func (s *Store) RegisterSequence(sq *seq.Sequence) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.seqs[sq.ID]; dup {
		return fmt.Errorf("%w: sequence %s", ErrDuplicate, sq.ID)
	}
	if sq.Domain == "" {
		sq.Domain = sq.ID
	}
	typ := seqObjectType(sq.Kind)
	tbl, err := s.rel.Table(string(typ))
	if err != nil {
		return err
	}
	gc := 0.0
	if sq.Kind != seq.Protein {
		gc, _ = sq.GC()
	}
	row := relstore.Row{
		relstore.S(sq.ID), relstore.S(sq.Description), relstore.S(sq.Domain),
		relstore.I(sq.Offset), relstore.I(sq.Len()), relstore.F(gc),
		relstore.Blob([]byte(sq.Residues)),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.graph.AddNode(agraph.Object(string(typ), sq.ID))
	nv := v.clone()
	nv.seqs = mapWith(v.seqs, sq.ID, sq)
	nv.seqType = mapWith(v.seqType, sq.ID, typ)
	nv.seqIDs = insertSortedStr(v.seqIDs, sq.ID)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{typ, sq.ID})
	s.publish(nv)
	return nil
}

// Sequence returns a registered sequence and its object type.
func (s *Store) Sequence(id string) (*seq.Sequence, ObjectType, error) {
	return s.View().Sequence(id)
}

// RegisterAlignment registers a multiple sequence alignment.
func (s *Store) RegisterAlignment(a *msa.Alignment) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.alignments[a.ID]; dup {
		return fmt.Errorf("%w: alignment %s", ErrDuplicate, a.ID)
	}
	tbl, err := s.rel.Table(string(TypeAlignment))
	if err != nil {
		return err
	}
	joined := ""
	for i, id := range a.RowIDs {
		if i > 0 {
			joined += ","
		}
		joined += id
	}
	var fasta []byte
	for i, id := range a.RowIDs {
		fasta = append(fasta, '>')
		fasta = append(fasta, id...)
		fasta = append(fasta, '\n')
		fasta = append(fasta, a.Rows[i]...)
		fasta = append(fasta, '\n')
	}
	row := relstore.Row{
		relstore.S(a.ID), relstore.I(int64(a.NumRows())), relstore.I(int64(a.NumCols())),
		relstore.S(joined), relstore.Blob(fasta),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.graph.AddNode(agraph.Object(string(TypeAlignment), a.ID))
	nv := v.clone()
	nv.alignments = mapWith(v.alignments, a.ID, a)
	nv.alnIDs = insertSortedStr(v.alnIDs, a.ID)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{TypeAlignment, a.ID})
	s.publish(nv)
	return nil
}

// Alignment returns a registered alignment.
func (s *Store) Alignment(id string) (*msa.Alignment, error) {
	return s.View().Alignment(id)
}

// RegisterTree registers a phylogenetic tree.
func (s *Store) RegisterTree(t *phylo.Tree) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.trees[t.ID]; dup {
		return fmt.Errorf("%w: tree %s", ErrDuplicate, t.ID)
	}
	tbl, err := s.rel.Table(string(TypeTree))
	if err != nil {
		return err
	}
	row := relstore.Row{
		relstore.S(t.ID), relstore.I(int64(t.NumLeaves())), relstore.Blob([]byte(t.Newick())),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.graph.AddNode(agraph.Object(string(TypeTree), t.ID))
	nv := v.clone()
	nv.trees = mapWith(v.trees, t.ID, t)
	nv.treeIDs = insertSortedStr(v.treeIDs, t.ID)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{TypeTree, t.ID})
	s.publish(nv)
	return nil
}

// Tree returns a registered phylogenetic tree.
func (s *Store) Tree(id string) (*phylo.Tree, error) {
	return s.View().Tree(id)
}

// RegisterInteractionGraph registers a molecular interaction graph.
func (s *Store) RegisterInteractionGraph(g *interact.Graph) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.igraphs[g.ID]; dup {
		return fmt.Errorf("%w: interaction graph %s", ErrDuplicate, g.ID)
	}
	tbl, err := s.rel.Table(string(TypeInteraction))
	if err != nil {
		return err
	}
	row := relstore.Row{
		relstore.S(g.ID), relstore.I(int64(g.NumMolecules())), relstore.I(int64(g.NumInteractions())),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.graph.AddNode(agraph.Object(string(TypeInteraction), g.ID))
	nv := v.clone()
	nv.igraphs = mapWith(v.igraphs, g.ID, g)
	nv.igraphIDs = insertSortedStr(v.igraphIDs, g.ID)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{TypeInteraction, g.ID})
	s.publish(nv)
	return nil
}

// InteractionGraph returns a registered interaction graph.
func (s *Store) InteractionGraph(id string) (*interact.Graph, error) {
	return s.View().InteractionGraph(id)
}

// RegisterImage registers an image; its coordinate system must have been
// registered first.
func (s *Store) RegisterImage(im *imaging.Image) error {
	s.w.Lock()
	defer s.w.Unlock()
	v := s.v.Load()
	if _, dup := v.images[im.ID]; dup {
		return fmt.Errorf("%w: image %s", ErrDuplicate, im.ID)
	}
	if _, ok := v.systems[im.System]; !ok {
		return fmt.Errorf("%w: %s (register it before image %s)", ErrNoSuchSystem, im.System, im.ID)
	}
	tbl, err := s.rel.Table(string(TypeImage))
	if err != nil {
		return err
	}
	fp := im.Footprint()
	row := relstore.Row{
		relstore.S(im.ID), relstore.S(im.System), relstore.S(im.Modality),
		relstore.S(im.Subject), relstore.I(int64(im.Local.Dims)),
		relstore.F(fp.Min[0]), relstore.F(fp.Min[1]), relstore.F(fp.Min[2]),
		relstore.F(fp.Max[0]), relstore.F(fp.Max[1]), relstore.F(fp.Max[2]),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.graph.AddNode(agraph.Object(string(TypeImage), im.ID))
	nv := v.clone()
	nv.images = mapWith(v.images, im.ID, im)
	nv.imageIDs = insertSortedStr(v.imageIDs, im.ID)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{TypeImage, im.ID})
	// A new image in a shared coordinate system can become the target of
	// existing coordinate-registration rules; registrations are rare, so
	// a full recompute keeps the derived table exact without a dedicated
	// delta path — skipped entirely when no rule can be affected.
	if p := s.getPropagator(); p != nil && p.RecomputeOnRegister() {
		s.recomputeDerivedInto(nv)
	}
	s.publish(nv)
	return nil
}

// Image returns a registered image.
func (s *Store) Image(id string) (*imaging.Image, error) {
	return s.View().Image(id)
}

// Images returns the IDs of all registered images, sorted.
func (s *Store) Images() []string { return s.View().Images() }

// SequenceIDs returns the IDs of all registered sequences, sorted.
func (s *Store) SequenceIDs() []string { return s.View().SequenceIDs() }

// AlignmentIDs returns the IDs of all registered alignments, sorted.
func (s *Store) AlignmentIDs() []string { return s.View().AlignmentIDs() }

// TreeIDs returns the IDs of all registered phylogenetic trees, sorted.
func (s *Store) TreeIDs() []string { return s.View().TreeIDs() }

// InteractionGraphIDs returns the IDs of all registered interaction
// graphs, sorted.
func (s *Store) InteractionGraphIDs() []string { return s.View().InteractionGraphIDs() }

// CoordinateSystems returns the names of all registered coordinate
// systems, sorted.
func (s *Store) CoordinateSystems() []string { return s.View().CoordinateSystems() }

// RecordTables returns the names of all user record tables, sorted.
func (s *Store) RecordTables() []string { return s.View().RecordTables() }

// CreateRecordTable creates a user-defined relational table whose rows can
// be annotated as record-set referents (the demo's "relational records").
func (s *Store) CreateRecordTable(schema *relstore.Schema) (*relstore.Table, error) {
	s.w.Lock()
	defer s.w.Unlock()
	tbl, err := s.rel.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	v := s.v.Load()
	nv := v.clone()
	nv.recordTables = mapWith(v.recordTables, schema.Name, true)
	nv.recTableNames = insertSortedStr(v.recTableNames, schema.Name)
	nv.objects = insertSortedObject(v.objects, ObjectHandle{TypeRecord, schema.Name})
	s.publish(nv)
	return tbl, nil
}

// InsertRecord inserts a row into a user record table and registers the
// row as an annotatable object. The relational store carries its own
// synchronization; no view changes.
func (s *Store) InsertRecord(table string, row relstore.Row) error {
	v := s.View()
	if !v.recordTables[table] {
		return fmt.Errorf("%w: record table %s", ErrNoSuchObject, table)
	}
	tbl, err := s.rel.Table(table)
	if err != nil {
		return err
	}
	return tbl.Insert(row)
}

// Stats summarises the store for the admin workflow.
type Stats struct {
	Annotations       int
	Referents         int
	Sequences         int
	Alignments        int
	Trees             int
	InteractionGraphs int
	Images            int
	Ontologies        int
	IntervalTrees     int
	RTrees            int
	GraphNodes        int
	GraphEdges        int
	Keywords          int
	Derived           int
}

// Stats returns current component sizes.
func (s *Store) Stats() Stats { return s.View().Stats() }
