package core

import (
	"fmt"
	"sort"
	"sync"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// Store is the Graphitti annotation management system: the relational
// store of data objects, the per-domain interval trees and per-system
// R-trees of marked sub-structures, the registered ontologies, the
// annotation content collection, and the a-graph joining them.
//
// All methods are safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	rel   *relstore.Store
	graph *agraph.Graph

	ontologies map[string]*ontology.Ontology
	systems    map[string]*imaging.CoordinateSystem

	// Sub-structure indexes: one interval tree per 1-D domain, one R-tree
	// per coordinate system ("simple techniques are used to keep the
	// number of the index structures small").
	itrees map[string]*interval.Tree[string]
	rtrees map[string]*rtree.Tree[string]

	// In-memory structured views of registered objects (raw/native forms
	// also live in the relational tables).
	seqs       map[string]*seq.Sequence
	seqType    map[string]ObjectType
	alignments map[string]*msa.Alignment
	trees      map[string]*phylo.Tree
	igraphs    map[string]*interact.Graph
	images     map[string]*imaging.Image

	recordTables map[string]bool

	annotations map[uint64]*Annotation
	referents   map[uint64]*Referent
	refByMark   map[string]uint64   // canonical mark -> shared referent ID
	keywordIdx  map[string][]uint64 // keyword -> sorted annotation IDs

	nextAnn uint64
	nextRef uint64
}

var (
	seqColumns = []relstore.Column{
		{Name: "id", Type: relstore.String},
		{Name: "description", Type: relstore.String},
		{Name: "domain", Type: relstore.String, NotNull: true},
		{Name: "offset", Type: relstore.Int64, NotNull: true},
		{Name: "length", Type: relstore.Int64, NotNull: true},
		{Name: "gc", Type: relstore.Float64},
		{Name: "residues", Type: relstore.Bytes},
	}
	alignmentSchema = relstore.MustSchema(string(TypeAlignment), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_rows", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "num_cols", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "row_ids", Type: relstore.String},
		relstore.Column{Name: "fasta", Type: relstore.Bytes},
	)
	treeSchema = relstore.MustSchema(string(TypeTree), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_leaves", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "newick", Type: relstore.Bytes},
	)
	interactionSchema = relstore.MustSchema(string(TypeInteraction), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "num_molecules", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "num_interactions", Type: relstore.Int64, NotNull: true},
	)
	imageSchema = relstore.MustSchema(string(TypeImage), "id",
		relstore.Column{Name: "id", Type: relstore.String},
		relstore.Column{Name: "system", Type: relstore.String, NotNull: true},
		relstore.Column{Name: "modality", Type: relstore.String},
		relstore.Column{Name: "subject", Type: relstore.String},
		relstore.Column{Name: "dims", Type: relstore.Int64, NotNull: true},
		relstore.Column{Name: "x0", Type: relstore.Float64},
		relstore.Column{Name: "y0", Type: relstore.Float64},
		relstore.Column{Name: "z0", Type: relstore.Float64},
		relstore.Column{Name: "x1", Type: relstore.Float64},
		relstore.Column{Name: "y1", Type: relstore.Float64},
		relstore.Column{Name: "z1", Type: relstore.Float64},
	)
)

func seqSchemaFor(t ObjectType) *relstore.Schema {
	return relstore.MustSchema(string(t), "id", seqColumns...)
}

// NewStore returns an empty Graphitti store with the type-specific tables
// of the demonstration studies pre-created.
func NewStore() *Store {
	s := &Store{
		rel:          relstore.NewStore(),
		graph:        agraph.New(),
		ontologies:   make(map[string]*ontology.Ontology),
		systems:      make(map[string]*imaging.CoordinateSystem),
		itrees:       make(map[string]*interval.Tree[string]),
		rtrees:       make(map[string]*rtree.Tree[string]),
		seqs:         make(map[string]*seq.Sequence),
		seqType:      make(map[string]ObjectType),
		alignments:   make(map[string]*msa.Alignment),
		trees:        make(map[string]*phylo.Tree),
		igraphs:      make(map[string]*interact.Graph),
		images:       make(map[string]*imaging.Image),
		recordTables: make(map[string]bool),
		annotations:  make(map[uint64]*Annotation),
		referents:    make(map[uint64]*Referent),
		refByMark:    make(map[string]uint64),
		keywordIdx:   make(map[string][]uint64),
	}
	for _, t := range []ObjectType{TypeDNA, TypeRNA, TypeProtein} {
		if _, err := s.rel.CreateTable(seqSchemaFor(t)); err != nil {
			panic(err) // static schemas; cannot fail
		}
	}
	for _, schema := range []*relstore.Schema{alignmentSchema, treeSchema, interactionSchema, imageSchema} {
		if _, err := s.rel.CreateTable(schema); err != nil {
			panic(err)
		}
	}
	return s
}

// Rel exposes the underlying relational store (read-mostly; used by the
// admin workflow and the record-table API).
func (s *Store) Rel() *relstore.Store { return s.rel }

// Graph exposes the a-graph for path/connect queries.
func (s *Store) Graph() *agraph.Graph { return s.graph }

// RegisterOntology makes an ontology available for annotation references.
func (s *Store) RegisterOntology(o *ontology.Ontology) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ontologies[o.Name()]; dup {
		return fmt.Errorf("%w: ontology %s", ErrDuplicate, o.Name())
	}
	s.ontologies[o.Name()] = o
	return nil
}

// Ontology returns a registered ontology.
func (s *Store) Ontology(name string) (*ontology.Ontology, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.ontologies[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchOntology, name)
	}
	return o, nil
}

// Ontologies returns the names of registered ontologies, sorted.
func (s *Store) Ontologies() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.ontologies))
	for name := range s.ontologies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterCoordinateSystem makes a shared spatial reference available for
// image registration.
func (s *Store) RegisterCoordinateSystem(cs *imaging.CoordinateSystem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.systems[cs.Name]; dup {
		return fmt.Errorf("%w: coordinate system %s", ErrDuplicate, cs.Name)
	}
	s.systems[cs.Name] = cs
	tr, err := rtree.NewTree[string](cs.Dims)
	if err != nil {
		return err
	}
	s.rtrees[cs.Name] = tr
	return nil
}

// CoordinateSystem returns a registered coordinate system.
func (s *Store) CoordinateSystem(name string) (*imaging.CoordinateSystem, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.systems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchSystem, name)
	}
	return cs, nil
}

func seqObjectType(k seq.Kind) ObjectType {
	switch k {
	case seq.DNA:
		return TypeDNA
	case seq.RNA:
		return TypeRNA
	default:
		return TypeProtein
	}
}

// RegisterSequence registers a DNA/RNA/protein sequence. A sequence with
// an empty Domain becomes its own coordinate domain.
func (s *Store) RegisterSequence(sq *seq.Sequence) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seqs[sq.ID]; dup {
		return fmt.Errorf("%w: sequence %s", ErrDuplicate, sq.ID)
	}
	if sq.Domain == "" {
		sq.Domain = sq.ID
	}
	typ := seqObjectType(sq.Kind)
	tbl, err := s.rel.Table(string(typ))
	if err != nil {
		return err
	}
	gc := 0.0
	if sq.Kind != seq.Protein {
		gc, _ = sq.GC()
	}
	row := relstore.Row{
		relstore.S(sq.ID), relstore.S(sq.Description), relstore.S(sq.Domain),
		relstore.I(sq.Offset), relstore.I(sq.Len()), relstore.F(gc),
		relstore.Blob([]byte(sq.Residues)),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.seqs[sq.ID] = sq
	s.seqType[sq.ID] = typ
	s.graph.AddNode(agraph.Object(string(typ), sq.ID))
	return nil
}

// Sequence returns a registered sequence and its object type.
func (s *Store) Sequence(id string) (*seq.Sequence, ObjectType, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sq, ok := s.seqs[id]
	if !ok {
		return nil, "", fmt.Errorf("%w: sequence %s", ErrNoSuchObject, id)
	}
	return sq, s.seqType[id], nil
}

// RegisterAlignment registers a multiple sequence alignment.
func (s *Store) RegisterAlignment(a *msa.Alignment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.alignments[a.ID]; dup {
		return fmt.Errorf("%w: alignment %s", ErrDuplicate, a.ID)
	}
	tbl, err := s.rel.Table(string(TypeAlignment))
	if err != nil {
		return err
	}
	joined := ""
	for i, id := range a.RowIDs {
		if i > 0 {
			joined += ","
		}
		joined += id
	}
	var fasta []byte
	for i, id := range a.RowIDs {
		fasta = append(fasta, '>')
		fasta = append(fasta, id...)
		fasta = append(fasta, '\n')
		fasta = append(fasta, a.Rows[i]...)
		fasta = append(fasta, '\n')
	}
	row := relstore.Row{
		relstore.S(a.ID), relstore.I(int64(a.NumRows())), relstore.I(int64(a.NumCols())),
		relstore.S(joined), relstore.Blob(fasta),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.alignments[a.ID] = a
	s.graph.AddNode(agraph.Object(string(TypeAlignment), a.ID))
	return nil
}

// Alignment returns a registered alignment.
func (s *Store) Alignment(id string) (*msa.Alignment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.alignments[id]
	if !ok {
		return nil, fmt.Errorf("%w: alignment %s", ErrNoSuchObject, id)
	}
	return a, nil
}

// RegisterTree registers a phylogenetic tree.
func (s *Store) RegisterTree(t *phylo.Tree) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.trees[t.ID]; dup {
		return fmt.Errorf("%w: tree %s", ErrDuplicate, t.ID)
	}
	tbl, err := s.rel.Table(string(TypeTree))
	if err != nil {
		return err
	}
	row := relstore.Row{
		relstore.S(t.ID), relstore.I(int64(t.NumLeaves())), relstore.Blob([]byte(t.Newick())),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.trees[t.ID] = t
	s.graph.AddNode(agraph.Object(string(TypeTree), t.ID))
	return nil
}

// Tree returns a registered phylogenetic tree.
func (s *Store) Tree(id string) (*phylo.Tree, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.trees[id]
	if !ok {
		return nil, fmt.Errorf("%w: tree %s", ErrNoSuchObject, id)
	}
	return t, nil
}

// RegisterInteractionGraph registers a molecular interaction graph.
func (s *Store) RegisterInteractionGraph(g *interact.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.igraphs[g.ID]; dup {
		return fmt.Errorf("%w: interaction graph %s", ErrDuplicate, g.ID)
	}
	tbl, err := s.rel.Table(string(TypeInteraction))
	if err != nil {
		return err
	}
	row := relstore.Row{
		relstore.S(g.ID), relstore.I(int64(g.NumMolecules())), relstore.I(int64(g.NumInteractions())),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.igraphs[g.ID] = g
	s.graph.AddNode(agraph.Object(string(TypeInteraction), g.ID))
	return nil
}

// InteractionGraph returns a registered interaction graph.
func (s *Store) InteractionGraph(id string) (*interact.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.igraphs[id]
	if !ok {
		return nil, fmt.Errorf("%w: interaction graph %s", ErrNoSuchObject, id)
	}
	return g, nil
}

// RegisterImage registers an image; its coordinate system must have been
// registered first.
func (s *Store) RegisterImage(im *imaging.Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.images[im.ID]; dup {
		return fmt.Errorf("%w: image %s", ErrDuplicate, im.ID)
	}
	if _, ok := s.systems[im.System]; !ok {
		return fmt.Errorf("%w: %s (register it before image %s)", ErrNoSuchSystem, im.System, im.ID)
	}
	tbl, err := s.rel.Table(string(TypeImage))
	if err != nil {
		return err
	}
	fp := im.Footprint()
	row := relstore.Row{
		relstore.S(im.ID), relstore.S(im.System), relstore.S(im.Modality),
		relstore.S(im.Subject), relstore.I(int64(im.Local.Dims)),
		relstore.F(fp.Min[0]), relstore.F(fp.Min[1]), relstore.F(fp.Min[2]),
		relstore.F(fp.Max[0]), relstore.F(fp.Max[1]), relstore.F(fp.Max[2]),
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.images[im.ID] = im
	s.graph.AddNode(agraph.Object(string(TypeImage), im.ID))
	return nil
}

// Image returns a registered image.
func (s *Store) Image(id string) (*imaging.Image, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	im, ok := s.images[id]
	if !ok {
		return nil, fmt.Errorf("%w: image %s", ErrNoSuchObject, id)
	}
	return im, nil
}

// Images returns the IDs of all registered images, sorted.
func (s *Store) Images() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.images))
	for id := range s.images {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SequenceIDs returns the IDs of all registered sequences, sorted.
func (s *Store) SequenceIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.seqs))
	for id := range s.seqs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AlignmentIDs returns the IDs of all registered alignments, sorted.
func (s *Store) AlignmentIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.alignments))
	for id := range s.alignments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TreeIDs returns the IDs of all registered phylogenetic trees, sorted.
func (s *Store) TreeIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.trees))
	for id := range s.trees {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// InteractionGraphIDs returns the IDs of all registered interaction
// graphs, sorted.
func (s *Store) InteractionGraphIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.igraphs))
	for id := range s.igraphs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CoordinateSystems returns the names of all registered coordinate
// systems, sorted.
func (s *Store) CoordinateSystems() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.systems))
	for name := range s.systems {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RecordTables returns the names of all user record tables, sorted.
func (s *Store) RecordTables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.recordTables))
	for name := range s.recordTables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CreateRecordTable creates a user-defined relational table whose rows can
// be annotated as record-set referents (the demo's "relational records").
func (s *Store) CreateRecordTable(schema *relstore.Schema) (*relstore.Table, error) {
	tbl, err := s.rel.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.recordTables[schema.Name] = true
	s.mu.Unlock()
	return tbl, nil
}

// InsertRecord inserts a row into a user record table and registers the
// row as an annotatable object.
func (s *Store) InsertRecord(table string, row relstore.Row) error {
	s.mu.RLock()
	isRecord := s.recordTables[table]
	s.mu.RUnlock()
	if !isRecord {
		return fmt.Errorf("%w: record table %s", ErrNoSuchObject, table)
	}
	tbl, err := s.rel.Table(table)
	if err != nil {
		return err
	}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	return nil
}

// Stats summarises the store for the admin workflow.
type Stats struct {
	Annotations       int
	Referents         int
	Sequences         int
	Alignments        int
	Trees             int
	InteractionGraphs int
	Images            int
	Ontologies        int
	IntervalTrees     int
	RTrees            int
	GraphNodes        int
	GraphEdges        int
	Keywords          int
}

// Stats returns current component sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Annotations:       len(s.annotations),
		Referents:         len(s.referents),
		Sequences:         len(s.seqs),
		Alignments:        len(s.alignments),
		Trees:             len(s.trees),
		InteractionGraphs: len(s.igraphs),
		Images:            len(s.images),
		Ontologies:        len(s.ontologies),
		IntervalTrees:     len(s.itrees),
		RTrees:            len(s.rtrees),
		GraphNodes:        s.graph.NodeCount(),
		GraphEdges:        s.graph.EdgeCount(),
		Keywords:          len(s.keywordIdx),
	}
}
