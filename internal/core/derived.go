package core

import (
	"sort"

	"graphitti/internal/agraph"
	"graphitti/internal/trace"
)

// Derived annotations are facts the propagation engine (internal/prop)
// materializes from committed annotations: annotation A's marks, terms
// and graph neighborhood imply that A also "annotates" other referents,
// objects, terms or annotations. Each fact carries full provenance — the
// rule that produced it, the source annotation, and a witness describing
// the propagation edge — so a reader can always trace a derived
// annotation back to its source.
//
// The store does not compute derived facts itself: a Propagator attached
// via SetPropagator is consulted inside the writer's critical section, and
// its delta is published atomically with the mutation that caused it. A
// reader therefore never observes an annotation without its derived
// consequences, or a derived fact whose source is gone. Derived facts are
// recomputable from committed state, which is why the durable layer never
// logs them: only rules are durable ops, and recovery re-derives.

// DerivedFact is one materialized derived annotation.
type DerivedFact struct {
	// Rule is the ID of the propagation rule that produced the fact.
	Rule string
	// Source is the committed annotation the fact was derived from.
	Source uint64
	// Target is what the source annotation is now derived onto: a
	// referent, an object, an ontology term, or another annotation's
	// content root.
	Target agraph.NodeRef
	// Witness names the propagation edge, e.g. "overlap ref3~ref17" or
	// "closure go/protease -> go/hydrolase".
	Witness string
}

// Propagator computes derived facts for the store. Implementations are
// called by the writer while it holds the write lock, against fully-built
// (but unpublished) successor views; they must not call any Store
// mutation method, only View reads.
type Propagator interface {
	// Delta returns the updated derived sets of every source annotation
	// affected by the commit (deleted=false) or deletion (deleted=true)
	// of ann. pre is the view before the mutation; post is the successor
	// view about to be published. A nil/empty slice removes the source's
	// entry. Returning nil means "no change".
	Delta(pre, post *View, ann *Annotation, deleted bool) map[uint64][]DerivedFact
	// Recompute returns the complete derived map of a view from scratch.
	Recompute(v *View) map[uint64][]DerivedFact
	// RecomputeOnRegister reports whether registering a data object can
	// change derived facts (e.g. a co-registration rule is installed) —
	// when false, registrations skip the full recompute.
	RecomputeOnRegister() bool
}

// TracedPropagator is an optional extension of Propagator: a propagator
// that can attribute its delta per rule onto a trace span. The writer
// prefers DeltaTraced when the commit carries a span; sp may be nil, in
// which case the call must behave exactly like Delta.
type TracedPropagator interface {
	Propagator
	DeltaTraced(pre, post *View, ann *Annotation, deleted bool, sp *trace.Span) map[uint64][]DerivedFact
}

// derivedEntry is one source annotation's fact set, tagged with the
// derived epoch at which it was last (re)computed.
type derivedEntry struct {
	epoch uint64
	facts []DerivedFact
}

// getPropagator loads the attached propagator (nil when none).
func (s *Store) getPropagator() Propagator {
	if p := s.propagator.Load(); p != nil {
		return *p
	}
	return nil
}

// SetPropagator attaches (or replaces) the store's propagation engine.
// Attaching does not recompute; callers normally follow with
// RecomputeDerived (prop.Attach does).
func (s *Store) SetPropagator(p Propagator) {
	s.w.Lock()
	defer s.w.Unlock()
	s.propagator.Store(&p)
}

// Propagator returns the attached propagation engine, or nil. Lock-free:
// it never waits on the writer.
func (s *Store) Propagator() Propagator { return s.getPropagator() }

// EnsurePropagator returns the attached propagator, attaching mk() first
// if none is present. The check-and-set serializes on the writer lock,
// so concurrent callers agree on one instance.
func (s *Store) EnsurePropagator(mk func() Propagator) Propagator {
	s.w.Lock()
	defer s.w.Unlock()
	if p := s.getPropagator(); p != nil {
		return p
	}
	p := mk()
	s.propagator.Store(&p)
	return p
}

// RecomputeDerived rebuilds the whole derived table from the attached
// propagator and publishes it as a new view. It is a no-op without a
// propagator.
func (s *Store) RecomputeDerived() {
	_ = s.UpdateDerivedRules(func() error { return nil })
}

// UpdateDerivedRules runs swap — a mutation of the attached propagator's
// rule set — inside the writer's critical section and publishes a full
// derived recompute with it. Because commits and deletes consult the
// propagator under the same lock, every published view's derived table
// is consistent with exactly one rule set: there is no window where a
// delta is computed under rules the table does not yet (or no longer)
// reflects. A swap error aborts without recomputing or publishing.
func (s *Store) UpdateDerivedRules(swap func() error) error {
	s.w.Lock()
	defer s.w.Unlock()
	if err := swap(); err != nil {
		return err
	}
	if s.getPropagator() == nil {
		return nil
	}
	nv := s.v.Load().clone()
	s.recomputeDerivedInto(nv)
	s.publish(nv)
	return nil
}

// recomputeDerivedInto replaces nv's derived table (and its target
// index) with a from-scratch recompute. Caller holds w; nv must be
// fully built.
func (s *Store) recomputeDerivedInto(nv *View) {
	p := s.getPropagator()
	if p == nil {
		return
	}
	nv.derivedEpoch++
	var t idtable[derivedEntry]
	count := 0
	for src, facts := range p.Recompute(nv) {
		if len(facts) == 0 {
			continue
		}
		t = t.with(src, &derivedEntry{epoch: nv.derivedEpoch, facts: facts})
		count += len(facts)
	}
	nv.derived = t
	nv.derivedCount = count
	// Rebuild the target index in table order: sources ascend and each
	// source's facts are canonical, so plain appends leave every
	// per-target list already (source, rule, witness)-sorted.
	idx := smap[[]DerivedFact]{}.edit()
	t.each(func(_ uint64, e *derivedEntry) bool {
		for _, f := range e.facts {
			key := f.Target.String()
			facts, _ := idx.get(key)
			idx.set(key, append(facts, f))
		}
		return true
	})
	nv.derivedByTarget = idx.done()
}

// applyDerivedDelta folds a propagator delta into nv, updating the
// derived table and its target index together. Caller holds w; nv must
// be fully built (the delta was computed against it).
func (s *Store) applyDerivedDelta(nv *View, delta map[uint64][]DerivedFact) {
	if len(delta) == 0 {
		return
	}
	nv.derivedEpoch++
	t := nv.derived
	count := nv.derivedCount
	idx := nv.derivedByTarget.edit()
	for src, facts := range delta {
		var oldFacts []DerivedFact
		if old := t.get(src); old != nil {
			oldFacts = old.facts
			count -= len(oldFacts)
		}
		// Index maintenance diffs the source's old and new fact sets —
		// both canonically sorted and deduped — so only facts that
		// actually appeared or disappeared touch their target's list.
		// (A delta usually re-confirms most of an affected neighbor's
		// facts; reindexing them all made the index cost O(facts per
		// source), not O(changed facts).)
		i, j := 0, 0
		for i < len(oldFacts) && j < len(facts) {
			switch {
			case oldFacts[i] == facts[j]:
				i++
				j++
			case derivedFactLess(oldFacts[i], facts[j]):
				unindexDerivedFact(idx, oldFacts[i])
				i++
			default:
				indexDerivedFact(idx, facts[j])
				j++
			}
		}
		for ; i < len(oldFacts); i++ {
			unindexDerivedFact(idx, oldFacts[i])
		}
		for ; j < len(facts); j++ {
			indexDerivedFact(idx, facts[j])
		}
		if len(facts) == 0 {
			t = t.without(src)
			continue
		}
		t = t.with(src, &derivedEntry{epoch: nv.derivedEpoch, facts: facts})
		count += len(facts)
	}
	nv.derived = t
	nv.derivedCount = count
	nv.derivedByTarget = idx.done()
}

// derivedTargetLess orders one target's index list: ascending source,
// then canonical fact order (the target is fixed, so canonical order
// reduces to rule then witness). This is the per-target subsequence of
// the global DerivedEach order.
func derivedTargetLess(a, b DerivedFact) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	return a.Witness < b.Witness
}

// indexDerivedFact inserts f into its target's sorted list. The list is
// replaced, never mutated: published views may share the old slice.
func indexDerivedFact(idx *smapEdit[[]DerivedFact], f DerivedFact) {
	key := f.Target.String()
	facts, _ := idx.get(key)
	i := sort.Search(len(facts), func(k int) bool { return !derivedTargetLess(facts[k], f) })
	out := make([]DerivedFact, 0, len(facts)+1)
	out = append(out, facts[:i]...)
	out = append(out, f)
	idx.set(key, append(out, facts[i:]...))
}

// unindexDerivedFact removes f from its target's list (fresh slice; the
// key is dropped when the last fact goes).
func unindexDerivedFact(idx *smapEdit[[]DerivedFact], f DerivedFact) {
	key := f.Target.String()
	facts, _ := idx.get(key)
	for i, g := range facts {
		if g != f {
			continue
		}
		if len(facts) == 1 {
			idx.delete(key)
			return
		}
		out := make([]DerivedFact, 0, len(facts)-1)
		out = append(out, facts[:i]...)
		idx.set(key, append(out, facts[i+1:]...))
		return
	}
}

// DerivedFrom returns the derived facts sourced at the given annotation,
// in canonical (rule, target, witness) order.
func (v *View) DerivedFrom(src uint64) []DerivedFact {
	e := v.derived.get(src)
	if e == nil {
		return nil
	}
	out := make([]DerivedFact, len(e.facts))
	copy(out, e.facts)
	return out
}

// DerivedFrom returns the derived facts sourced at the given annotation.
func (s *Store) DerivedFrom(src uint64) []DerivedFact { return s.View().DerivedFrom(src) }

// DerivedFromEach visits the facts sourced at src, in canonical order,
// until fn returns false — the zero-copy variant of DerivedFrom for
// predicate checks on hot paths.
func (v *View) DerivedFromEach(src uint64, fn func(DerivedFact) bool) {
	e := v.derived.get(src)
	if e == nil {
		return
	}
	for _, f := range e.facts {
		if !fn(f) {
			return
		}
	}
}

// DerivedEach visits every derived fact — ascending source ID, canonical
// fact order within a source — until fn returns false.
func (v *View) DerivedEach(fn func(DerivedFact) bool) {
	v.derived.each(func(_ uint64, e *derivedEntry) bool {
		for _, f := range e.facts {
			if !fn(f) {
				return false
			}
		}
		return true
	})
}

// DerivedAll returns every derived fact, ascending source ID then
// canonical fact order — the deterministic export the equivalence tests
// compare against a full recompute.
func (v *View) DerivedAll() []DerivedFact {
	out := make([]DerivedFact, 0, v.derivedCount)
	v.DerivedEach(func(f DerivedFact) bool {
		out = append(out, f)
		return true
	})
	return out
}

// DerivedAll returns every derived fact.
func (s *Store) DerivedAll() []DerivedFact { return s.View().DerivedAll() }

// DerivedTargeting returns the derived facts whose target is the given
// node — the provenance of everything derived onto it. One target-index
// lookup: cost is the facts on that target, not the table size. The
// order (ascending source, canonical fact order) is identical to a
// filtered DerivedEach scan.
func (v *View) DerivedTargeting(target agraph.NodeRef) []DerivedFact {
	facts, _ := v.derivedByTarget.get(target.String())
	if len(facts) == 0 {
		return nil
	}
	out := make([]DerivedFact, len(facts))
	copy(out, facts)
	return out
}

// DerivedTargetingEach visits the facts targeting the given node in
// (source, rule, witness) order until fn returns false — the zero-copy
// variant of DerivedTargeting for predicate probes on hot paths.
func (v *View) DerivedTargetingEach(target agraph.NodeRef, fn func(DerivedFact) bool) {
	facts, _ := v.derivedByTarget.get(target.String())
	for _, f := range facts {
		if !fn(f) {
			return
		}
	}
}

// HasDerivedTarget reports whether at least one derived fact of the
// given rule ("*" = any) targets the node — the query layer's
// provenance-predicate probe. Flat in the derived-table size.
func (v *View) HasDerivedTarget(target agraph.NodeRef, rule string) bool {
	facts, _ := v.derivedByTarget.get(target.String())
	if rule == "*" {
		return len(facts) > 0
	}
	for _, f := range facts {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

// DerivedTargets returns every node targeted by at least one derived
// fact, sorted by (kind, key) — diagnostics and the index-parity tests.
func (v *View) DerivedTargets() []agraph.NodeRef {
	var out []agraph.NodeRef
	v.derivedByTarget.each(func(_ string, facts []DerivedFact) bool {
		if len(facts) > 0 {
			out = append(out, facts[0].Target)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// DerivedTargeting returns the derived facts targeting the given node.
func (s *Store) DerivedTargeting(target agraph.NodeRef) []DerivedFact {
	return s.View().DerivedTargeting(target)
}

// DerivedOnto returns the derived facts targeting an annotation's
// content node or any of its referents — the full provenance of what was
// propagated onto it. One target-index lookup per target: cost is the
// facts on those targets, not the table size. The merged output keeps
// the global DerivedEach order (ascending source, canonical fact order
// within a source), byte-identical to the retired table scan.
func (v *View) DerivedOnto(annID uint64) ([]DerivedFact, error) {
	ann, err := v.Annotation(annID)
	if err != nil {
		return nil, err
	}
	targets := make(map[agraph.NodeRef]bool, len(ann.ReferentIDs)+1)
	targets[agraph.ContentRoot(annID)] = true
	for _, refID := range ann.ReferentIDs {
		targets[agraph.Referent(refID)] = true
	}
	var out []DerivedFact
	for target := range targets {
		v.DerivedTargetingEach(target, func(f DerivedFact) bool {
			out = append(out, f)
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return derivedFactLess(out[i], out[j])
	})
	return out, nil
}

// derivedFactLess is the canonical within-source fact order (rule,
// target, witness) — the order propagators store fact sets in.
func derivedFactLess(a, b DerivedFact) bool {
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	if a.Target.Kind != b.Target.Kind {
		return a.Target.Kind < b.Target.Kind
	}
	if a.Target.Key != b.Target.Key {
		return a.Target.Key < b.Target.Key
	}
	return a.Witness < b.Witness
}

// DerivedOnto returns the derived facts targeting an annotation's
// content node or any of its referents.
func (s *Store) DerivedOnto(annID uint64) ([]DerivedFact, error) {
	return s.View().DerivedOnto(annID)
}

// DerivedCount returns the number of materialized derived facts.
func (v *View) DerivedCount() int { return v.derivedCount }

// DerivedEpoch returns the derived table's epoch: it advances on every
// mutation that changed the table, and every fact set records the epoch
// it was computed at.
func (v *View) DerivedEpoch() uint64 { return v.derivedEpoch }

// DerivedSourceEpoch returns the epoch at which the given source's fact
// set was last recomputed (0 when the source has no facts).
func (v *View) DerivedSourceEpoch(src uint64) uint64 {
	if e := v.derived.get(src); e != nil {
		return e.epoch
	}
	return 0
}
