package core

import (
	"fmt"
	"sort"
	"strings"

	"graphitti/internal/interval"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// The Mark* constructors implement the annotation tab's sub-structure
// markers ("the central panel has a number of menus for marking the
// substructures of different structures"): each validates a user-supplied
// mark against the owning data object and normalises it into the shared
// coordinate space, producing an uncommitted Referent.

// MarkSequenceInterval marks the local (sequence-relative, 0-based,
// half-open) interval of a registered sequence. The mark is normalised
// into the sequence's coordinate domain, so marks on different sequences
// of the same chromosome land in the same interval tree.
func (s *Store) MarkSequenceInterval(seqID string, local interval.Interval) (*Referent, error) {
	sq, typ, err := s.Sequence(seqID)
	if err != nil {
		return nil, err
	}
	dom, err := sq.ToDomain(local)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       IntervalReferent,
		ObjectType: typ,
		ObjectID:   seqID,
		Domain:     sq.Domain,
		Interval:   dom,
	}, nil
}

// MarkDomainInterval marks an interval directly in a coordinate domain
// (e.g. whole-chromosome coordinates), without naming a specific sequence.
// The domain must be owned by at least one registered sequence.
func (s *Store) MarkDomainInterval(domain string, iv interval.Interval) (*Referent, error) {
	if !iv.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, iv)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var owner string
	var typ ObjectType
	ids := make([]string, 0, len(s.seqs))
	for id := range s.seqs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sq := s.seqs[id]
		if sq.Domain == domain && sq.Span().Overlaps(iv) {
			owner = id
			typ = s.seqType[id]
			break
		}
	}
	if owner == "" {
		return nil, fmt.Errorf("%w: no registered sequence covers %s %v", ErrBadMark, domain, iv)
	}
	return &Referent{
		Kind:       IntervalReferent,
		ObjectType: typ,
		ObjectID:   owner,
		Domain:     domain,
		Interval:   iv,
	}, nil
}

// MarkImageRegion marks a rectangle in image-local coordinates; the mark
// is registered into the image's shared coordinate system.
func (s *Store) MarkImageRegion(imageID string, local rtree.Rect) (*Referent, error) {
	im, err := s.Image(imageID)
	if err != nil {
		return nil, err
	}
	region, err := im.Region(local)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       RegionReferent,
		ObjectType: TypeImage,
		ObjectID:   imageID,
		Domain:     im.System,
		Region:     region.Sys,
	}, nil
}

// MarkClade marks the clade of a registered tree spanned by the given
// leaves (the full subtree under their lowest common ancestor).
func (s *Store) MarkClade(treeID string, leaves ...string) (*Referent, error) {
	t, err := s.Tree(treeID)
	if err != nil {
		return nil, err
	}
	clade, err := t.Clade(leaves...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       CladeReferent,
		ObjectType: TypeTree,
		ObjectID:   treeID,
		Domain:     treeID,
		Keys:       clade.Leaves,
	}, nil
}

// MarkSubgraph marks the subgraph of a registered interaction graph
// induced by the given molecules.
func (s *Store) MarkSubgraph(graphID string, molecules ...string) (*Referent, error) {
	g, err := s.InteractionGraph(graphID)
	if err != nil {
		return nil, err
	}
	sg, err := g.InducedSubgraph(molecules...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       SubgraphReferent,
		ObjectType: TypeInteraction,
		ObjectID:   graphID,
		Domain:     graphID,
		Keys:       sg.Molecules,
	}, nil
}

// MarkAlignmentBlock marks a block of a registered alignment: the given
// rows crossed with the column interval.
func (s *Store) MarkAlignmentBlock(alnID string, rows []string, cols interval.Interval) (*Referent, error) {
	a, err := s.Alignment(alnID)
	if err != nil {
		return nil, err
	}
	block, err := a.Block(rows, cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	keys := append([]string(nil), block.RowIDs...)
	sort.Strings(keys)
	return &Referent{
		Kind:       BlockReferent,
		ObjectType: TypeAlignment,
		ObjectID:   alnID,
		Domain:     alnID,
		Interval:   block.Cols,
		Keys:       keys,
	}, nil
}

// MarkRecords marks a set of rows of a user record table by primary key
// (the demo's "block set markers for relational records").
func (s *Store) MarkRecords(table string, keys ...relstore.Value) (*Referent, error) {
	s.mu.RLock()
	isRecord := s.recordTables[table]
	s.mu.RUnlock()
	if !isRecord {
		return nil, fmt.Errorf("%w: record table %s", ErrNoSuchObject, table)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("%w: no record keys", ErrBadMark)
	}
	tbl, err := s.rel.Table(table)
	if err != nil {
		return nil, err
	}
	strKeys := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, err := tbl.Get(k); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
		}
		strKeys = append(strKeys, k.String())
	}
	sort.Strings(strKeys)
	return &Referent{
		Kind:       RecordSetReferent,
		ObjectType: TypeRecord,
		ObjectID:   table,
		Domain:     table,
		Keys:       strKeys,
	}, nil
}

// MarkObject marks a whole registered data object.
func (s *Store) MarkObject(typ ObjectType, objectID string) (*Referent, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ok := false
	switch typ {
	case TypeDNA, TypeRNA, TypeProtein:
		_, present := s.seqs[objectID]
		ok = present && s.seqType[objectID] == typ
	case TypeAlignment:
		_, ok = s.alignments[objectID]
	case TypeTree:
		_, ok = s.trees[objectID]
	case TypeInteraction:
		_, ok = s.igraphs[objectID]
	case TypeImage:
		_, ok = s.images[objectID]
	default:
		ok = s.recordTables[string(typ)]
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, typ, objectID)
	}
	return &Referent{
		Kind:       ObjectReferent,
		ObjectType: typ,
		ObjectID:   objectID,
		Domain:     string(typ),
		Keys:       []string{objectID},
	}, nil
}

// markKey canonicalises a referent's identity so that identical marks made
// by different users resolve to the same stored referent — the mechanism
// behind the paper's indirect relations through shared referents.
func markKey(r *Referent) string {
	var sb strings.Builder
	sb.WriteString(r.Kind.String())
	sb.WriteByte('|')
	sb.WriteString(string(r.ObjectType))
	sb.WriteByte('|')
	sb.WriteString(r.ObjectID)
	sb.WriteByte('|')
	sb.WriteString(r.Domain)
	sb.WriteByte('|')
	switch r.Kind {
	case IntervalReferent:
		fmt.Fprintf(&sb, "%d:%d", r.Interval.Lo, r.Interval.Hi)
	case RegionReferent:
		fmt.Fprintf(&sb, "%v", r.Region)
	case BlockReferent:
		fmt.Fprintf(&sb, "%d:%d|%s", r.Interval.Lo, r.Interval.Hi, strings.Join(r.Keys, ","))
	default:
		sb.WriteString(strings.Join(r.Keys, ","))
	}
	return sb.String()
}
