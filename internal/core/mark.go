package core

import (
	"fmt"
	"sort"
	"strings"

	"graphitti/internal/interval"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// The Mark* constructors implement the annotation tab's sub-structure
// markers ("the central panel has a number of menus for marking the
// substructures of different structures"): each validates a user-supplied
// mark against the owning data object and normalises it into the shared
// coordinate space, producing an uncommitted Referent. Marks are read-only
// — they run against a pinned view and are re-validated at commit.

// MarkSequenceInterval marks the local (sequence-relative, 0-based,
// half-open) interval of a registered sequence. The mark is normalised
// into the sequence's coordinate domain, so marks on different sequences
// of the same chromosome land in the same interval tree.
func (v *View) MarkSequenceInterval(seqID string, local interval.Interval) (*Referent, error) {
	sq, typ, err := v.Sequence(seqID)
	if err != nil {
		return nil, err
	}
	dom, err := sq.ToDomain(local)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       IntervalReferent,
		ObjectType: typ,
		ObjectID:   seqID,
		Domain:     sq.Domain,
		Interval:   dom,
	}, nil
}

// MarkSequenceInterval marks a local interval of a registered sequence.
func (s *Store) MarkSequenceInterval(seqID string, local interval.Interval) (*Referent, error) {
	return s.View().MarkSequenceInterval(seqID, local)
}

// MarkDomainInterval marks an interval directly in a coordinate domain
// (e.g. whole-chromosome coordinates), without naming a specific sequence.
// The domain must be owned by at least one registered sequence.
func (v *View) MarkDomainInterval(domain string, iv interval.Interval) (*Referent, error) {
	if !iv.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, iv)
	}
	var owner string
	var typ ObjectType
	// seqIDs is maintained sorted, so the first covering owner is
	// deterministic without a per-call sort.
	for _, id := range v.seqIDs {
		sq := v.seqs[id]
		if sq.Domain == domain && sq.Span().Overlaps(iv) {
			owner = id
			typ = v.seqType[id]
			break
		}
	}
	if owner == "" {
		return nil, fmt.Errorf("%w: no registered sequence covers %s %v", ErrBadMark, domain, iv)
	}
	return &Referent{
		Kind:       IntervalReferent,
		ObjectType: typ,
		ObjectID:   owner,
		Domain:     domain,
		Interval:   iv,
	}, nil
}

// MarkDomainInterval marks an interval directly in a coordinate domain.
func (s *Store) MarkDomainInterval(domain string, iv interval.Interval) (*Referent, error) {
	return s.View().MarkDomainInterval(domain, iv)
}

// MarkImageRegion marks a rectangle in image-local coordinates; the mark
// is registered into the image's shared coordinate system.
func (v *View) MarkImageRegion(imageID string, local rtree.Rect) (*Referent, error) {
	im, err := v.Image(imageID)
	if err != nil {
		return nil, err
	}
	region, err := im.Region(local)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       RegionReferent,
		ObjectType: TypeImage,
		ObjectID:   imageID,
		Domain:     im.System,
		Region:     region.Sys,
	}, nil
}

// MarkImageRegion marks a rectangle in image-local coordinates.
func (s *Store) MarkImageRegion(imageID string, local rtree.Rect) (*Referent, error) {
	return s.View().MarkImageRegion(imageID, local)
}

// MarkClade marks the clade of a registered tree spanned by the given
// leaves (the full subtree under their lowest common ancestor).
func (v *View) MarkClade(treeID string, leaves ...string) (*Referent, error) {
	t, err := v.Tree(treeID)
	if err != nil {
		return nil, err
	}
	clade, err := t.Clade(leaves...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       CladeReferent,
		ObjectType: TypeTree,
		ObjectID:   treeID,
		Domain:     treeID,
		Keys:       clade.Leaves,
	}, nil
}

// MarkClade marks the clade of a registered tree spanned by the leaves.
func (s *Store) MarkClade(treeID string, leaves ...string) (*Referent, error) {
	return s.View().MarkClade(treeID, leaves...)
}

// MarkSubgraph marks the subgraph of a registered interaction graph
// induced by the given molecules.
func (v *View) MarkSubgraph(graphID string, molecules ...string) (*Referent, error) {
	g, err := v.InteractionGraph(graphID)
	if err != nil {
		return nil, err
	}
	sg, err := g.InducedSubgraph(molecules...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	return &Referent{
		Kind:       SubgraphReferent,
		ObjectType: TypeInteraction,
		ObjectID:   graphID,
		Domain:     graphID,
		Keys:       sg.Molecules,
	}, nil
}

// MarkSubgraph marks an induced subgraph of an interaction graph.
func (s *Store) MarkSubgraph(graphID string, molecules ...string) (*Referent, error) {
	return s.View().MarkSubgraph(graphID, molecules...)
}

// MarkAlignmentBlock marks a block of a registered alignment: the given
// rows crossed with the column interval.
func (v *View) MarkAlignmentBlock(alnID string, rows []string, cols interval.Interval) (*Referent, error) {
	a, err := v.Alignment(alnID)
	if err != nil {
		return nil, err
	}
	block, err := a.Block(rows, cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
	}
	keys := append([]string(nil), block.RowIDs...)
	sort.Strings(keys)
	return &Referent{
		Kind:       BlockReferent,
		ObjectType: TypeAlignment,
		ObjectID:   alnID,
		Domain:     alnID,
		Interval:   block.Cols,
		Keys:       keys,
	}, nil
}

// MarkAlignmentBlock marks a block of a registered alignment.
func (s *Store) MarkAlignmentBlock(alnID string, rows []string, cols interval.Interval) (*Referent, error) {
	return s.View().MarkAlignmentBlock(alnID, rows, cols)
}

// MarkRecords marks a set of rows of a user record table by primary key
// (the demo's "block set markers for relational records").
func (v *View) MarkRecords(table string, keys ...relstore.Value) (*Referent, error) {
	if !v.recordTables[table] {
		return nil, fmt.Errorf("%w: record table %s", ErrNoSuchObject, table)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("%w: no record keys", ErrBadMark)
	}
	tbl, err := v.rel.Table(table)
	if err != nil {
		return nil, err
	}
	strKeys := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, err := tbl.Get(k); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMark, err)
		}
		strKeys = append(strKeys, k.String())
	}
	sort.Strings(strKeys)
	return &Referent{
		Kind:       RecordSetReferent,
		ObjectType: TypeRecord,
		ObjectID:   table,
		Domain:     table,
		Keys:       strKeys,
	}, nil
}

// MarkRecords marks a set of rows of a user record table by primary key.
func (s *Store) MarkRecords(table string, keys ...relstore.Value) (*Referent, error) {
	return s.View().MarkRecords(table, keys...)
}

// MarkObject marks a whole registered data object.
func (v *View) MarkObject(typ ObjectType, objectID string) (*Referent, error) {
	ok := false
	switch typ {
	case TypeDNA, TypeRNA, TypeProtein:
		_, present := v.seqs[objectID]
		ok = present && v.seqType[objectID] == typ
	case TypeAlignment:
		_, ok = v.alignments[objectID]
	case TypeTree:
		_, ok = v.trees[objectID]
	case TypeInteraction:
		_, ok = v.igraphs[objectID]
	case TypeImage:
		_, ok = v.images[objectID]
	default:
		ok = v.recordTables[string(typ)]
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, typ, objectID)
	}
	return &Referent{
		Kind:       ObjectReferent,
		ObjectType: typ,
		ObjectID:   objectID,
		Domain:     string(typ),
		Keys:       []string{objectID},
	}, nil
}

// MarkObject marks a whole registered data object.
func (s *Store) MarkObject(typ ObjectType, objectID string) (*Referent, error) {
	return s.View().MarkObject(typ, objectID)
}

// markKey canonicalises a referent's identity so that identical marks made
// by different users resolve to the same stored referent — the mechanism
// behind the paper's indirect relations through shared referents.
func markKey(r *Referent) string {
	var sb strings.Builder
	sb.WriteString(r.Kind.String())
	sb.WriteByte('|')
	sb.WriteString(string(r.ObjectType))
	sb.WriteByte('|')
	sb.WriteString(r.ObjectID)
	sb.WriteByte('|')
	sb.WriteString(r.Domain)
	sb.WriteByte('|')
	switch r.Kind {
	case IntervalReferent:
		fmt.Fprintf(&sb, "%d:%d", r.Interval.Lo, r.Interval.Hi)
	case RegionReferent:
		fmt.Fprintf(&sb, "%v", r.Region)
	case BlockReferent:
		fmt.Fprintf(&sb, "%d:%d|%s", r.Interval.Lo, r.Interval.Hi, strings.Join(r.Keys, ","))
	default:
		sb.WriteString(strings.Join(r.Keys, ","))
	}
	return sb.String()
}
