package core

import (
	"strings"
	"testing"

	"graphitti/internal/interval"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

func TestListingAccessors(t *testing.T) {
	s := newDemoStore(t)
	if got := s.SequenceIDs(); len(got) != 3 || got[0] != "NC_007362" {
		t.Fatalf("SequenceIDs = %v", got)
	}
	if got := s.AlignmentIDs(); len(got) != 1 || got[0] != "HA-aln" {
		t.Fatalf("AlignmentIDs = %v", got)
	}
	if got := s.TreeIDs(); len(got) != 1 || got[0] != "H5N1-tree" {
		t.Fatalf("TreeIDs = %v", got)
	}
	if got := s.InteractionGraphIDs(); len(got) != 1 || got[0] != "NS1-net" {
		t.Fatalf("InteractionGraphIDs = %v", got)
	}
	if got := s.Images(); len(got) != 2 || got[0] != "brain-1" {
		t.Fatalf("Images = %v", got)
	}
	if got := s.CoordinateSystems(); len(got) != 1 || got[0] != "atlas" {
		t.Fatalf("CoordinateSystems = %v", got)
	}
	if got := s.RecordTables(); len(got) != 1 || got[0] != "isolates" {
		t.Fatalf("RecordTables = %v", got)
	}
	if got := s.Ontologies(); len(got) != 2 || got[0] != "go" || got[1] != "nif" {
		t.Fatalf("Ontologies = %v", got)
	}
	if _, err := s.CoordinateSystem("atlas"); err != nil {
		t.Fatal(err)
	}
	// Object list covers every registered object plus the record table.
	objs := s.ObjectList()
	want := 3 + 1 + 1 + 1 + 2 + 1 // seqs + aln + tree + graph + images + record table
	if len(objs) != want {
		t.Fatalf("ObjectList = %d entries, want %d: %v", len(objs), want, objs)
	}
	for i := 1; i < len(objs); i++ {
		if objs[i-1].Type > objs[i].Type {
			t.Fatal("ObjectList not sorted by type")
		}
	}
}

func TestAnnotationAndReferentListing(t *testing.T) {
	s := newDemoStore(t)
	m1, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})
	m2, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 20, Hi: 30})
	a1, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m1))
	mustNoErr(t, err)
	a2, err := s.Commit(s.NewAnnotation().Creator("b").Date("2008-01-02").Refer(m2))
	mustNoErr(t, err)

	ids := s.AnnotationIDs()
	if len(ids) != 2 || ids[0] != a1.ID || ids[1] != a2.ID {
		t.Fatalf("AnnotationIDs = %v", ids)
	}
	refs := s.Referents()
	if len(refs) != 2 || refs[0].ID >= refs[1].ID {
		t.Fatalf("Referents = %v", refs)
	}
	if got := s.IntervalDomains(); len(got) != 1 || got[0] != "segment4" {
		t.Fatalf("IntervalDomains = %v", got)
	}
	if got := s.IntervalTreeSize("segment4"); got != 2 {
		t.Fatalf("IntervalTreeSize = %d", got)
	}
	if got := s.IntervalTreeSize("ghost"); got != 0 {
		t.Fatalf("IntervalTreeSize(ghost) = %d", got)
	}
}

func TestSubjectAndBuilderDCElements(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})
	ann, err := s.Commit(s.NewAnnotation().
		Creator("a").Date("2008-01-01").
		Subject("influenza").Subject("hemagglutinin").
		Refer(m))
	mustNoErr(t, err)
	xml := ann.Content.String()
	if !strings.Contains(xml, "<dc:subject>influenza</dc:subject>") ||
		!strings.Contains(xml, "<dc:subject>hemagglutinin</dc:subject>") {
		t.Fatalf("subjects missing:\n%s", xml)
	}
}

func TestReferentStringForms(t *testing.T) {
	s := newDemoStore(t)
	iv, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 1, Hi: 9})
	rg, _ := s.MarkImageRegion("brain-1", rtree.Rect2D(0, 0, 10, 10))
	cl, _ := s.MarkClade("H5N1-tree", "goose", "duck")
	ob, _ := s.MarkObject(TypeTree, "H5N1-tree")
	rc, _ := s.MarkRecords("isolates", relstore.S("A/goose/1996"))

	cases := []struct {
		ref  *Referent
		want string
	}{
		{iv, "interval"},
		{rg, "region"},
		{cl, "clade"},
		{ob, "object"},
		{rc, "recordset"},
	}
	for _, tc := range cases {
		if got := tc.ref.String(); !strings.Contains(got, tc.want) {
			t.Errorf("String() = %q missing %q", got, tc.want)
		}
	}
	// Kind strings.
	for k := IntervalReferent; k <= ObjectReferent; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if (TermRef{Ontology: "go", TermID: "protease"}).String() != "go/protease" {
		t.Error("TermRef.String wrong")
	}
}

func TestMarkObjectAllTypes(t *testing.T) {
	s := newDemoStore(t)
	ok := []struct {
		typ ObjectType
		id  string
	}{
		{TypeDNA, "NC_007362"},
		{TypeProtein, "P03452"},
		{TypeAlignment, "HA-aln"},
		{TypeTree, "H5N1-tree"},
		{TypeInteraction, "NS1-net"},
		{TypeImage, "brain-1"},
		{ObjectType("isolates"), "anything"}, // record tables accept any id
	}
	for _, tc := range ok {
		if _, err := s.MarkObject(tc.typ, tc.id); err != nil {
			t.Errorf("MarkObject(%s,%s): %v", tc.typ, tc.id, err)
		}
	}
	// Wrong type for a registered id.
	if _, err := s.MarkObject(TypeRNA, "NC_007362"); err == nil {
		t.Error("DNA sequence accepted as RNA object")
	}
	if _, err := s.MarkObject(ObjectType("ghost-table"), "x"); err == nil {
		t.Error("unknown record table accepted")
	}
}

func TestPathBetweenAnnotationsErrors(t *testing.T) {
	s := newDemoStore(t)
	m, _ := s.MarkSequenceInterval("NC_007362", interval.Interval{Lo: 0, Hi: 10})
	ann, err := s.Commit(s.NewAnnotation().Creator("a").Date("2008-01-01").Refer(m))
	mustNoErr(t, err)
	if _, err := s.PathBetweenAnnotations(ann.ID, 999); err == nil {
		t.Fatal("ghost target accepted")
	}
	if _, err := s.PathBetweenAnnotations(999, ann.ID); err == nil {
		t.Fatal("ghost source accepted")
	}
	p, err := s.PathBetweenAnnotations(ann.ID, ann.ID)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}
