package core

import (
	"fmt"
	"sort"
	"strings"

	"graphitti/internal/agraph"
	"graphitti/internal/xmldoc"
	"graphitti/internal/xquery"
)

// SearchContents evaluates a path-expression query against every
// annotation content document and returns the annotations for which the
// result is truthy (a non-empty node set, true boolean, non-empty string
// or non-zero number). This is the paper's "collection-searching
// operations … performed using standard XQuery".
func (s *Store) SearchContents(expr string) ([]*Annotation, error) {
	q, err := xquery.Compile(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Annotation
	for _, id := range s.annotationIDsLocked() {
		ann := s.annotations[id]
		v, err := q.EvalValue(ann.Content)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %q on annotation %d: %w", expr, id, err)
		}
		if v.AsBool() {
			out = append(out, ann)
		}
	}
	return out, nil
}

// SearchKeyword returns the annotations whose content contains the word
// (case-insensitive, token match). When useIndex is true the inverted
// keyword index answers directly; otherwise every document is scanned
// (ablation A6 compares the two).
func (s *Store) SearchKeyword(word string, useIndex bool) []*Annotation {
	token := strings.ToLower(strings.TrimSpace(word))
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Annotation
	if useIndex {
		for _, id := range s.keywordIdx[token] {
			out = append(out, s.annotations[id])
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	for _, id := range s.annotationIDsLocked() {
		ann := s.annotations[id]
		for _, w := range ann.Content.Keywords() {
			if w == token {
				out = append(out, ann)
				break
			}
		}
	}
	return out
}

func (s *Store) annotationIDsLocked() []uint64 {
	ids := make([]uint64, 0, len(s.annotations))
	for id := range s.annotations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AnnotationsOnObject returns the annotations having at least one referent
// marking the given data object, via the a-graph join index: object <-
// referent <- content.
func (s *Store) AnnotationsOnObject(typ ObjectType, objectID string) []*Annotation {
	objNode := agraph.Object(string(typ), objectID)
	seen := make(map[uint64]bool)
	var out []*Annotation
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.graph.InEach(objNode, func(re agraph.Edge) bool {
		s.graph.InEach(re.From, func(ce agraph.Edge) bool {
			annID, ok := parseContentRef(ce.From)
			if !ok || seen[annID] {
				return true
			}
			seen[annID] = true
			if ann, exists := s.annotations[annID]; exists {
				out = append(out, ann)
			}
			return true
		}, agraph.LabelAnnotates)
		return true
	}, agraph.LabelMarks)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AnnotationsOfReferent returns the annotations attached to a referent.
func (s *Store) AnnotationsOfReferent(refID uint64) []*Annotation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Annotation
	s.graph.InEach(agraph.Referent(refID), func(e agraph.Edge) bool {
		if annID, ok := parseContentRef(e.From); ok {
			if ann, exists := s.annotations[annID]; exists {
				out = append(out, ann)
			}
		}
		return true
	}, agraph.LabelAnnotates)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AnnotationsWithTerm returns the annotations pointing at the exact
// ontology term.
func (s *Store) AnnotationsWithTerm(ontologyName, termID string) []*Annotation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Annotation
	seen := make(map[uint64]bool)
	s.graph.InEach(agraph.Term(ontologyName, termID), func(e agraph.Edge) bool {
		if annID, ok := parseContentRef(e.From); ok && !seen[annID] {
			seen[annID] = true
			if ann, exists := s.annotations[annID]; exists {
				out = append(out, ann)
			}
		}
		return true
	}, agraph.LabelRefersTo)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AnnotationsWithTermUnder returns the annotations pointing at the given
// term or any of its instances (CI closure) — ontology-expanded retrieval,
// the building block of both paper queries.
func (s *Store) AnnotationsWithTermUnder(ontologyName, rootTerm string) ([]*Annotation, error) {
	o, err := s.Ontology(ontologyName)
	if err != nil {
		return nil, err
	}
	instances, err := o.CI(rootTerm)
	if err != nil {
		return nil, err
	}
	terms := append([]string{rootTerm}, instances...)
	seen := make(map[uint64]bool)
	var out []*Annotation
	for _, term := range terms {
		for _, ann := range s.AnnotationsWithTerm(ontologyName, term) {
			if !seen[ann.ID] {
				seen[ann.ID] = true
				out = append(out, ann)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RelatedAnnotations returns annotations indirectly related to the given
// one: those sharing a referent, or sharing a marked data object. This is
// the paper's "if the same referent is connected to two different
// annotations … the two annotations become indirectly related".
func (s *Store) RelatedAnnotations(annID uint64) ([]*Annotation, error) {
	if _, err := s.Annotation(annID); err != nil {
		return nil, err
	}
	content := agraph.ContentRoot(annID)
	seen := map[uint64]bool{annID: true}
	var out []*Annotation
	// One read lock around the whole traversal instead of a lock
	// round-trip per discovered candidate; the a-graph iterators snapshot
	// under their own lock and run without holding it, so nesting them
	// inside s.mu is deadlock-free.
	s.mu.RLock()
	defer s.mu.RUnlock()
	add := func(id uint64) {
		if !seen[id] {
			seen[id] = true
			if ann, ok := s.annotations[id]; ok {
				out = append(out, ann)
			}
		}
	}
	addAnnotators := func(refNode agraph.NodeRef) {
		s.graph.InEach(refNode, func(e agraph.Edge) bool {
			if id, ok := parseContentRef(e.From); ok {
				add(id)
			}
			return true
		}, agraph.LabelAnnotates)
	}
	s.graph.OutEach(content, func(refEdge agraph.Edge) bool {
		refNode := refEdge.To
		// Annotations sharing this referent.
		addAnnotators(refNode)
		// Annotations marking the same object through other referents.
		s.graph.OutEach(refNode, func(objEdge agraph.Edge) bool {
			s.graph.InEach(objEdge.To, func(otherRef agraph.Edge) bool {
				addAnnotators(otherRef.From)
				return true
			}, agraph.LabelMarks)
			return true
		}, agraph.LabelMarks)
		return true
	}, agraph.LabelAnnotates)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// CorrelatedItem is one entry of the correlated-data view: something
// adjacent to an annotation in the a-graph.
type CorrelatedItem struct {
	Node  agraph.NodeRef
	Label agraph.EdgeLabel
	// Description is a human-readable rendering of the target.
	Description string
}

// CorrelatedData implements the query tab's correlated data viewer: the
// data objects the annotation marks, the ontology terms it references,
// and the other annotations reachable through shared referents/objects.
func (s *Store) CorrelatedData(annID uint64) ([]CorrelatedItem, error) {
	if _, err := s.Annotation(annID); err != nil {
		return nil, err
	}
	content := agraph.ContentRoot(annID)
	var items []CorrelatedItem
	s.graph.OutEach(content, func(refEdge agraph.Edge) bool {
		s.graph.OutEach(refEdge.To, func(objEdge agraph.Edge) bool {
			items = append(items, CorrelatedItem{
				Node:        objEdge.To,
				Label:       agraph.LabelMarks,
				Description: "object " + objEdge.To.Key,
			})
			return true
		}, agraph.LabelMarks)
		return true
	}, agraph.LabelAnnotates)
	func() {
		s.mu.RLock() // one lock round-trip for the whole term loop
		defer s.mu.RUnlock()
		s.graph.OutEach(content, func(termEdge agraph.Edge) bool {
			desc := "term " + termEdge.To.Key
			if parts := strings.SplitN(termEdge.To.Key, "/", 2); len(parts) == 2 {
				if o, ok := s.ontologies[parts[0]]; ok {
					if t, ok := o.Term(parts[1]); ok && t.Name != "" {
						desc = fmt.Sprintf("term %s (%s)", t.Name, termEdge.To.Key)
					}
				}
			}
			items = append(items, CorrelatedItem{
				Node:        termEdge.To,
				Label:       agraph.LabelRefersTo,
				Description: desc,
			})
			return true
		}, agraph.LabelRefersTo)
	}()
	related, err := s.RelatedAnnotations(annID)
	if err != nil {
		return nil, err
	}
	for _, rel := range related {
		items = append(items, CorrelatedItem{
			Node:        agraph.ContentRoot(rel.ID),
			Label:       agraph.LabelAnnotates,
			Description: fmt.Sprintf("annotation %d (%s)", rel.ID, rel.DC.First("title")),
		})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Node.Kind != items[j].Node.Kind {
			return items[i].Node.Kind < items[j].Node.Kind
		}
		return items[i].Node.Key < items[j].Node.Key
	})
	return items, nil
}

// PathBetweenAnnotations returns a shortest a-graph path between two
// annotations' content nodes.
func (s *Store) PathBetweenAnnotations(a, b uint64) (*agraph.Path, error) {
	if _, err := s.Annotation(a); err != nil {
		return nil, err
	}
	if _, err := s.Annotation(b); err != nil {
		return nil, err
	}
	return s.graph.FindPath(agraph.ContentRoot(a), agraph.ContentRoot(b))
}

// ConnectAnnotations returns a connection subgraph joining the given
// annotations' content nodes (the paper's connect primitive applied to
// query-result collation).
func (s *Store) ConnectAnnotations(ids ...uint64) (*agraph.Subgraph, error) {
	refs := make([]agraph.NodeRef, 0, len(ids))
	for _, id := range ids {
		if _, err := s.Annotation(id); err != nil {
			return nil, err
		}
		refs = append(refs, agraph.ContentRoot(id))
	}
	return s.graph.Connect(refs...)
}

// parseContentRef extracts the annotation ID from a content node ref.
func parseContentRef(ref agraph.NodeRef) (uint64, bool) {
	ann, _, ok := agraph.ContentID(ref)
	return ann, ok
}

// ContentFragments evaluates a path expression against one annotation and
// returns the matching XML nodes (the paper's "XQuery fragments to
// retrieve fragments of annotation").
func (s *Store) ContentFragments(annID uint64, expr string) ([]*xmldoc.Node, error) {
	ann, err := s.Annotation(annID)
	if err != nil {
		return nil, err
	}
	q, err := xquery.Compile(expr)
	if err != nil {
		return nil, err
	}
	return q.Eval(ann.Content)
}
